"""The Fig-9-style campaign: a factorial signoff sweep with durable
results, SIGKILL survival, and learned triage.

Section 4 of the paper frames timing closure as a methodology search —
margins, aging corners, derates, and closure recipes traded against
power, area, and violations. This benchmark runs the built-in 288-config
campaign (3 SoC blocks x 3 periods x 4 recipes x PST on/off x 2 margins
x 2 derates) end to end and gates the subsystem's acceptance claims:

1. every configuration completes under the supervised executor and
   lands in the SQLite results DB;
2. a SIGKILL mid-sweep loses nothing that committed — resume recomputes
   exactly the difference (count-based assertions, never wall-clock);
3. learned triage (ridge surrogate over factor levels + timing-graph
   probe features) recovers >= 80% of the true Pareto front while
   spending <= 50% of the full-signoff budget.

The recovered Pareto front (power/area/TNS, the paper's Fig 9 axes) and
the triage scorecard are persisted under ``benchmarks/results/``.
"""

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from conftest import RESULTS_DIR, once

from repro.campaign import (
    CampaignRunner,
    CampaignStore,
    DEFAULT_AXES,
    demo_spec,
    front_recall,
    pareto_front,
    render_front,
)
from repro.obs import format_table
from repro.runtime.supervisor import RetryPolicy

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

JOBS = max(2, min(4, (os.cpu_count() or 2)))
BUDGET, TRAIN = 0.5, 0.3
RECALL_FLOOR = 0.8

FACTOR_COLS = ("block", "period", "recipe", "tune_tau", "margin_ps",
               "derate_late")


def spec():
    return demo_spec()  # 288 configs, the CLI default sweep


def db_count(path, campaign):
    if not path.exists():
        return 0
    with CampaignStore(path) as store:
        return store.count(campaign)


def make_runner(store):
    return CampaignRunner(
        spec(), store, jobs=JOBS, executor="process", chunk=16,
        policy=RetryPolicy(retries=1, backoff_s=0.1),
    )


def test_campaign_sweep_survives_sigkill_and_triage_recalls_front(
        benchmark, record_table):
    campaign_spec = spec()
    total = campaign_spec.size
    assert total >= 200  # the acceptance floor on campaign scale

    db_path = RESULTS_DIR / "campaign.db"
    db_path.unlink(missing_ok=True)

    # -- phase 1: start the full sweep via the CLI, SIGKILL it mid-run.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "run",
            "--db", str(db_path),
            "--jobs", str(JOBS), "--executor", "process",
            "--chunk", "16", "--retries", "1",
        ],
        cwd=str(REPO_ROOT), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 300.0
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished early: resume still asserts exactness
            if db_count(db_path, campaign_spec.name) >= 16:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=60)
                break
            time.sleep(0.1)
        else:
            pytest.fail("campaign subprocess committed nothing in 300 s")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=60)

    done_before = db_count(db_path, campaign_spec.name)
    assert 1 <= done_before <= total

    # -- phase 2: resume to completion under pytest-benchmark timing.
    def resume():
        with CampaignStore(db_path) as store:
            return make_runner(store).run()

    outcome = once(benchmark, resume)
    assert outcome.ok, outcome.render()
    assert len(outcome.resumed) == done_before  # exact resume
    assert len(outcome.computed) == total - done_before

    with CampaignStore(db_path) as store:
        assert store.count(campaign_spec.name) == total  # all persisted
        rows = store.rows(campaign_spec.name, status="ok")
    assert len(rows) == total
    assert all(r["power_mw"] is not None and r["tns"] is not None
               for r in rows)

    front = pareto_front(rows, DEFAULT_AXES)
    assert front  # a 288-config tradeoff space has a nonempty front
    record_table("campaign_pareto", render_front(
        rows, DEFAULT_AXES, factors=FACTOR_COLS,
        title=(f"campaign {campaign_spec.name}: Fig-9 Pareto front "
               f"({total} configs, {JOBS} workers)"),
    ))

    # -- phase 3: learned triage against the full sweep's ground truth.
    triage_db = RESULTS_DIR / "campaign_triage.db"
    triage_db.unlink(missing_ok=True)
    with CampaignStore(triage_db) as store:
        triage = make_runner(store).run_triaged(
            budget=BUDGET, train=TRAIN)
        recovered = {
            row["fingerprint"]
            for row in store.rows(campaign_spec.name, status="ok")
        }
        predictions = store.predictions(campaign_spec.name)

    spent = len(triage.ran)
    assert spent <= int(BUDGET * total)  # <= 50% of the signoff budget
    assert spent + triage.predicted == total
    assert len(predictions) == triage.predicted

    recall = front_recall(front, recovered)
    record_table("campaign_triage", format_table(
        ["metric", "value"],
        [
            ["configs", total],
            ["true front", len(front)],
            ["signoffs spent", spent],
            ["budget", f"{BUDGET:.0%}"],
            ["training wave", len(triage.trained_on)],
            ["prioritized", len(triage.prioritized)],
            ["surrogate-only", triage.predicted],
            ["front recall", f"{recall:.3f}"],
        ],
        title="learned triage vs full-sweep ground truth",
        notes=[f"gate: recall >= {RECALL_FLOOR} at <= {BUDGET:.0%} "
               f"of the full-signoff budget"],
    ))
    assert recall >= RECALL_FLOOR, (
        f"triage recalled {recall:.3f} of the {len(front)}-config "
        f"true front with {spent} signoffs"
    )
