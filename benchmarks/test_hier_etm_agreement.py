"""Hierarchical signoff via ETMs vs flat analysis (§4's closure lever).

The paper's §4 lists block-level abstraction among the levers that keep
signoff turnaround flat as designs grow: extract each block's boundary
timing once, in parallel, and time the top level against the small
models. This benchmark quantifies the two claims the subsystem makes:

* **agreement** — on randomized hierarchical SoCs, every boundary
  endpoint's hier slack matches the flat reference within 1 ps (the
  anchored-interface discipline makes the stub algebra exact, so the
  observed divergence is interpolation residue ~0);
* **amortization** — per-block extraction cost is paid once per
  (block, constraint) fingerprint; a warm re-signoff with untouched
  blocks skips extraction entirely, and the per-block work shards
  across worker processes.

The per-seed agreement tables are written to
``benchmarks/results/hier_agreement.txt`` (the CI artifact).
"""

import time

from repro.netlist.generators import hierarchical_soc
from repro.sta.hier import HierScheduler, compare_hier_vs_flat
from repro.sta.mcmm import Scenario
from repro.sta.scheduler import ScenarioResultCache

SEEDS = (1, 2, 3)
PERIOD_PS = 900.0


def test_hier_etm_agreement(lib, record_table):
    lines = []
    for seed in SEEDS:
        hier = hierarchical_soc(seed=seed, n_blocks=3)
        cons = hier.top_constraints(period=PERIOD_PS)
        scen = Scenario(name="tt", library=lib, constraints=cons)
        report = compare_hier_vs_flat(hier, [scen], jobs=2,
                                      executor="thread")
        assert report.ok, report.render()
        assert report.max_divergence <= 1.0
        lines.append(f"--- seed {seed} "
                     f"({sum(len(b.design.instances) for b in hier.blocks.values())} "
                     f"instances, {len(hier.blocks)} blocks) ---")
        lines.append(report.render())
        lines.append("")
    record_table("hier_agreement", "\n".join(lines))


def test_hier_extraction_amortizes(lib, record_table):
    hier = hierarchical_soc(seed=2, n_blocks=4, block_gates=160)
    cons = hier.top_constraints(period=PERIOD_PS)
    scen = Scenario(name="tt", library=lib, constraints=cons)
    cache = ScenarioResultCache()

    t0 = time.perf_counter()
    cold = HierScheduler(hier, [scen], jobs=2, executor="process",
                         etm_cache=cache).signoff()
    cold_s = time.perf_counter() - t0
    assert cold.ok and cold.etm_computed == len(hier.blocks)

    t1 = time.perf_counter()
    warm = HierScheduler(hier, [scen], jobs=2, executor="process",
                         etm_cache=cache).signoff()
    warm_s = time.perf_counter() - t1
    assert warm.ok and warm.etm_computed == 0
    assert warm.etm_cache_hits == len(hier.blocks)

    flat = hier.flatten()
    t2 = time.perf_counter()
    scen.run(flat, HierScheduler(hier, [scen]).stack)
    flat_s = time.perf_counter() - t2

    text = "\n".join([
        f"{'pass':<28} {'extractions':>12} {'wall_s':>8}",
        f"{'flat reference STA':<28} {'-':>12} {flat_s:8.3f}",
        f"{'hier cold (2 procs)':<28} {cold.etm_computed:>12} "
        f"{cold_s:8.3f}",
        f"{'hier warm (cached ETMs)':<28} {warm.etm_computed:>12} "
        f"{warm_s:8.3f}",
        f"warm speedup over cold: {cold_s / max(warm_s, 1e-9):.1f}x",
    ])
    record_table("hier_extraction_amortization", text)
    assert warm_s < cold_s
