"""Yield vs post-silicon tuning range: the PST recovery story.

Section 4's futures discussion points at post-silicon-tunable clocking
as the escape hatch when process variation, not nominal timing, sets
the shipped-silicon bin: instead of margining every die for the slow
tail, a tunable clock buffer at a capture flop lets each die trade
setup against hold slack after measurement. This benchmark runs the
canonical-SSTA engine on the PST benchmark block (period set so nominal
timing passes but an interesting fraction of dies fail), then sweeps
the tuning range tau and re-runs the greedy minimal-insertion pass at
each point.

The recovered table — parametric yield as a function of tau, with the
number of buffers the greedy pass spent — is the quantitative form of
the recovery story: zero at tau below the deterministic hold deficit,
then a sharp knee, then diminishing returns once the setup tail is the
only residual.
"""

from conftest import once

from repro.obs import format_table
from repro.sta.ssta import (
    pst_benchmark_setup,
    run_ssta,
    yield_vs_tuning_range,
)

RANGES = [0.0, 10.0, 15.0, 20.0, 30.0, 40.0, 60.0]
TARGET = 0.999
N_SAMPLES = 4000


def test_yield_vs_tuning_range(benchmark, record_table):
    def run():
        design, lib, cons = pst_benchmark_setup(seed=9, n_gates=160)
        ssta = run_ssta(design, lib, cons, n_samples=N_SAMPLES)
        return ssta, yield_vs_tuning_range(ssta, RANGES,
                                           target_yield=TARGET)

    ssta, results = once(benchmark, run)

    record_table("ssta_yield", format_table(
        ["tau (ps)", "yield", "buffers", "gain"],
        [[r.tune_range, r.tuned_yield, len(r.selected), r.yield_gain]
         for r in results],
        title=(
            f"PST recovery on pstblk9 (period {ssta.period:.1f} ps, "
            f"{len(ssta.endpoints)} setup endpoints, "
            f"{N_SAMPLES} dies, target yield {TARGET:.3f})"
        ),
    ))

    ys = [r.tuned_yield for r in results]
    # Untuned silicon fails; a wide-enough range recovers nearly all of
    # it; and widening the range never costs yield.
    assert results[0].tuned_yield < 0.5
    assert ys[-1] > 0.95
    assert ys == sorted(ys)
