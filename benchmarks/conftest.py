"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one figure or quantitative claim of the
paper. Tables are printed and also written under ``benchmarks/results/``
so the regenerated series survive pytest's output capture.
"""

import pathlib

import pytest

from repro.liberty import LibraryCondition, make_library
from repro.obs import write_artifact

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    """record_table(name, text): print and persist a result table."""

    def _record(name: str, text: str) -> None:
        print(f"\n=== {name} ===\n{text}\n")
        write_artifact(RESULTS_DIR / f"{name}.txt", text)

    return _record


@pytest.fixture(scope="session")
def lib():
    return make_library()


@pytest.fixture(scope="session")
def lib_factory():
    def factory(process: str, vdd: float, temp_c: float):
        return make_library(
            LibraryCondition(process=process, vdd=vdd, temp_c=temp_c)
        )

    return factory


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
