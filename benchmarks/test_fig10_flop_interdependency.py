"""Fig 10 — interdependent setup / hold / clock-to-q timing.

Paper: SPICE characterization of a 65nm DFQDX flop shows c2q rising
steeply as setup (or hold) time shrinks; the fixed 10% pushout criterion
discards the tradeoff region, which margin-recovery methods ([23])
exploit. Panels: (i) c2q vs setup, (ii) c2q vs hold, (iii) setup vs hold
interdependency.

Reproduction: the same sweeps through the transistor-level six-NAND flop,
the pushout characterization, and the analytic model's equal-c2q contour
for panel (iii).
"""

from conftest import once

from repro.flops.model import default_flop_model
from repro.liberty.characterize import (
    c2q_vs_hold_curve,
    c2q_vs_setup_curve,
    characterize_flop,
)


def test_fig10_c2q_surfaces(benchmark, record_table):
    def run():
        setup_curve = c2q_vs_setup_curve(
            setups=[6.0, 8.0, 10.0, 14.0, 20.0, 30.0, 50.0, 100.0],
            hold_time=150.0,
        )
        hold_curve = c2q_vs_hold_curve(
            holds=[0.0, 5.0, 10.0, 20.0, 40.0, 80.0],
            setup_time=150.0,
        )
        char = characterize_flop(resolution=2.0)
        return setup_curve, hold_curve, char

    setup_curve, hold_curve, char = once(benchmark, run)

    model = default_flop_model()
    lines = ["panel (i): c2q vs setup (hold=150ps)"]
    lines.append(f"{'setup':>7} {'c2q sim':>9} {'c2q model':>10}")
    for s, c2q in setup_curve:
        model_val = model.c2q(s, 150.0) if s > model.s_wall else float("nan")
        sim = f"{c2q:9.2f}" if c2q is not None else "     FAIL"
        lines.append(f"{s:7.1f} {sim} {model_val:10.2f}")
    lines.append("")
    lines.append("panel (ii): c2q vs hold (setup=150ps)")
    lines.append(f"{'hold':>7} {'c2q sim':>9}")
    for h, c2q in hold_curve:
        sim = f"{c2q:9.2f}" if c2q is not None else "     FAIL"
        lines.append(f"{h:7.1f} {sim}")
    lines.append("")
    lines.append("panel (iii): equal-c2q contour from the fitted model "
                 "(setup, hold) pairs:")
    contour = model.equal_c2q_contour(model.c2q_inf + 0.35,
                                      setups=[65, 70, 80, 100, 120])
    lines.append("  " + "  ".join(f"({s:.0f},{h:.0f})" for s, h in contour))
    lines.append("")
    lines.append(
        f"pushout characterization (10% criterion): "
        f"c2q_nom={char.c2q_nominal:.1f} ps, setup={char.setup_time:.1f} ps, "
        f"hold={char.hold_time:.1f} ps"
    )
    record_table("fig10_flop_interdependency", "\n".join(lines))

    # Paper shape: c2q rises steeply as setup shrinks, then fails.
    captured = [(s, c) for s, c in setup_curve if c is not None]
    assert captured[0][1] > 1.3 * captured[-1][1]
    assert any(c is None for _, c in setup_curve)  # wall observed
    # Hold dependence exists but is milder.
    h_captured = [c for _, c in hold_curve if c is not None]
    assert h_captured[0] >= h_captured[-1] - 0.5
    # Pushout setup sits well above the wall (the discarded region).
    assert char.setup_time > 6.0
