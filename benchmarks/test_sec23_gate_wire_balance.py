"""Section 2.3 — gate-wire balance across supply voltage.

Paper: at foundry 20nm, scaling VDD from 0.7 to 1.2 V cuts gate delay by
~50% while a 100um M3 wire's delay drops only ~2%; with temperature, wire
R always rises while gate delay may invert. Hence low-voltage critical
paths are gate-dominated (Cw BEOL corner dominant) and high-voltage paths
wire-dominated (RCw dominant) — and corner pruning is hard.

Reproduction: inverter gate delay (transistor level) and a 100um M3 wire
Elmore delay across the voltage sweep, plus the corner-dominance flip.
"""

from conftest import once

from repro.beol.corners import conventional_corners, dominant_corner_for_path
from repro.beol.stack import default_stack
from repro.parasitics.rctree import RCTree
from repro.spice.testbench import inverter_delay


def wire_delay_100um(corner_name: str = "typ", temp_c: float = 25.0) -> float:
    """Elmore delay of a 100um M3 route (10-segment ladder), ps."""
    stack = default_stack()
    layer = stack.layer("M3")
    scales = conventional_corners(stack)[corner_name].layer_scales("M3")
    r = layer.r_at(temp_c) * scales.r
    c = (layer.c_ground_per_um * scales.c_ground
         + 0.5 * layer.c_coupling_per_um * scales.c_coupling)
    tree = RCTree()
    prev = tree.root
    for i in range(10):
        prev = tree.add_node(f"n{i}", prev, r * 10.0, c * 10.0)
    tree.add_cap(prev, 2.0)  # receiver pin
    return tree.elmore(prev)


def test_sec23_gate_wire_balance(benchmark, record_table):
    voltages = (0.7, 0.8, 0.9, 1.0, 1.1, 1.2)

    def run():
        rows = []
        wire = wire_delay_100um()
        for v in voltages:
            gate = inverter_delay(vdd=v, load_ff=4.0).delay
            rows.append((v, gate, wire))
        return rows

    rows = once(benchmark, run)
    g0, w0 = rows[0][1], rows[0][2]
    lines = [
        f"{'vdd':>5} {'gate (ps)':>10} {'gate %':>7} {'wire 100um (ps)':>16} "
        f"{'wire %':>7} {'10-stage net frac':>18}"
    ]
    for v, gate, wire in rows:
        # A representative 10-stage path with one long route: the net-delay
        # fraction the paper tracks (2-5% at low V, 30-50% at high V).
        net_frac = wire / (10.0 * gate + wire)
        lines.append(
            f"{v:5.2f} {gate:10.2f} {100 * gate / g0:7.1f} "
            f"{wire:16.2f} {100 * wire / w0:7.1f} {100 * net_frac:17.1f}%"
        )
    gate_lo, wire = rows[0][1], rows[0][2]
    gate_hi = rows[-1][1]
    frac_short_lowv = (10 * gate_lo) / (10 * gate_lo + 0.1 * wire)
    frac_long_highv = gate_hi / (gate_hi + wire)
    lines += [
        "",
        "temperature: wire R at 125C / 25C = "
        f"{wire_delay_100um(temp_c=125.0) / wire_delay_100um():.3f}",
        f"gate-dominated path (low V, short wires): gate fraction "
        f"{frac_short_lowv:.2f} -> "
        f"{dominant_corner_for_path(frac_short_lowv)} corner dominant",
        f"wire-dominated path (high V, 100um route): gate fraction "
        f"{frac_long_highv:.2f} -> "
        f"{dominant_corner_for_path(frac_long_highv)} corner dominant",
    ]
    record_table("sec23_gate_wire_balance", "\n".join(lines))

    # Paper shape: gate delay drops ~2x across the sweep, wire unchanged.
    gate_ratio = rows[-1][1] / rows[0][1]
    assert gate_ratio < 0.6
    wire_ratio = rows[-1][2] / rows[0][2]
    assert abs(wire_ratio - 1.0) < 0.02
    # Wire delay always grows with temperature.
    assert wire_delay_100um(temp_c=125.0) > wire_delay_100um(temp_c=25.0)
    # The net-delay fraction grows with voltage (corner pruning is hard).
    net_fracs = [w / (10 * g + w) for _, g, w in rows]
    assert net_fracs[-1] > 1.5 * net_fracs[0]
    # And the dominance rule flips between the two path archetypes.
    assert dominant_corner_for_path(frac_short_lowv) == "cw"
    assert dominant_corner_for_path(frac_long_highv) == "rcw"
