"""Fig 2 — old vs new aspects of timing closure.

Paper: a matrix contrasting the 'old' regime (1 mode, setup-hold, Cw
only, NLDM...) with the 'new' one (MCMM, LVF, dynamic IR, exploding
corners, noise closure, AVS...).

Reproduction: the matrix is encoded as data in repro.core.history; this
bench renders it and cross-checks that each 'new' entry is backed by an
implemented subsystem in this repository.
"""

from conftest import once

from repro.core.history import OLD_VS_NEW, render_old_vs_new

#: Map from Fig 2 'new' keywords to the module that implements them here.
BACKING = {
    "MCMM": "repro.sta.mcmm",
    "noise closure": "repro.sta.si",
    "aging/AVS": "repro.aging",
    "corner reduction": "repro.sta.mcmm",
    "LVF": "repro.liberty.lvf",
    "margin recovery": "repro.core.margins",
    "MinIA": "repro.place.minia",
    "multi-patterning": "repro.beol.sadp",
}


def test_fig02_old_vs_new(benchmark, record_table):
    text = once(benchmark, render_old_vs_new)
    backing_lines = ["", "implemented by:"]
    import importlib

    for keyword, module in BACKING.items():
        importlib.import_module(module)  # must exist
        backing_lines.append(f"  {keyword:<18} -> {module}")
    record_table("fig02_old_new", text + "\n".join(backing_lines))

    assert len(OLD_VS_NEW) >= 8
    for keyword in BACKING:
        assert any(keyword in new for _, new in OLD_VS_NEW), keyword
