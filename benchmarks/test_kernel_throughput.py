"""Multi-corner signoff throughput of the compiled vector kernel.

The paper's Section 2.3 corner super-explosion makes signoff cost scale
with corner count: the reference engine walks the full object graph once
per corner. The compiled kernel (:mod:`repro.sta.kernel`) flattens the
graph once and propagates *every* corner of a mode as lanes of one
batched numpy pass, so its per-level work is corner-count-invariant.

This benchmark times both engines over the same heterogeneous corner
sets at growing corner counts and records the wall-clock ratio; the
*asserted* speedup is the deterministic work ratio — scalar edge visits
the reference engines would perform (corners x expanded edges) over the
batched level ops the kernel actually issued — which a loaded CI runner
cannot flake. The oracle suite (``tests/sta/test_kernel_equivalence``)
separately pins that the batched answers are bit-compatible.
"""

import time

from conftest import once

from repro.beol.corners import conventional_corners
from repro.obs import format_table
from repro.beol.stack import default_stack
from repro.liberty.aocv import AocvTable
from repro.netlist.generators import aes_like
from repro.sta import Constraints
from repro.sta.analysis import STA
from repro.sta.kernel import CornerSpec, compile_kernel
from repro.sta.propagation import Derates

N_SBOXES = 12
SBOX_GATES = 60
PERIOD_PS = 1100.0
CORNER_COUNTS = (2, 4, 8)
MIN_WORK_RATIO = 10.0


def _scenario():
    design = aes_like(n_sboxes=N_SBOXES, sbox_gates=SBOX_GATES, seed=77)
    constraints = Constraints.single_clock(PERIOD_PS)
    constraints.input_delays = {
        f"in_{s}_{b}": 120.0 for s in range(N_SBOXES) for b in range(8)
    }
    constraints.max_transition = 300.0
    return design, constraints


def _corner_specs(lib_factory, stack):
    """Eight heterogeneous corners: three PVT libraries x BEOL corners
    x derate styles, the shape of a real signoff matrix."""
    corners = conventional_corners(stack)
    tt = lib_factory("tt", 0.80, 25.0)
    ss = lib_factory("ssg", 0.72, 125.0)
    ff = lib_factory("ffg", 0.88, -40.0)
    flat = Derates(data_late=1.05, clock_early=0.97)
    aocv = Derates(data_late=1.03,
                   aocv=AocvTable.from_reference_sigma(0.05),
                   aocv_distance=40.0)
    return [
        CornerSpec("tt_typ", tt, corners["typ"], 25.0),
        CornerSpec("ss_cw", ss, corners["cw"], 125.0, derates=flat),
        CornerSpec("ff_cb", ff, corners["cb"], -40.0, derates=flat),
        CornerSpec("tt_rcw", tt, corners["rcw"], 25.0, derates=aocv),
        CornerSpec("ss_rcw", ss, corners["rcw"], 125.0, derates=aocv),
        CornerSpec("ff_rcb", ff, corners["rcb"], -40.0),
        CornerSpec("ss_cb", ss, corners["cb"], 125.0),
        CornerSpec("tt_cw", tt, corners["cw"], 0.0, derates=flat),
    ]


def test_vector_kernel_multicorner_throughput(benchmark, lib_factory,
                                              record_table):
    def run():
        stack = default_stack()
        design, constraints = _scenario()
        specs = _corner_specs(lib_factory, stack)

        # Reference cost per corner: one full object-graph STA each.
        ref_wall = []
        for spec in specs:
            t0 = time.perf_counter()
            sta = STA(design, spec.library, constraints, stack=stack,
                      beol_corner=spec.beol_corner, temp_c=spec.temp_c,
                      derates=spec.derates)
            sta.report = sta.run()
            ref_wall.append(time.perf_counter() - t0)

        rows = []
        for count in CORNER_COUNTS:
            t0 = time.perf_counter()
            kernel = compile_kernel(design, constraints, specs[:count],
                                    stack=stack)
            t_compile = time.perf_counter() - t0
            t0 = time.perf_counter()
            kernel.run()
            t_batch = time.perf_counter() - t0
            rows.append((count, sum(ref_wall[:count]), t_compile,
                         t_batch, kernel.work_ratio(), kernel.stats()))
        return rows

    rows = once(benchmark, run)

    stats = rows[-1][-1]
    record_table("kernel_throughput", format_table(
        ["corners", "ref wall (s)", "compile (s)", "batch (s)",
         "wall x", "work x"],
        [[count, t_ref, t_compile, t_batch,
          f"{t_ref / max(t_compile + t_batch, 1e-9):.1f}x",
          f"{work:.1f}x"]
         for count, t_ref, t_compile, t_batch, work, _ in rows],
        title=(
            f"workload: aes_like {N_SBOXES}x{SBOX_GATES} "
            f"({stats['pins']} timing pins, {stats['levels']} levels, "
            f"{int(stats['net_expansions'] + stats['cell_expansions'])} "
            f"expanded edges) @ {PERIOD_PS:.0f} ps"
        ),
        notes=[
            "work x = scalar edge visits the reference engines would "
            "make (corners x expansions)",
            "over batched level ops issued; wall x is recorded, "
            f"work x is asserted (>= {MIN_WORK_RATIO:.0f}x).",
        ],
        precision=3,
    ))

    # The asserted throughput gate: >= 10x multi-corner signoff work
    # reduction at every batched corner count, deterministically.
    for count, _, _, _, work, row_stats in rows:
        assert work >= MIN_WORK_RATIO, (
            f"{count}-corner batch work ratio {work:.1f}x below "
            f"{MIN_WORK_RATIO:.0f}x"
        )
        # The batch really covered every corner lane...
        assert row_stats["corners"] == count
        # ...in one pass per level per edge kind, not one per corner.
        assert row_stats["batch_ops"] <= 2 * row_stats["levels"]
