"""Fig 4 — multi-input vs single-input switching arc delays.

Paper: NAND2 (28nm FDSOI) with an FO3 load; ramp on IN, IN1 offset swept.
MIS delay can be less than ~50% of SIS delay when the input is falling,
and more than ~10% greater when the input is rising; both at nominal and
80% of nominal VDD. The MIS speedup is critical to model in hold signoff.

Reproduction: the same experiment through the transistor-level simulator
(our 16nm-class NAND2, FO3 inverter load), both voltages, both
directions, with the offset sweep recorded.
"""

from conftest import once

from repro.mis.analysis import fig4_study


def test_fig04_mis_vs_sis(benchmark, record_table):
    rows = once(
        benchmark,
        lambda: fig4_study(
            voltages=[0.8, 0.64],
            offsets=[-30.0, -15.0, -5.0, 0.0, 5.0, 15.0, 30.0],
            dt=0.5,
        ),
    )

    lines = [
        f"{'vdd':>5} {'input':>6} {'SIS (ps)':>9} {'MIS (ps)':>9} "
        f"{'MIS/SIS':>8} {'role':>14}"
    ]
    for r in rows:
        role = "hold-critical" if r.hold_critical else "setup-critical"
        lines.append(
            f"{r.vdd:5.2f} {r.input_direction:>6} {r.sis_delay:9.2f} "
            f"{r.mis_delay:9.2f} {r.ratio:8.2f} {role:>14}"
        )
    lines.append("")
    lines.append("offset sweeps (offset: delay):")
    for r in rows:
        sweep = "  ".join(f"{o:+.0f}:{d:.1f}" for o, d in r.study.sweep)
        lines.append(f"  vdd={r.vdd} {r.input_direction}: {sweep}")
    record_table("fig04_mis_sis", "\n".join(lines))

    by_key = {(round(r.vdd, 2), r.input_direction): r for r in rows}
    # Paper shape at both voltages: falling-input MIS strongly faster...
    assert by_key[(0.8, "fall")].ratio < 0.6
    assert by_key[(0.64, "fall")].ratio < 0.7
    # ...and rising-input MIS slower.
    assert by_key[(0.8, "rise")].ratio > 1.0
    assert by_key[(0.64, "rise")].ratio > 1.0
