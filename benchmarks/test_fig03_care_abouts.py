"""Fig 3 — evolution of timing-closure care-abouts across nodes.

Paper: a node-by-node map of when each concern (noise, MCMM, AOCV, PBA,
multi-patterning, LVF, MIS, ...) entered the methodology.

Reproduction: the timeline is encoded as data; this bench renders it and
checks the paper's qualitative claims (concerns only accumulate; the
20nm inflection brings multi-patterning and MinIA; LVF and MIS are the
newest arrivals).
"""

from conftest import once

from repro.core.history import (
    CARE_ABOUTS,
    care_abouts_at,
    new_at,
    render_timeline,
)


def test_fig03_care_about_timeline(benchmark, record_table):
    text = once(benchmark, render_timeline)
    record_table("fig03_care_abouts", text)

    # Concerns accumulate monotonically across the node sequence.
    nodes = [90, 65, 45, 28, 20, 16, 10]
    counts = [len(care_abouts_at(n)) for n in nodes]
    assert counts == sorted(counts)

    # The 20nm inflection of Section 2.
    assert {"multi_patterning", "min_implant", "mol_beol_resistance"} <= \
        set(new_at(20))
    # The newest goal posts.
    assert {"lvf", "mis"} <= set(new_at(10))
    # Everything in the table is active at the newest node.
    assert set(care_abouts_at(10)) == set(CARE_ABOUTS)
