"""Section 3.4 — margin recovery with flexible flip-flop timing ([23]).

Paper: exploiting the setup/hold/c2q tradeoff 'recovers free margin... and
increases worst timing slack by up to 130 ps in a 65nm foundry library'
via sequential linear programming across corners.

Reproduction: the sequential-LP recovery over (a) hand-built unbalanced
stage rings at several imbalance levels and (b) stages extracted from a
real STA run, against the fixed-pushout baseline.
"""

from conftest import once

from repro.flops.model import default_flop_model
from repro.flops.recovery import Stage, recover_margin, stages_from_sta
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints


def test_sec34_margin_recovery(benchmark, lib, record_table):
    model = default_flop_model()

    def run():
        ring_results = []
        for imbalance in (0.0, 40.0, 80.0, 120.0):
            stages = [
                Stage("f1", "f2", 300.0 + imbalance),
                Stage("f2", "f3", 300.0 - imbalance / 2),
                Stage("f3", "f1", 300.0 - imbalance / 2),
            ]
            ring_results.append(
                (imbalance, recover_margin(stages, model, period=430.0))
            )
        design = random_logic(n_gates=200, n_levels=8, seed=5)
        sta = STA(design, lib, Constraints.single_clock(470.0))
        sta.report = sta.run()
        extracted = stages_from_sta(sta, sta.report, limit=30)
        sta_result = recover_margin(extracted, model, period=470.0) \
            if extracted else None
        return ring_results, sta_result

    ring_results, sta_result = once(benchmark, run)

    lines = [
        f"{'imbalance':>10} {'baseline WNS':>13} {'recovered WNS':>14} "
        f"{'gain (ps)':>10}"
    ]
    for imbalance, res in ring_results:
        lines.append(
            f"{imbalance:10.0f} {res.baseline_wns:13.1f} "
            f"{res.recovered_wns:14.1f} {res.improvement:10.1f}"
        )
    if sta_result is not None:
        lines += [
            "",
            f"STA-extracted stages: baseline {sta_result.baseline_wns:.1f}, "
            f"recovered {sta_result.recovered_wns:.1f} "
            f"(+{sta_result.improvement:.1f} ps)",
        ]
    record_table("sec34_margin_recovery", "\n".join(lines))

    # Paper shape: recovery never hurts, grows with imbalance, and reaches
    # tens of ps (the paper reports up to 130 ps).
    gains = [res.improvement for _, res in ring_results]
    assert all(g >= -1e-9 for g in gains)
    assert gains[-1] > gains[0]
    assert max(gains) > 20.0
