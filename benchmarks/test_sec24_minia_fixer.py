"""Section 2.4 — MinIA-aware gate sizing and placement ([24]).

Paper: [Kahng-Lee GLSVLSI'14] reduces minimum-implant-area violations by
up to 100% while satisfying timing/power constraints, vs contemporary
commercial P&R. Post-route Vt-swap is no longer placement-independent.

Reproduction: mixed-Vt placements at several swap intensities, the fixer
with and without a timing guard, fix rates and leakage/displacement cost.
"""

import random

from conftest import once

from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.netlist.transforms import swap_vt
from repro.place.minia import find_minia_violations, fix_minia_violations
from repro.place.rows import Placement


def mixed_design(lib, seed, fraction):
    d = random_logic(n_gates=200, n_levels=8, seed=seed)
    d.bind(lib)
    rng = random.Random(seed)
    for name in list(d.instances):
        inst = d.instances[name]
        if not lib.cell(inst.cell_name).is_sequential and \
                rng.random() < fraction:
            swap_vt(d, lib, name, rng.choice(["lvt", "hvt"]))
    return d


def test_sec24_minia_fix_rates(benchmark, lib, record_table):
    def run():
        rows = []
        for fraction in (0.15, 0.30, 0.45):
            d = mixed_design(lib, seed=13, fraction=fraction)
            placement = Placement.from_design(d, lib)
            placement.abut_all()
            before = len(find_minia_violations(placement))
            report = fix_minia_violations(d, lib, placement)
            rows.append((fraction, before, report))
        return rows

    rows = once(benchmark, run)
    lines = [
        f"{'swap frac':>9} {'violations':>11} {'after fix':>10} "
        f"{'fix rate':>9} {'swaps':>6} {'moves':>6} {'dLeak (uW)':>11}"
    ]
    for fraction, before, report in rows:
        lines.append(
            f"{fraction:9.2f} {before:>11} {report.violations_after:>10} "
            f"{report.fix_rate * 100:8.0f}% {report.swaps:>6} "
            f"{report.moves:>6} {report.leakage_delta * 1e3:11.3f}"
        )
    record_table("sec24_minia_fixer", "\n".join(lines))

    # Paper shape: violations substantially reduced (up to 100%).
    for fraction, before, report in rows:
        assert before > 0
        assert report.fix_rate >= 0.9
