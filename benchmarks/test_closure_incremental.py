"""Incremental closure retiming vs full rebuilds (Comment 1's ECO loop).

The paper's Fig 1 loop alternates repair and signoff; its Comment 1
argues the turnaround hinges on physically-aware ECO tooling that
re-times only what an edit disturbed. This benchmark drives the closure
loop over an AES-round-profile block (~2400 gates, 24 parallel S-box
slices) two ways:

* default fix order — the divergence check. Incremental and full-retime
  mode must produce *identical* trajectories and final WNS/TNS, while
  the incremental run serves the Vt-swap/sizing stages cone-limited.
* swap-only ECO closure (``fix_order=("vt_swap", "sizing")``) — the
  speedup measurement. Every retime is footprint-preserving, so the warm
  timer re-propagates only the edited cells' downstream cones.

Wall-clock is recorded; the *asserted* speedup is the deterministic
work ratio (timing pins propagated full-mode over incremental-mode),
which a loaded CI runner cannot flake.
"""

import time

import pytest
from conftest import RESULTS_DIR, once

from repro.core.closure import ClosureConfig, ClosureEngine
from repro.netlist.generators import aes_like
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.export import write_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.sta import Constraints

N_SBOXES = 24
SBOX_GATES = 90
PERIOD_PS = 1240.0


def _scenario():
    design = aes_like(n_sboxes=N_SBOXES, sbox_gates=SBOX_GATES, seed=2001)
    constraints = Constraints.single_clock(PERIOD_PS)
    constraints.input_delays = {
        f"in_{s}_{b}": 120.0 for s in range(N_SBOXES) for b in range(8)
    }
    # The ideal clock net drives every flop; its RC slew trips the
    # library transition limit without reflecting any data-path problem.
    constraints.max_transition = 300.0
    return design, constraints


def _closure(lib, timing, fix_order=None, engine="reference"):
    design, constraints = _scenario()
    config = ClosureConfig(
        max_iterations=25, budget_per_fix=6, timing=timing, engine=engine,
        **({"fix_order": fix_order} if fix_order else {}),
    )
    closure = ClosureEngine(design, lib, constraints)
    t0 = time.perf_counter()
    report = closure.run(config)
    return report, time.perf_counter() - t0


def _pins_propagated(report):
    """Deterministic timing work: pins re-propagated across retimes.

    A full retime (or rebuild) propagates every timing pin; an
    incremental retime propagates only its cone.
    """
    full = report.full_retimes * report.pin_count
    cones = sum(rec.cone_size for rec in report.iterations)
    return full + cones


@pytest.mark.parametrize("engine", ["reference", "vector"])
def test_incremental_closure_speedup_and_equivalence(benchmark, lib,
                                                     record_table, engine):
    def run():
        swap_order = ("vt_swap", "sizing")
        default_inc, t_default_inc = _closure(lib, "incremental",
                                              engine=engine)
        default_full, t_default_full = _closure(lib, "full", engine=engine)
        eco_inc, t_eco_inc = _closure(lib, "incremental", swap_order,
                                      engine=engine)
        eco_full, t_eco_full = _closure(lib, "full", swap_order,
                                        engine=engine)
        return (default_inc, t_default_inc, default_full, t_default_full,
                eco_inc, t_eco_inc, eco_full, t_eco_full)

    (default_inc, t_default_inc, default_full, t_default_full,
     eco_inc, t_eco_inc, eco_full, t_eco_full) = once(benchmark, run)

    eco_work = _pins_propagated(eco_full) / max(
        _pins_propagated(eco_inc), 1)
    lines = [
        f"workload: aes_like {N_SBOXES}x{SBOX_GATES} "
        f"(~2400 gates, {eco_inc.pin_count} timing pins) @ "
        f"{PERIOD_PS:.0f} ps, engine={engine}",
        f"{'closure run':<28} {'wall (s)':>9} {'retimes':>12} "
        f"{'cone':>7} {'final WNS':>10}",
    ]
    for label, rep, wall in (
        ("default order, incremental", default_inc, t_default_inc),
        ("default order, full", default_full, t_default_full),
        ("ECO swaps, incremental", eco_inc, t_eco_inc),
        ("ECO swaps, full", eco_full, t_eco_full),
    ):
        retimes = f"{rep.incremental_retimes}inc/{rep.full_retimes}full"
        lines.append(
            f"{label:<28} {wall:9.3f} {retimes:>12} "
            f"{rep.mean_cone_fraction:>6.1%} {rep.final_wns:>10.2f}"
        )
    lines += [
        "",
        f"ECO closure wall-clock speedup: "
        f"{t_eco_full / max(t_eco_inc, 1e-9):.2f}x "
        f"(work ratio {eco_work:.1f}x pins propagated)",
        f"default-order reuse ratio: {default_inc.reuse_ratio:.0%}, "
        f"mean cone {default_inc.mean_cone_fraction:.1%} of "
        f"{default_inc.pin_count} pins",
    ]
    record_table(f"closure_incremental_{engine}", "\n".join(lines))

    # Divergence gate: both modes must agree exactly, both workloads.
    for inc, full in ((default_inc, default_full), (eco_inc, eco_full)):
        assert inc.final_wns == full.final_wns
        assert inc.final.tns("setup") == full.final.tns("setup")
        assert inc.trajectory() == full.trajectory()
        assert inc.converged and full.converged

    # The default-order loop serves its swap stages cone-limited.
    assert default_inc.incremental_retimes > 0
    assert default_inc.mean_cone_fraction < 0.25

    # ECO closure is all-incremental, and the cone work is a small
    # slice of what full retimes re-propagate. (Wall-clock speedup is
    # recorded above, not asserted — CI runner load would flake it.)
    assert eco_inc.full_retimes == 0
    assert eco_inc.incremental_retimes > 0
    assert eco_inc.mean_cone_fraction < 0.25
    assert eco_work >= 2.0


def test_disabled_obs_overhead_under_two_percent(benchmark, lib,
                                                 record_table):
    """PR 5 gate: instrumentation left compiled in must stay ~free.

    Wall-clock A/B of "same workload with/without a tracer" flakes on a
    loaded runner, so the assertion is constructed deterministically:
    measure the *per-call* cost of the disabled hooks (a tight no-op
    loop), count how many hook calls the workload actually makes (from
    one traced run), and require

        calls x per-call-disabled-cost < 2% x workload wall.

    The traced run doubles as the trace artifact: its span tree is
    written to ``benchmarks/results/closure_incremental.trace.json``
    (Chrome-trace JSON; CI uploads it, ``repro trace summarize`` or
    Perfetto read it).
    """
    swap_order = ("vt_swap", "sizing")

    def run():
        # Workload wall with observability disabled (the default state).
        _, t_plain = _closure(lib, "incremental", swap_order)

        # One traced+metered run: counts the instrumentation sites the
        # workload passes through, and yields the exported artifact.
        tracer, registry = Tracer(), MetricsRegistry()
        with obs_tracing.use(tracer), obs_metrics.use(registry):
            report, _ = _closure(lib, "incremental", swap_order)

        # Per-call disabled cost, measured where the hot paths pay it:
        # an inactive module-level span()/inc() pair.
        n_loop = 200_000
        t0 = time.perf_counter()
        for _ in range(n_loop):
            obs_tracing.span("bench")
        t_span_call = (time.perf_counter() - t0) / n_loop
        t0 = time.perf_counter()
        for _ in range(n_loop):
            obs_metrics.inc("bench")
        t_inc_call = (time.perf_counter() - t0) / n_loop
        return report, tracer, registry, t_plain, t_span_call, t_inc_call

    report, tracer, registry, t_plain, t_span_call, t_inc_call = once(
        benchmark, run)

    spans = tracer.spans()
    n_span_calls = len(spans)
    n_metric_calls = sum(
        int(metric.value) if hasattr(metric, "value") else metric.total
        for metric in (registry.get(name) for name in registry.names())
    )
    overhead_s = n_span_calls * t_span_call + n_metric_calls * t_inc_call
    budget_s = 0.02 * t_plain

    trace_path = RESULTS_DIR / "closure_incremental.trace.json"
    write_chrome_trace(trace_path, spans, metadata={
        "workload": f"aes_like {N_SBOXES}x{SBOX_GATES} @ {PERIOD_PS} ps",
        "fix_order": "+".join(swap_order),
    })

    record_table("obs_overhead", "\n".join([
        f"workload wall (obs disabled):   {t_plain * 1e3:9.1f} ms",
        f"hook call sites traversed:      {n_span_calls} spans, "
        f"{n_metric_calls} metric updates",
        f"disabled span() call:           {t_span_call * 1e9:9.1f} ns",
        f"disabled inc() call:            {t_inc_call * 1e9:9.1f} ns",
        f"implied disabled overhead:      {overhead_s * 1e6:9.1f} us "
        f"({overhead_s / t_plain:.3%} of workload)",
        f"budget (2% of workload):        {budget_s * 1e6:9.1f} us",
        f"trace artifact:                 {trace_path.name} "
        f"({len(spans)} spans)",
    ]))

    assert n_span_calls > 0 and n_metric_calls > 0
    assert overhead_s < budget_s, (
        f"disabled obs hooks cost {overhead_s:.6f}s against a 2% budget "
        f"of {budget_s:.6f}s on a {t_plain:.3f}s workload"
    )
    # The artifact really is a loadable span tree.
    from repro.obs.export import summarize_file

    summary = summarize_file(trace_path)
    assert summary.phase("closure") is not None
    assert summary.phase("retime") is not None
