"""Fig 8 — the tightened-BEOL-corner pessimism metric.

Paper ([Chan-Dobre-Kahng ICCD'14]): alpha_j = 3 sigma_j / delta_d_j(CBC)
measures how pessimistic a conventional homogeneous BEOL corner is for a
path; paths with small delta-delay at both Cw and RCw (thresholds A_cw,
A_rcw) can be signed off at tightened corners, substantially reducing
violations and fix effort. Gate-dominated paths are Cw-dominated,
wire-dominated paths RCw-dominated, so both corners are needed.

Reproduction: alpha scatter over a mixed path population (short-wire
random logic plus deliberately long-wire chains), classification, and
the CBC-vs-TBC violation comparison.
"""

from conftest import once

from repro.core.tbc import alpha_analysis, classify_tbc_safe, tbc_signoff
from repro.netlist.generators import random_logic
from repro.sta import Constraints


def long_wire_design(seed=4):
    """Random logic with the columns stretched so nets are wire-heavy."""
    d = random_logic(n_gates=160, n_levels=8, seed=seed)
    for inst in d.instances.values():
        if inst.location is not None:
            inst.location = (inst.location[0] * 25.0, inst.location[1])
    return d


def test_fig08_alpha_scatter(benchmark, lib, record_table):
    def run():
        short = alpha_analysis(
            random_logic(n_gates=160, n_levels=8, seed=3),
            lib, Constraints.single_clock(600.0), n_endpoints=15,
        )
        long = alpha_analysis(
            long_wire_design(), lib,
            Constraints.single_clock(900.0), n_endpoints=15,
        )
        return short, long

    short, long = once(benchmark, run)

    lines = [
        f"{'population':>10} {'endpoint':<16} {'d_typ':>8} "
        f"{'rel dCw':>8} {'rel dRCw':>9} {'a_cw':>7} {'a_rcw':>7} {'dom':>4}"
    ]
    for label, stats in (("short", short), ("long", long)):
        for s in stats[:8]:
            lines.append(
                f"{label:>10} {str(s.endpoint):<16} {s.arrival_typ:8.1f} "
                f"{s.delta_cw / s.arrival_typ:8.3f} "
                f"{s.delta_rcw / s.arrival_typ:9.3f} "
                f"{min(s.alpha('cw'), 99.0):7.2f} "
                f"{min(s.alpha('rcw'), 99.0):7.2f} {s.dominant_corner:>4}"
            )
    safe, unsafe = classify_tbc_safe(short + long, a_cw=0.05, a_rcw=0.05)
    lines.append("")
    lines.append(f"TBC-safe paths at A_cw=A_rcw=5%: {len(safe)} of "
                 f"{len(safe) + len(unsafe)}")
    record_table("fig08_tbc_alpha", "\n".join(lines))

    # Paper shape: gate-dominated (short-wire) population Cw-dominated,
    # wire-heavy population RCw-dominated.
    short_dom = [s.dominant_corner for s in short]
    long_dom = [s.dominant_corner for s in long]
    assert short_dom.count("cw") > short_dom.count("rcw")
    assert long_dom.count("rcw") > 0
    # Homogeneous corners are pessimistic: average alpha < 1.
    alphas = [s.alpha(s.dominant_corner) for s in short + long]
    assert sum(alphas) / len(alphas) < 1.0


def test_fig08_tbc_signoff_reduces_violations(benchmark, lib, record_table):
    def run():
        return tbc_signoff(
            random_logic(n_gates=200, n_levels=8, seed=3),
            lib, Constraints.single_clock(505.0),
            tighten_factor=0.4, a_cw=0.05, a_rcw=0.05,
        )

    result = once(benchmark, run)
    record_table(
        "fig08_tbc_signoff",
        "\n".join([
            f"violations at conventional Cw corner: {result.violations_cbc}",
            f"violations with TBC methodology:      {result.violations_tbc}",
            f"TBC-safe paths: {result.tbc_safe_paths} / {result.total_paths}",
            f"violations removed: {result.violations_removed}",
        ]),
    )
    # Paper: TBC substantially reduces timing violations / fix effort.
    assert result.violations_tbc <= result.violations_cbc
    assert result.tbc_safe_paths > 0
