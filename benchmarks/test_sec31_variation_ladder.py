"""Section 3.1 — the variation-model accuracy ladder.

Paper: LVF-based analysis "has greater accuracy than AOCV/POCV with
respect to Monte Carlo SPICE results"; AOCV "essentially assumes that all
gates are identical and identically loaded"; flat margins model what
cannot be modeled. SSTA remains perpetually future.

Reproduction: predicted +3-sigma path-delay increments per model vs the
Monte Carlo truth over a mixed path population; mean absolute and signed
errors per model, plus the margin-recovery ladder of flat margins.
"""

from conftest import once

from repro.core.margins import MarginStackup, recovery_ladder
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints
from repro.variation.accuracy import ladder_comparison, true_path_deltas


def test_sec31_variation_model_ladder(benchmark, lib, record_table):
    def run():
        design = random_logic(n_gates=250, n_levels=9, seed=11)
        sta = STA(design, lib, Constraints.single_clock(520.0))
        sta.report = sta.run()
        paths = [
            p for p in (
                sta.worst_path(e)
                for e in sta.report.endpoints("setup")[:14]
                if e.kind == "setup"
            )
            if p.stage_count >= 2
        ]
        rows = ladder_comparison(sta, paths, n_samples=2500, seed=7)
        truth = true_path_deltas(sta, paths, n_samples=2500, seed=7)
        return rows, truth

    rows, truth = once(benchmark, run)

    lines = [
        f"MC truth: mean +3-sigma path increment "
        f"{sum(truth) / len(truth):.2f} ps over {len(truth)} paths",
        "",
        f"{'model':>6} {'mean |err| (ps)':>16} {'mean signed err':>16}",
    ]
    for model in ("flat", "aocv", "pocv", "lvf"):
        r = rows[model]
        lines.append(
            f"{model:>6} {r.mean_abs_error:16.2f} "
            f"{r.mean_signed_error:+16.2f}"
        )
    lines += ["", "flat-margin recovery ladder (Section 1.3 / footnote 5):"]
    for name, value in recovery_ladder(MarginStackup()):
        lines.append(f"  {name:<28} {value:6.1f} ps")
    record_table("sec31_variation_ladder", "\n".join(lines))

    # Paper shape: accuracy improves up the ladder.
    assert rows["lvf"].mean_abs_error < rows["pocv"].mean_abs_error
    assert rows["pocv"].mean_abs_error < rows["aocv"].mean_abs_error
