"""Fig 9 — power vs area across BTI aging signoff corners, with AVS.

Paper ([Chan-Chan-Kahng TCAS'14]): implementations of c5315, c7552, AES
and MPEG2 signed off at different assumed aging corners trade lifetime
average power against area: underestimating aging costs lifetime power
(AVS runs hotter), overestimating costs area (overdesign). Each plot
shows the 7-corner tradeoff per circuit.

Reproduction: scaled-down synthetic profiles of the same four circuits,
four assumed-aging corners each, closed by sizing against the aged
library, then an AVS-managed 10-year lifetime simulation. Values are
normalized to the middle corner as the paper normalizes to 100%.
"""

from conftest import once

from repro.aging.signoff import sweep_aging_corners
from repro.netlist.generators import (
    aes_like,
    c5315_like,
    c7552_like,
    mpeg2_like,
)
from repro.sta import Constraints

CIRCUITS = {
    "c5315": lambda: c5315_like(scale=0.04),
    "c7552": lambda: c7552_like(scale=0.03),
    "aes": lambda: aes_like(n_sboxes=4, sbox_gates=24),
    "mpeg2": lambda: mpeg2_like(lanes=2, bits=5, control_gates=60),
}
CORNERS_MV = (0.0, 20.0, 40.0, 60.0)
PERIODS = {"c5315": 420.0, "c7552": 400.0, "aes": 540.0, "mpeg2": 590.0}


def test_fig09_aging_corner_tradeoff(benchmark, record_table):
    def run():
        results = {}
        for name, factory in CIRCUITS.items():
            constraints = Constraints.single_clock(PERIODS[name])
            results[name] = sweep_aging_corners(
                design_factory=factory,
                constraints=constraints,
                corners_mv=CORNERS_MV,
                steps=2,
            )
        return results

    results = once(benchmark, run)

    lines = [
        f"{'circuit':>8} {'corner(mV)':>10} {'area %':>8} {'power %':>9} "
        f"{'V_final':>8} {'closed':>7}"
    ]
    for name, outcomes in results.items():
        ref = outcomes[len(outcomes) // 2]  # normalize to the middle corner
        for o in outcomes:
            lines.append(
                f"{name:>8} {o.assumed_shift_mv:10.0f} "
                f"{100.0 * o.area / ref.area:8.1f} "
                f"{100.0 * o.average_power / ref.average_power:9.1f} "
                f"{o.final_voltage:8.3f} {str(o.closed):>7}"
            )
    record_table("fig09_aging_corners", "\n".join(lines))

    for name, outcomes in results.items():
        assert all(o.closed for o in outcomes), name
        areas = [o.area for o in outcomes]
        # Paper shape: pessimistic corners cost area...
        assert areas[-1] >= areas[0], name
        # ...and the tradeoff is real: no corner minimizes both axes.
        best_area = min(outcomes, key=lambda o: o.area)
        best_power = min(outcomes, key=lambda o: o.average_power)
        assert (best_area.assumed_shift_mv != best_power.assumed_shift_mv
                or len(set(round(o.average_power, 6)
                           for o in outcomes)) == 1), name
