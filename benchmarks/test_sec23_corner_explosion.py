"""Section 2.3 — the corner super-explosion and its taming.

Paper: modes x voltage domains x temperatures x per-double-patterned-
layer BEOL corners explode combinatorially; the central team's corner
subset selection has enormous influence. Scenario pruning must never drop
a non-dominated view.

Reproduction: the counting exercise on our 8-layer stack, then a concrete
MCMM run with dominance-based pruning.
"""

from conftest import once

from repro.beol.corners import corner_explosion_count
from repro.beol.stack import default_stack
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic
from repro.sta import Constraints
from repro.sta.mcmm import Scenario, ScenarioSet


def test_sec23_corner_explosion_counts(benchmark, record_table):
    stack = default_stack()
    counts = once(
        benchmark,
        lambda: corner_explosion_count(
            n_modes=6, n_voltage_domains=4, stack=stack
        ),
    )
    lines = [f"{k:<28} {v:>14,}" for k, v in counts.items()]
    record_table("sec23_corner_explosion", "\n".join(lines))

    assert counts["scenarios_homogeneous"] == 6 * 4 * 3 * 5
    # Per-layer treatment explodes by two orders of magnitude (5 families
    # independently per multi-patterned layer on this 3-SADP-layer stack).
    assert counts["scenarios_per_layer"] > \
        100 * counts["scenarios_homogeneous"]


def test_sec23_scenario_pruning(benchmark, record_table):
    def run():
        c = Constraints.single_clock(520.0)
        c.input_delays = {f"in{i}": 60.0 for i in range(16)}
        scenarios = ScenarioSet([
            Scenario("tt_typ", make_library(LibraryCondition()), c),
            Scenario(
                "ssg_cw",
                make_library(LibraryCondition(process="ssg", vdd=0.72,
                                              temp_c=125.0)),
                c, beol_corner_name="cw", temp_c=125.0,
            ),
            Scenario(
                "ss_cw",
                make_library(LibraryCondition(process="ss", vdd=0.72,
                                              temp_c=125.0)),
                c, beol_corner_name="cw", temp_c=125.0,
            ),
        ])
        design = random_logic(n_inputs=16, n_outputs=16, n_gates=150,
                              n_levels=6, seed=9)
        reduced, dropped = scenarios.prune(design, guard_margin=2.0)
        result = scenarios.run(design)
        return reduced, dropped, result

    reduced, dropped, result = once(benchmark, run)
    lines = ["scenario WNS (setup):"]
    for name, report in result.reports.items():
        lines.append(f"  {name:<10} {report.wns('setup'):9.2f} ps")
    lines.append(f"dropped as dominated: {dropped}")
    lines.append(f"kept: {[s.name for s in reduced.scenarios]}")
    record_table("sec23_scenario_pruning", "\n".join(lines))

    # tt and ssg are dominated by the full ss corner on this design.
    assert "ss_cw" in [s.name for s in reduced.scenarios]
    assert "tt_typ" in dropped
    # Safety: the kept set preserves the merged WNS.
    kept_wns = min(result.reports[s.name].wns("setup")
                   for s in reduced.scenarios)
    assert kept_wns == result.merged_wns("setup")
