"""Fig 1 — the iterative timing-closure loop.

Paper: five STA / breakdown / manual-fix iterations, simplest fixes first
(Vt-swap, sizing, buffering, NDR, useful skew); top-level timing is
expected to improve after each iteration.

Reproduction: run the executable closure loop on a constrained synthetic
block and report the per-iteration WNS/TNS/violation trajectory and the
fix mix.
"""

from conftest import once

from repro.core.closure import ClosureConfig, ClosureEngine
from repro.netlist.generators import random_logic
from repro.sta import Constraints


def test_fig01_closure_trajectory(benchmark, lib, record_table):
    def run():
        design = random_logic(n_gates=300, n_levels=10, seed=3)
        constraints = Constraints.single_clock(520.0)
        constraints.input_delays = {f"in{i}": 60.0 for i in range(32)}
        engine = ClosureEngine(design, lib, constraints)
        return engine.run(ClosureConfig(max_iterations=8, budget_per_fix=24))

    result = once(benchmark, run)

    fix_mix = {}
    for rec in result.iterations:
        for kind, count in rec.edits.items():
            fix_mix[kind] = fix_mix.get(kind, 0) + count
    lines = [result.render(), "", "fix mix (total edits by engine):"]
    for kind, count in sorted(fix_mix.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {kind:<16} {count}")
    record_table("fig01_closure_loop", "\n".join(lines))

    # Paper shape: closes within the schedule, improving along the way.
    assert result.converged
    wns = result.trajectory("wns_setup")
    assert wns[-1] > wns[0]
    assert len(result.iterations) <= 8
    # The recommended ordering is exercised: cheap fixes dominate.
    assert fix_mix.get("vt_swap", 0) > 0
    assert fix_mix.get("sizing", 0) > 0
