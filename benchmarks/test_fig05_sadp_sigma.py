"""Fig 5 — SADP patterning cases and their CD variance.

Paper: in SID-type SADP, a wire's CD sigma depends on which process edges
(mandrel / spacer / block) define it; Fig 5(c) lists the four variance
formulas. Line-end cuts force extensions and floating fill that add
unpredictable capacitance.

Reproduction: the four formulas evaluated over a process-sigma set, a
segment-population study showing the multi-modal sigma distribution, and
the propagation of CD sigma into relative R/C sigmas.
"""

from conftest import once

from repro.beol.sadp import (
    PatterningCase,
    SadpSigmas,
    all_case_sigmas,
    segment_population_rc_sigmas,
)


def test_fig05_sadp_case_sigmas(benchmark, record_table):
    sigmas = SadpSigmas(mandrel=1.0, spacer=0.8, block=1.5,
                        mandrel_block_overlay=1.2)

    def run():
        table = all_case_sigmas(sigmas)
        population = segment_population_rc_sigmas(
            400, sigmas, nominal_width_nm=20.0, seed=7, cut_fraction=0.3
        )
        return table, population

    table, population = once(benchmark, run)

    lines = [f"{'case':>6} {'edges':>18} {'sigma_CD (nm)':>14}"]
    edge_desc = {
        PatterningCase.MANDREL_MANDREL: "mandrel/mandrel",
        PatterningCase.SPACER_SPACER: "spacer/spacer",
        PatterningCase.MANDREL_BLOCK: "mandrel/block",
        PatterningCase.SPACER_BLOCK: "spacer/block",
    }
    for case in PatterningCase:
        lines.append(
            f"{case.value:>6} {edge_desc[case]:>18} {table[case]:14.3f}"
        )
    by_case = {}
    for seg in population:
        by_case.setdefault(seg["case"], []).append(seg["r_rel_sigma"])
    lines.append("")
    lines.append("track population (400 segments, 30% cut):")
    for case, values in sorted(by_case.items()):
        lines.append(
            f"  case {case:>3}: {len(values):4d} segments, "
            f"rel R sigma {values[0] * 100:.2f}%"
        )
    record_table("fig05_sadp_sigma", "\n".join(lines))

    # Fig 5(c) ordering for this sigma set: block-edge cases are worst,
    # mandrel-defined wires best.
    assert table[PatterningCase.MANDREL_MANDREL] == min(table.values())
    assert table[PatterningCase.SPACER_BLOCK] == max(table.values())
    # The population really is multi-modal (distinct sigma levels).
    assert len({round(v[0], 4) for v in by_case.values()}) == len(by_case)
