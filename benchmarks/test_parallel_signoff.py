"""Parallel signoff over the Section 2.3 corner-explosion workload.

The corner super-explosion makes signoff turnaround the product of
scenario count and per-scenario STA cost. The scheduler attacks both:
scenarios fan out over a worker pool, and a content-hash cache makes
re-signoff after *no* change (or a constraint-only change that misses
some scenarios) skip recomputation entirely. This benchmark runs the
standard nine-view signoff matrix three ways — serial, parallel, warm
cache — asserts the reports are byte-identical, and records the wall
times.
"""

import time

import pytest
from conftest import once

from repro.netlist.generators import random_logic
from repro.sta import Constraints
from repro.sta.mcmm import standard_scenario_set
from repro.sta.scheduler import ScenarioResultCache, SignoffScheduler


def _full_text(outcome) -> str:
    return "\n".join(
        outcome.reports[name].render_full() for name in sorted(outcome.reports)
    )


@pytest.mark.parametrize("engine", ["reference", "vector"])
def test_parallel_signoff_speedup_and_cache(benchmark, lib_factory,
                                            record_table, engine):
    def run():
        constraints = Constraints.single_clock(520.0)
        constraints.input_delays = {f"in{i}": 60.0 for i in range(16)}
        scenario_set = standard_scenario_set(constraints, lib_factory)
        design = random_logic(n_inputs=16, n_outputs=16, n_gates=150,
                              n_levels=6, seed=9)

        # The serial baseline gets its own (cold) cache so both renders
        # carry the same cache footer: the byte-for-byte determinism
        # assertion below isolates the fan-out, not the cache attach.
        serial = SignoffScheduler(scenario_set.scenarios,
                                  stack=scenario_set.stack, jobs=1,
                                  cache=ScenarioResultCache(),
                                  engine=engine)
        t0 = time.perf_counter()
        cold_serial = serial.signoff(design)
        t_serial = time.perf_counter() - t0

        cache = ScenarioResultCache()
        parallel = SignoffScheduler(scenario_set.scenarios,
                                    stack=scenario_set.stack, jobs=4,
                                    executor="thread", cache=cache,
                                    engine=engine)
        t0 = time.perf_counter()
        cold_parallel = parallel.signoff(design)
        t_parallel = time.perf_counter() - t0

        t0 = time.perf_counter()
        warm = parallel.signoff(design)
        t_warm = time.perf_counter() - t0
        return (cold_serial, t_serial, cold_parallel, t_parallel, warm,
                t_warm, cache, len(scenario_set.scenarios))

    (cold_serial, t_serial, cold_parallel, t_parallel, warm, t_warm,
     cache, n_scenarios) = once(benchmark, run)

    lines = [
        f"workload: {n_scenarios}-view standard signoff matrix, "
        f"150-gate block, engine={engine}",
        f"{'pass':<22} {'wall (s)':>9} {'recomputed':>11} {'hits':>6}",
        f"{'serial cold (jobs=1)':<22} {t_serial:9.3f} "
        f"{len(cold_serial.recomputed):>11} {len(cold_serial.cache_hits):>6}",
        f"{'parallel cold (jobs=4)':<22} {t_parallel:9.3f} "
        f"{len(cold_parallel.recomputed):>11} "
        f"{len(cold_parallel.cache_hits):>6}",
        f"{'parallel warm cache':<22} {t_warm:9.3f} "
        f"{len(warm.recomputed):>11} {len(warm.cache_hits):>6}",
        "",
        f"warm-cache speedup vs serial cold: {t_serial / max(t_warm, 1e-9):.1f}x",
        f"cache: {cache.stats.hits} hits / {cache.stats.misses} misses, "
        f"{cache.stats.evaluations} evaluations",
    ]
    record_table(f"parallel_signoff_{engine}", "\n".join(lines))

    # Determinism: parallel fan-out changes nothing, byte for byte.
    assert _full_text(cold_serial) == _full_text(cold_parallel)
    assert cold_serial.render() == cold_parallel.render()
    # Warm cache: zero scenarios recomputed, identical reports. The
    # recomputation counters are the assertion; wall times are recorded
    # above but not asserted on (a loaded single-core runner can make
    # any timing comparison flake without a code defect).
    assert warm.recomputed == []
    assert len(warm.cache_hits) == n_scenarios
    assert _full_text(warm) == _full_text(cold_serial)
