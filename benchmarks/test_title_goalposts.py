"""The title claim — "new game, new goal posts" (and footnote 7).

Paper: the game is new (slacks at a confidence tail, approximate
statistical analysis) but the goal post is old (absolute slack at a
corner, not yield loss), partly because "sigmas are unstable, and
committed sigmas are difficult to obtain from the silicon provider".

Reproduction: sweep the clock period and judge the same design by both
goal posts — flat-derated corner WNS >= 0 (old) vs parametric yield >=
99% from SSTA (new) — including the +/-20% sigma-error band that makes
the new post wobble.
"""

from conftest import once

from repro.core.yieldmodel import goalpost_sweep, minimum_passing_period
from repro.netlist.generators import random_logic
from repro.sta import Constraints


def test_title_old_vs_new_goalposts(benchmark, lib, record_table):
    def run():
        design = random_logic(n_gates=200, n_levels=8, seed=11)

        def mk(period):
            c = Constraints.single_clock(period)
            c.input_delays = {f"in{i}": 60.0 for i in range(32)}
            return c

        periods = [480.0, 500.0, 520.0, 540.0, 560.0, 580.0]
        return goalpost_sweep(design, lib, mk, periods)

    comparisons = once(benchmark, run)

    lines = [
        f"{'period':>7} {'corner WNS':>11} {'old post':>9} "
        f"{'yield':>8} {'sigma +/-20%':>18} {'new post':>9}"
    ]
    for c in comparisons:
        lines.append(
            f"{c.period:7.0f} {c.corner_wns:11.2f} "
            f"{'PASS' if c.corner_passes else 'fail':>9} "
            f"{c.yield_estimate:8.4f} "
            f"[{c.yield_low_sigma:7.4f},{c.yield_high_sigma:7.4f}] "
            f"{'PASS' if c.yield_passes else 'fail':>9}"
        )
    corner_period = minimum_passing_period(comparisons, "corner")
    yield_period = minimum_passing_period(comparisons, "yield")
    lines += [
        "",
        f"old goal post signs off at  {corner_period:.0f} ps",
        f"new goal post signs off at  {yield_period:.0f} ps "
        f"({100 * (corner_period / yield_period - 1):.1f}% frequency left "
        "on the table by the old post)",
    ]
    wobble = [
        c for c in comparisons
        if c.yield_low_sigma < 0.99 <= c.yield_high_sigma
    ]
    if wobble:
        lines.append(
            f"sigma instability: at {wobble[0].period:.0f} ps a 20% sigma "
            "error flips the yield verdict — footnote 7's reason the old "
            "post survives"
        )
    record_table("title_goalposts", "\n".join(lines))

    # Paper shape: the statistical goal post is no more conservative, and
    # the sigma band actually straddles the threshold somewhere.
    assert yield_period <= corner_period
    assert wobble, "expected a period where sigma error flips the verdict"
