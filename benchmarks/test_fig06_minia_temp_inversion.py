"""Fig 6 — (a) the MinIA violation picture; (b) temperature inversion.

Paper: (a) a narrow Vt2 cell sandwiched between Vt1 cells violates the
minimum implant width, coupling Vt-swap to placement; (b) below the
temperature-reversal voltage V_tr a gate is slower cold, above it slower
hot, so signoff near V_tr must check both temperature corners.

Reproduction: (a) the exact Fig 6(a) row built and checked, then a
mixed-Vt block swept through the fixer; (b) transistor-level inverter
delay vs supply at -30C and 125C, locating V_tr.
"""

from conftest import once

from repro.place.minia import find_minia_violations
from repro.place.rows import PlacedCell, Placement, Row
from repro.spice.testbench import inverter_delay


def test_fig06a_minia_violation(benchmark, record_table):
    def run():
        row = Row(index=0, cells=[
            PlacedCell("c1", 0.0, 2.0, "svt"),
            PlacedCell("c2", 2.0, 0.5, "hvt"),  # the narrow Vt2 island
            PlacedCell("c3", 2.5, 2.0, "svt"),
            PlacedCell("c4", 4.5, 2.0, "svt"),
        ])
        return find_minia_violations(Placement({0: row}), min_width=1.0)

    violations = once(benchmark, run)
    lines = ["Fig 6(a) row: [c1 svt][c2 hvt 0.5um][c3 svt][c4 svt]",
             f"min implant width: 1.0 um",
             f"violations: {[(v.cells, v.width) for v in violations]}"]
    record_table("fig06a_minia", "\n".join(lines))

    assert len(violations) == 1
    assert violations[0].cells == ("c2",)


def test_fig06b_temperature_inversion(benchmark, record_table):
    voltages = (0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

    def run():
        rows = []
        for v in voltages:
            cold = inverter_delay(vdd=v, temp_c=-30.0).delay
            hot = inverter_delay(vdd=v, temp_c=125.0).delay
            rows.append((v, cold, hot))
        return rows

    rows = once(benchmark, run)
    lines = [f"{'vdd':>5} {'-30C (ps)':>10} {'125C (ps)':>10} {'slower':>8}"]
    for v, cold, hot in rows:
        lines.append(
            f"{v:5.2f} {cold:10.2f} {hot:10.2f} "
            f"{'cold' if cold > hot else 'hot':>8}"
        )
    crossover = next(
        (v for (v, c1, h1), (v2, c2, h2) in zip(rows, rows[1:])
         if (c1 > h1) and (c2 <= h2) for v in (v2,)),
        None,
    )
    lines.append(f"temperature-reversal point V_tr between "
                 f"{max(v for v, c, h in rows if c > h):.2f} and "
                 f"{min(v for v, c, h in rows if c <= h):.2f} V")
    record_table("fig06b_temp_inversion", "\n".join(lines))

    # Paper shape: cold-slower at low VDD, hot-slower at high VDD.
    assert rows[0][1] > rows[0][2]  # 0.5 V: cold slower
    assert rows[-1][1] < rows[-1][2]  # 1.0 V: hot slower
