"""Throughput and backpressure envelope of the signoff daemon.

Two phases of the serving story, each recorded as a table:

- **Sustained** — cache-hot timing queries from concurrent clients
  against a healthy daemon: requests/second and latency percentiles.
  This is the regime the daemon exists for (the "ten-minute what-if"
  of the paper's closure loop shrunk to a socket roundtrip).
- **Overload** — a deliberately starved daemon (one slowed worker, a
  four-deep admission queue) flooded with pipelined requests: every
  request must come back answered, either served or shed with the
  structured retryable ``E_OVERLOADED``, and the shed rate is the
  recorded number. Backpressure that loses or hangs requests would
  fail the assertions, not just skew the table.
"""

import socket
import statistics
import threading
import time

from conftest import once

from repro.netlist.generators import random_logic
from repro.serve import DaemonConfig, TimingClient, TimingDaemon, protocol
from repro.sta import Constraints
from repro.sta.mcmm import Scenario
from repro.testing import Fault, FaultInjector, FaultPlan

SUSTAIN_CLIENTS = 8
SUSTAIN_SECONDS = 2.0
FLOOD_CLIENTS = 6
FLOOD_PIPELINE = 10


def _setup(lib, lib_factory):
    constraints = Constraints.single_clock(520.0)
    constraints.input_delays = {f"in{i}": 60.0 for i in range(8)}
    design = random_logic(n_inputs=8, n_outputs=8, n_gates=40,
                          n_levels=4, seed=9)
    scenarios = [
        Scenario("tt_typ", lib, constraints),
        Scenario("ss_cw", lib_factory("ss", 0.72, 125.0), constraints,
                 beol_corner_name="cw", temp_c=125.0),
    ]
    return design, scenarios


def _sustained(design, scenarios):
    daemon = TimingDaemon(
        design, scenarios,
        config=DaemonConfig(workers=4, queue_limit=64),
    )
    port = daemon.start()
    try:
        with TimingClient("127.0.0.1", port) as client:
            client.request("timing")  # fill the result cache
        latencies_s, lock = [], threading.Lock()
        t_end = time.perf_counter() + SUSTAIN_SECONDS

        def pump():
            mine = []
            with TimingClient("127.0.0.1", port) as client:
                while time.perf_counter() < t_end:
                    t0 = time.perf_counter()
                    result = client.request("timing")
                    mine.append(time.perf_counter() - t0)
                    assert set(result["sources"].values()) == {"cache"}
            with lock:
                latencies_s.extend(mine)

        threads = [threading.Thread(target=pump)
                   for _ in range(SUSTAIN_CLIENTS)]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        elapsed = time.perf_counter() - t0
        stats = daemon.admission.stats()
        return {
            "requests": len(latencies_s),
            "elapsed_s": elapsed,
            "rps": len(latencies_s) / elapsed,
            "p50_ms": statistics.median(latencies_s) * 1e3,
            "p95_ms": sorted(latencies_s)[
                int(0.95 * (len(latencies_s) - 1))] * 1e3,
            "shed": stats["shed"],
        }
    finally:
        daemon.stop()


def _flood_one(port, count):
    """Pipeline ``count`` timing requests on one raw connection."""
    frames = b"".join(
        protocol.encode({"v": protocol.PROTOCOL_VERSION, "id": f"f-{i}",
                         "op": "timing", "params": {}})
        for i in range(count)
    )
    outcomes = []
    with socket.create_connection(("127.0.0.1", port), timeout=60.0) as s:
        s.sendall(frames)
        buffer = b""
        while len(outcomes) < count:
            chunk = s.recv(65536)
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                response = protocol.decode_line(line)
                if response.get("ok"):
                    outcomes.append("ok")
                else:
                    error = response["error"]
                    outcomes.append(error["code"]
                                    if error.get("retryable")
                                    else f"!{error['code']}")
    return outcomes


def _overload(design, scenarios):
    # One worker that dawdles 50 ms per scenario, a four-deep queue:
    # the flood must overrun admission, never the daemon.
    injector = FaultInjector(FaultPlan.of(
        Fault("hang", task="*", seconds=0.05)
    ))
    daemon = TimingDaemon(
        design, scenarios,
        config=DaemonConfig(workers=1, queue_limit=4),
        fault_injector=injector,
    )
    port = daemon.start()
    try:
        results, lock = [], threading.Lock()

        def flood():
            outcomes = _flood_one(port, FLOOD_PIPELINE)
            with lock:
                results.extend(outcomes)

        threads = [threading.Thread(target=flood)
                   for _ in range(FLOOD_CLIENTS)]
        t0 = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        elapsed = time.perf_counter() - t0
        stats = daemon.admission.stats()
        return {
            "sent": FLOOD_CLIENTS * FLOOD_PIPELINE,
            "answered": len(results),
            "ok": results.count("ok"),
            "shed": results.count("E_OVERLOADED"),
            "other": [r for r in results
                      if r not in ("ok", "E_OVERLOADED")],
            "elapsed_s": elapsed,
            "admission": stats,
        }
    finally:
        daemon.stop()


def test_serve_throughput_and_shed_rate(benchmark, lib, lib_factory,
                                        record_table):
    def run():
        design, scenarios = _setup(lib, lib_factory)
        return (_sustained(design, scenarios),
                _overload(design, scenarios))

    sustained, overload = once(benchmark, run)

    shed_rate = overload["shed"] / overload["sent"]
    lines = [
        "workload: 40-gate block, 2 scenarios, cache-hot timing queries",
        "",
        f"sustained ({SUSTAIN_CLIENTS} clients, {SUSTAIN_SECONDS:.0f} s, "
        "workers=4, queue=64):",
        f"  requests        {sustained['requests']:>8}",
        f"  throughput      {sustained['rps']:>8.0f} req/s",
        f"  latency p50     {sustained['p50_ms']:>8.2f} ms",
        f"  latency p95     {sustained['p95_ms']:>8.2f} ms",
        f"  shed            {sustained['shed']:>8}",
        "",
        f"overload ({FLOOD_CLIENTS} clients x {FLOOD_PIPELINE} pipelined, "
        "workers=1 slowed 50 ms/scenario, queue=4):",
        f"  sent            {overload['sent']:>8}",
        f"  served ok       {overload['ok']:>8}",
        f"  shed            {overload['shed']:>8}  "
        f"({shed_rate:.0%} shed rate)",
        f"  wall            {overload['elapsed_s']:>8.2f} s",
    ]
    record_table("serve_throughput", "\n".join(lines))

    # Sustained phase: every client pumped cache hits, nothing was shed.
    assert sustained["requests"] > 0
    assert sustained["shed"] == 0
    # Overload phase: every single request came back — served or shed
    # with the structured retryable error, no third outcome, no hang.
    assert overload["answered"] == overload["sent"]
    assert overload["ok"] + overload["shed"] == overload["sent"]
    assert overload["other"] == []
    assert overload["ok"] >= 1
    assert overload["shed"] >= 1
    assert overload["admission"]["shed"] == overload["shed"]
