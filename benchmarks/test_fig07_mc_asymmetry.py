"""Fig 7 — asymmetry of the Monte Carlo path-delay distribution.

Paper: under local process variation the path-delay distribution is
non-Gaussian with a 'setup long tail' — the late side is fatter than the
early side — motivating LVF's separate sigma values for late (setup) and
early (hold) analyses.

Reproduction at two levels:
1. transistor-level MC of an inverter chain (the skew *emerges* from
   delay's convexity in threshold voltage);
2. the library's LVF tables, whose late/early sigma ratio encodes the
   same asymmetry for STA consumption.
"""

import numpy as np
from conftest import once

from repro.liberty.lvf import sigma_asymmetry
from repro.variation.montecarlo import path_delay_statistics, spice_chain_mc


def test_fig07_mc_asymmetry(benchmark, lib, record_table):
    def run():
        samples = spice_chain_mc(n_stages=5, n_samples=300, seed=11,
                                 sigma_vt=0.06, dt=1.0)
        return samples, path_delay_statistics(samples)

    samples, stats = once(benchmark, run)
    # Tail asymmetry at percentiles resolvable with 300 samples.
    med = float(np.median(samples))
    tail_late = float(np.percentile(samples, 95.0)) - med
    tail_early = med - float(np.percentile(samples, 5.0))
    tail_ratio = tail_late / tail_early

    # Text histogram of the distribution.
    lo, hi = samples.min(), samples.max()
    bins = 12
    counts, edges = np.histogram(samples, bins=bins)
    lines = ["transistor-level inverter-chain MC (250 samples):"]
    peak = counts.max()
    for i in range(bins):
        bar = "#" * int(36 * counts[i] / peak)
        lines.append(f"  [{edges[i]:7.1f}, {edges[i+1]:7.1f}) "
                     f"{counts[i]:4d} {bar}")
    lines += [
        "",
        f"mean {stats.mean:.2f} ps, sigma {stats.sigma:.2f} ps",
        f"skewness              {stats.skewness:+.3f}  (paper: positive)",
        f"p95 tail (late side)  {tail_late:.2f} ps",
        f"p5 tail (early side)  {tail_early:.2f} ps",
        f"late/early tail ratio {tail_ratio:.2f}   (paper: > 1)",
        "",
        "library LVF encoding of the same asymmetry:",
    ]
    for cell_name in ("INV_X1_SVT", "NAND2_X1_SVT", "NOR2_X1_HVT"):
        ratio = sigma_asymmetry(lib.cell(cell_name))
        lines.append(f"  {cell_name:<14} sigma_late/sigma_early = {ratio:.2f}")
    record_table("fig07_mc_asymmetry", "\n".join(lines))

    # Paper shape: right-skewed, late tail fatter.
    assert stats.skewness > 0.0
    assert tail_ratio > 1.02
    assert sigma_asymmetry(lib.cell("INV_X1_SVT")) > 1.2
