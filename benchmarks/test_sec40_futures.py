"""Section 4 — the paper's "futures", implemented and measured.

Paper: (1) margin recovery gains value; (2) BEOL/MOL first-class
citizenship ("statistical SPEF or similar will be revived"); (3) LVF
replaces relative-margin OCV; (4) AVS/PVS adaptivity with monitor
circuits; (5) 3DIC cross-die analysis. Plus Comment 1's ECO tooling
(here: incremental timing).

Each future gets a measured row in this bench.
"""

import time

from conftest import once

from repro.aging.monitors import (
    design_dependent_ro,
    evaluate_tracking,
    generic_ro,
)
from repro.beol.stack import default_stack
from repro.core.threedic import (
    apply_tsv_parasitics,
    cross_die_corner_matrix,
    partition_by_y,
    worst_off_diagonal_penalty,
)
from repro.cts.tree import synthesize_clock_tree
from repro.liberty import LibraryCondition
from repro.netlist.generators import random_logic
from repro.netlist.transforms import swap_vt, upsize
from repro.parasitics.statistical import StatisticalAnnotator
from repro.sta import STA, Constraints, IncrementalTimer
from repro.variation.ssta import run_ssta


def test_sec40_ssta_and_statistical_spef(benchmark, lib, record_table):
    """Future (3)(i)+(ii): SSTA with statistical interconnect."""

    def run():
        # Stretch the placement so nets are wire-heavy: BEOL variation
        # only matters when wires carry real delay (Section 2.3's point).
        design = random_logic(n_gates=200, n_levels=8, seed=11)
        for inst in design.instances.values():
            if inst.location is not None:
                inst.location = (inst.location[0] * 25.0, inst.location[1])
        sta = STA(design, lib, Constraints.single_clock(2500.0))
        sta.report = sta.run()
        annotator = StatisticalAnnotator(sta.parasitics, default_stack())
        base = run_ssta(sta, global_sigma_frac=0.3)
        wired = run_ssta(sta, global_sigma_frac=0.3,
                         wire_annotator=annotator)
        return sta, base, wired

    sta, base, wired = once(benchmark, run)
    ep = min(base.endpoint_slacks,
             key=lambda e: base.endpoint_slacks[e].mean)
    lines = [
        "block-based SSTA (Clark max, LVF sigmas):",
        f"  worst endpoint {ep}:",
        f"    deterministic slack  "
        f"{sta.report.slack_of(ep, 'setup'):8.2f} ps",
        f"    SSTA mean / sigma    {base.endpoint_slacks[ep].mean:8.2f} / "
        f"{base.endpoint_slacks[ep].sigma:.2f} ps",
        f"    slack at 3 sigma     {base.slack_at_sigma(ep, 3.0):8.2f} ps",
        "",
        "statistical SPEF revival (wire sigmas from SADP patterning):",
        f"    FEOL-only sigma      {base.endpoint_slacks[ep].sigma:8.3f} ps",
        f"    +BEOL wire sigma     {wired.endpoint_slacks[ep].sigma:8.3f} ps",
    ]
    record_table("sec40_ssta_sspef", "\n".join(lines))
    assert wired.endpoint_slacks[ep].sigma >= base.endpoint_slacks[ep].sigma


def test_sec40_monitor_adaptivity(benchmark, lib, record_table):
    """Future (4): monitor-driven adaptivity — DDRO vs generic RO."""

    def run():
        import random as _random

        design = random_logic(n_gates=150, n_levels=8, seed=5)
        design.bind(lib)
        rng = _random.Random(1)
        for name in list(design.instances):
            inst = design.instances[name]
            if not lib.cell(inst.cell_name).is_sequential and \
                    rng.random() < 0.5:
                swap_vt(design, lib, name, "hvt")
        constraints = Constraints.single_clock(600.0)
        sta = STA(design, lib, constraints)
        sta.report = sta.run()
        conditions = [
            LibraryCondition(vdd=0.65),
            LibraryCondition(vdd=0.72, temp_c=125.0, process="ss"),
            LibraryCondition(vdd=0.9, temp_c=-30.0, process="ff"),
            LibraryCondition(vt_shift_aging=0.04, temp_c=105.0),
        ]
        ddro = design_dependent_ro(sta, sta.report)
        rows = {}
        for monitor in (generic_ro(), ddro):
            rows[monitor.name] = evaluate_tracking(
                monitor, design, constraints, conditions
            )
        return rows

    rows = once(benchmark, run)
    lines = [f"{'monitor':<22} {'mean err':>9} {'max err':>9}"]
    for name, tr in rows.items():
        lines.append(
            f"{name:<22} {tr.mean_tracking_error:9.4f} "
            f"{tr.max_tracking_error:9.4f}"
        )
    record_table("sec40_monitors", "\n".join(lines))
    generic = rows["generic_inv15_svt"]
    ddro = rows["ddro"]
    assert ddro.mean_tracking_error < 0.5 * generic.mean_tracking_error


def test_sec40_3dic_cross_die(benchmark, lib, record_table):
    """Future (5): variation-aware analysis across stacked dies."""

    def run():
        design = random_logic(n_gates=150, n_levels=8, seed=5)
        design.bind(lib)
        synthesize_clock_tree(design, lib)
        assignment = partition_by_y(design)
        n_tsv = apply_tsv_parasitics(design, assignment)
        constraints = Constraints.single_clock(560.0)
        constraints.input_delays = {f"in{i}": 60.0 for i in range(32)}
        matrix = cross_die_corner_matrix(design, lib, constraints,
                                         assignment)
        return n_tsv, matrix

    n_tsv, matrix = once(benchmark, run)
    lines = [f"cross-die nets (TSVs): {n_tsv}", "",
             f"{'corner':<18} {'setup WNS':>10} {'internal hold WNS':>18}"]
    for r in matrix:
        lines.append(
            f"{r.label:<18} {r.wns_setup:10.2f} {r.internal_wns_hold:18.2f}"
        )
    penalty = worst_off_diagonal_penalty(matrix, "hold")
    lines.append(f"\noff-diagonal (mismatched-die) hold penalty: "
                 f"{penalty:.2f} ps")
    record_table("sec40_3dic", "\n".join(lines))
    assert penalty > 0.0


def test_sec40_incremental_eco_turnaround(benchmark, lib, record_table):
    """Comment 1: ECO tooling — incremental timing vs full re-timing."""

    def run():
        design = random_logic(n_gates=600, n_levels=12, seed=9)
        constraints = Constraints.single_clock(560.0)
        constraints.input_delays = {f"in{i}": 60.0 for i in range(32)}
        sta = STA(design, lib, constraints)
        sta.report = sta.run()
        timer = IncrementalTimer(sta)
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        cells = [p.ref.instance for p in path.points
                 if p.kind == "cell" and not p.ref.is_port]
        # Ten single-cell ECOs, timed incrementally and fully.
        inc_time = 0.0
        for name in cells[-3:]:
            swap_vt(design, lib, name, "lvt") or upsize(design, lib, name)
            t0 = time.perf_counter()
            timer.update_cells([name])
            inc_time += time.perf_counter() - t0
        t0 = time.perf_counter()
        full_report = STA(design, lib, constraints).run()
        full_time = time.perf_counter() - t0
        return (inc_time / 3.0, full_time, timer.last_cone_size,
                len(sta.graph.topo_order),
                timer.sta.report.wns("setup"), full_report.wns("setup"))

    inc, full, cone, pins, inc_wns, full_wns = once(benchmark, run)
    lines = [
        f"design: {pins} pins",
        f"mean incremental ECO update: {inc * 1e3:7.2f} ms "
        f"(cone {cone} pins)",
        f"full re-timing:              {full * 1e3:7.2f} ms",
        f"speedup: {full / inc:.1f}x",
        f"WNS agreement: incremental {inc_wns:.2f} vs full {full_wns:.2f}",
    ]
    record_table("sec40_incremental_eco", "\n".join(lines))
    assert abs(inc_wns - full_wns) < 0.01
    assert inc < full
