"""Section 1.3 — graph-based vs path-based analysis.

Paper: pessimism reduction via PBA (with noise analysis) has crept ever
earlier into the flow, at the cost of STA turnaround time, licenses and
compute. PBA slack >= GBA slack by construction; the delta is the
recovered pessimism.

Reproduction: GBA vs PBA over the worst setup endpoints of a synthetic
block, with recovered pessimism and the runtime ratio of the two modes.
"""

import time

from conftest import once

from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints
from repro.sta.pba import gba_vs_pba


def test_sec13_gba_vs_pba(benchmark, lib, record_table):
    def run():
        design = random_logic(n_gates=400, n_levels=10, seed=17)
        sta = STA(design, lib, Constraints.single_clock(520.0))
        t0 = time.perf_counter()
        sta.report = sta.run()
        gba_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        results = gba_vs_pba(sta, sta.report, n_endpoints=12, max_paths=64)
        pba_time = time.perf_counter() - t0
        return results, gba_time, pba_time

    results, gba_time, pba_time = once(benchmark, run)

    lines = [
        f"{'endpoint':<18} {'GBA slack':>10} {'PBA slack':>10} "
        f"{'recovered':>10} {'paths':>6}"
    ]
    for r in results:
        lines.append(
            f"{str(r.endpoint):<18} {r.gba_slack:10.2f} {r.pba_slack:10.2f} "
            f"{r.pessimism_recovered:10.2f} {r.paths_analyzed:>6}"
        )
    mean_rec = sum(r.pessimism_recovered for r in results) / len(results)
    lines += [
        "",
        f"mean pessimism recovered: {mean_rec:.2f} ps",
        f"GBA runtime: {gba_time * 1e3:.0f} ms; "
        f"PBA (12 endpoints x 64 paths): {pba_time * 1e3:.0f} ms "
        f"({pba_time / gba_time:.1f}x of a full GBA pass)",
    ]
    record_table("sec13_gba_vs_pba", "\n".join(lines))

    # Invariant: PBA never pessimistic vs GBA; recovery happens somewhere.
    assert all(r.pba_slack >= r.gba_slack - 1e-9 for r in results)
    assert any(r.pessimism_recovered > 0.01 for r in results)
