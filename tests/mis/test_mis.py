"""Tests for MIS analysis and the hold derate model."""

import pytest

from repro.errors import TimingError
from repro.liberty import make_library
from repro.mis.analysis import Fig4Row, fig4_study, mis_window_probability
from repro.mis.derate import (
    MisDerateModel,
    MisHoldAdjustment,
    mis_hold_adjustments,
)
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints


class TestWindowProbability:
    def test_simultaneous_is_one(self):
        assert mis_window_probability(10.0, 10.0, 30.0) == 1.0

    def test_outside_window_zero(self):
        assert mis_window_probability(0.0, 50.0, 30.0) == 0.0

    def test_linear_in_between(self):
        assert mis_window_probability(0.0, 15.0, 30.0) == pytest.approx(0.5)

    def test_zero_window(self):
        assert mis_window_probability(0.0, 0.0, 0.0) == 0.0


class TestFig4Study:
    """One reduced-size end-to-end run of the Fig 4 experiment (slow)."""

    @pytest.fixture(scope="class")
    def rows(self):
        return fig4_study(voltages=[0.8], offsets=[-10.0, 0.0, 10.0], dt=0.5)

    def test_rows_cover_both_directions(self, rows):
        assert {r.input_direction for r in rows} == {"rise", "fall"}

    def test_falling_input_is_hold_critical(self, rows):
        fall = next(r for r in rows if r.input_direction == "fall")
        assert fall.hold_critical
        assert fall.ratio < 0.7  # paper: below ~50%, we allow slack

    def test_rising_input_slows_down(self, rows):
        rise = next(r for r in rows if r.input_direction == "rise")
        assert rise.ratio > 1.0


class TestDerateModel:
    def test_conservative_bounds(self):
        model = MisDerateModel.conservative()
        assert model.factor("nand2", 2) == pytest.approx(0.5)
        assert model.factor("nor3", 3) == pytest.approx(1.0 / 3.0)

    def test_single_input_no_derate(self):
        assert MisDerateModel.conservative().factor("inv", 1) == 1.0

    def test_unknown_multi_input_family_bounded(self):
        model = MisDerateModel()
        assert model.factor("aoi21", 3) == pytest.approx(1.0 / 3.0)

    def test_non_switching_family_unity(self):
        assert MisDerateModel().factor("buf", 1) == 1.0

    def test_from_fig4_rows(self):
        rows = [
            Fig4Row(0.8, "fall", sis_delay=20.0, mis_delay=8.0, study=None),
            Fig4Row(0.8, "rise", sis_delay=20.0, mis_delay=22.0, study=None),
        ]
        model = MisDerateModel.from_fig4_rows(rows)
        assert model.factor("nand2", 2) == pytest.approx(0.4)

    def test_from_rows_requires_hold_critical(self):
        rows = [
            Fig4Row(0.8, "rise", sis_delay=20.0, mis_delay=22.0, study=None)
        ]
        with pytest.raises(TimingError):
            MisDerateModel.from_fig4_rows(rows)


class TestHoldAdjustment:
    @pytest.fixture(scope="class")
    def sta(self):
        lib = make_library()
        d = random_logic(n_gates=150, n_levels=6, seed=21)
        sta = STA(d, lib, Constraints.single_clock(500.0))
        sta.report = sta.run()
        return sta

    def test_adjustments_never_increase_slack(self, sta):
        for adj in mis_hold_adjustments(sta, sta.report, limit=20):
            assert adj.adjusted_slack <= adj.original_slack + 1e-9

    def test_some_endpoints_affected(self, sta):
        adjs = mis_hold_adjustments(sta, sta.report, limit=40,
                                    overlap_window=60.0)
        assert any(a.susceptible_stages > 0 for a in adjs)
        assert any(a.delta > 0.0 for a in adjs)

    def test_zero_window_disables(self, sta):
        adjs = mis_hold_adjustments(sta, sta.report, limit=20,
                                    overlap_window=0.0)
        assert all(a.delta == 0.0 for a in adjs)
