"""Tests for the deterministic fault-injection harness."""

import time

import pytest

from repro.errors import (
    ExecutorBrokenError,
    InjectedFaultError,
    TimingError,
    WorkerCrashError,
)
from repro.liberty import make_library
from repro.testing.faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    corrupt_cache_entry,
    malform_library,
)
from repro.validate import validate_library


class TestFault:
    def test_matching(self):
        fault = Fault("crash", task="ss_cw", attempts=(1, 2))
        assert fault.matches("ss_cw", 1)
        assert fault.matches("ss_cw", 2)
        assert not fault.matches("ss_cw", 3)
        assert not fault.matches("tt_typ", 1)

    def test_wildcard_task(self):
        fault = Fault("hang")
        assert fault.matches("anything", 1)
        assert not fault.matches("anything", 2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(TimingError):
            Fault("segfault")


class TestFaultPlan:
    def test_of(self):
        plan = FaultPlan.of(Fault("crash", task="a"),
                            Fault("hang", task="b"))
        assert plan.for_task("a", 1).kind == "crash"
        assert plan.for_task("b", 1).kind == "hang"
        assert plan.for_task("c", 1) is None

    def test_seeded_is_deterministic(self):
        names = [f"s{i}" for i in range(20)]
        a = FaultPlan.seeded(7, names, crash_rate=0.3, hang_rate=0.2,
                             persistent_rate=0.1)
        b = FaultPlan.seeded(7, names, crash_rate=0.3, hang_rate=0.2,
                             persistent_rate=0.1)
        assert a == b

    def test_seeded_varies_with_seed(self):
        names = [f"s{i}" for i in range(20)]
        a = FaultPlan.seeded(1, names, crash_rate=0.5)
        b = FaultPlan.seeded(2, names, crash_rate=0.5)
        assert a != b

    def test_seeded_rates(self):
        names = [f"s{i}" for i in range(200)]
        plan = FaultPlan.seeded(3, names, crash_rate=0.25, hang_rate=0.1,
                                persistent_rate=0.05)
        kinds = [f.kind for f in plan.faults]
        persistent = [f for f in plan.faults
                      if f.kind == "crash" and len(f.attempts) > 1]
        # loose bounds: rates are statistical, the seed pins the values
        assert 0.2 < len(kinds) / len(names) < 0.6
        assert persistent  # 5% of 200 draws should land at least once
        assert all(f.attempts == tuple(range(1, 33)) for f in persistent)

    def test_seeded_zero_rates_empty(self):
        plan = FaultPlan.seeded(0, ["a", "b"], crash_rate=0.0,
                                hang_rate=0.0, persistent_rate=0.0)
        assert plan.faults == ()


class TestFaultInjector:
    def test_crash_raises_injected_fault(self):
        injector = FaultInjector(FaultPlan.of(Fault("crash", task="t")))
        with pytest.raises(InjectedFaultError) as info:
            injector.fire("t", 1)
        # injected crashes must walk the production recovery path
        assert isinstance(info.value, WorkerCrashError)
        assert info.value.context["task"] == "t"
        injector.fire("t", 2)  # attempt 2: no fault -> no raise
        injector.fire("other", 1)

    def test_pool_break_raises_broken(self):
        injector = FaultInjector(FaultPlan.of(Fault("pool_break")))
        with pytest.raises(ExecutorBrokenError):
            injector.fire("t", 1)

    def test_hang_sleeps(self):
        injector = FaultInjector(
            FaultPlan.of(Fault("hang", task="t", seconds=0.05))
        )
        t0 = time.perf_counter()
        injector.fire("t", 1)
        assert time.perf_counter() - t0 >= 0.05

    def test_empty_plan_is_silent(self):
        FaultInjector().fire("anything", 1)

    def test_injector_pickles(self):
        import pickle

        injector = FaultInjector(
            FaultPlan.seeded(5, ["a", "b", "c"], crash_rate=0.5)
        )
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.plan == injector.plan


class TestKernelFaults:
    """kernel_compile faults target the vector engine's compile sites."""

    def test_scope_partitions_worker_and_kernel(self):
        plan = FaultPlan.of(
            Fault("crash", task="a"),
            Fault("kernel_compile", task="b"),
            Fault("hang", task="c"),
        )
        assert Fault("kernel_compile", task="b").scope == "kernel"
        assert Fault("crash", task="a").scope == "worker"
        assert [f.task for f in plan.worker_faults()] == ["a", "c"]
        assert [f.task for f in plan.kernel_faults()] == ["b"]
        # for_task honors scope: the kernel fault is invisible to the
        # worker lookup and vice versa.
        assert plan.for_task("b", 1) is None
        assert plan.for_task("b", 1, scope="kernel").kind == \
            "kernel_compile"
        assert plan.for_task("a", 1, scope="kernel") is None

    def test_worker_fire_ignores_kernel_faults(self):
        injector = FaultInjector(
            FaultPlan.of(Fault("kernel_compile", task="t"))
        )
        injector.fire("t", 1)  # must not raise: wrong scope

    def test_fire_kernel_raises_compile_error(self):
        from repro.sta.kernel import KernelCompileError

        injector = FaultInjector(
            FaultPlan.of(Fault("kernel_compile", task="t"))
        )
        with pytest.raises(KernelCompileError) as info:
            injector.fire_kernel("t", 1)
        assert info.value.context["task"] == "t"
        injector.fire_kernel("t", 2)   # attempt 2: transient by default
        injector.fire_kernel("other")  # other tasks unaffected

    def test_fire_kernel_ignores_worker_faults(self):
        injector = FaultInjector(FaultPlan.of(Fault("crash", task="t")))
        injector.fire_kernel("t", 1)  # must not raise: wrong scope

    def test_seeded_kernel_rate_draws_kernel_faults(self):
        names = [f"s{i}" for i in range(200)]
        plan = FaultPlan.seeded(11, names, crash_rate=0.0, hang_rate=0.0,
                                persistent_rate=0.0, kernel_rate=0.2)
        assert plan.faults  # 20% of 200 draws should land
        assert all(f.kind == "kernel_compile" for f in plan.faults)
        assert plan.worker_faults() == ()
        assert plan.kernel_faults() == plan.faults
        again = FaultPlan.seeded(11, names, crash_rate=0.0,
                                 hang_rate=0.0, persistent_rate=0.0,
                                 kernel_rate=0.2)
        assert plan == again


class TestDataCorruption:
    def test_corrupt_cache_entry(self):
        from repro.netlist.generators import random_logic
        from repro.sta import Constraints
        from repro.sta.mcmm import Scenario
        from repro.sta.scheduler import ScenarioResultCache, SignoffScheduler

        lib = make_library()
        c = Constraints.single_clock(520.0)
        c.input_delays = {f"in{i}": 60.0 for i in range(8)}
        design = random_logic(n_inputs=8, n_outputs=8, n_gates=40,
                              n_levels=4, seed=3)
        cache = ScenarioResultCache(verify=True)
        SignoffScheduler([Scenario("tt_typ", lib, c)],
                         cache=cache).signoff(design)

        fingerprint = corrupt_cache_entry(cache, seed=0)
        assert fingerprint
        # verification treats the damaged entry as a miss and drops it
        key = next(iter(cache.keys()))
        assert cache.lookup(*key) is None
        assert cache.stats.corruptions == 1

    def test_corrupt_empty_cache_returns_none(self):
        from repro.sta.scheduler import ScenarioResultCache

        assert corrupt_cache_entry(ScenarioResultCache()) is None

    @pytest.mark.parametrize("kind,code", [
        ("nan_delay", "non-finite-table"),
        ("negative_delay", "negative-delay"),
        ("drop_pin", "arc-pin-missing"),
    ])
    def test_malform_library_caught_by_validator(self, kind, code):
        from repro.validate import ValidationReport

        lib = make_library()
        assert ValidationReport(issues=validate_library(lib)).ok
        damage = malform_library(lib, seed=1, kind=kind)
        report = ValidationReport(issues=validate_library(lib))
        assert not report.ok
        assert any(
            issue.code == code and damage["cell"] in issue.subject
            for issue in report.errors
        ), report.render()

    def test_malform_library_deterministic(self):
        a = malform_library(make_library(), seed=4, kind="nan_delay")
        b = malform_library(make_library(), seed=4, kind="nan_delay")
        assert a == b

    def test_malform_unknown_kind(self):
        with pytest.raises(TimingError):
            malform_library(make_library(), kind="gamma_ray")
