"""Tests for Pareto-front extraction, ranks, recall, and rendering."""

import pytest

from repro.campaign import (
    Axis,
    DEFAULT_AXES,
    front_recall,
    nondomination_ranks,
    pareto_front,
    parse_axes,
    render_front,
)
from repro.errors import CampaignError


def row(fp, power, area, tns, levels=None):
    return {"fingerprint": fp, "power_mw": power, "area_um2": area,
            "tns": tns, "levels": levels or {}}


AXES = DEFAULT_AXES  # power:min, area:min, tns:max


class TestAxis:
    def test_direction_validated(self):
        with pytest.raises(CampaignError):
            Axis("x", "sideways")

    def test_max_axis_negates(self):
        assert Axis("tns", "max").key({"tns": -5.0}) == 5.0
        assert Axis("tns", "min").key({"tns": -5.0}) == -5.0

    def test_missing_metric_is_none(self):
        assert Axis("x").key({}) is None

    def test_parse_axes(self):
        axes = parse_axes("power_mw, tns:max ,area_um2:min")
        assert [(a.metric, a.direction) for a in axes] == [
            ("power_mw", "min"), ("tns", "max"), ("area_um2", "min"),
        ]
        with pytest.raises(CampaignError):
            parse_axes(" , ")
        with pytest.raises(CampaignError):
            parse_axes("x:upways")


class TestParetoFront:
    def test_dominated_rows_excluded(self):
        rows = [
            row("a", 1.0, 10.0, -5.0),
            row("b", 2.0, 20.0, -9.0),   # worse everywhere
            row("c", 0.5, 30.0, -9.0),   # best power: on the front
        ]
        front = {r["fingerprint"] for r in pareto_front(rows, AXES)}
        assert front == {"a", "c"}

    def test_ties_all_kept(self):
        rows = [row("a", 1.0, 10.0, -5.0), row("b", 1.0, 10.0, -5.0)]
        assert len(pareto_front(rows, AXES)) == 2

    def test_missing_metric_excluded(self):
        rows = [row("a", 1.0, 10.0, -5.0),
                {"fingerprint": "b", "power_mw": 0.1, "levels": {}}]
        assert [r["fingerprint"] for r in pareto_front(rows, AXES)] \
            == ["a"]

    def test_single_row_is_the_front(self):
        rows = [row("a", 1.0, 1.0, 0.0)]
        assert pareto_front(rows, AXES) == rows

    def test_max_direction_respected(self):
        # Same power/area; only tns differs -> the larger tns wins.
        rows = [row("a", 1.0, 1.0, -9.0), row("b", 1.0, 1.0, -1.0)]
        assert [r["fingerprint"] for r in pareto_front(rows, AXES)] \
            == ["b"]


class TestNondominationRanks:
    def test_layers_peel(self):
        rows = [
            row("a", 1.0, 1.0, 0.0),    # layer 0
            row("b", 2.0, 2.0, -1.0),   # layer 1
            row("c", 3.0, 3.0, -2.0),   # layer 2
        ]
        ranks = nondomination_ranks(rows, AXES)
        assert ranks == {"a": 0, "b": 1, "c": 2}

    def test_incomparable_rows_share_layer_zero(self):
        rows = [row("a", 1.0, 2.0, 0.0), row("b", 2.0, 1.0, 0.0)]
        ranks = nondomination_ranks(rows, AXES)
        assert ranks["a"] == ranks["b"] == 0

    def test_rows_missing_metrics_unranked(self):
        rows = [row("a", 1.0, 1.0, 0.0),
                {"fingerprint": "b", "levels": {}}]
        assert "b" not in nondomination_ranks(rows, AXES)

    def test_every_complete_row_ranked(self):
        rows = [row(f"r{i}", float(i % 3), float(i % 5), -float(i))
                for i in range(20)]
        assert len(nondomination_ranks(rows, AXES)) == 20


class TestFrontRecall:
    def test_full_and_partial(self):
        front = [row("a", 1, 1, 0), row("b", 2, 2, 0)]
        assert front_recall(front, {"a", "b", "z"}) == 1.0
        assert front_recall(front, {"a"}) == 0.5
        assert front_recall(front, set()) == 0.0

    def test_empty_front_is_perfect(self):
        assert front_recall([], set()) == 1.0


class TestRenderFront:
    def test_contains_levels_and_metrics(self):
        rows = [
            row("a", 1.0, 10.0, -5.0, {"recipe": "none", "period": 400}),
            row("b", 2.0, 20.0, -9.0, {"recipe": "lvt", "period": 500}),
        ]
        text = render_front(rows, AXES, factors=("recipe",),
                            title="front")
        assert text.startswith("front")
        assert "none" in text
        assert "lvt" not in text.splitlines()[2]  # dominated: not shown
        assert "power_mw" in text
        assert "non-dominated of 2 rows" in text

    def test_empty_front_renders_placeholder(self):
        text = render_front([], AXES, title="t")
        assert "empty front" in text

    def test_limit(self):
        rows = [row("a", 1.0, 2.0, 0.0), row("b", 2.0, 1.0, 0.0)]
        text = render_front(rows, AXES, limit=1)
        data = [ln for ln in text.splitlines()
                if ln and not ln.startswith(("#", "axes"))]
        assert len(data) == 1  # one front row despite two on the front
