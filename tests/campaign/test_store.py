"""Tests for the append-only SQLite campaign results store."""

import pytest

from repro.campaign import CampaignSpec, CampaignStore, Factor
from repro.errors import CampaignError


@pytest.fixture()
def spec():
    return CampaignSpec(
        name="s",
        factors=[Factor("period", (400.0, 500.0)),
                 Factor("recipe", ("none", "lvt_crit"))],
        seed=3,
    )


@pytest.fixture()
def store(tmp_path):
    with CampaignStore(tmp_path / "c.db") as s:
        yield s


METRICS = {"wall_s": 1.5, "wns": -12.0, "tns": -80.0, "hold_wns": 5.0,
           "power_mw": 0.21, "leakage_mw": 0.02, "dynamic_mw": 0.19,
           "area_um2": 300.0, "cells": 64, "tyield": None,
           "pst_buffers": None, "eco_edits": 4}

SCEN = [{"scenario": "tt_typ", "wns_setup": -12.0, "tns_setup": -80.0,
         "violations_setup": 3, "wns_hold": 5.0, "tns_hold": 0.0,
         "violations_hold": 0}]


class TestRecordResult:
    def test_roundtrip(self, store, spec):
        config = spec.expand()[0]
        assert store.record_result(config, "ok", METRICS, SCEN)
        rows = store.rows("s")
        assert len(rows) == 1
        row = rows[0]
        assert row["fingerprint"] == config.fingerprint
        assert row["levels"] == config.assignment
        assert row["wns"] == -12.0
        assert row["seed"] == config.seed
        assert row["tyield"] is None
        assert store.scenario_rows(config.fingerprint)[0]["wns_setup"] \
            == -12.0

    def test_first_write_wins(self, store, spec):
        config = spec.expand()[0]
        assert store.record_result(config, "ok", METRICS, SCEN)
        clobber = dict(METRICS, wns=999.0)
        assert not store.record_result(config, "ok", clobber, SCEN)
        assert store.rows("s")[0]["wns"] == -12.0
        # Scenario rows were not duplicated either.
        assert len(store.scenario_rows(config.fingerprint)) == 1

    def test_done_fingerprints(self, store, spec):
        configs = spec.expand()
        store.record_result(configs[0], "ok", METRICS)
        store.record_result(configs[2], "ok", METRICS)
        assert store.done_fingerprints("s") == {
            configs[0].fingerprint, configs[2].fingerprint,
        }

    def test_rows_ordered_by_index(self, store, spec):
        configs = spec.expand()
        for config in reversed(configs):
            store.record_result(config, "ok", METRICS)
        assert [r["idx"] for r in store.rows("s")] == [0, 1, 2, 3]

    def test_count_and_campaigns(self, store, spec):
        for config in spec.expand():
            store.record_result(config, "ok", METRICS)
        assert store.count("s") == 4
        assert store.campaigns() == ["s"]


class TestFailuresAndPredictions:
    def test_failures_append(self, store, spec):
        config = spec.expand()[0]
        store.record_failure(config, "boom", 2)
        store.record_failure(config, "boom again", 3)
        failures = store.failures("s")
        assert len(failures) == 2
        assert failures[0]["error"] == "boom"
        # A failure never blocks resume: the config is not "done".
        assert store.done_fingerprints("s") == set()

    def test_predictions_replace(self, store, spec):
        config = spec.expand()[0]
        store.record_prediction("s", config.fingerprint, 3,
                                {"wns": -5.0})
        store.record_prediction("s", config.fingerprint, 1,
                                {"wns": -2.0})
        preds = store.predictions("s")
        assert len(preds) == 1
        assert preds[0]["rank"] == 1
        assert preds[0]["metrics"] == {"wns": -2.0}


class TestPersistence:
    def test_survives_reopen(self, tmp_path, spec):
        path = tmp_path / "c.db"
        config = spec.expand()[0]
        with CampaignStore(path) as store:
            store.record_spec("s", spec.to_json())
            store.record_result(config, "ok", METRICS, SCEN)
        with CampaignStore(path) as store:
            assert store.count("s") == 1
            assert store.spec_json("s") == spec.to_json()
            assert store.done_fingerprints("s") == {config.fingerprint}

    def test_spec_recorded_once(self, tmp_path, spec):
        path = tmp_path / "c.db"
        with CampaignStore(path) as store:
            store.record_spec("s", spec.to_json())
            store.record_spec("s", "{}")  # ignored: first write wins
            assert store.spec_json("s") == spec.to_json()

    def test_unopenable_path_is_structured_error(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignStore(tmp_path / "missing" / "c.db")

    def test_two_campaigns_share_a_db(self, store, spec):
        other = CampaignSpec(name="other",
                             factors=[Factor("period", (123.0,))])
        store.record_result(spec.expand()[0], "ok", METRICS)
        store.record_result(other.expand()[0], "ok", METRICS)
        assert store.campaigns() == ["other", "s"]
        assert store.count("s") == 1
        assert store.count("other") == 1
