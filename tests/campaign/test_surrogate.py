"""Tests for the learned-triage surrogate: features, models, ranking."""

import numpy as np
import pytest

from repro.campaign import (
    CampaignSpec,
    Factor,
    KnnSurrogate,
    RidgeSurrogate,
    Surrogate,
    TARGET_METRICS,
    triage_order,
)
from repro.campaign.surrogate import FeatureSpace
from repro.errors import CampaignError


def mixed_spec():
    return CampaignSpec(
        name="m",
        factors=[
            Factor("period", (400.0, 450.0, 500.0)),
            Factor("recipe", ("none", "lvt_crit")),
        ],
        seed=1,
    )


def fake_row(config, **metrics):
    base = {"power_mw": 0.0, "area_um2": 0.0, "tns": 0.0, "wns": 0.0}
    base.update(metrics)
    return {"fingerprint": config.fingerprint,
            "levels": config.assignment, **base}


class TestFeatureSpace:
    def test_numeric_factor_is_one_column(self):
        space = FeatureSpace(mixed_spec())
        names = [name for name, _ in space.columns]
        assert names.count("period") == 1
        assert names.count("recipe") == 2  # one-hot per level

    def test_encode_numeric_and_onehot(self):
        space = FeatureSpace(mixed_spec())
        v = space.encode({"period": 450.0, "recipe": "lvt_crit"})
        assert v[0] == 450.0
        assert list(v[1:]) == [0.0, 1.0]

    def test_bool_levels_are_categorical(self):
        spec = CampaignSpec(name="b",
                            factors=[Factor("flag", (True, False))])
        space = FeatureSpace(spec)
        assert len(space.columns) == 2

    def test_extra_features_appended_in_stable_order(self):
        space = FeatureSpace(
            mixed_spec(),
            extra=lambda levels: {"z": 1.0, "a": 2.0},
        )
        v = space.encode({"period": 400.0, "recipe": "none"})
        assert list(v[-2:]) == [2.0, 1.0]  # sorted: a then z

    def test_matrix_shape(self):
        spec = mixed_spec()
        space = FeatureSpace(spec)
        X = space.matrix([c.assignment for c in spec.expand()])
        assert X.shape == (6, 3)


class TestRidge:
    def test_recovers_linear_function(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))
        Y = X @ np.array([[2.0], [-1.0], [0.5]]) + 3.0
        model = RidgeSurrogate(l2=1e-6).fit(X, Y)
        pred = model.predict(X)
        assert np.allclose(pred, Y, atol=1e-3)

    def test_multi_output(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        Y = np.hstack([2 * X, -X + 1])
        pred = RidgeSurrogate(l2=1e-6).fit(X, Y).predict(X)
        assert pred.shape == (10, 2)
        assert np.allclose(pred, Y, atol=1e-3)

    def test_constant_column_tolerated(self):
        # Zero-variance features must not divide by zero.
        X = np.hstack([np.ones((8, 1)),
                       np.arange(8, dtype=float).reshape(-1, 1)])
        Y = X[:, 1:2] * 3.0
        pred = RidgeSurrogate().fit(X, Y).predict(X)
        assert np.isfinite(pred).all()

    def test_unfitted_predict_raises(self):
        with pytest.raises(CampaignError):
            RidgeSurrogate().predict(np.ones((1, 2)))

    def test_zero_rows_raises(self):
        with pytest.raises(CampaignError):
            RidgeSurrogate().fit(np.zeros((0, 2)), np.zeros((0, 1)))


class TestKnn:
    def test_exact_on_training_points(self):
        X = np.array([[0.0], [10.0], [20.0]])
        Y = np.array([[1.0], [2.0], [3.0]])
        pred = KnnSurrogate(k=1).fit(X, Y).predict(X)
        assert np.allclose(pred, Y, atol=1e-6)

    def test_interpolates_between_neighbours(self):
        X = np.array([[0.0], [10.0]])
        Y = np.array([[0.0], [10.0]])
        pred = KnnSurrogate(k=2).fit(X, Y).predict(np.array([[5.0]]))
        assert 0.0 < pred[0, 0] < 10.0

    def test_k_clamped_to_population(self):
        X = np.array([[0.0], [1.0]])
        Y = np.array([[1.0], [2.0]])
        pred = KnnSurrogate(k=9).fit(X, Y).predict(np.array([[0.5]]))
        assert np.isfinite(pred).all()

    def test_bad_k(self):
        with pytest.raises(CampaignError):
            KnnSurrogate(k=0)


class TestSurrogateWrapper:
    def test_fit_predict_roundtrip(self):
        spec = mixed_spec()
        configs = spec.expand()
        # power rises linearly with period; recipe adds an offset.
        rows = [
            fake_row(c, power_mw=c.assignment["period"] * 0.01
                     + (5.0 if c.assignment["recipe"] == "lvt_crit"
                        else 0.0))
            for c in configs
        ]
        surrogate = Surrogate(spec, model="ridge").fit(rows)
        preds = surrogate.predict(configs)
        assert len(preds) == len(configs)
        assert set(preds[0]) == set(TARGET_METRICS)
        for config, pred in zip(configs, preds):
            truth = (config.assignment["period"] * 0.01
                     + (5.0 if config.assignment["recipe"] == "lvt_crit"
                        else 0.0))
            assert pred["power_mw"] == pytest.approx(truth, abs=0.05)

    def test_needs_two_complete_rows(self):
        spec = mixed_spec()
        configs = spec.expand()
        rows = [fake_row(configs[0])]
        with pytest.raises(CampaignError):
            Surrogate(spec).fit(rows)

    def test_rows_missing_metrics_skipped(self):
        spec = mixed_spec()
        configs = spec.expand()
        rows = [fake_row(c) for c in configs[:3]]
        rows.append({"fingerprint": configs[3].fingerprint,
                     "levels": configs[3].assignment,
                     "power_mw": None, "area_um2": 1.0, "tns": 0.0,
                     "wns": 0.0})
        Surrogate(spec).fit(rows)  # must not crash on the partial row

    def test_unknown_model(self):
        with pytest.raises(CampaignError):
            Surrogate(mixed_spec(), model="forest")

    def test_predict_empty(self):
        spec = mixed_spec()
        surrogate = Surrogate(spec).fit(
            [fake_row(c) for c in spec.expand()[:2]])
        assert surrogate.predict([]) == []


class TestTriageOrder:
    def test_predicted_front_ranks_first(self):
        spec = CampaignSpec(
            name="t", factors=[Factor("period",
                                      (100.0, 200.0, 300.0, 400.0))],
        )
        configs = spec.expand()
        # Lower period -> better everywhere: config 0 should rank first.
        rows = [
            fake_row(c, power_mw=c.assignment["period"],
                     area_um2=c.assignment["period"],
                     tns=-c.assignment["period"])
            for c in configs[2:]
        ]
        # ridge, not knn: the ranking here relies on extrapolating the
        # linear trend below the training range.
        surrogate = Surrogate(spec, model="ridge").fit(rows)
        ordered = triage_order(surrogate, rows, configs[:2])
        assert [c.index for c, _, _ in ordered] == [0, 1]
        assert ordered[0][2] <= ordered[1][2]  # layer monotone

    def test_deterministic_tiebreak_by_index(self):
        spec = mixed_spec()
        configs = spec.expand()
        rows = [fake_row(c, power_mw=1.0, area_um2=1.0, tns=0.0)
                for c in configs[:3]]
        surrogate = Surrogate(spec, model="knn", extra=None).fit(rows)
        ordered = triage_order(surrogate, rows, configs[3:])
        again = triage_order(surrogate, rows, configs[3:])
        assert [c.index for c, _, _ in ordered] == \
            [c.index for c, _, _ in again]
