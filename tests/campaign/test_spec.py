"""Tests for campaign specs: factorial expansion, fingerprints, seeds."""

import pytest

from repro.campaign import (
    CampaignSpec,
    Factor,
    config_fingerprint,
    derive_seed,
    spread_indices,
)
from repro.errors import CampaignError


def two_factor_spec(**kwargs):
    return CampaignSpec(
        name="t",
        factors=[
            Factor("period", (400.0, 500.0)),
            Factor("recipe", ("none", "lvt_crit", "upsize_crit")),
        ],
        **kwargs,
    )


class TestFactor:
    def test_rejects_empty_levels(self):
        with pytest.raises(CampaignError):
            Factor("x", ())

    def test_rejects_duplicate_levels(self):
        with pytest.raises(CampaignError):
            Factor("x", (1, 1))

    def test_rejects_non_plain_levels(self):
        with pytest.raises(CampaignError):
            Factor("x", (object(),))

    def test_distinguishes_int_from_float(self):
        # repr-dedup must not collapse 1 and 1.0 — distinct levels even
        # though 1 == 1.0 makes a plain set() merge them.
        assert len(Factor("x", (1, 1.0)).levels) == 2


class TestSpecValidation:
    def test_needs_a_name(self):
        with pytest.raises(CampaignError):
            CampaignSpec(name="", factors=[Factor("a", (1,))])

    def test_needs_factors(self):
        with pytest.raises(CampaignError):
            CampaignSpec(name="t", factors=[])

    def test_unique_factor_names(self):
        with pytest.raises(CampaignError):
            CampaignSpec(name="t", factors=[
                Factor("a", (1,)), Factor("a", (2,)),
            ])

    def test_base_shadowed_by_factor_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec(name="t", factors=[Factor("a", (1,))],
                         base={"a": 2})

    def test_fraction_bounds(self):
        with pytest.raises(CampaignError):
            two_factor_spec(fraction=0.0)
        with pytest.raises(CampaignError):
            two_factor_spec(fraction=1.5)


class TestExpansion:
    def test_full_factorial_size(self):
        spec = two_factor_spec()
        assert spec.size == 6
        configs = spec.expand()
        assert len(configs) == 6
        assert [c.index for c in configs] == list(range(6))

    def test_base_merged_into_every_assignment(self):
        spec = two_factor_spec(base={"activity": 0.2})
        for config in spec.expand():
            assert config.assignment["activity"] == 0.2

    def test_fingerprints_unique(self):
        configs = two_factor_spec().expand()
        assert len({c.fingerprint for c in configs}) == len(configs)

    def test_fingerprint_is_content_only(self):
        # Same assignment -> same fingerprint regardless of campaign
        # name, seed, or factor declaration order.
        a = two_factor_spec(seed=1).expand()
        b = CampaignSpec(
            name="other",
            factors=[
                Factor("recipe", ("none", "lvt_crit", "upsize_crit")),
                Factor("period", (400.0, 500.0)),
            ],
            seed=99,
        ).expand()
        assert {c.fingerprint for c in a} == {c.fingerprint for c in b}

    def test_fingerprint_function_sorts_keys(self):
        assert config_fingerprint({"a": 1, "b": 2}) == \
            config_fingerprint({"b": 2, "a": 1})

    def test_seeds_deterministic_and_distinct(self):
        one = two_factor_spec(seed=7).expand()
        two = two_factor_spec(seed=7).expand()
        assert [c.seed for c in one] == [c.seed for c in two]
        assert len({c.seed for c in one}) == len(one)

    def test_spec_seed_changes_config_seeds_not_identity(self):
        a = two_factor_spec(seed=1).expand()
        b = two_factor_spec(seed=2).expand()
        assert [c.fingerprint for c in a] == [c.fingerprint for c in b]
        assert [c.seed for c in a] != [c.seed for c in b]

    def test_derive_seed_in_range(self):
        s = derive_seed(123, "ab" * 32)
        assert 0 <= s < 2 ** 31 - 1


class TestFractionalDesign:
    def test_fraction_keeps_subset_of_full(self):
        full = {c.fingerprint for c in two_factor_spec().expand()}
        frac = two_factor_spec(fraction=0.5).expand()
        assert len(frac) == 3
        assert {c.fingerprint for c in frac} <= full

    def test_fraction_deterministic(self):
        a = two_factor_spec(fraction=0.5).expand()
        b = two_factor_spec(fraction=0.5).expand()
        assert [c.fingerprint for c in a] == [c.fingerprint for c in b]

    def test_fraction_stable_under_factor_reorder(self):
        a = two_factor_spec(fraction=0.5).expand()
        b = CampaignSpec(
            name="t",
            factors=[
                Factor("recipe", ("none", "lvt_crit", "upsize_crit")),
                Factor("period", (400.0, 500.0)),
            ],
            fraction=0.5,
        ).expand()
        assert {c.fingerprint for c in a} == {c.fingerprint for c in b}

    def test_fraction_keeps_at_least_one(self):
        assert len(two_factor_spec(fraction=0.01).expand()) == 1

    def test_kept_configs_sorted_by_index(self):
        frac = two_factor_spec(fraction=0.5).expand()
        assert [c.index for c in frac] == sorted(c.index for c in frac)


class TestJsonRoundTrip:
    def test_roundtrip(self):
        spec = two_factor_spec(base={"activity": 0.2}, fraction=0.5,
                               seed=9)
        again = CampaignSpec.from_json(spec.to_json())
        assert again.name == spec.name
        assert again.base == spec.base
        assert again.fraction == spec.fraction
        assert again.seed == spec.seed
        assert [c.fingerprint for c in again.expand()] == \
            [c.fingerprint for c in spec.expand()]

    def test_bad_json_rejected(self):
        with pytest.raises(CampaignError):
            CampaignSpec.from_json("{nope")
        with pytest.raises(CampaignError):
            CampaignSpec.from_json("[1, 2]")
        with pytest.raises(CampaignError):
            CampaignSpec.from_json('{"name": "t"}')


class TestSpreadIndices:
    def test_covers_all_when_count_exceeds_n(self):
        assert spread_indices(3, 10) == [0, 1, 2]

    def test_exact_count_and_spread(self):
        picked = spread_indices(100, 10)
        assert len(picked) == 10
        assert picked[0] == 0
        assert picked[-1] >= 90

    def test_zero_count(self):
        assert spread_indices(10, 0) == []

    def test_no_duplicates_after_topup(self):
        for n, count in ((7, 5), (13, 9), (10, 10)):
            picked = spread_indices(n, count)
            assert len(picked) == len(set(picked)) == count
