"""Tests for the campaign runner: validation, determinism, resume,
degradation, and tracing."""

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CampaignStore,
    DEFAULT_AXES,
    Factor,
    pareto_front,
)
from repro.campaign.store import METRIC_COLUMNS
from repro.errors import CampaignError
from repro.obs import tracing as obs_tracing
from repro.runtime.supervisor import RetryPolicy


def small_spec(name="small", **kwargs):
    return CampaignSpec(
        name=name,
        factors=[
            Factor("period", (480.0, 500.0)),
            Factor("recipe", ("none", "lvt_crit")),
        ],
        seed=5,
        **kwargs,
    )


def make_runner(spec, store, **kwargs):
    kwargs.setdefault("executor", "serial")
    kwargs.setdefault("policy", RetryPolicy(retries=0, backoff_s=0.0))
    return CampaignRunner(spec, store, **kwargs)


def comparable(row):
    keep = {"fingerprint", "idx", "seed", "status", "levels"}
    keep.update(m for m in METRIC_COLUMNS if m != "wall_s")
    return {k: row.get(k) for k in keep}


class TestValidation:
    def test_unknown_factor_rejected(self):
        spec = CampaignSpec(name="x", factors=[Factor("typo", (1,))])
        with pytest.raises(CampaignError):
            CampaignRunner(spec, store=None)

    def test_unknown_base_key_rejected(self):
        spec = CampaignSpec(name="x",
                            factors=[Factor("period", (500.0,))],
                            base={"typo": 1})
        with pytest.raises(CampaignError):
            CampaignRunner(spec, store=None)

    def test_unknown_recipe_rejected(self):
        spec = CampaignSpec(name="x",
                            factors=[Factor("recipe", ("resynth",))])
        with pytest.raises(CampaignError):
            CampaignRunner(spec, store=None)

    def test_unknown_block_rejected(self):
        spec = CampaignSpec(name="x",
                            factors=[Factor("block", ("soc_gpu",))])
        with pytest.raises(CampaignError):
            CampaignRunner(spec, store=None)

    def test_unknown_engine_rejected(self):
        spec = CampaignSpec(name="x",
                            factors=[Factor("engine", ("magic",))])
        with pytest.raises(CampaignError):
            CampaignRunner(spec, store=None)

    def test_bad_chunk(self, tmp_path):
        with pytest.raises(CampaignError):
            CampaignRunner(small_spec(), store=None, chunk=0)

    def test_bad_triage_budgets(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            runner = make_runner(small_spec(), store)
            with pytest.raises(CampaignError):
                runner.run_triaged(budget=0.0)
            with pytest.raises(CampaignError):
                runner.run_triaged(budget=0.5, train=0.6)
            with pytest.raises(CampaignError):
                runner.run_triaged(model="forest")


class TestDaemonSpecValidation:
    def test_swept_fixed_factor_rejected(self):
        from repro.campaign.runner import validate_daemon_spec

        spec = CampaignSpec(
            name="x",
            factors=[Factor("block", ("soc_ctrl", "soc_dsp"))],
        )
        with pytest.raises(CampaignError):
            validate_daemon_spec(spec)

    def test_nondefault_fixed_base_rejected(self):
        from repro.campaign.runner import validate_daemon_spec

        spec = CampaignSpec(
            name="x",
            factors=[Factor("period", (480.0, 500.0))],
            base={"margin_ps": 15.0},
        )
        with pytest.raises(CampaignError):
            validate_daemon_spec(spec)

    def test_sweepable_spec_accepted(self):
        from repro.campaign.runner import validate_daemon_spec

        validate_daemon_spec(small_spec())


class TestRunDeterminism:
    def test_same_spec_same_rows_and_front(self, tmp_path):
        fronts = []
        snapshots = []
        for tag in ("a", "b"):
            with CampaignStore(tmp_path / f"{tag}.db") as store:
                outcome = make_runner(small_spec(), store).run()
                assert outcome.ok
                assert len(outcome.computed) == 4
                rows = store.rows("small")
                snapshots.append([comparable(r) for r in rows])
                fronts.append(sorted(
                    r["fingerprint"]
                    for r in pareto_front(rows, DEFAULT_AXES)
                ))
        assert snapshots[0] == snapshots[1]
        assert fronts[0] == fronts[1]

    def test_metrics_populated(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            make_runner(small_spec(), store).run()
            for row in store.rows("small"):
                assert row["wns"] is not None
                assert row["power_mw"] > 0.0
                assert row["area_um2"] > 0.0
                assert row["wall_s"] > 0.0
                assert row["tyield"] is None  # tune_tau unswept -> 0
                scen = store.scenario_rows(row["fingerprint"])
                assert [s["scenario"] for s in scen] == \
                    ["ss_aged", "tt_typ"]

    def test_recipe_spends_edits(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            make_runner(small_spec(), store).run()
            by_recipe = {}
            for row in store.rows("small"):
                by_recipe.setdefault(row["levels"]["recipe"],
                                     row["eco_edits"])
            assert by_recipe["none"] == 0
            assert by_recipe["lvt_crit"] > 0


class TestResume:
    def test_second_run_resumes_everything(self, tmp_path):
        with CampaignStore(tmp_path / "c.db") as store:
            first = make_runner(small_spec(), store).run()
            assert len(first.computed) == 4
            second = make_runner(small_spec(), store).run()
            assert second.computed == []
            assert len(second.resumed) == 4
            assert store.count("small") == 4

    def test_partial_prefix_then_full(self, tmp_path):
        spec = small_spec()
        configs = spec.expand()
        with CampaignStore(tmp_path / "c.db") as store:
            make_runner(spec, store).run(configs=configs[:2])
            assert store.count("small") == 2
            outcome = make_runner(spec, store).run()
            assert len(outcome.resumed) == 2
            assert len(outcome.computed) == 2
            assert store.count("small") == 4


class TestDegradedPath:
    def test_failure_recorded_then_retried_on_resume(self, tmp_path,
                                                     monkeypatch):
        import repro.campaign.runner as runner_mod

        spec = small_spec()
        configs = spec.expand()
        real_job = runner_mod._run_config_job
        victim = configs[1].fingerprint

        def flaky(payload, attempt=1):
            config = payload[0]
            if config.fingerprint == victim:
                raise RuntimeError("injected worker crash")
            return real_job(payload, attempt)

        monkeypatch.setattr(runner_mod, "_run_config_job", flaky)
        with CampaignStore(tmp_path / "c.db") as store:
            outcome = make_runner(spec, store).run()
            assert not outcome.ok
            assert [fp for fp, _ in outcome.degraded] == [victim]
            assert len(outcome.computed) == 3
            failures = store.failures("small")
            assert len(failures) == 1
            assert "injected worker crash" in failures[0]["error"]
            # The failed config is not "done": resume retries it.
            monkeypatch.setattr(runner_mod, "_run_config_job", real_job)
            again = make_runner(spec, store).run()
            assert again.ok
            assert [fp for fp in again.computed] == [victim]
            assert store.count("small") == 4

    def test_retry_policy_recovers_transients(self, tmp_path,
                                              monkeypatch):
        import repro.campaign.runner as runner_mod

        real_job = runner_mod._run_config_job
        calls = {}

        def flaky(payload, attempt=1):
            config = payload[0]
            calls[config.index] = calls.get(config.index, 0) + 1
            if calls[config.index] == 1:
                raise RuntimeError("transient")
            return real_job(payload, attempt)

        monkeypatch.setattr(runner_mod, "_run_config_job", flaky)
        spec = small_spec()
        with CampaignStore(tmp_path / "c.db") as store:
            outcome = make_runner(
                spec, store,
                policy=RetryPolicy(retries=1, backoff_s=0.0),
            ).run(configs=spec.expand()[:2])
            assert outcome.ok
            assert len(outcome.computed) == 2
            assert all(n == 2 for n in calls.values())


class TestTracing:
    def test_spans_ingested_under_waves(self, tmp_path):
        tracer = obs_tracing.Tracer()
        with CampaignStore(tmp_path / "c.db") as store:
            with obs_tracing.use(tracer):
                make_runner(small_spec(), store, chunk=2).run()
        names = [s.name for s in tracer.spans()]
        assert names.count("campaign") == 1
        assert names.count("campaign_wave") == 2  # 4 configs / chunk 2
        assert names.count("campaign_config") == 4
        assert "campaign_signoff" in names
        # Worker spans re-parent under their wave.
        by_id = {s.span_id: s for s in tracer.spans()}
        config_spans = [s for s in tracer.spans()
                        if s.name == "campaign_config"]
        for span in config_spans:
            assert by_id[span.parent_id].name == "campaign_wave"

    def test_untraced_run_records_nothing(self, tmp_path):
        spec = small_spec()
        with CampaignStore(tmp_path / "c.db") as store:
            outcome = make_runner(spec, store).run(
                configs=spec.expand()[:1])
            assert outcome.ok


class TestTriage:
    def test_budget_respected_and_predictions_recorded(self, tmp_path):
        spec = CampaignSpec(
            name="tri",
            factors=[
                Factor("period", (460.0, 480.0, 500.0)),
                Factor("recipe", ("none", "lvt_crit")),
                Factor("margin_ps", (0.0, 10.0)),
            ],
            seed=6,
        )  # 12 configs
        with CampaignStore(tmp_path / "c.db") as store:
            runner = make_runner(spec, store, chunk=4)
            outcome = runner.run_triaged(budget=0.5, train=0.3)
            assert len(outcome.ran) == outcome.budget == 6
            assert outcome.predicted == 12 - 6
            assert store.count("tri") == 6
            preds = store.predictions("tri")
            assert len(preds) == 6
            ran = set(outcome.ran)
            for pred in preds:
                assert pred["fingerprint"] not in ran
                assert "power_mw" in pred["metrics"]

    def test_triage_resume_counts_existing_rows(self, tmp_path):
        spec = small_spec(name="tri2")
        with CampaignStore(tmp_path / "c.db") as store:
            make_runner(spec, store).run()  # full sweep first
            outcome = make_runner(spec, store).run_triaged(
                budget=1.0, train=0.5)
            assert outcome.predicted == 0
            assert store.count("tri2") == 4
