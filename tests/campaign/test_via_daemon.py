"""Campaign dispatch through a warm timing daemon (overlay sessions)."""

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CampaignStore,
    DaemonTarget,
    Factor,
)
from repro.campaign.blocks import build_block
from repro.errors import CampaignError
from repro.liberty import make_library
from repro.runtime.supervisor import RetryPolicy
from repro.serve import DaemonConfig, TimingDaemon
from repro.sta import Constraints
from repro.sta.mcmm import Scenario


def daemon_setup():
    design = build_block("soc_ctrl")
    library = make_library()
    constraints = Constraints.single_clock(500.0)
    constraints.input_delays = {
        p: 40.0 for p in design.input_ports() if p != "clk"
    }
    return design, library, constraints


@pytest.fixture
def daemon_target():
    design, library, constraints = daemon_setup()
    daemon = TimingDaemon(
        design, [Scenario("tt_typ", library, constraints)],
        config=DaemonConfig(workers=2, queue_limit=32),
    )
    daemon.start()
    try:
        yield DaemonTarget("127.0.0.1", daemon.port, design, library,
                           constraints)
    finally:
        daemon.stop()


def daemon_spec():
    return CampaignSpec(
        name="via",
        factors=[
            Factor("recipe", ("none", "lvt_crit")),
            Factor("tune_tau", (0.0, 30.0)),
        ],
        base={"ssta_samples": 64},
        seed=13,
    )  # 4 configs


class TestViaDaemon:
    def test_sweep_runs_as_overlay_sessions(self, daemon_target,
                                            tmp_path):
        spec = daemon_spec()
        with CampaignStore(tmp_path / "c.db") as store:
            runner = CampaignRunner(
                spec, store, jobs=2, daemon=daemon_target,
                policy=RetryPolicy(retries=1, backoff_s=0.0),
            )
            assert runner.executor == "thread"  # forced for live objects
            outcome = runner.run()
            assert outcome.ok
            assert len(outcome.computed) == 4
            rows = store.rows("via")
        assert len(rows) == 4
        for row in rows:
            assert row["source"] == "daemon"
            assert row["wns"] is not None
            assert row["power_mw"] > 0.0
            levels = row["levels"]
            if levels["tune_tau"] > 0.0:
                assert row["tyield"] is not None
                assert row["pst_buffers"] is not None
            else:
                assert row["tyield"] is None
            if levels["recipe"] == "lvt_crit":
                assert row["eco_edits"] > 0
            else:
                assert row["eco_edits"] == 0

    def test_recipe_moves_daemon_timing(self, daemon_target, tmp_path):
        spec = daemon_spec()
        with CampaignStore(tmp_path / "c.db") as store:
            CampaignRunner(spec, store, jobs=1,
                           daemon=daemon_target).run()
            by_recipe = {}
            for row in store.rows("via"):
                if row["levels"]["tune_tau"] == 0.0:
                    by_recipe[row["levels"]["recipe"]] = row["wns"]
        # lvt swaps on the critical cone speed the design up; the
        # daemon's timing rows must reflect the session's ECO.
        assert by_recipe["lvt_crit"] > by_recipe["none"]

    def test_resume_skips_recorded_configs(self, daemon_target,
                                           tmp_path):
        spec = daemon_spec()
        with CampaignStore(tmp_path / "c.db") as store:
            CampaignRunner(spec, store, daemon=daemon_target).run()
            again = CampaignRunner(spec, store,
                                   daemon=daemon_target).run()
            assert again.computed == []
            assert len(again.resumed) == 4

    def test_daemon_rejects_unsweepable_spec(self, daemon_target,
                                             tmp_path):
        spec = CampaignSpec(
            name="bad",
            factors=[Factor("block", ("soc_ctrl", "soc_dsp"))],
        )
        with CampaignStore(tmp_path / "c.db") as store:
            with pytest.raises(CampaignError):
                CampaignRunner(spec, store, daemon=daemon_target)
