"""Acceptance test: a campaign killed with SIGKILL mid-sweep resumes
from its SQLite DB, recomputing only the unrecorded configs.

Mirrors tests/test_checkpoint_resume.py: the CLI runs in a subprocess
with ``--chunk 1`` (commit per config), the test polls the DB until at
least one row lands, SIGKILLs the process, then resumes in-process.
All assertions are count-based, never wall-clock.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CampaignStore,
    Factor,
)
from repro.runtime.supervisor import RetryPolicy

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def killable_spec():
    return CampaignSpec(
        name="killable",
        factors=[
            Factor("period", (460.0, 480.0, 500.0)),
            Factor("recipe", ("none", "lvt_crit")),
            Factor("margin_ps", (0.0, 10.0)),
        ],
        seed=17,
    )  # 12 configs


def db_count(path):
    if not path.exists():
        return 0
    with CampaignStore(path) as store:
        return store.count("killable")


def test_sigkilled_campaign_resumes_from_db(tmp_path):
    spec = killable_spec()
    total = spec.size
    db_path = tmp_path / "campaign.db"
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(spec.to_json(), encoding="utf-8")

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "campaign", "run",
            "--db", str(db_path), "--spec-file", str(spec_path),
            "--jobs", "1", "--executor", "serial",
            "--chunk", "1",  # commit per config: maximum kill surface
            "--retries", "0",
        ],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )

    # Wait for at least one committed config, then SIGKILL mid-sweep.
    deadline = time.monotonic() + 120.0
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before we could kill it (still valid)
            if db_count(db_path) >= 1:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
                break
            time.sleep(0.05)
        else:
            pytest.fail("subprocess recorded nothing within 120 s")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    # Whatever committed before the kill is durable; resume reruns
    # exactly the difference.
    done_before = db_count(db_path)
    assert 1 <= done_before <= total

    with CampaignStore(db_path) as store:
        runner = CampaignRunner(
            spec, store, jobs=1, executor="serial",
            policy=RetryPolicy(retries=0, backoff_s=0.0),
        )
        outcome = runner.run()
        assert outcome.ok
        assert len(outcome.resumed) == done_before
        assert len(outcome.computed) == total - done_before
        assert store.count("killable") == total
        recorded = {row["fingerprint"] for row in store.rows("killable")}
    assert recorded == {c.fingerprint for c in spec.expand()}

    # A second resume recomputes nothing at all.
    with CampaignStore(db_path) as store:
        again = CampaignRunner(
            spec, store, jobs=1, executor="serial",
            policy=RetryPolicy(retries=0, backoff_s=0.0),
        ).run()
        assert again.computed == []
        assert len(again.resumed) == total
