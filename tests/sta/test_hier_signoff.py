"""Hierarchical signoff: multi-clock engine, ETM-vs-flat agreement,
process fan-out, caching and degradation."""

import math
import os

import pytest

from repro.errors import ConstraintError, TimingError
from repro.liberty import make_library
from repro.netlist.design import Design, PortDirection
from repro.netlist.generators import hierarchical_soc, random_logic
from repro.netlist.hierarchy import HierarchicalDesign, with_boundary_anchors
from repro.obs import tracing as obs_tracing
from repro.runtime.supervisor import RetryPolicy
from repro.sta import STA, Constraints
from repro.sta.constraints import ClockSpec
from repro.sta.hier import (
    HierScheduler,
    block_constraints,
    compare_hier_vs_flat,
)
from repro.sta.mcmm import Scenario
from repro.sta.scheduler import ScenarioResultCache


@pytest.fixture(scope="module")
def lib():
    return make_library()


class TestMultiClockEngine:
    def test_capture_clock_resolved_per_domain(self, lib):
        """With per-block clocks, shrinking one domain's period must
        shift exactly that domain's setup slacks, by exactly the
        period delta."""
        hier = hierarchical_soc(seed=3, n_blocks=2, with_feedthrough=False)
        flat = hier.flatten()
        base = STA(flat, lib, hier.top_constraints(period=800.0)).run()
        skewed = STA(flat, lib, hier.top_constraints(
            period=800.0, periods={"b1": 640.0})).run()
        checked = {"b0": 0, "b1": 0}
        for e in base.endpoints("setup"):
            if e.kind != "setup":
                continue
            block = e.endpoint.instance.split("_", 1)[0]
            shifted = skewed.slack_of(e.endpoint, "setup")
            expected = e.slack - (160.0 if block == "b1" else 0.0)
            assert shifted == pytest.approx(expected, abs=1e-6)
            checked[block] += 1
        assert checked["b0"] > 0 and checked["b1"] > 0

    def test_three_domain_capture_resolution(self, lib):
        """Three clock domains, each with its own period: every setup
        endpoint must capture against its *own* domain's clock, so
        shifting two domains by different deltas moves exactly those
        domains' slacks by exactly their delta — and a re-run restoring
        one period undoes only that domain's shift."""
        hier = hierarchical_soc(seed=3, n_blocks=3, with_feedthrough=False)
        flat = hier.flatten()
        base = STA(flat, lib, hier.top_constraints(period=800.0)).run()
        deltas = {"b0": 0.0, "b1": 160.0, "b2": 240.0}
        skewed = STA(flat, lib, hier.top_constraints(
            period=800.0,
            periods={"b1": 800.0 - deltas["b1"],
                     "b2": 800.0 - deltas["b2"]})).run()
        half = STA(flat, lib, hier.top_constraints(
            period=800.0, periods={"b2": 800.0 - deltas["b2"]})).run()
        checked = {"b0": 0, "b1": 0, "b2": 0}
        for e in base.endpoints("setup"):
            if e.kind != "setup":
                continue
            block = e.endpoint.instance.split("_", 1)[0]
            assert skewed.slack_of(e.endpoint, "setup") == pytest.approx(
                e.slack - deltas[block], abs=1e-6)
            assert half.slack_of(e.endpoint, "setup") == pytest.approx(
                e.slack - (deltas["b2"] if block == "b2" else 0.0),
                abs=1e-6)
            checked[block] += 1
        assert all(count > 0 for count in checked.values())
        # Hold checks are same-cycle: immune to every period change.
        for e in base.endpoints("hold"):
            assert skewed.slack_of(e.endpoint, "hold") == pytest.approx(
                e.slack, abs=1e-6)

    def test_primary_clock_selection(self):
        a = ClockSpec(name="a", period=500.0, port="a")
        b = ClockSpec(name="b", period=600.0, port="b")
        cons = Constraints(clocks={"b": b, "a": a})
        assert cons.primary_clock().name == "a"
        clk = ClockSpec(name="clk", period=700.0)
        cons = Constraints(clocks={"b": b, "clk": clk, "a": a})
        assert cons.primary_clock().name == "clk"
        with pytest.raises(ConstraintError):
            Constraints().primary_clock()

    def test_the_clock_still_rejects_multi_clock(self):
        a = ClockSpec(name="a", period=500.0, port="a")
        b = ClockSpec(name="b", period=600.0, port="b")
        with pytest.raises(ConstraintError):
            Constraints(clocks={"a": a, "b": b}).the_clock()


class TestBlockConstraints:
    def test_rerooted_clock_and_inherited_margins(self):
        top = Constraints(
            clocks={"clk_b0": ClockSpec(name="clk_b0", period=750.0,
                                        port="clk_b0",
                                        uncertainty_setup=17.0)},
            flat_setup_margin=9.0,
            default_input_slew=31.0,
        )
        bc = block_constraints(top, top.clocks["clk_b0"], "clk")
        spec = bc.the_clock()
        assert spec.port == "clk"
        assert spec.period == 750.0
        assert spec.uncertainty_setup == 17.0
        assert bc.flat_setup_margin == 9.0
        assert bc.default_input_slew == 31.0
        assert bc.input_delays == {}


class TestAgreement:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_boundary_slacks_match_flat_within_1ps(self, lib, seed):
        """The acceptance gate: on randomized hierarchical SoCs, every
        boundary endpoint's hier slack is within 1 ps of flat."""
        hier = hierarchical_soc(seed=seed, n_blocks=3)
        cons = hier.top_constraints(period=900.0)
        scen = Scenario(name="tt", library=lib, constraints=cons)
        report = compare_hier_vs_flat(hier, [scen], jobs=2,
                                      executor="thread")
        assert report.rows
        assert not report.degraded
        assert report.max_divergence <= 1.0
        assert report.ok
        kinds = {r.kind for r in report.rows}
        assert kinds == {"setup", "hold", "output"}

    def test_agreement_with_per_block_periods(self, lib):
        hier = hierarchical_soc(seed=5, n_blocks=3)
        periods = {name: 800.0 + 60.0 * i
                   for i, name in enumerate(hier.blocks)}
        cons = hier.top_constraints(period=900.0, periods=periods)
        scen = Scenario(name="mc", library=lib, constraints=cons)
        report = compare_hier_vs_flat(hier, [scen], jobs=2,
                                      executor="thread")
        assert report.ok
        assert report.max_divergence <= 1.0

    def test_agreement_across_library_corners(self, lib):
        from repro.liberty import LibraryCondition

        hier = hierarchical_soc(seed=2, n_blocks=2)
        cons = hier.top_constraints(period=1100.0)
        slow = make_library(LibraryCondition(process="ss", vdd=0.72,
                                             temp_c=125.0))
        scens = [
            Scenario(name="tt", library=lib, constraints=cons),
            Scenario(name="ss", library=slow, constraints=cons,
                     beol_corner_name="cw"),
        ]
        report = compare_hier_vs_flat(hier, scens, jobs=2,
                                      executor="thread")
        assert report.ok
        assert {r.scenario for r in report.rows} == {"tt", "ss"}

    def test_render_reports_bound_and_speed(self, lib):
        hier = hierarchical_soc(seed=1, n_blocks=2)
        scen = Scenario(name="tt", library=lib,
                        constraints=hier.top_constraints(period=900.0))
        report = compare_hier_vs_flat(hier, [scen], executor="thread")
        text = report.render()
        assert "max divergence" in text
        assert "bound 1.000" in text
        assert "OK" in text


class TestProcessFanout:
    def test_extractions_cross_process_boundaries(self, lib):
        """Acceptance: per-block extraction fans across >= 2 worker
        processes, proven by the pids recorded on etm_extract spans."""
        hier = hierarchical_soc(seed=2, n_blocks=4)
        scen = Scenario(name="tt", library=lib,
                        constraints=hier.top_constraints(period=900.0))
        tracer = obs_tracing.Tracer()
        with obs_tracing.use(tracer):
            outcome = HierScheduler(hier, [scen], jobs=2,
                                    executor="process").signoff()
        assert outcome.ok
        assert len(outcome.worker_pids) >= 2
        assert os.getpid() not in outcome.worker_pids

    def test_exactly_one_sta_run_span_per_extraction(self, lib):
        """Acceptance: no second full STA hides inside an extraction."""
        hier = hierarchical_soc(seed=1, n_blocks=2)
        scen = Scenario(name="tt", library=lib,
                        constraints=hier.top_constraints(period=900.0))
        tracer = obs_tracing.Tracer()
        with obs_tracing.use(tracer):
            outcome = HierScheduler(hier, [scen], jobs=2,
                                    executor="thread").signoff()
        extracts = [s for s in tracer.spans() if s.name == "etm_extract"]
        extract_ids = {s.span_id for s in extracts}
        runs = [s for s in tracer.spans()
                if s.name == "sta_run" and s.parent_id in extract_ids]
        assert len(extracts) == outcome.etm_computed > 0
        assert len(runs) == len(extracts)

    def test_extraction_runs_one_sta_each(self, lib, monkeypatch):
        """Call-count proof of the extractor fix: N extractions plus one
        top-level pass run exactly N + 1 full STAs."""
        calls = []
        original = STA.run

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(STA, "run", counting)
        hier = hierarchical_soc(seed=1, n_blocks=2, with_feedthrough=False)
        scen = Scenario(name="tt", library=lib,
                        constraints=hier.top_constraints(period=900.0))
        outcome = HierScheduler(hier, [scen], jobs=1,
                                executor="serial").signoff()
        assert outcome.ok
        assert outcome.etm_computed == len(hier.blocks)
        assert len(calls) == outcome.etm_computed + 1


class TestCachingAndDegradation:
    def test_warm_cache_skips_extraction(self, lib):
        hier = hierarchical_soc(seed=1, n_blocks=2)
        scen = Scenario(name="tt", library=lib,
                        constraints=hier.top_constraints(period=900.0))
        cache = ScenarioResultCache()
        cold = HierScheduler(hier, [scen], jobs=1, executor="serial",
                             etm_cache=cache)
        first = cold.signoff()
        assert first.etm_computed == len(hier.blocks)
        warm = HierScheduler(hier, [scen], jobs=1, executor="serial",
                             etm_cache=cache)
        second = warm.signoff()
        assert second.etm_computed == 0
        assert second.etm_cache_hits == len(hier.blocks)
        assert warm.extraction_runs == 0
        assert second.merged_wns("setup") == pytest.approx(
            first.merged_wns("setup"))

    def test_broken_block_quarantines_scenario(self, lib):
        bad = Design("bad")
        bad.add_port("clk", PortDirection.INPUT)
        bad.add_port("bin", PortDirection.INPUT)
        bad.add_port("bout", PortDirection.OUTPUT)
        bad.add_instance("x", "NO_SUCH_CELL", {"A": "bin", "Z": "bout"})
        hier = HierarchicalDesign("broken")
        hier.add_block("b0", with_boundary_anchors(
            random_logic("ok0", seed=1)), origin=(40.0, 20.0))
        hier.add_block("bx", bad, origin=(220.0, 20.0))
        scen = Scenario(name="tt", library=lib,
                        constraints=hier.top_constraints(period=900.0))
        outcome = HierScheduler(
            hier, [scen], jobs=1, executor="serial",
            policy=RetryPolicy(retries=0),
        ).signoff()
        assert outcome.degraded == ["tt"]
        assert outcome.top is None
        assert not outcome.ok
        assert any(e.status == "degraded" for e in outcome.extractions)

    def test_missing_block_clock_rejected(self, lib):
        hier = hierarchical_soc(seed=1, n_blocks=2)
        cons = Constraints.single_clock(900.0)
        scen = Scenario(name="tt", library=lib, constraints=cons)
        with pytest.raises(TimingError, match="clk_"):
            HierScheduler(hier, [scen])

    def test_strict_rejects_unanchored_interfaces(self, lib):
        hier = HierarchicalDesign("raw")
        hier.add_block("b0", random_logic("raw0", seed=6),
                       origin=(40.0, 20.0))
        hier.add_block("b1", random_logic("raw1", seed=7),
                       origin=(220.0, 20.0))
        scen = Scenario(name="tt", library=lib,
                        constraints=hier.top_constraints(period=900.0))
        with pytest.raises(TimingError, match="anchored"):
            HierScheduler(hier, [scen], jobs=1,
                          executor="serial").signoff()
        relaxed = HierScheduler(hier, [scen], jobs=1, executor="serial",
                                strict=False).signoff()
        assert relaxed.top is not None
        assert relaxed.merged_wns("setup") > -math.inf

    def test_outcome_render_mentions_blocks(self, lib):
        hier = hierarchical_soc(seed=1, n_blocks=2)
        scen = Scenario(name="tt", library=lib,
                        constraints=hier.top_constraints(period=900.0))
        outcome = HierScheduler(hier, [scen], jobs=1,
                                executor="serial").signoff()
        text = outcome.render("setup")
        assert "block-internal WNS" in text
        assert "ETM extractions" in text
        assert "hier merged WNS" in text
