"""Tests for backward required times, pin slacks and ETM extraction."""

import math

import pytest

from repro.errors import TimingError
from repro.liberty import make_library
from repro.netlist.design import PinRef
from repro.netlist.generators import random_logic, tiny_design
from repro.sta import STA, Constraints
from repro.sta.etm import extract_etm, render_etm
from repro.sta.required import (
    instance_slacks,
    pin_slack,
    required_times,
)


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def sta(lib):
    d = random_logic(n_gates=150, n_levels=8, seed=7)
    sta = STA(d, lib, Constraints.single_clock(500.0))
    sta.report = sta.run()
    return sta


class TestRequiredTimes:
    def test_requires_run(self, lib):
        fresh = STA(tiny_design(), lib, Constraints.single_clock(500.0))
        with pytest.raises(TimingError):
            required_times(fresh)

    def test_bad_mode_rejected(self, sta):
        with pytest.raises(TimingError):
            required_times(sta, "typ")

    def test_endpoint_pin_slack_matches_report(self, sta):
        """Slack from the backward pass must equal the report's endpoint
        slack at every setup endpoint."""
        req = required_times(sta, "late")
        for e in sta.report.endpoints("setup"):
            if e.kind != "setup":
                continue
            assert pin_slack(sta, req, e.endpoint, "late") == pytest.approx(
                e.slack, abs=0.01
            )

    def test_hold_pin_slack_matches_report(self, sta):
        req = required_times(sta, "early")
        for e in sta.report.endpoints("hold")[:10]:
            assert pin_slack(sta, req, e.endpoint, "early") == pytest.approx(
                e.slack, abs=0.01
            )

    def test_slack_never_increases_downstream_of_worst_path(self, sta):
        """Every pin on the worst path carries the worst slack."""
        worst = sta.report.worst("setup")
        req = required_times(sta, "late")
        path = sta.worst_path(worst)
        for point in path.points:
            if point.ref.is_port:
                continue
            slack = pin_slack(sta, req, point.ref, "late")
            assert slack <= worst.slack + 0.5

    def test_instance_slacks_cover_design(self, sta):
        slacks = instance_slacks(sta, "late")
        assert set(slacks) == set(sta.design.instances)

    def test_instance_slacks_identify_critical_cells(self, sta):
        slacks = instance_slacks(sta, "late")
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        for point in path.points:
            if point.kind == "cell" and not point.ref.is_port:
                assert slacks[point.ref.instance] == pytest.approx(
                    worst.slack, abs=0.5
                )


class TestEtm:
    @pytest.fixture(scope="class")
    def etm(self, sta):
        return extract_etm(sta)

    def test_ports_extracted(self, sta, etm):
        data_inputs = [p for p in sta.design.input_ports() if p != "clk"]
        assert set(etm.input_ports()) == set(data_inputs)
        assert set(etm.output_ports()) == set(sta.design.output_ports())

    def test_input_caps_positive(self, etm):
        for port in etm.input_ports():
            assert etm.ports[port].input_cap > 0.0

    def test_setup_budget_matches_flat_analysis(self, sta, lib, etm):
        """Shifting one port's top-level arrival must shift the flat slack
        of port-fed endpoints exactly as the ETM predicts."""
        port = etm.input_ports()[0]
        budget = etm.ports[port].setup_budget
        # Flat run with that port delayed by (budget - 10): the worst
        # endpoint fed by the port should sit at ~10 ps slack.
        c = Constraints.single_clock(500.0)
        c.input_delays = {port: budget - 10.0}
        flat = STA(sta.design, lib, c).run()
        etm_slack = etm.setup_slack_for_arrival(port, budget - 10.0)
        assert etm_slack == pytest.approx(10.0, abs=0.01)
        # The flat WNS cannot be better than the ETM prediction, and when
        # the port path dominates it matches.
        port_endpoints = [
            e.slack for e in flat.endpoints("setup")
        ]
        assert min(port_endpoints) <= etm_slack + 0.5

    def test_check_merges_internal_and_boundary(self, etm):
        arrivals = {p: 0.0 for p in etm.input_ports()}
        merged = etm.check(arrivals)
        assert merged <= etm.internal_wns + 1e-9

    def test_excessive_arrival_fails_check(self, etm):
        port = etm.input_ports()[0]
        budget = etm.ports[port].setup_budget
        assert etm.setup_slack_for_arrival(port, budget + 5.0) < 0.0

    def test_unknown_port_rejected(self, etm):
        with pytest.raises(TimingError):
            etm.setup_slack_for_arrival("nope", 0.0)

    def test_extraction_requires_zero_input_delays(self, lib):
        d = tiny_design()
        c = Constraints.single_clock(500.0)
        c.input_delays = {"in0": 20.0}
        sta = STA(d, lib, c)
        sta.report = sta.run()
        with pytest.raises(TimingError, match="zero input delays"):
            extract_etm(sta)

    def test_clock_to_out_positive(self, etm):
        for port in etm.output_ports():
            assert etm.ports[port].clock_to_out > 0.0

    def test_render(self, etm):
        text = render_etm(etm)
        assert "ETM for block" in text
        assert "setup budget" in text


class TestMiniaIntegrationWithSlacks:
    def test_instance_slacks_feed_minia_guard(self, lib):
        """End-to-end: the required-time engine supplies the MinIA fixer's
        timing guard."""
        import random

        from repro.netlist.transforms import swap_vt
        from repro.place.minia import fix_minia_violations
        from repro.place.rows import Placement

        d = random_logic(n_gates=150, n_levels=8, seed=2)
        d.bind(lib)
        rng = random.Random(2)
        for name in list(d.instances):
            inst = d.instances[name]
            if not lib.cell(inst.cell_name).is_sequential and \
                    rng.random() < 0.3:
                swap_vt(d, lib, name, rng.choice(["lvt", "hvt"]))
        sta = STA(d, lib, Constraints.single_clock(500.0))
        sta.report = sta.run()
        slacks = instance_slacks(sta, "late")
        placement = Placement.from_design(d, lib)
        placement.abut_all()
        report = fix_minia_violations(
            d, lib, placement,
            slack_of=lambda name: slacks.get(name, math.inf),
            slack_guard=10.0,
        )
        assert report.fix_rate >= 0.8


class TestEtmFlatAgreementProperties:
    """Property tests: ETM boundary predictions vs actual flat analysis.

    The required-time backward pass is independent of input arrivals, so
    shifting one port's input delay must move the flat per-pin slack at
    that port by exactly the shift — which is precisely what the ETM
    budget arithmetic predicts. These are exact equalities, not bounds.
    """

    @pytest.mark.parametrize("seed", [3, 11])
    def test_hold_slack_for_arrival_matches_flat_exactly(self, lib, seed):
        d = random_logic("hb", n_gates=120, n_levels=6, seed=seed)
        base = STA(d, lib, Constraints.single_clock(500.0))
        base.run()
        etm = extract_etm(base)
        port = etm.input_ports()[0]
        arrival = etm.ports[port].hold_budget + 7.0
        c = Constraints.single_clock(500.0)
        c.input_delays = {port: arrival}
        shifted = STA(d, lib, c)
        shifted.run()
        req = required_times(shifted, "early")
        flat = pin_slack(shifted, req, PinRef("", port), "early")
        assert flat == pytest.approx(
            etm.hold_slack_for_arrival(port, arrival), abs=1e-9)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_setup_slack_for_arrival_matches_flat_exactly(self, lib, seed):
        d = random_logic("sb", n_gates=120, n_levels=6, seed=seed)
        base = STA(d, lib, Constraints.single_clock(500.0))
        base.run()
        etm = extract_etm(base)
        port = etm.input_ports()[0]
        arrival = etm.ports[port].setup_budget - 13.0
        c = Constraints.single_clock(500.0)
        c.input_delays = {port: arrival}
        shifted = STA(d, lib, c)
        shifted.run()
        req = required_times(shifted, "late")
        flat = pin_slack(shifted, req, PinRef("", port), "late")
        assert flat == pytest.approx(
            etm.setup_slack_for_arrival(port, arrival), abs=1e-9)

    def test_feedthroughs_classified_and_match_flat(self, lib):
        """Output arcs split correctly: clock-launched paths become
        clock->out, port-launched paths become feedthroughs whose delay
        is the flat in->out arrival."""
        from repro.netlist.hierarchy import feedthrough_block

        d = feedthrough_block(channels=2)
        sta = STA(d, lib, Constraints.single_clock(600.0))
        sta.run()
        etm = extract_etm(sta)
        assert set(etm.feedthrough_ports()) == {"ft_out0", "ft_out1"}
        assert etm.ports["ft_out0"].feedthrough_from == "ft_in0"
        assert "d_out" in etm.output_ports()
        assert "d_out" not in etm.feedthrough_ports()
        assert etm.ports["d_out"].clock_to_out is not None
        for i in range(2):
            out = PinRef("", f"ft_out{i}")
            flat_arr = max(
                sta.prop.at(out, dd).late
                for dd in ("rise", "fall") if sta.prop.has(out, dd)
            )
            assert etm.ports[f"ft_out{i}"].feedthrough_delay == \
                pytest.approx(flat_arr, abs=1e-9)
        # the registered path is measured from the clock edge instead:
        # its clock->out delay is far below the full-period feedthrough
        # budget frame of reference.
        assert etm.ports["d_out"].clock_to_out < 600.0

    def test_run_retains_report(self, lib):
        sta = STA(tiny_design(), lib, Constraints.single_clock(500.0))
        report = sta.run()
        assert sta.report is report

    def test_extract_etm_reuses_retained_report(self, lib, monkeypatch):
        """The extractor bug this PR fixes: extract_etm used to re-run a
        full STA because run() never stored its report."""
        calls = []
        original = STA.run

        def counting(self):
            calls.append(1)
            return original(self)

        monkeypatch.setattr(STA, "run", counting)
        sta = STA(random_logic(n_gates=60, n_levels=4, seed=9), lib,
                  Constraints.single_clock(500.0))
        sta.run()
        assert len(calls) == 1
        extract_etm(sta)
        assert len(calls) == 1
