"""Tests for backward required times, pin slacks and ETM extraction."""

import math

import pytest

from repro.errors import TimingError
from repro.liberty import make_library
from repro.netlist.design import PinRef
from repro.netlist.generators import random_logic, tiny_design
from repro.sta import STA, Constraints
from repro.sta.etm import extract_etm, render_etm
from repro.sta.required import (
    instance_slacks,
    pin_slack,
    required_times,
)


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def sta(lib):
    d = random_logic(n_gates=150, n_levels=8, seed=7)
    sta = STA(d, lib, Constraints.single_clock(500.0))
    sta.report = sta.run()
    return sta


class TestRequiredTimes:
    def test_requires_run(self, lib):
        fresh = STA(tiny_design(), lib, Constraints.single_clock(500.0))
        with pytest.raises(TimingError):
            required_times(fresh)

    def test_bad_mode_rejected(self, sta):
        with pytest.raises(TimingError):
            required_times(sta, "typ")

    def test_endpoint_pin_slack_matches_report(self, sta):
        """Slack from the backward pass must equal the report's endpoint
        slack at every setup endpoint."""
        req = required_times(sta, "late")
        for e in sta.report.endpoints("setup"):
            if e.kind != "setup":
                continue
            assert pin_slack(sta, req, e.endpoint, "late") == pytest.approx(
                e.slack, abs=0.01
            )

    def test_hold_pin_slack_matches_report(self, sta):
        req = required_times(sta, "early")
        for e in sta.report.endpoints("hold")[:10]:
            assert pin_slack(sta, req, e.endpoint, "early") == pytest.approx(
                e.slack, abs=0.01
            )

    def test_slack_never_increases_downstream_of_worst_path(self, sta):
        """Every pin on the worst path carries the worst slack."""
        worst = sta.report.worst("setup")
        req = required_times(sta, "late")
        path = sta.worst_path(worst)
        for point in path.points:
            if point.ref.is_port:
                continue
            slack = pin_slack(sta, req, point.ref, "late")
            assert slack <= worst.slack + 0.5

    def test_instance_slacks_cover_design(self, sta):
        slacks = instance_slacks(sta, "late")
        assert set(slacks) == set(sta.design.instances)

    def test_instance_slacks_identify_critical_cells(self, sta):
        slacks = instance_slacks(sta, "late")
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        for point in path.points:
            if point.kind == "cell" and not point.ref.is_port:
                assert slacks[point.ref.instance] == pytest.approx(
                    worst.slack, abs=0.5
                )


class TestEtm:
    @pytest.fixture(scope="class")
    def etm(self, sta):
        return extract_etm(sta)

    def test_ports_extracted(self, sta, etm):
        data_inputs = [p for p in sta.design.input_ports() if p != "clk"]
        assert set(etm.input_ports()) == set(data_inputs)
        assert set(etm.output_ports()) == set(sta.design.output_ports())

    def test_input_caps_positive(self, etm):
        for port in etm.input_ports():
            assert etm.ports[port].input_cap > 0.0

    def test_setup_budget_matches_flat_analysis(self, sta, lib, etm):
        """Shifting one port's top-level arrival must shift the flat slack
        of port-fed endpoints exactly as the ETM predicts."""
        port = etm.input_ports()[0]
        budget = etm.ports[port].setup_budget
        # Flat run with that port delayed by (budget - 10): the worst
        # endpoint fed by the port should sit at ~10 ps slack.
        c = Constraints.single_clock(500.0)
        c.input_delays = {port: budget - 10.0}
        flat = STA(sta.design, lib, c).run()
        etm_slack = etm.setup_slack_for_arrival(port, budget - 10.0)
        assert etm_slack == pytest.approx(10.0, abs=0.01)
        # The flat WNS cannot be better than the ETM prediction, and when
        # the port path dominates it matches.
        port_endpoints = [
            e.slack for e in flat.endpoints("setup")
        ]
        assert min(port_endpoints) <= etm_slack + 0.5

    def test_check_merges_internal_and_boundary(self, etm):
        arrivals = {p: 0.0 for p in etm.input_ports()}
        merged = etm.check(arrivals)
        assert merged <= etm.internal_wns + 1e-9

    def test_excessive_arrival_fails_check(self, etm):
        port = etm.input_ports()[0]
        budget = etm.ports[port].setup_budget
        assert etm.setup_slack_for_arrival(port, budget + 5.0) < 0.0

    def test_unknown_port_rejected(self, etm):
        with pytest.raises(TimingError):
            etm.setup_slack_for_arrival("nope", 0.0)

    def test_extraction_requires_zero_input_delays(self, lib):
        d = tiny_design()
        c = Constraints.single_clock(500.0)
        c.input_delays = {"in0": 20.0}
        sta = STA(d, lib, c)
        sta.report = sta.run()
        with pytest.raises(TimingError, match="zero input delays"):
            extract_etm(sta)

    def test_clock_to_out_positive(self, etm):
        for port in etm.output_ports():
            assert etm.ports[port].clock_to_out > 0.0

    def test_render(self, etm):
        text = render_etm(etm)
        assert "ETM for block" in text
        assert "setup budget" in text


class TestMiniaIntegrationWithSlacks:
    def test_instance_slacks_feed_minia_guard(self, lib):
        """End-to-end: the required-time engine supplies the MinIA fixer's
        timing guard."""
        import random

        from repro.netlist.transforms import swap_vt
        from repro.place.minia import fix_minia_violations
        from repro.place.rows import Placement

        d = random_logic(n_gates=150, n_levels=8, seed=2)
        d.bind(lib)
        rng = random.Random(2)
        for name in list(d.instances):
            inst = d.instances[name]
            if not lib.cell(inst.cell_name).is_sequential and \
                    rng.random() < 0.3:
                swap_vt(d, lib, name, rng.choice(["lvt", "hvt"]))
        sta = STA(d, lib, Constraints.single_clock(500.0))
        sta.report = sta.run()
        slacks = instance_slacks(sta, "late")
        placement = Placement.from_design(d, lib)
        placement.abut_all()
        report = fix_minia_violations(
            d, lib, placement,
            slack_of=lambda name: slacks.get(name, math.inf),
            slack_guard=10.0,
        )
        assert report.fix_rate >= 0.8
