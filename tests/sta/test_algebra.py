"""The pluggable timing-value algebra: scalar identity, canonical-form
arithmetic, Clark's moment-matched max against brute-force sampling, and
the sample-vector (Monte-Carlo) algebra."""

import math

import numpy as np
import pytest

from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints
from repro.sta.algebra import (
    SCALAR,
    CanonicalAlgebra,
    CanonicalForm,
    MonteCarloAlgebra,
    Samples,
    ScalarAlgebra,
    VariationModel,
    scalar_of,
    sigma_of,
)

MODEL = VariationModel(n_sources=2, n_private=4)


def form(mean, coeffs, indep=0.0):
    vec = np.zeros(MODEL.dim)
    for idx, value in coeffs.items():
        vec[idx] = value
    return CanonicalForm(mean, vec, indep)


class TestScalarAlgebra:
    def test_max_min_match_builtin_selection(self):
        alg = ScalarAlgebra()
        # Python's max(a, b) returns a on ties; the engine's merge order
        # depends on that exact selection, so the algebra must match.
        a, b = 5.0, 5.0
        assert alg.max(a, b) is max(a, b)
        assert alg.min(a, b) is min(a, b)
        assert alg.max(3.0, 7.0) == 7.0
        assert alg.min(3.0, 7.0) == 3.0
        assert alg.max(-math.inf, 2.0) == 2.0
        assert alg.min(math.inf, 2.0) == 2.0

    def test_generic_ops_and_le(self):
        alg = ScalarAlgebra()
        assert alg.add(1.5, 2.0) == 3.5
        assert alg.sub(1.5, 2.0) == -0.5
        assert alg.scale(1.5, 2.0) == 3.0
        assert alg.le(1.0, 1.0)
        assert not alg.le(1.1, 1.0)
        assert alg.lift(4.0) == 4.0
        assert alg.to_scalar(4.0) == 4.0

    def test_arc_delay_is_identity(self):
        assert SCALAR.arc_delay(None, "rise", 10.0, 5.0, "late", 42.0) \
            == 42.0

    def test_default_sta_is_scalar_and_bit_identical(self):
        """An explicit ScalarAlgebra run renders byte-for-byte the same
        report as the default (no-algebra) run."""
        design = random_logic(name="alg", n_gates=80, n_levels=6, seed=4)
        lib = make_library()
        cons = Constraints.single_clock(700.0)
        default = STA(design, lib, cons).run()
        explicit = STA(design, lib, cons, algebra=ScalarAlgebra()).run()
        assert default.render_full() == explicit.render_full()
        assert default.content_digest() == explicit.content_digest()


class TestCanonicalForm:
    def test_arithmetic_composes_moments(self):
        a = form(10.0, {0: 3.0}, indep=4.0)
        b = form(5.0, {0: 1.0, 2: 2.0})
        s = a + b
        assert s.mean == 15.0
        assert s.coeffs[0] == 4.0 and s.coeffs[2] == 2.0
        assert s.indep == 4.0  # RSS with zero
        d = a - b
        assert d.mean == 5.0
        assert d.coeffs[0] == 2.0 and d.coeffs[2] == -2.0
        k = a * 2.0
        assert k.mean == 20.0 and k.sigma() == pytest.approx(2 * a.sigma())
        n = -a
        assert n.mean == -10.0 and n.sigma() == pytest.approx(a.sigma())

    def test_scalar_mixing(self):
        a = form(10.0, {1: 2.0})
        assert (a + 5.0).mean == 15.0
        assert (5.0 + a).mean == 15.0
        assert (a - 5.0).mean == 5.0
        assert (5.0 - a).mean == -5.0
        assert (5.0 - a).coeffs[1] == -2.0

    def test_variance_and_covariance(self):
        a = form(0.0, {0: 3.0}, indep=4.0)
        assert a.variance() == pytest.approx(25.0)
        assert a.sigma() == pytest.approx(5.0)
        b = form(0.0, {0: 2.0, 1: 1.0})
        # Only the shared dimension correlates; indep never does.
        assert a.covariance(b) == pytest.approx(6.0)

    def test_orders_and_formats_by_mean(self):
        a = form(10.0, {0: 100.0})  # huge sigma, small mean
        b = form(11.0, {})
        assert a < b and b > a and a <= b and b >= a
        assert float(a) == 10.0
        assert f"{a:7.2f}" == f"{10.0:7.2f}"
        assert not math.isinf(a)
        assert sorted([b, a], key=lambda v: v) == [a, b]

    def test_scalar_of_sigma_of(self):
        a = form(10.0, {0: 3.0}, indep=4.0)
        assert scalar_of(a) == 10.0
        assert sigma_of(a) == pytest.approx(5.0)
        assert scalar_of(7.5) == 7.5
        assert sigma_of(7.5) == 0.0


class TestClarkMax:
    """Clark's moment-matched max against dense sampling of the same
    pair of correlated canonical forms."""

    def sample_pair(self, a, b, n=200_000):
        rng = np.random.default_rng(7)
        z = rng.standard_normal((n, MODEL.dim))
        return (a.sample(z, rng.standard_normal(n)),
                b.sample(z, rng.standard_normal(n)))

    @pytest.mark.parametrize("a,b", [
        (form(100.0, {0: 8.0}, indep=3.0), form(98.0, {0: 5.0, 1: 6.0})),
        (form(50.0, {1: 10.0}), form(50.0, {2: 10.0})),      # tie, indep
        (form(30.0, {0: 4.0}), form(10.0, {0: 4.0})),         # far apart
    ])
    def test_matches_sampled_moments(self, a, b):
        alg = CanonicalAlgebra(None, MODEL)
        m = alg.max(a, b)
        av, bv = self.sample_pair(a, b)
        ref = np.maximum(av, bv)
        assert m.mean == pytest.approx(float(ref.mean()), abs=0.15)
        assert m.sigma() == pytest.approx(float(ref.std()), rel=0.03,
                                          abs=0.15)

    def test_min_is_negated_max(self):
        alg = CanonicalAlgebra(None, MODEL)
        a = form(100.0, {0: 8.0})
        b = form(98.0, {1: 6.0})
        lo = alg.min(a, b)
        hi = alg.max(-a, -b)
        assert lo.mean == pytest.approx(-hi.mean)
        assert lo.sigma() == pytest.approx(hi.sigma())

    def test_infinite_sentinels_pass_through(self):
        alg = CanonicalAlgebra(None, MODEL)
        a = form(100.0, {0: 8.0})
        assert alg.max(-math.inf, a) is a
        assert alg.max(a, -math.inf) is a
        assert alg.min(math.inf, a) is a
        assert alg.min(a, math.inf) is a
        assert alg.max(math.inf, a) == math.inf
        assert alg.min(-math.inf, a) == -math.inf

    def test_degenerate_cases_select(self):
        alg = CanonicalAlgebra(None, MODEL)
        # Zero variance on both sides: plain selection.
        assert alg.max(form(3.0, {}), form(5.0, {})).mean == 5.0
        # Perfectly correlated (theta ~ 0): larger mean dominates.
        a = form(10.0, {0: 4.0})
        b = form(9.0, {0: 4.0})
        m = alg.max(a, b)
        assert m.mean == 10.0 and m.sigma() == pytest.approx(4.0)


class TestVariationModel:
    def test_dims_and_determinism(self):
        m = VariationModel(n_sources=4, n_private=512)
        assert m.dim == 516
        assert 0 <= m.source_of("NAND2_X1") < 4
        assert m.source_of("NAND2_X1") == m.source_of("NAND2_X1")
        slot = m.slot_of("u1", "A", "Y", "rise")
        assert 4 <= slot < 516
        assert slot == m.slot_of("u1", "A", "Y", "rise")
        # Different arcs land on (generally) different slots.
        slots = {m.slot_of(f"u{i}", "A", "Y", "rise") for i in range(50)}
        assert len(slots) > 40


class TestMonteCarloAlgebra:
    def test_elementwise_max_and_broadcast(self):
        alg = MonteCarloAlgebra(None, MODEL, n_samples=4)
        a = Samples(np.array([1.0, 5.0, 2.0, 8.0]))
        b = Samples(np.array([3.0, 3.0, 3.0, 3.0]))
        m = alg.max(a, b)
        assert list(m.vec) == [3.0, 5.0, 3.0, 8.0]
        lo = alg.min(a, 3.0)
        assert list(lo.vec) == [1.0, 3.0, 2.0, 3.0]
        assert list(alg.samples_of(2.0)) == [2.0] * 4
        assert alg.max(-math.inf, a) is a

    def test_samples_order_by_mean(self):
        a = Samples(np.array([0.0, 10.0]))   # mean 5
        b = Samples(np.array([4.0, 4.1]))    # mean 4.05
        assert b < a and a > b
        assert float(a) == pytest.approx(5.0)

    def test_same_seed_same_draws(self):
        one = MonteCarloAlgebra(None, MODEL, n_samples=16)
        two = MonteCarloAlgebra(None, MODEL, n_samples=16)
        assert np.array_equal(one.z, two.z)
