"""Tests for constraints and MCMM scenario management."""

import pytest

from repro.errors import ConstraintError, TimingError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import tiny_design
from repro.sta.constraints import ClockSpec, Constraints
from repro.sta.mcmm import Scenario, ScenarioSet, standard_scenario_set


@pytest.fixture(scope="module")
def libs():
    return {
        "tt": make_library(LibraryCondition(process="tt")),
        "ss": make_library(LibraryCondition(process="ss", vdd=0.72,
                                            temp_c=125.0)),
        "ff": make_library(LibraryCondition(process="ff", vdd=0.88,
                                            temp_c=-30.0)),
    }


class TestConstraints:
    def test_single_clock(self):
        c = Constraints.single_clock(500.0)
        assert c.the_clock().period == 500.0

    def test_zero_period_rejected(self):
        with pytest.raises(ConstraintError):
            ClockSpec(name="c", period=0.0)

    def test_the_clock_requires_exactly_one(self):
        c = Constraints()
        with pytest.raises(ConstraintError):
            c.the_clock()
        c.clocks["a"] = ClockSpec("a", 100.0)
        c.clocks["b"] = ClockSpec("b", 200.0)
        with pytest.raises(ConstraintError):
            c.the_clock()

    def test_clock_for_port(self):
        c = Constraints.single_clock(500.0, port="clk")
        assert c.clock_for_port("clk").name == "clk"
        assert c.clock_for_port("other") is None

    def test_with_period_copies(self):
        c = Constraints.single_clock(500.0)
        c.input_delays["in0"] = 10.0
        c2 = c.with_period(300.0)
        assert c2.the_clock().period == 300.0
        assert c.the_clock().period == 500.0
        assert c2.input_delays == {"in0": 10.0}


class TestScenarios:
    def test_scenario_run(self, libs):
        s = Scenario("tt", libs["tt"], Constraints.single_clock(500.0))
        report = s.run(tiny_design(), __import__(
            "repro.beol.stack", fromlist=["default_stack"]
        ).default_stack())
        assert report.scenario == "tt"

    def test_unique_names_required(self, libs):
        c = Constraints.single_clock(500.0)
        with pytest.raises(TimingError):
            ScenarioSet([
                Scenario("x", libs["tt"], c),
                Scenario("x", libs["ss"], c),
            ])

    def test_empty_set_rejected(self):
        with pytest.raises(TimingError):
            ScenarioSet([])

    def test_mcmm_merged_wns_is_min(self, libs):
        c = Constraints.single_clock(500.0)
        sset = ScenarioSet([
            Scenario("tt", libs["tt"], c, beol_corner_name="typ"),
            Scenario("ss", libs["ss"], c, beol_corner_name="cw",
                     temp_c=125.0),
        ])
        result = sset.run(tiny_design())
        wns_each = [r.wns("setup") for r in result.reports.values()]
        assert result.merged_wns("setup") == min(wns_each)

    def test_slow_scenario_is_worst(self, libs):
        c = Constraints.single_clock(500.0)
        sset = ScenarioSet([
            Scenario("tt", libs["tt"], c),
            Scenario("ss", libs["ss"], c, beol_corner_name="cw",
                     temp_c=125.0),
        ])
        result = sset.run(tiny_design())
        assert result.worst_scenario("setup") == "ss"

    def test_endpoint_matrix_complete(self, libs):
        c = Constraints.single_clock(500.0)
        sset = ScenarioSet([
            Scenario("tt", libs["tt"], c),
            Scenario("ss", libs["ss"], c, temp_c=125.0),
        ])
        result = sset.run(tiny_design())
        matrix = result.endpoint_matrix("setup")
        assert matrix
        for row in matrix.values():
            assert set(row) == {"tt", "ss"}

    def test_prune_drops_dominated_fast_scenario(self, libs):
        """TT is dominated by SS (slower at every endpoint), so pruning
        keeps SS and drops TT."""
        c = Constraints.single_clock(500.0)
        sset = ScenarioSet([
            Scenario("tt", libs["tt"], c),
            Scenario("ss", libs["ss"], c, beol_corner_name="cw",
                     temp_c=125.0),
        ])
        reduced, dropped = sset.prune(tiny_design(), guard_margin=1.0)
        assert dropped == ["tt"]
        assert [s.name for s in reduced.scenarios] == ["ss"]

    def test_prune_keeps_non_dominated(self, libs):
        """Setup-slow (ss) and hold-fast (ff) scenarios both survive a
        setup+hold-aware workflow; in setup mode ff is dominated."""
        c = Constraints.single_clock(500.0)
        sset = ScenarioSet([
            Scenario("ss", libs["ss"], c, beol_corner_name="cw",
                     temp_c=125.0),
            Scenario("ff", libs["ff"], c, beol_corner_name="cb",
                     temp_c=-30.0),
        ])
        reduced, dropped = sset.prune(tiny_design(), guard_margin=1.0,
                                      mode="hold")
        # In hold mode the fast scenario is the pessimistic one.
        assert "ff" in [s.name for s in reduced.scenarios]

    def test_standard_scenario_set(self):
        def factory(process, vdd, temp):
            return make_library(
                LibraryCondition(process=process, vdd=vdd, temp_c=temp),
                flavors=("svt",),
            )

        sset = standard_scenario_set(
            Constraints.single_clock(500.0), factory,
            corners=[("tt", 0.8, 25.0, "typ"), ("ss", 0.72, 125.0, "cw")],
        )
        assert len(sset.scenarios) == 2
        result = sset.run(tiny_design())
        assert len(result.reports) == 2
