"""Integration tests: supervised signoff under injected faults, cache
integrity verification, and journal checkpoint/resume."""

import pytest

from repro.errors import SignoffError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic
from repro.runtime.journal import RunJournal
from repro.runtime.supervisor import RetryPolicy
from repro.sta import Constraints
from repro.sta.mcmm import Scenario
from repro.sta.scheduler import (
    ScenarioResultCache,
    ScenarioStatus,
    SignoffScheduler,
)
from repro.testing.faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    corrupt_cache_entry,
)


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def lib_ss():
    return make_library(
        LibraryCondition(process="ss", vdd=0.72, temp_c=125.0)
    )


def make_scenarios(lib, lib_ss):
    c = Constraints.single_clock(520.0)
    c.input_delays = {f"in{i}": 60.0 for i in range(8)}
    return [
        Scenario("tt_typ", lib, c),
        Scenario("ss_cw", lib_ss, c, beol_corner_name="cw", temp_c=125.0),
        Scenario("ss_rcw", lib_ss, c, beol_corner_name="rcw", temp_c=125.0),
    ]


def make_design(seed=9):
    return random_logic(n_inputs=8, n_outputs=8, n_gates=60,
                        n_levels=4, seed=seed)


def fast_policy(**kwargs):
    kwargs.setdefault("retries", 2)
    kwargs.setdefault("backoff_s", 0.0)
    return RetryPolicy(**kwargs)


class TestFaultRecovery:
    def test_transient_crash_is_retried(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        injector = FaultInjector(FaultPlan.of(Fault("crash", task="ss_cw")))
        scheduler = SignoffScheduler(
            scenarios, jobs=2, policy=fast_policy(),
            fault_injector=injector,
        )
        outcome = scheduler.signoff(make_design())
        assert outcome.ok
        assert sorted(outcome.reports) == ["ss_cw", "ss_rcw", "tt_typ"]
        assert outcome.records["ss_cw"].status is ScenarioStatus.RETRIED
        assert outcome.records["ss_cw"].attempts == 2
        assert outcome.records["tt_typ"].status is ScenarioStatus.OK
        assert scheduler.attempts == 4  # 3 scenarios + 1 retry

    def test_persistent_crash_quarantined_batch_completes(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="ss_rcw", attempts=tuple(range(1, 33))),
        ))
        scheduler = SignoffScheduler(
            scenarios, jobs=2, policy=fast_policy(retries=1),
            fault_injector=injector,
        )
        outcome = scheduler.signoff(make_design())
        assert not outcome.ok
        assert outcome.degraded == ["ss_rcw"]
        assert sorted(outcome.reports) == ["ss_cw", "tt_typ"]
        record = outcome.records["ss_rcw"]
        assert record.status is ScenarioStatus.DEGRADED
        assert record.attempts == 2
        assert "TaskDegradedError" in record.error
        assert len(record.error_chain) == 2
        # merged result still available over the surviving scenarios
        assert set(outcome.result.reports) == {"ss_cw", "tt_typ"}

    def test_crash_plus_hang_completes(self, lib, lib_ss):
        """The acceptance scenario: one crashing and one hanging scenario
        in the same batch; the batch completes with quarantine only where
        every attempt failed."""
        scenarios = make_scenarios(lib, lib_ss)
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="ss_cw", attempts=tuple(range(1, 33))),
            Fault("hang", task="ss_rcw", seconds=1.0),
        ))
        scheduler = SignoffScheduler(
            scenarios, jobs=2,
            policy=fast_policy(retries=1, timeout_s=0.5),
            fault_injector=injector,
        )
        outcome = scheduler.signoff(make_design())
        assert outcome.degraded == ["ss_cw"]
        assert outcome.records["ss_rcw"].status is ScenarioStatus.RETRIED
        assert sorted(outcome.reports) == ["ss_rcw", "tt_typ"]
        assert "DEGRADED: 1/3 scenario(s) quarantined" in outcome.render()

    def test_pool_break_falls_back(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        injector = FaultInjector(
            FaultPlan.of(Fault("pool_break", task="tt_typ"))
        )
        scheduler = SignoffScheduler(
            scenarios, jobs=2, policy=fast_policy(),
            fault_injector=injector,
        )
        outcome = scheduler.signoff(make_design())
        assert outcome.ok
        assert outcome.fallbacks == ["thread->serial"]
        assert outcome.executor_used == "serial"
        assert sorted(outcome.reports) == ["ss_cw", "ss_rcw", "tt_typ"]

    def test_pool_break_without_fallback_raises(self, lib, lib_ss):
        from repro.errors import ExecutorBrokenError

        scenarios = make_scenarios(lib, lib_ss)
        injector = FaultInjector(
            FaultPlan.of(Fault("pool_break", task="tt_typ"))
        )
        scheduler = SignoffScheduler(
            scenarios, jobs=2, policy=fast_policy(),
            fault_injector=injector, allow_fallback=False,
        )
        with pytest.raises(ExecutorBrokenError):
            scheduler.signoff(make_design())

    def test_keep_going_false_raises_after_journaling(self, lib, lib_ss,
                                                      tmp_path):
        scenarios = make_scenarios(lib, lib_ss)
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="ss_cw", attempts=tuple(range(1, 33))),
        ))
        journal = RunJournal(tmp_path / "run.jsonl")
        scheduler = SignoffScheduler(
            scenarios, jobs=2, policy=fast_policy(retries=1),
            fault_injector=injector, journal=journal, keep_going=False,
        )
        with pytest.raises(SignoffError) as info:
            scheduler.signoff(make_design())
        assert info.value.context["scenarios"] == ["ss_cw"]
        # the successes were journaled before the raise: a re-run resumes
        assert journal.count("scenario") == 2

    def test_faulted_run_matches_clean_run(self, lib, lib_ss):
        """Fault recovery must not change the timing answer."""
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        clean = SignoffScheduler(scenarios, jobs=1).signoff(design)
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="ss_cw"),
            Fault("crash", task="tt_typ"),
        ))
        faulted = SignoffScheduler(
            make_scenarios(lib, lib_ss), jobs=2,
            policy=fast_policy(), fault_injector=injector,
        ).signoff(design)
        for name in clean.reports:
            assert clean.reports[name].render_full() == \
                faulted.reports[name].render_full()


class TestCacheIntegrity:
    def test_corrupted_entry_recomputes(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        cache = ScenarioResultCache(verify=True)
        scheduler = SignoffScheduler(scenarios, cache=cache,
                                     policy=fast_policy())
        scheduler.signoff(design)
        assert scheduler.evaluations == 3

        corrupted_fp = corrupt_cache_entry(cache, seed=1)
        assert corrupted_fp is not None
        again = scheduler.signoff(design)
        # only the corrupted entry recomputes; the others hit
        assert len(again.recomputed) == 1
        assert len(again.cache_hits) == 2
        assert cache.stats.corruptions == 1
        assert scheduler.evaluations == 4
        assert again.records[again.recomputed[0]].fingerprint == corrupted_fp

    def test_unverified_cache_serves_corruption(self, lib, lib_ss):
        """Without verify=True the corruption goes undetected — the test
        documents why the CLI arms verification."""
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        cache = ScenarioResultCache(verify=False)
        scheduler = SignoffScheduler(scenarios, cache=cache)
        scheduler.signoff(design)
        corrupt_cache_entry(cache, seed=1)
        again = scheduler.signoff(design)
        assert again.recomputed == []  # poison served silently
        assert cache.stats.corruptions == 0


class TestCheckpointResume:
    def test_partial_journal_resumes(self, lib, lib_ss, tmp_path):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        path = tmp_path / "signoff.jsonl"

        first = SignoffScheduler(scenarios[:2], journal=RunJournal(path),
                                 policy=fast_policy())
        first.signoff(design)
        assert first.evaluations == 2

        # a fresh scheduler over the full set recomputes only the third
        second = SignoffScheduler(scenarios, journal=RunJournal(path),
                                  policy=fast_policy())
        outcome = second.signoff(design)
        assert second.evaluations == 1
        assert sorted(outcome.journal_hits) == ["ss_cw", "tt_typ"]
        assert outcome.recomputed == ["ss_rcw"]
        assert outcome.records["tt_typ"].status is ScenarioStatus.JOURNALED

    def test_full_journal_recomputes_nothing(self, lib, lib_ss, tmp_path):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        path = tmp_path / "signoff.jsonl"
        SignoffScheduler(scenarios, journal=RunJournal(path),
                         policy=fast_policy()).signoff(design)

        resumed = SignoffScheduler(scenarios, journal=RunJournal(path),
                                   policy=fast_policy())
        outcome = resumed.signoff(design)
        assert resumed.evaluations == 0
        assert outcome.recomputed == []
        assert len(outcome.journal_hits) == 3

    def test_journal_is_content_addressed(self, lib, lib_ss, tmp_path):
        """A checkpoint recorded for one design never satisfies another."""
        scenarios = make_scenarios(lib, lib_ss)
        path = tmp_path / "signoff.jsonl"
        SignoffScheduler(scenarios, journal=RunJournal(path),
                         policy=fast_policy()).signoff(make_design(seed=9))

        other = SignoffScheduler(scenarios, journal=RunJournal(path),
                                 policy=fast_policy())
        outcome = other.signoff(make_design(seed=10))
        assert other.evaluations == 3
        assert outcome.journal_hits == []

    def test_journaled_report_equals_computed(self, lib, lib_ss, tmp_path):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        path = tmp_path / "signoff.jsonl"
        fresh = SignoffScheduler(scenarios, journal=RunJournal(path),
                                 policy=fast_policy()).signoff(design)
        resumed = SignoffScheduler(scenarios, journal=RunJournal(path),
                                   policy=fast_policy()).signoff(design)
        for name in fresh.reports:
            assert fresh.reports[name].render_full() == \
                resumed.reports[name].render_full()

    def test_degraded_scenarios_are_not_journaled(self, lib, lib_ss,
                                                  tmp_path):
        """Quarantine must not checkpoint: the re-run retries the failed
        scenario instead of resuming its absence."""
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        path = tmp_path / "signoff.jsonl"
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="ss_cw", attempts=tuple(range(1, 33))),
        ))
        SignoffScheduler(
            scenarios, policy=fast_policy(retries=1),
            fault_injector=injector, journal=RunJournal(path),
        ).signoff(design)
        assert RunJournal(path).count("scenario") == 2

        # fault gone (the transient cleared): resume completes the batch
        healed = SignoffScheduler(scenarios, journal=RunJournal(path),
                                  policy=fast_policy())
        outcome = healed.signoff(design)
        assert healed.evaluations == 1
        assert outcome.recomputed == ["ss_cw"]
        assert outcome.ok


class TestRenderStatus:
    def test_status_column(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        outcome = SignoffScheduler(scenarios, jobs=2,
                                   policy=fast_policy()).signoff(make_design())
        text = outcome.render()
        assert "status" in text.splitlines()[0]
        for line in text.splitlines()[1:4]:
            assert " OK " in line

    def test_cached_status_shown(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        cache = ScenarioResultCache()
        scheduler = SignoffScheduler(scenarios, cache=cache,
                                     policy=fast_policy())
        scheduler.signoff(design)
        text = scheduler.signoff(design).render()
        assert text.count("CACHED") == 3

    def test_retried_and_degraded_status_shown(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="tt_typ"),
            Fault("crash", task="ss_rcw", attempts=tuple(range(1, 33))),
        ))
        outcome = SignoffScheduler(
            scenarios, jobs=2, policy=fast_policy(retries=1),
            fault_injector=injector,
        ).signoff(make_design())
        text = outcome.render()
        assert "RETRIED" in text
        assert "DEGRADED" in text
        degraded_line = next(
            l for l in text.splitlines() if l.startswith("ss_rcw")
        )
        assert "TaskDegradedError" in degraded_line
