"""Tests for path-based analysis, CPPR and SI delta delays."""

import pytest

from repro.liberty import make_library
from repro.netlist.design import Design, PinRef, PortDirection
from repro.netlist.generators import random_logic, tiny_design
from repro.sta import STA, Constraints
from repro.sta.cppr import (
    clock_path_pins,
    cppr_credit,
    endpoint_cppr_credit,
    launch_clock_pin,
)
from repro.sta.pba import analyze_endpoint, enumerate_paths, gba_vs_pba
from repro.sta.propagation import Derates
from repro.sta.si import coupling_deltas, total_si_impact


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def rand_sta(lib):
    d = random_logic(n_gates=200, n_levels=8, seed=11)
    sta = STA(d, lib, Constraints.single_clock(500.0))
    sta.report = sta.run()
    return sta


def shared_buffer_design():
    """clk -> shared buffer -> two flops, back-to-back data path."""
    d = Design("shared_clk")
    d.add_port("clk", PortDirection.INPUT)
    d.add_port("din", PortDirection.INPUT)
    d.add_port("dout", PortDirection.OUTPUT)
    d.add_instance("cb1", "BUF_X4_SVT", {"A": "clk", "Z": "c1"},
                   location=(0.0, 0.0))
    d.add_instance("cb2", "BUF_X4_SVT", {"A": "c1", "Z": "c2"},
                   location=(5.0, 0.0))
    d.add_instance("ffa", "DFF_X1_SVT",
                   {"D": "din", "CK": "c2", "Q": "q1"}, location=(10.0, 0.0))
    d.add_instance("u1", "INV_X1_SVT", {"A": "q1", "ZN": "n1"},
                   location=(15.0, 0.0))
    d.add_instance("ffb", "DFF_X1_SVT",
                   {"D": "n1", "CK": "c2", "Q": "dout"}, location=(20.0, 0.0))
    return d


class TestPathEnumeration:
    def test_paths_reach_startpoints(self, rand_sta):
        e = rand_sta.report.worst("setup")
        paths = list(enumerate_paths(rand_sta, e.endpoint, e.data_direction,
                                     max_paths=8))
        assert paths
        for p in paths:
            first_edge, src_dir, _ = p[0]
            src = getattr(first_edge, "driver", None) or first_edge.src
            assert not rand_sta.graph.in_edges.get(src)

    def test_max_paths_respected(self, rand_sta):
        e = rand_sta.report.worst("setup")
        paths = list(enumerate_paths(rand_sta, e.endpoint, e.data_direction,
                                     max_paths=5))
        assert len(paths) <= 5

    def test_paths_distinct(self, rand_sta):
        e = rand_sta.report.worst("setup")
        paths = list(enumerate_paths(rand_sta, e.endpoint, e.data_direction,
                                     max_paths=16))
        signatures = {
            tuple((id(edge), sd, dd) for edge, sd, dd in p) for p in paths
        }
        assert len(signatures) == len(paths)


class TestPba:
    def test_pba_never_worse_than_gba(self, rand_sta):
        for r in gba_vs_pba(rand_sta, rand_sta.report, n_endpoints=8,
                            max_paths=16):
            assert r.pba_slack >= r.gba_slack - 1e-9

    def test_pba_recovers_pessimism_somewhere(self, rand_sta):
        results = gba_vs_pba(rand_sta, rand_sta.report, n_endpoints=10,
                             max_paths=32)
        assert any(r.pessimism_recovered > 0.01 for r in results)

    def test_pba_counts_paths(self, rand_sta):
        e = rand_sta.report.worst("setup")
        r = analyze_endpoint(rand_sta, e, max_paths=8)
        assert 1 <= r.paths_analyzed <= 8

    def test_hold_endpoints_rejected(self, rand_sta):
        from repro.errors import TimingError

        hold_ep = rand_sta.report.worst("hold")
        with pytest.raises(TimingError):
            analyze_endpoint(rand_sta, hold_ep)


class TestCppr:
    @pytest.fixture()
    def derated_sta(self, lib):
        sta = STA(
            shared_buffer_design(), lib, Constraints.single_clock(500.0),
            derates=Derates(clock_late=1.10, clock_early=0.90),
        )
        sta.report = sta.run()
        return sta

    def test_clock_path_pins(self, derated_sta):
        pins = clock_path_pins(derated_sta, PinRef("ffb", "CK"))
        names = [str(p) for p in pins]
        assert names[0] == "clk"
        assert "cb1/Z" in names and "cb2/Z" in names

    def test_launch_clock_pin_found(self, derated_sta):
        e = [e for e in derated_sta.report.setup
             if e.endpoint == PinRef("ffb", "D")][0]
        assert launch_clock_pin(derated_sta, e) == PinRef("ffa", "CK")

    def test_shared_tree_gives_positive_credit(self, derated_sta):
        credit = cppr_credit(derated_sta, PinRef("ffa", "CK"),
                             PinRef("ffb", "CK"))
        assert credit > 0.0

    def test_endpoint_credit_positive(self, derated_sta):
        e = [e for e in derated_sta.report.setup
             if e.endpoint == PinRef("ffb", "D")][0]
        assert endpoint_cppr_credit(derated_sta, e) > 0.0

    def test_no_derate_no_credit(self, lib):
        sta = STA(shared_buffer_design(), lib, Constraints.single_clock(500.0))
        sta.report = sta.run()
        credit = cppr_credit(sta, PinRef("ffa", "CK"), PinRef("ffb", "CK"))
        assert credit == pytest.approx(0.0, abs=1e-9)

    def test_output_endpoint_credit_zero(self, derated_sta):
        out_ep = [e for e in derated_sta.report.setup if e.kind == "output"][0]
        assert endpoint_cppr_credit(derated_sta, out_ep) == 0.0


class TestSi:
    def test_deltas_positive(self, lib):
        d = tiny_design()
        sta = STA(d, lib, Constraints.single_clock(500.0))
        deltas = coupling_deltas(sta.graph, sta.parasitics)
        assert deltas
        assert all(v > 0 for v in deltas.values())

    def test_si_worsens_setup(self, lib):
        d = random_logic(n_gates=100, n_levels=6, seed=9)
        plain = STA(d, lib, Constraints.single_clock(500.0)).run()
        noisy = STA(d, lib, Constraints.single_clock(500.0),
                    si_enabled=True).run()
        assert noisy.wns("setup") < plain.wns("setup")

    def test_si_worsens_hold(self, lib):
        c = Constraints.single_clock(500.0)
        c.input_delays = {"in0": 60.0, "in1": 60.0}
        plain = STA(tiny_design(), lib, c).run()
        noisy = STA(tiny_design(), lib, c, si_enabled=True).run()
        ep = PinRef("ff2", "D")
        assert noisy.slack_of(ep, "hold") <= plain.slack_of(ep, "hold")

    def test_total_impact(self, lib):
        d = tiny_design()
        sta = STA(d, lib, Constraints.single_clock(500.0))
        deltas = coupling_deltas(sta.graph, sta.parasitics)
        assert total_si_impact(deltas) == pytest.approx(sum(deltas.values()))

    def test_ndr_reduces_si_delta(self, lib):
        from repro.netlist.transforms import set_ndr

        d1 = tiny_design()
        sta1 = STA(d1, lib, Constraints.single_clock(500.0))
        base = coupling_deltas(sta1.graph, sta1.parasitics)["n1"]
        d2 = tiny_design()
        set_ndr(d2, "n1")
        sta2 = STA(d2, lib, Constraints.single_clock(500.0))
        shielded = coupling_deltas(sta2.graph, sta2.parasitics)["n1"]
        assert shielded < base
