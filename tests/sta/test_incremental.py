"""Tests for the incremental timer: correctness vs full rebuild, speed."""

import time

import pytest

from repro.errors import TimingError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.netlist.transforms import swap_vt, upsize
from repro.sta import STA, Constraints
from repro.sta.incremental import IncrementalTimer


@pytest.fixture(scope="module")
def lib():
    return make_library()


def fresh_setup(lib, n_gates=300, seed=7):
    design = random_logic(n_gates=n_gates, n_levels=10, seed=seed)
    constraints = Constraints.single_clock(520.0)
    constraints.input_delays = {f"in{i}": 60.0 for i in range(32)}
    sta = STA(design, lib, constraints)
    sta.report = sta.run()
    return design, sta


def slack_map(report, mode="setup"):
    return {e.endpoint: e.slack for e in report.endpoints(mode)}


class TestCorrectness:
    def test_requires_prior_run(self, lib):
        design = random_logic(n_gates=60, n_levels=4, seed=2)
        sta = STA(design, lib, Constraints.single_clock(500.0))
        with pytest.raises(TimingError):
            IncrementalTimer(sta)

    @pytest.mark.parametrize("edit_count", [1, 5])
    def test_incremental_matches_full_rebuild(self, lib, edit_count):
        design, sta = fresh_setup(lib)
        timer = IncrementalTimer(sta)
        # Edit cells on the worst path (the consequential case).
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        edited = []
        for point in path.points:
            if point.kind == "cell" and not point.ref.is_port and \
                    len(edited) < edit_count:
                name = point.ref.instance
                if swap_vt(design, lib, name, "lvt") or \
                        upsize(design, lib, name):
                    edited.append(name)
        assert edited
        incremental = timer.update_cells(edited)

        reference = STA(design, lib, sta.constraints).run()
        inc_slacks = slack_map(incremental)
        ref_slacks = slack_map(reference)
        assert set(inc_slacks) == set(ref_slacks)
        for endpoint, slack in ref_slacks.items():
            assert inc_slacks[endpoint] == pytest.approx(slack, abs=0.01)

    def test_hold_slacks_match_too(self, lib):
        design, sta = fresh_setup(lib)
        timer = IncrementalTimer(sta)
        name = next(
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        )
        upsize(design, lib, name)
        incremental = timer.update_cells([name])
        reference = STA(design, lib, sta.constraints).run()
        for endpoint, slack in slack_map(reference, "hold").items():
            assert slack_map(incremental, "hold")[endpoint] == \
                pytest.approx(slack, abs=0.01)

    def test_paths_still_reconstructible(self, lib):
        design, sta = fresh_setup(lib)
        timer = IncrementalTimer(sta)
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        name = next(p.ref.instance for p in path.points
                    if p.kind == "cell" and not p.ref.is_port)
        swap_vt(design, lib, name, "lvt")
        report = timer.update_cells([name])
        new_worst = report.worst("setup")
        new_path = sta.worst_path(new_worst)
        assert new_path.points  # backpointers intact after the update

    def test_full_update_counter(self, lib):
        design, sta = fresh_setup(lib, n_gates=80)
        timer = IncrementalTimer(sta)
        timer.full_update()
        assert timer.full_updates == 1


class TestEfficiency:
    def test_cone_smaller_than_design(self, lib):
        design, sta = fresh_setup(lib)
        timer = IncrementalTimer(sta)
        # A cell near the capture flops has a tiny downstream cone.
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        last_cell = [p for p in path.points
                     if p.kind == "cell" and not p.ref.is_port][-1]
        name = last_cell.ref.instance
        if not swap_vt(design, lib, name, "lvt"):
            upsize(design, lib, name)
        timer.update_cells([name])
        assert 0 < timer.last_cone_size < \
            0.5 * len(sta.graph.topo_order)

    def test_incremental_faster_than_rebuild(self, lib):
        design, sta = fresh_setup(lib, n_gates=600, seed=9)
        timer = IncrementalTimer(sta)
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        last_cell = [p for p in path.points
                     if p.kind == "cell" and not p.ref.is_port][-1]
        name = last_cell.ref.instance
        swap_vt(design, lib, name, "lvt")

        t0 = time.perf_counter()
        timer.update_cells([name])
        incremental_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        STA(design, lib, sta.constraints).run()
        full_time = time.perf_counter() - t0
        # Conservative bound: the cone update must clearly beat a rebuild.
        assert incremental_time < full_time
