"""Tests for the incremental timer: correctness vs full rebuild, speed."""

import time

import pytest

from repro.errors import TimingError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.netlist.transforms import swap_vt, upsize
from repro.sta import STA, Constraints
from repro.sta.incremental import IncrementalTimer
from repro.sta.scheduler import ScenarioResultCache


@pytest.fixture(scope="module")
def lib():
    return make_library()


def fresh_setup(lib, n_gates=300, seed=7):
    design = random_logic(n_gates=n_gates, n_levels=10, seed=seed)
    constraints = Constraints.single_clock(520.0)
    constraints.input_delays = {f"in{i}": 60.0 for i in range(32)}
    sta = STA(design, lib, constraints)
    sta.report = sta.run()
    return design, sta


def slack_map(report, mode="setup"):
    return {e.endpoint: e.slack for e in report.endpoints(mode)}


class TestCorrectness:
    def test_requires_prior_run(self, lib):
        design = random_logic(n_gates=60, n_levels=4, seed=2)
        sta = STA(design, lib, Constraints.single_clock(500.0))
        with pytest.raises(TimingError):
            IncrementalTimer(sta)

    @pytest.mark.parametrize("edit_count", [1, 5])
    def test_incremental_matches_full_rebuild(self, lib, edit_count):
        design, sta = fresh_setup(lib)
        timer = IncrementalTimer(sta)
        # Edit cells on the worst path (the consequential case).
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        edited = []
        for point in path.points:
            if point.kind == "cell" and not point.ref.is_port and \
                    len(edited) < edit_count:
                name = point.ref.instance
                if swap_vt(design, lib, name, "lvt") or \
                        upsize(design, lib, name):
                    edited.append(name)
        assert edited
        incremental = timer.update_cells(edited)

        reference = STA(design, lib, sta.constraints).run()
        inc_slacks = slack_map(incremental)
        ref_slacks = slack_map(reference)
        assert set(inc_slacks) == set(ref_slacks)
        for endpoint, slack in ref_slacks.items():
            assert inc_slacks[endpoint] == pytest.approx(slack, abs=0.01)

    def test_hold_slacks_match_too(self, lib):
        design, sta = fresh_setup(lib)
        timer = IncrementalTimer(sta)
        name = next(
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        )
        upsize(design, lib, name)
        incremental = timer.update_cells([name])
        reference = STA(design, lib, sta.constraints).run()
        for endpoint, slack in slack_map(reference, "hold").items():
            assert slack_map(incremental, "hold")[endpoint] == \
                pytest.approx(slack, abs=0.01)

    def test_paths_still_reconstructible(self, lib):
        design, sta = fresh_setup(lib)
        timer = IncrementalTimer(sta)
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        name = next(p.ref.instance for p in path.points
                    if p.kind == "cell" and not p.ref.is_port)
        swap_vt(design, lib, name, "lvt")
        report = timer.update_cells([name])
        new_worst = report.worst("setup")
        new_path = sta.worst_path(new_worst)
        assert new_path.points  # backpointers intact after the update

    def test_full_update_counter(self, lib):
        design, sta = fresh_setup(lib, n_gates=80)
        timer = IncrementalTimer(sta)
        timer.full_update()
        assert timer.full_updates == 1


class TestEfficiency:
    def test_cone_smaller_than_design(self, lib):
        design, sta = fresh_setup(lib)
        timer = IncrementalTimer(sta)
        # A cell near the capture flops has a tiny downstream cone.
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        last_cell = [p for p in path.points
                     if p.kind == "cell" and not p.ref.is_port][-1]
        name = last_cell.ref.instance
        if not swap_vt(design, lib, name, "lvt"):
            upsize(design, lib, name)
        timer.update_cells([name])
        assert 0 < timer.last_cone_size < \
            0.5 * len(sta.graph.topo_order)

    def test_incremental_faster_than_rebuild(self, lib):
        design, sta = fresh_setup(lib, n_gates=600, seed=9)
        timer = IncrementalTimer(sta)
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        last_cell = [p for p in path.points
                     if p.kind == "cell" and not p.ref.is_port][-1]
        name = last_cell.ref.instance
        swap_vt(design, lib, name, "lvt")

        t0 = time.perf_counter()
        timer.update_cells([name])
        incremental_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        STA(design, lib, sta.constraints).run()
        full_time = time.perf_counter() - t0
        # Conservative bound: the cone update must clearly beat a rebuild.
        assert incremental_time < full_time


class TestSiDeltas:
    """Regression: cone re-propagation must carry coupling deltas.

    The update used to pass an empty ``si_delta`` into the net-edge
    propagation, silently dropping every stored coupling penalty inside
    the cone (~18 ps endpoint error on this workload). The fix threads
    the stored deltas through and re-evaluates exactly the nets the
    edit touched electrically.
    """

    def _si_setup(self, lib):
        design = random_logic(n_gates=300, n_levels=10, seed=7)
        constraints = Constraints.single_clock(520.0)
        constraints.input_delays = {f"in{i}": 60.0 for i in range(32)}
        sta = STA(design, lib, constraints, si_enabled=True)
        sta.report = sta.run()
        return design, sta

    def test_incremental_matches_full_with_si(self, lib):
        design, sta = self._si_setup(lib)
        assert sta.si_delta  # the scenario really has coupling penalties
        timer = IncrementalTimer(sta)
        worst = sta.report.worst("setup")
        path = sta.worst_path(worst)
        name = next(p.ref.instance for p in path.points
                    if p.kind == "cell" and not p.ref.is_port)
        assert swap_vt(design, lib, name, "lvt") or \
            upsize(design, lib, name)

        incremental = timer.update_cells([name])
        reference = STA(design, lib, sta.constraints,
                        si_enabled=True).run()
        assert incremental.wns("setup") == \
            pytest.approx(reference.wns("setup"), abs=1e-9)
        assert incremental.tns("setup") == \
            pytest.approx(reference.tns("setup"), abs=1e-9)
        ref_slacks = slack_map(reference)
        inc_slacks = slack_map(incremental)
        assert set(inc_slacks) == set(ref_slacks)
        for endpoint, slack in ref_slacks.items():
            assert inc_slacks[endpoint] == pytest.approx(slack, abs=1e-9)

    def test_touched_net_deltas_are_reevaluated(self, lib):
        design, sta = self._si_setup(lib)
        timer = IncrementalTimer(sta)
        name = next(
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        )
        assert upsize(design, lib, name)  # drive strength changes deltas
        timer.update_cells([name])
        reference = STA(design, lib, sta.constraints, si_enabled=True)
        reference.run()
        inst = design.instance(name)
        out_net = inst.net_of("ZN")
        assert sta.si_delta.get(out_net, 0.0) == \
            pytest.approx(reference.si_delta.get(out_net, 0.0), abs=1e-12)


class TestNoOpUpdate:
    """A no-op edit set must not invalidate caches or recompute."""

    def test_noop_returns_existing_report(self, lib):
        design, sta = fresh_setup(lib, n_gates=80)
        timer = IncrementalTimer(sta)
        before = sta.report
        report = timer.update_cells([])
        assert report is before
        assert timer.incremental_updates == 0
        assert timer.full_updates == 0

    def test_noop_keeps_registered_caches_warm(self, lib):
        design, sta = fresh_setup(lib, n_gates=80)
        timer = IncrementalTimer(sta)
        cache = ScenarioResultCache()
        cache.store(design.name, "dfp", "sfp", sta.report)
        timer.register_cache(cache)

        timer.update_cells([])
        assert cache.stats.invalidations == 0
        assert cache.lookup(design.name, "dfp", "sfp") is sta.report
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

        # A real edit, by contrast, drops the design's cached snapshots.
        name = next(
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        )
        assert upsize(design, lib, name)
        timer.update_cells([name])
        assert cache.stats.invalidations == 1
        assert cache.lookup(design.name, "dfp", "sfp") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_noop_before_first_report_builds_one(self, lib):
        design, sta = fresh_setup(lib, n_gates=80)
        reference = sta.report
        sta.report = None
        timer = IncrementalTimer(sta)
        report = timer.update_cells([])
        assert report is sta.report
        assert slack_map(report) == slack_map(reference)


class TestAtomicity:
    """update_cells validates every edit before mutating anything."""

    def _corrupt(self, design, lib, name):
        """An illegal 'swap' behind the timer's back: point the instance
        at a cell whose arc set cannot match (NAND2 -> INV drops the B
        arc), bypassing swap_cell's footprint guard."""
        inst = design.instance(name)
        old = inst.cell_name
        inst.cell_name = old.replace("NAND2", "INV")
        lib.cell(inst.cell_name)  # the variant exists; arcs still differ
        return old

    def test_failed_swap_mutates_nothing(self, lib):
        design, sta = fresh_setup(lib, n_gates=120)
        timer = IncrementalTimer(sta)
        cache = ScenarioResultCache()
        cache.store(design.name, "dfp", "sfp", sta.report)
        timer.register_cache(cache)
        name = next(
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        )
        report_before = sta.report
        arrivals_before = dict(sta.prop.arrivals)
        old_cell = self._corrupt(design, lib, name)

        with pytest.raises(TimingError, match="full rebuild"):
            timer.update_cells([name])

        assert sta.report is report_before
        assert sta.prop.arrivals == arrivals_before
        assert timer.incremental_updates == 0
        assert cache.stats.invalidations == 0  # caches untouched too
        design.instance(name).cell_name = old_cell

    def test_failed_batch_applies_no_member(self, lib):
        """One bad edit poisons the whole batch: the good instance's
        graph edges must not be rebound either."""
        design, sta = fresh_setup(lib, n_gates=120)
        timer = IncrementalTimer(sta)
        instances = [
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        ]
        good, bad = instances[0], instances[1]
        assert upsize(design, lib, good)
        old_cell = self._corrupt(design, lib, bad)

        arrivals_before = dict(sta.prop.arrivals)
        with pytest.raises(TimingError, match="full rebuild"):
            timer.update_cells([good, bad])
        assert sta.prop.arrivals == arrivals_before

        # The timer is still usable: absorb the good edit alone and
        # land exactly on a from-scratch run.
        design.instance(bad).cell_name = old_cell
        incremental = timer.update_cells([good])
        reference = STA(design, lib, sta.constraints).run()
        for endpoint, slack in slack_map(reference).items():
            assert slack_map(incremental)[endpoint] == \
                pytest.approx(slack, abs=1e-9)

    def test_full_update_recovers_from_arc_set_change(self, lib):
        """The documented fallback: an edit the cone update refuses is
        absorbed by full_update on the same timer."""
        design, sta = fresh_setup(lib, n_gates=120)
        timer = IncrementalTimer(sta)
        name = next(
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        )
        old_cell = self._corrupt(design, lib, name)
        with pytest.raises(TimingError):
            timer.update_cells([name])
        design.instance(name).cell_name = old_cell
        assert upsize(design, lib, name)
        report = timer.full_update()
        reference = STA(design, lib, sta.constraints).run()
        for endpoint, slack in slack_map(reference).items():
            assert slack_map(report)[endpoint] == \
                pytest.approx(slack, abs=1e-9)
