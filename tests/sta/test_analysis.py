"""Tests for the STA orchestrator: slacks, paths, derates, reports."""

import math

import pytest

from repro.liberty import LibraryCondition, make_library
from repro.liberty.aocv import AocvTable
from repro.netlist.design import PinRef
from repro.netlist.generators import random_logic, tiny_design
from repro.sta import STA, Constraints
from repro.sta.propagation import Derates


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def tiny_sta(lib):
    sta = STA(tiny_design(), lib, Constraints.single_clock(500.0))
    sta.report = sta.run()
    return sta


class TestSetupAnalysis:
    def test_endpoint_count(self, tiny_sta):
        # 3 flop D pins + 1 output port.
        assert len(tiny_sta.report.setup) == 4

    def test_relaxed_clock_meets_timing(self, tiny_sta):
        flop_eps = [e for e in tiny_sta.report.setup if e.kind == "setup"]
        assert all(e.slack > 0 for e in flop_eps)

    def test_slack_decomposition(self, tiny_sta):
        e = tiny_sta.report.worst("setup")
        assert e.slack == pytest.approx(e.required - e.arrival)

    def test_tight_clock_fails_timing(self, lib):
        sta = STA(tiny_design(), lib, Constraints.single_clock(60.0))
        report = sta.run()
        assert report.wns("setup") < 0.0

    def test_slack_scales_with_period(self, lib):
        r1 = STA(tiny_design(), lib, Constraints.single_clock(400.0)).run()
        r2 = STA(tiny_design(), lib, Constraints.single_clock(500.0)).run()
        e1 = [e for e in r1.setup if e.kind == "setup"][0]
        e2 = [e for e in r2.setup if e.endpoint == e1.endpoint][0]
        assert e2.slack - e1.slack == pytest.approx(100.0, abs=1e-6)

    def test_uncertainty_reduces_slack(self, lib):
        base = Constraints.single_clock(500.0, uncertainty_setup=0.0)
        uncertain = Constraints.single_clock(500.0, uncertainty_setup=30.0)
        s1 = STA(tiny_design(), lib, base).run().wns("setup")
        s2 = STA(tiny_design(), lib, uncertain).run().wns("setup")
        assert s1 - s2 == pytest.approx(30.0, abs=1e-6)

    def test_flat_margin_reduces_slack(self, lib):
        c = Constraints.single_clock(500.0)
        c.flat_setup_margin = 25.0
        base = STA(tiny_design(), lib, Constraints.single_clock(500.0)).run()
        margined = STA(tiny_design(), lib, c).run()
        flop_base = [e for e in base.setup if e.kind == "setup"][0]
        flop_marg = [e for e in margined.setup
                     if e.endpoint == flop_base.endpoint][0]
        assert flop_base.slack - flop_marg.slack == pytest.approx(25.0, abs=1e-6)


class TestHoldAnalysis:
    def test_flop_to_flop_hold_met(self, tiny_sta):
        ff2 = [e for e in tiny_sta.report.hold
               if e.endpoint == PinRef("ff2", "D")]
        assert ff2 and ff2[0].slack > 0.0

    def test_port_fed_flops_fail_hold_without_input_delay(self, tiny_sta):
        """Inputs arriving at t=0 race the clock — classic hold problem."""
        ff0 = [e for e in tiny_sta.report.hold
               if e.endpoint == PinRef("ff0", "D")]
        assert ff0 and ff0[0].slack < 0.0

    def test_input_delay_fixes_port_hold(self, lib):
        c = Constraints.single_clock(500.0)
        c.input_delays = {"in0": 60.0, "in1": 60.0}
        report = STA(tiny_design(), lib, c).run()
        assert report.wns("hold") > 0.0


class TestPathReconstruction:
    def test_worst_path_structure(self, tiny_sta):
        e = [e for e in tiny_sta.report.setup if e.kind == "setup"][0]
        path = tiny_sta.worst_path(e)
        assert path.startpoint == PinRef("", "clk")
        assert path.endpoint == e.endpoint
        assert path.points[-1].arrival == pytest.approx(e.arrival)

    def test_path_arrivals_monotone(self, tiny_sta):
        e = tiny_sta.report.worst("setup")
        path = tiny_sta.worst_path(e)
        arrivals = [p.arrival for p in path.points]
        assert arrivals == sorted(arrivals)

    def test_path_increments_sum_to_arrival(self, tiny_sta):
        e = tiny_sta.report.worst("setup")
        path = tiny_sta.worst_path(e)
        total = path.points[0].arrival + sum(
            p.increment for p in path.points[1:]
        )
        assert total == pytest.approx(path.arrival)

    def test_stage_count_matches_tiny_topology(self, tiny_sta):
        e = [e for e in tiny_sta.report.setup
             if e.endpoint == PinRef("ff2", "D")][0]
        path = tiny_sta.worst_path(e)
        # CK->Q, NAND, INV = 3 cell stages.
        assert path.stage_count == 3

    def test_gate_fraction_between_zero_and_one(self, tiny_sta):
        e = tiny_sta.report.worst("setup")
        frac = tiny_sta.worst_path(e).gate_delay_fraction()
        assert 0.0 < frac <= 1.0

    def test_render_contains_endpoint(self, tiny_sta):
        e = tiny_sta.report.worst("setup")
        assert str(e.endpoint) in tiny_sta.worst_path(e).render()


class TestDerates:
    def test_late_derate_reduces_setup_slack(self, lib):
        plain = STA(tiny_design(), lib, Constraints.single_clock(500.0)).run()
        derated = STA(
            tiny_design(), lib, Constraints.single_clock(500.0),
            derates=Derates(data_late=1.15),
        ).run()
        assert derated.wns("setup") < plain.wns("setup")

    def test_early_derate_reduces_hold_slack(self, lib):
        c = Constraints.single_clock(500.0)
        c.input_delays = {"in0": 60.0, "in1": 60.0}
        plain = STA(tiny_design(), lib, c).run()
        derated = STA(tiny_design(), lib, c,
                      derates=Derates(data_early=0.85)).run()
        ep = PinRef("ff2", "D")
        assert derated.slack_of(ep, "hold") < plain.slack_of(ep, "hold")

    def test_aocv_milder_than_flat_for_deep_paths(self, lib):
        """AOCV's statistical averaging: a deep design derated by AOCV has
        better WNS than the same design under the flat single-stage derate."""
        d = random_logic(n_gates=200, n_levels=10, seed=4)
        aocv = AocvTable.from_reference_sigma(0.05)
        flat_factor = aocv.derate(1.0, 0.0, "late")
        flat = STA(d, lib, Constraints.single_clock(600.0),
                   derates=Derates(data_late=flat_factor)).run()
        staged = STA(d, lib, Constraints.single_clock(600.0),
                     derates=Derates(aocv=aocv)).run()
        assert staged.wns("setup") > flat.wns("setup")


class TestSlewChecks:
    def test_no_violations_on_relaxed_design(self, tiny_sta):
        assert tiny_sta.report.slew_violations == []

    def test_overloaded_driver_flagged(self, lib):
        from repro.netlist.design import Design, PortDirection

        d = Design("overload")
        d.add_port("clk", PortDirection.INPUT)
        d.add_port("din", PortDirection.INPUT)
        d.add_instance("ff", "DFF_X1_SVT", {"D": "din", "CK": "clk", "Q": "q"})
        # A tiny inverter driving a huge fanout.
        d.add_instance("weak", "INV_X0.5_SVT", {"A": "q", "ZN": "big"})
        for i in range(24):
            d.add_instance(f"ld{i}", "INV_X4_SVT",
                           {"A": "big", "ZN": f"z{i}"})
        report = STA(d, lib, Constraints.single_clock(2000.0)).run()
        assert any(v.ref.instance.startswith("ld")
                   for v in report.slew_violations)
        assert all(v.excess > 0 for v in report.slew_violations)


class TestReports:
    def test_summary_text(self, tiny_sta):
        text = tiny_sta.report.summary()
        assert "WNS" in text and "hold" in text

    def test_histogram_text(self, tiny_sta):
        text = tiny_sta.report.slack_histogram("setup", bins=4)
        assert "slack histogram" in text

    def test_table_text(self, tiny_sta):
        assert "endpoint" in tiny_sta.report.table()

    def test_wns_of_empty_mode(self):
        from repro.sta.reports import TimingReport

        assert TimingReport().wns("setup") == math.inf

    def test_bad_mode_raises(self, tiny_sta):
        with pytest.raises(ValueError):
            tiny_sta.report.endpoints("typ")

    def test_slack_of_missing_endpoint(self, tiny_sta):
        with pytest.raises(KeyError):
            tiny_sta.report.slack_of(PinRef("zz", "D"))
