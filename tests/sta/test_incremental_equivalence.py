"""Property test: incremental updates are equivalent to from-scratch STA.

The closure loop's whole premise is that a cone-limited update after a
footprint-preserving edit produces *the same answer* a fresh
:meth:`STA.run` would. This suite drives randomized Vt-swap/resize
sequences — multiple edits per step, multiple steps per run, SI on and
off — and requires WNS, TNS and every endpoint slack to agree within
1e-9 ps after every step. The tolerance is that tight on purpose: the
update re-propagates the cone with the same graph, the same topological
order and the same stored boundary arrivals, so the float operations
are identical and the agreement should be exact, not approximate.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.netlist.transforms import downsize, swap_vt, upsize
from repro.sta import STA, Constraints
from repro.sta.incremental import IncrementalTimer

VT_FLAVORS = ("svt", "lvt", "ulvt")


@pytest.fixture(scope="module")
def lib():
    return make_library()


def _setup(lib, seed, si_enabled):
    design = random_logic(n_gates=220, n_levels=8, seed=seed)
    constraints = Constraints.single_clock(520.0)
    constraints.input_delays = {f"in{i}": 60.0 for i in range(32)}
    sta = STA(design, lib, constraints, si_enabled=si_enabled)
    sta.report = sta.run()
    return design, sta


def _apply(design, lib, name, action, flavor):
    if action == "vt":
        return swap_vt(design, lib, name, flavor)
    if action == "up":
        return upsize(design, lib, name)
    return downsize(design, lib, name)


def _assert_equivalent(incremental, reference):
    assert incremental.wns("setup") == \
        pytest.approx(reference.wns("setup"), abs=1e-9)
    assert incremental.tns("setup") == \
        pytest.approx(reference.tns("setup"), abs=1e-9)
    assert incremental.wns("hold") == \
        pytest.approx(reference.wns("hold"), abs=1e-9)
    for mode in ("setup", "hold"):
        ref = {e.endpoint: e.slack for e in reference.endpoints(mode)}
        inc = {e.endpoint: e.slack for e in incremental.endpoints(mode)}
        assert set(inc) == set(ref)
        for endpoint, slack in ref.items():
            assert inc[endpoint] == pytest.approx(slack, abs=1e-9)


@pytest.mark.parametrize("si_enabled", [False, True])
@settings(max_examples=6, deadline=None, derandomize=True)
@given(data=st.data())
def test_random_eco_sequences_match_fresh_sta(lib, si_enabled, data):
    seed = data.draw(st.integers(min_value=1, max_value=4), label="seed")
    design, sta = _setup(lib, seed, si_enabled)
    timer = IncrementalTimer(sta)
    candidates = [
        inst.name for inst in design.combinational_instances(lib)
    ]
    n_steps = data.draw(st.integers(min_value=1, max_value=3),
                        label="steps")
    for _ in range(n_steps):
        picks = data.draw(
            st.lists(st.sampled_from(candidates), min_size=1, max_size=5,
                     unique=True),
            label="instances",
        )
        edited = []
        for name in picks:
            action = data.draw(
                st.sampled_from(("vt", "up", "down")), label="action")
            flavor = data.draw(
                st.sampled_from(VT_FLAVORS), label="flavor")
            if _apply(design, lib, name, action, flavor):
                edited.append(name)
        incremental = timer.update_cells(edited)
        reference = STA(design, lib, sta.constraints,
                        si_enabled=si_enabled).run()
        _assert_equivalent(incremental, reference)
    assert timer.incremental_updates <= n_steps
