"""Tests for the parallel signoff scheduler and its result cache."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic
from repro.netlist.transforms import upsize
from repro.sta import STA, Constraints, IncrementalTimer
from repro.sta.mcmm import Scenario, ScenarioSet
from repro.sta.scheduler import (
    ScenarioResultCache,
    SignoffScheduler,
    constraints_fingerprint,
    design_fingerprint,
    library_fingerprint,
    parallel_map,
    scenario_fingerprint,
)


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def lib_ss():
    return make_library(
        LibraryCondition(process="ss", vdd=0.72, temp_c=125.0)
    )


def make_scenarios(lib, lib_ss):
    c = Constraints.single_clock(520.0)
    c.input_delays = {f"in{i}": 60.0 for i in range(16)}
    return [
        Scenario("tt_typ", lib, c),
        Scenario("ss_cw", lib_ss, c, beol_corner_name="cw", temp_c=125.0),
        Scenario("ss_rcw", lib_ss, c, beol_corner_name="rcw", temp_c=125.0),
    ]


def make_design(seed=9):
    return random_logic(n_inputs=16, n_outputs=16, n_gates=120,
                        n_levels=6, seed=seed)


def slack_text(outcome):
    return "\n".join(
        outcome.reports[n].render_full() for n in sorted(outcome.reports)
    )


class TestDeterminism:
    def test_parallel_matches_serial_byte_for_byte(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        serial = SignoffScheduler(scenarios, jobs=1).signoff(design)
        parallel = SignoffScheduler(scenarios, jobs=4,
                                    executor="thread").signoff(design)
        assert slack_text(serial) == slack_text(parallel)
        assert serial.render("setup") == parallel.render("setup")
        assert serial.render("hold") == parallel.render("hold")

    def test_results_keyed_by_name_not_completion_order(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        outcome = SignoffScheduler(scenarios, jobs=4).signoff(design)
        assert list(outcome.reports) == [s.name for s in scenarios]
        for name, report in outcome.reports.items():
            assert report.scenario == name

    def test_scenarioset_run_jobs_param(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        base = ScenarioSet(scenarios).run(design)
        fanned = ScenarioSet(scenarios).run(design, jobs=4)
        for name in base.reports:
            assert base.reports[name].render_full() == \
                fanned.reports[name].render_full()

    def test_thread_pool_isolates_shared_design(self, lib, lib_ss):
        """Stress the thread path on a block large enough to overlap
        scenario propagation windows.

        STA mutates the design it analyzes (bind rebuilds net
        driver/load lists), so before workers were given private design
        copies this raced: on ~1500-gate blocks with jobs=4 most runs
        either crashed (AttributeError on a mid-rebind null driver) or
        silently produced slacks different from serial. Small designs
        finish each scenario before the next thread starts binding,
        which is why only a large block exercises the overlap.
        """
        scenarios = make_scenarios(lib, lib_ss)
        design = random_logic(n_inputs=16, n_outputs=16, n_gates=1500,
                              n_levels=10, seed=9)
        ref = slack_text(SignoffScheduler(scenarios, jobs=1).signoff(design))
        for _ in range(3):
            out = SignoffScheduler(scenarios, jobs=4,
                                   executor="thread").signoff(design)
            assert slack_text(out) == ref

    def test_parallel_map_preserves_order(self):
        assert parallel_map(lambda x: x * x, range(10), jobs=4) == \
            [x * x for x in range(10)]

    def test_parallel_map_rejects_unknown_executor(self):
        with pytest.raises(TimingError):
            parallel_map(lambda x: x, [1], jobs=2, executor="rayon")


class TestCache:
    def test_warm_run_skips_recomputation(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        cache = ScenarioResultCache()
        scheduler = SignoffScheduler(scenarios, jobs=2, cache=cache)

        cold = scheduler.signoff(design)
        assert scheduler.evaluations == len(scenarios)
        assert cold.recomputed == [s.name for s in scenarios]

        warm = scheduler.signoff(design)
        # The call counter must not move: every scenario was a cache hit.
        assert scheduler.evaluations == len(scenarios)
        assert warm.recomputed == []
        assert warm.cache_hits == [s.name for s in scenarios]
        assert slack_text(warm) == slack_text(cold)
        assert cache.stats.hits == len(scenarios)

    def test_netlist_change_misses(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        cache = ScenarioResultCache()
        scheduler = SignoffScheduler(scenarios, cache=cache)
        scheduler.signoff(make_design(seed=9))
        scheduler.signoff(make_design(seed=10))
        assert scheduler.evaluations == 2 * len(scenarios)

    def test_constraint_change_misses(self, lib):
        design = make_design()
        cache = ScenarioResultCache()
        tight = Constraints.single_clock(400.0)
        loose = Constraints.single_clock(520.0)
        s1 = SignoffScheduler([Scenario("tt", lib, loose)], cache=cache)
        s1.signoff(design)
        s2 = SignoffScheduler([Scenario("tt", lib, tight)], cache=cache)
        s2.signoff(design)
        assert s2.evaluations == 1
        assert cache.stats.misses == 2

    def test_shared_cache_across_schedulers(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        cache = ScenarioResultCache()
        SignoffScheduler(scenarios, jobs=1, cache=cache).signoff(design)
        other = SignoffScheduler(scenarios, jobs=4, cache=cache)
        outcome = other.signoff(design)
        assert other.evaluations == 0
        assert outcome.recomputed == []

    def test_lru_eviction(self, lib):
        c = Constraints.single_clock(520.0)
        cache = ScenarioResultCache(max_entries=2)
        scheduler = SignoffScheduler([Scenario("tt", lib, c)], cache=cache)
        for seed in (1, 2, 3):
            scheduler.signoff(make_design(seed=seed))
        assert len(cache) == 2

    def test_lru_eviction_order_is_least_recently_used(self, lib):
        """Eviction is true LRU: a lookup refreshes recency, so the
        entry evicted at capacity is the least recently *used*, not the
        oldest stored."""
        c = Constraints.single_clock(520.0)
        cache = ScenarioResultCache(max_entries=2)
        scheduler = SignoffScheduler([Scenario("tt", lib, c)], cache=cache)
        designs = {seed: make_design(seed=seed) for seed in (1, 2, 3)}

        scheduler.signoff(designs[1])  # cache: [1]
        scheduler.signoff(designs[2])  # cache: [1, 2]
        scheduler.signoff(designs[1])  # HIT: refreshes 1 -> [2, 1]
        assert scheduler.evaluations == 2

        scheduler.signoff(designs[3])  # at capacity: evicts 2, not 1
        assert scheduler.evaluations == 3
        scheduler.signoff(designs[1])  # still cached
        assert scheduler.evaluations == 3
        scheduler.signoff(designs[2])  # was evicted: recomputes
        assert scheduler.evaluations == 4

    def test_lookup_touch_moves_entry_to_mru(self, lib):
        """The recency refresh is observable directly on the cache:
        after a lookup the touched key is at the MRU end of keys()."""
        c = Constraints.single_clock(520.0)
        cache = ScenarioResultCache(max_entries=8)
        scheduler = SignoffScheduler([Scenario("tt", lib, c)], cache=cache)
        scheduler.signoff(make_design(seed=1))
        scheduler.signoff(make_design(seed=2))

        lru_key = cache.keys()[0]
        assert cache.lookup(*lru_key) is not None
        assert cache.keys()[-1] == lru_key

    def test_store_refreshes_existing_entry(self, lib):
        c = Constraints.single_clock(520.0)
        cache = ScenarioResultCache(max_entries=8)
        scheduler = SignoffScheduler([Scenario("tt", lib, c)], cache=cache)
        scheduler.signoff(make_design(seed=1))
        scheduler.signoff(make_design(seed=2))

        oldest = cache.keys()[0]
        report = cache._store[oldest].report
        cache.store(*oldest, report)  # re-store touches recency too
        assert cache.keys()[-1] == oldest
        assert len(cache) == 2

    def test_incremental_timer_invalidates(self, lib):
        c = Constraints.single_clock(520.0)
        design = make_design()
        cache = ScenarioResultCache()
        scheduler = SignoffScheduler([Scenario("tt", lib, c)], cache=cache)
        scheduler.signoff(design)
        assert len(cache) == 1

        sta = STA(design, lib, c)
        sta.report = sta.run()
        timer = IncrementalTimer(sta)
        timer.register_cache(cache)
        name = next(
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        )
        assert upsize(design, lib, name)
        timer.update_cells([name])
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

        # Re-signoff recomputes (content changed *and* cache was dropped)
        # and agrees with a from-scratch run on the edited design.
        outcome = scheduler.signoff(design)
        assert outcome.recomputed == ["tt"]
        fresh = Scenario("tt", lib, c).run(design, scheduler.stack)
        assert outcome.reports["tt"].render_full() == fresh.render_full()


class TestFingerprints:
    def test_design_fingerprint_stable_and_sensitive(self, lib):
        a = make_design(seed=5)
        b = make_design(seed=5)
        assert design_fingerprint(a) == design_fingerprint(b)
        name = next(iter(a.instances))
        a.instances[name].cell_name += "_X2"
        assert design_fingerprint(a) != design_fingerprint(b)

    def test_constraints_fingerprint_sensitive(self):
        base = Constraints.single_clock(500.0)
        assert constraints_fingerprint(base) == \
            constraints_fingerprint(Constraints.single_clock(500.0))
        assert constraints_fingerprint(base) != \
            constraints_fingerprint(Constraints.single_clock(500.5))
        margin = Constraints.single_clock(500.0)
        margin.flat_setup_margin = 12.0
        assert constraints_fingerprint(base) != \
            constraints_fingerprint(margin)

    def test_library_fingerprint_sees_cell_table_mutation(self):
        """In-place library edits must miss the cache, not hit stale.

        The fingerprint hashes full cell contents, not just condition
        metadata and cell count, so re-characterizing a cell (same name,
        same count) changes it.
        """
        lib = make_library()
        fp0 = library_fingerprint(lib)
        assert fp0 == library_fingerprint(make_library())
        cell = next(iter(lib.cells.values()))
        cell.leakage *= 2.0
        assert library_fingerprint(lib) != fp0

        c = Constraints.single_clock(500.0)
        s0 = scenario_fingerprint(Scenario("s", make_library(), c))
        assert scenario_fingerprint(Scenario("s", lib, c)) != s0

    def test_mutated_library_misses_cache(self):
        lib = make_library()
        c = Constraints.single_clock(520.0)
        design = make_design()
        cache = ScenarioResultCache()
        scheduler = SignoffScheduler([Scenario("tt", lib, c)], cache=cache)
        scheduler.signoff(design)
        arc = next(iter(lib.cells.values())).arcs[0]
        arc.timing["rise"].delay.values *= 1.01
        scheduler.signoff(design)
        assert scheduler.evaluations == 2
        assert cache.stats.hits == 0

    def test_scenario_fingerprint_sees_corner_params(self, lib, lib_ss):
        c = Constraints.single_clock(500.0)
        typ = Scenario("s", lib, c)
        cw = Scenario("s", lib, c, beol_corner_name="cw")
        hot = Scenario("s", lib, c, temp_c=125.0)
        ss = Scenario("s", lib_ss, c)
        fps = {scenario_fingerprint(s) for s in (typ, cw, hot, ss)}
        assert len(fps) == 4


class TestValidation:
    def test_needs_scenarios(self):
        with pytest.raises(TimingError):
            SignoffScheduler([])

    def test_unique_names(self, lib):
        c = Constraints.single_clock(500.0)
        with pytest.raises(TimingError):
            SignoffScheduler([Scenario("a", lib, c), Scenario("a", lib, c)])

    def test_jobs_positive(self, lib):
        c = Constraints.single_clock(500.0)
        with pytest.raises(TimingError):
            SignoffScheduler([Scenario("a", lib, c)], jobs=0)

    def test_executor_validated(self, lib):
        c = Constraints.single_clock(500.0)
        with pytest.raises(TimingError):
            SignoffScheduler([Scenario("a", lib, c)], executor="mpi")

    def test_engine_validated(self, lib):
        c = Constraints.single_clock(500.0)
        with pytest.raises(TimingError):
            SignoffScheduler([Scenario("a", lib, c)], engine="warp")


class TestMonteCarloBatching:
    def test_chain_mc_bit_identical_across_jobs(self):
        from repro.variation.montecarlo import spice_chain_mc

        kwargs = dict(n_stages=3, n_samples=8, seed=11, sigma_vt=0.06,
                      dt=2.0)
        serial = spice_chain_mc(jobs=1, **kwargs)
        threaded = spice_chain_mc(jobs=4, **kwargs)
        assert np.array_equal(serial, threaded)

    def test_evaluate_samples_independent_of_batching(self):
        from repro.spice.montecarlo import evaluate_samples

        def draw(index, rng):
            return float(rng.normal())

        a = evaluate_samples(draw, 16, seed=3, jobs=1)
        b = evaluate_samples(draw, 16, seed=3, jobs=5)
        assert a == b
        # Different master seed -> different samples.
        c = evaluate_samples(draw, 16, seed=4, jobs=1)
        assert a != c


class TestScenarioTimerPool:
    def _pool_setup(self, lib, period=520.0):
        from repro.sta.scheduler import ScenarioTimerPool

        c = Constraints.single_clock(period)
        c.input_delays = {f"in{i}": 60.0 for i in range(16)}
        design = make_design()
        pool = ScenarioTimerPool()
        build = lambda: STA(design, lib, c)
        return design, c, pool, build

    def test_first_retime_builds_then_warm_starts(self, lib):
        design, c, pool, build = self._pool_setup(lib)
        report = pool.retime("tt", build=build)
        assert pool.builds == 1
        assert pool.retimes == 0
        assert pool.get("tt") is not None
        assert report is pool.get("tt").sta.report

        # Warm start: the same timer absorbs a swap cone-limited.
        name = next(
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        )
        assert upsize(design, lib, name)
        timer_before = pool.get("tt")
        pool.retime("tt", edited_instances=[name])
        assert pool.get("tt") is timer_before  # reused, not re-bound
        assert pool.incremental_retimes == 1
        assert pool.full_retimes == 0
        assert pool.reuse_ratio == 1.0
        assert timer_before.last_cone_size > 0

    def test_topology_change_forces_full_update(self, lib):
        design, c, pool, build = self._pool_setup(lib)
        pool.retime("tt", build=build)
        pool.retime("tt", topology_changed=True)
        assert pool.full_retimes == 1
        assert pool.incremental_retimes == 0
        assert pool.get("tt").full_updates == 1

    def test_unabsorbable_edit_surfaces_errors(self, lib):
        design, c, pool, build = self._pool_setup(lib)
        pool.retime("tt", build=build)
        name = next(
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        )
        inst = design.instance(name)
        # Arc-set-changing corruption the cone update must refuse.
        inst.cell_name = inst.cell_name.replace("NAND2", "INV")
        with pytest.raises(Exception):
            # Unbindable corruption even the full update rejects...
            pool.retime("tt", edited_instances=[name])

        design2, c2, pool2, build2 = self._pool_setup(lib)
        pool2.retime("tt", build=build2)
        # ...whereas a legal swap the planner refuses is downgraded:
        # simulate by asking for an instance that does not exist.
        with pytest.raises(Exception):
            pool2.retime("tt", edited_instances=["nonexistent"])

    def test_retime_without_timer_needs_build(self, lib):
        from repro.sta.scheduler import ScenarioTimerPool

        pool = ScenarioTimerPool()
        with pytest.raises(TimingError, match="no warm timer"):
            pool.retime("tt")

    def test_noop_retime_keeps_cache_warm(self, lib):
        design, c, pool, build = self._pool_setup(lib)
        cache = ScenarioResultCache()
        pool.register_cache(cache)
        pool.retime("tt", build=build)
        cache.store(design.name, "dfp", "sfp",
                    pool.get("tt").sta.report)

        # Empty edit set: serve the standing report, caches untouched.
        pool.retime("tt", edited_instances=[])
        assert cache.stats.invalidations == 0
        assert len(cache) == 1

        # A real edit set drops the design's snapshots.
        name = next(
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        )
        assert upsize(design, lib, name)
        pool.retime("tt", edited_instances=[name])
        assert cache.stats.invalidations == 1
        assert len(cache) == 0

    def test_register_cache_reaches_existing_timers(self, lib):
        design, c, pool, build = self._pool_setup(lib)
        pool.retime("tt", build=build)
        cache = ScenarioResultCache()
        cache.store(design.name, "dfp", "sfp", pool.get("tt").sta.report)
        pool.register_cache(cache)  # after the timer already exists
        pool.retime("tt", topology_changed=True)
        assert cache.stats.invalidations == 1

    def test_per_scenario_timers_are_independent(self, lib, lib_ss):
        from repro.sta.scheduler import ScenarioTimerPool

        c = Constraints.single_clock(520.0)
        c.input_delays = {f"in{i}": 60.0 for i in range(16)}
        design = make_design()
        pool = ScenarioTimerPool()
        pool.retime("tt", build=lambda: STA(design, lib, c))
        pool.retime("ss", build=lambda: STA(design, lib_ss, c))
        assert pool.names() == ["ss", "tt"]
        assert pool.builds == 2
        assert pool.get("tt") is not pool.get("ss")

        name = next(
            i.name for i in design.combinational_instances(lib)
            if i.cell_name.startswith("NAND2")
        )
        assert upsize(design, lib, name)
        tt_report = pool.retime("tt", edited_instances=[name])
        ss_report = pool.retime("ss", edited_instances=[name])
        assert pool.incremental_retimes == 2
        # Each scenario's warm retime equals its own from-scratch run.
        assert tt_report.render_full() == \
            STA(design, lib, c).run().render_full()
        assert ss_report.render_full() == \
            STA(design, lib_ss, c).run().render_full()

    def test_discard_forgets_warm_state(self, lib):
        design, c, pool, build = self._pool_setup(lib)
        pool.retime("tt", build=build)
        pool.discard("tt")
        assert pool.get("tt") is None
        pool.retime("tt", build=build)
        assert pool.builds == 2


class TestEngineCacheParity:
    """The content-hash cache must be engine-blind: kernel-produced
    reports hit and miss exactly like reference reports, and a report
    computed by either engine satisfies the other's lookups."""

    @pytest.mark.parametrize("engine", ["reference", "vector"])
    def test_warm_run_skips_recomputation(self, lib, lib_ss, engine):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        cache = ScenarioResultCache(verify=True)
        scheduler = SignoffScheduler(scenarios, cache=cache, engine=engine)

        cold = scheduler.signoff(design)
        assert scheduler.evaluations == len(scenarios)
        assert sorted(cold.recomputed) == sorted(s.name for s in scenarios)

        warm = scheduler.signoff(design)
        assert scheduler.evaluations == len(scenarios)
        assert warm.recomputed == []
        assert warm.cache_hits == [s.name for s in scenarios]
        assert slack_text(warm) == slack_text(cold)
        assert cache.stats.evaluations == len(scenarios)

    @pytest.mark.parametrize("engine", ["reference", "vector"])
    def test_netlist_change_misses(self, lib, lib_ss, engine):
        scenarios = make_scenarios(lib, lib_ss)
        cache = ScenarioResultCache()
        scheduler = SignoffScheduler(scenarios, cache=cache, engine=engine)
        scheduler.signoff(make_design(seed=9))
        scheduler.signoff(make_design(seed=10))
        assert scheduler.evaluations == 2 * len(scenarios)

    @pytest.mark.parametrize("first,second", [
        ("reference", "vector"), ("vector", "reference"),
    ])
    def test_cross_engine_cache_identity(self, lib, lib_ss, first, second):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        cache = ScenarioResultCache(verify=True)
        SignoffScheduler(scenarios, cache=cache,
                         engine=first).signoff(design)
        other = SignoffScheduler(scenarios, cache=cache, engine=second)
        outcome = other.signoff(design)
        # Same design + scenarios -> same fingerprints -> all hits,
        # regardless of which engine populated the cache.
        assert other.evaluations == 0
        assert outcome.recomputed == []
        assert outcome.cache_hits == [s.name for s in scenarios]

    def test_vector_reports_match_reference(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        ref = SignoffScheduler(scenarios).signoff(make_design())
        vec = SignoffScheduler(scenarios,
                               engine="vector").signoff(make_design())
        assert slack_text(vec) == slack_text(ref)
        for name in ref.reports:
            assert vec.reports[name] == ref.reports[name]
            assert vec.reports[name].scenario == name

    def test_fault_injection_forces_reference_path(self, lib, lib_ss):
        from repro.testing import FaultInjector, FaultPlan

        scenarios = make_scenarios(lib, lib_ss)
        names = [s.name for s in scenarios]
        injector = FaultInjector(FaultPlan.seeded(
            1, names, crash_rate=0.0, hang_rate=0.0, persistent_rate=0.0,
        ))
        outcome = SignoffScheduler(
            scenarios, engine="vector", fault_injector=injector,
        ).signoff(make_design())
        # The vector batch is bypassed under fault injection (the
        # supervisor owns retry/quarantine), yet results still land.
        assert sorted(outcome.recomputed) == sorted(names)
        ref = SignoffScheduler(scenarios).signoff(make_design())
        assert slack_text(outcome) == slack_text(ref)
