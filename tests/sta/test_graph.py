"""Tests for timing-graph construction and levelization."""

import pytest

from repro.errors import TimingError
from repro.liberty import make_library
from repro.netlist.design import Design, PinRef, PortDirection
from repro.netlist.generators import random_logic, tiny_design
from repro.sta.constraints import Constraints
from repro.sta.graph import CellEdge, NetEdge, TimingGraph


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture()
def tiny_graph(lib):
    d = tiny_design()
    d.bind(lib)
    return TimingGraph(d, lib, Constraints.single_clock(500.0))


class TestConstruction:
    def test_stats(self, tiny_graph):
        stats = tiny_graph.stats()
        assert stats["checks"] == 6  # 3 flops x (setup + hold)
        assert stats["cell_edges"] == 3 + 3  # nand(2 arcs)+inv + 3 CK->Q
        assert stats["pins"] > 10

    def test_setup_and_hold_checks_split(self, tiny_graph):
        assert len(tiny_graph.setup_checks()) == 3
        assert len(tiny_graph.hold_checks()) == 3

    def test_checks_reference_data_and_clock_pins(self, tiny_graph):
        check = tiny_graph.setup_checks()[0]
        assert check.data_pin.pin == "D"
        assert check.clock_pin.pin == "CK"

    def test_clock_network_marked(self, tiny_graph):
        assert PinRef("", "clk") in tiny_graph.clock_pins
        assert PinRef("ff0", "CK") in tiny_graph.clock_pins
        assert PinRef("u1", "A") not in tiny_graph.clock_pins

    def test_missing_clock_port_raises(self, lib):
        d = tiny_design()
        d.bind(lib)
        with pytest.raises(TimingError, match="unknown port"):
            TimingGraph(d, lib, Constraints.single_clock(500.0, port="nope"))

    def test_topological_order_respects_edges(self, tiny_graph):
        order = {ref: i for i, ref in enumerate(tiny_graph.topo_order)}
        for src, edges in tiny_graph.out_edges.items():
            for edge in edges:
                dst = edge.sink if isinstance(edge, NetEdge) else edge.dst
                assert order[src] < order[dst]

    def test_combinational_loop_detected(self, lib):
        d = Design("loop")
        d.add_port("clk", PortDirection.INPUT)
        d.add_instance("u1", "INV_X1_SVT", {"A": "b", "ZN": "a"})
        d.add_instance("u2", "INV_X1_SVT", {"A": "a", "ZN": "b"})
        d.bind(lib)
        with pytest.raises(TimingError, match="loop"):
            TimingGraph(d, lib, Constraints.single_clock(500.0))

    def test_clock_stops_at_data_gates(self, lib):
        """A clock feeding a NAND does not propagate clockness through."""
        d = tiny_design()
        d.add_instance("uc", "NAND2_X1_SVT",
                       {"A": "clk", "B": "q0", "ZN": "gated"})
        d.bind(lib)
        g = TimingGraph(d, lib, Constraints.single_clock(500.0))
        assert PinRef("uc", "A") in g.clock_pins
        assert PinRef("uc", "ZN") not in g.clock_pins

    def test_clock_propagates_through_buffers(self, lib):
        d = Design("ctree")
        d.add_port("clk", PortDirection.INPUT)
        d.add_port("din", PortDirection.INPUT)
        d.add_port("dout", PortDirection.OUTPUT)
        d.add_instance("cb", "BUF_X4_SVT", {"A": "clk", "Z": "clki"})
        d.add_instance("ff", "DFF_X1_SVT",
                       {"D": "din", "CK": "clki", "Q": "dout"})
        d.bind(lib)
        g = TimingGraph(d, lib, Constraints.single_clock(500.0))
        assert PinRef("cb", "Z") in g.clock_pins
        assert PinRef("ff", "CK") in g.clock_pins


class TestDepths:
    def test_stage_depth_monotone_along_path(self, tiny_graph):
        d = tiny_graph.data_depth
        assert d[PinRef("u1", "ZN")] < d[PinRef("u2", "ZN")]

    def test_startpoints_have_zero_depth(self, tiny_graph):
        for ref in tiny_graph.startpoints():
            assert tiny_graph.data_depth[ref] == 0

    def test_larger_design_scales(self, lib):
        d = random_logic(n_gates=150, n_levels=8, seed=2)
        d.bind(lib)
        g = TimingGraph(d, lib, Constraints.single_clock(500.0))
        assert max(g.data_depth.values()) >= 8
