"""Oracle-equivalence harness for the vectorized multi-corner kernel.

The compiled kernel (:mod:`repro.sta.kernel`) exists to make N-corner
signoff one batched array pass instead of N object-graph walks — but it
is only usable if it is *bit-compatible* with the reference engine. This
suite is the gate: randomized designs and ECO sequences run through both
engines, and every arrival, slew, endpoint slack and slew violation must
agree within 1e-9 across the scenario families that exercise distinct
code paths — MCMM corners (different libraries, BEOL corners and
temperatures), flat/AOCV/per-instance derates, SI on and off, and CPPR
credits on shared clock trees. The tolerance is that tight on purpose:
the kernel replays the reference visit order with the same float
grouping, so agreement should be exact, not merely close.

Two hypothesis properties pin algebraic invariants no single example
can: the batch result is independent of corner order (corner lanes are
data-parallel, so permuting them must permute — not perturb — the
reports), and vector-engine PBA can only recover pessimism relative to
GBA, never add it.
"""

import copy

import pytest
from hypothesis import given, settings, strategies as st

from repro.beol.corners import conventional_corners
from repro.beol.stack import default_stack
from repro.liberty import make_library
from repro.liberty.aocv import AocvTable
from repro.liberty.stdcells import LibraryCondition
from repro.netlist.design import Design, PortDirection
from repro.netlist.generators import random_logic
from repro.netlist.transforms import downsize, swap_vt, upsize
from repro.sta import STA, Constraints
from repro.sta.cppr import endpoint_cppr_credit
from repro.sta.incremental import IncrementalTimer
from repro.sta.kernel import CornerSpec, compile_kernel, kernel_full_run
from repro.sta.pba import analyze_endpoint
from repro.sta.propagation import DIRECTIONS, Derates

TOL = 1e-9

VT_FLAVORS = ("svt", "lvt", "ulvt")


@pytest.fixture(scope="module")
def stack():
    return default_stack()


@pytest.fixture(scope="module")
def libs():
    return {
        "tt": make_library(),
        "ss": make_library(
            LibraryCondition(process="ssg", vdd=0.72, temp_c=125.0)
        ),
        "ff": make_library(
            LibraryCondition(process="ffg", vdd=0.88, temp_c=-40.0)
        ),
    }


def _corner_specs(libs, stack):
    """Four corners spanning every scenario family the kernel special-
    cases: plain typ, flat derates, AOCV + per-instance overlay + SI,
    and SI on a resistive-worst BEOL corner."""
    corners = conventional_corners(stack)
    return [
        CornerSpec(name="tt_typ", library=libs["tt"],
                   beol_corner=corners["typ"], temp_c=25.0),
        CornerSpec(name="ss_cw", library=libs["ss"],
                   beol_corner=corners["cw"], temp_c=125.0,
                   derates=Derates(data_late=1.05, clock_early=0.97)),
        CornerSpec(name="ff_cb_si", library=libs["ff"],
                   beol_corner=corners["cb"], temp_c=-40.0,
                   derates=Derates(
                       data_late=1.03,
                       aocv=AocvTable.from_reference_sigma(0.05),
                       aocv_distance=40.0,
                       instance_late={"g3": 1.08},
                   ),
                   si_enabled=True),
        CornerSpec(name="tt_rcw_si", library=libs["tt"],
                   beol_corner=corners["rcw"], temp_c=25.0,
                   si_enabled=True),
    ]


def _oracle(design, constraints, spec, stack):
    """Reference engine for one corner, on private copies (STA mutates
    the design it binds)."""
    sta = STA(
        copy.deepcopy(design), spec.library, copy.deepcopy(constraints),
        stack=stack, beol_corner=spec.beol_corner, temp_c=spec.temp_c,
        derates=spec.derates, si_enabled=spec.si_enabled,
    )
    sta.report = sta.run()
    return sta


def _make_design(seed):
    return random_logic(n_inputs=8, n_outputs=8, n_gates=150,
                        n_levels=6, seed=seed)


def _make_constraints():
    constraints = Constraints.single_clock(600.0)
    constraints.input_delays = {f"in{i}": 40.0 for i in range(8)}
    return constraints


@pytest.fixture(scope="module")
def batch(libs, stack):
    """One compiled 4-corner kernel plus its per-corner oracles."""
    design = _make_design(seed=3)
    constraints = _make_constraints()
    specs = _corner_specs(libs, stack)
    oracles = [_oracle(design, constraints, s, stack) for s in specs]
    kernel = compile_kernel(design, constraints, specs, stack=stack)
    kernel.run()
    return kernel, oracles


def assert_propagation_equal(prop, ref_sta):
    """Every (pin, direction) lane agrees with the oracle within TOL."""
    for ref in ref_sta.graph.topo_order:
        for direction in DIRECTIONS:
            assert prop.has(ref, direction) == \
                ref_sta.prop.has(ref, direction), (ref, direction)
            if not prop.has(ref, direction):
                continue
            got = prop.at(ref, direction)
            want = ref_sta.prop.at(ref, direction)
            assert got.late == pytest.approx(want.late, abs=TOL)
            assert got.early == pytest.approx(want.early, abs=TOL)
            assert got.slew_late == pytest.approx(want.slew_late, abs=TOL)
            assert got.slew_early == pytest.approx(want.slew_early, abs=TOL)


def assert_report_equal(got, want):
    for mode in ("setup", "hold"):
        assert got.wns(mode) == pytest.approx(want.wns(mode), abs=TOL)
        assert got.tns(mode) == pytest.approx(want.tns(mode), abs=TOL)
        ref_eps = {e.endpoint: e for e in want.endpoints(mode)}
        got_eps = {e.endpoint: e for e in got.endpoints(mode)}
        assert set(got_eps) == set(ref_eps)
        for endpoint, ref_ep in ref_eps.items():
            got_ep = got_eps[endpoint]
            assert got_ep.slack == pytest.approx(ref_ep.slack, abs=TOL)
            assert got_ep.arrival == pytest.approx(ref_ep.arrival, abs=TOL)
            assert got_ep.required == pytest.approx(ref_ep.required, abs=TOL)
            assert got_ep.data_direction == ref_ep.data_direction
            assert got_ep.startpoint == ref_ep.startpoint
    ref_slews = {v.ref: (v.slew, v.limit) for v in want.slew_violations}
    got_slews = {v.ref: (v.slew, v.limit) for v in got.slew_violations}
    assert set(got_slews) == set(ref_slews)
    for ref, (slew, limit) in ref_slews.items():
        assert got_slews[ref][0] == pytest.approx(slew, abs=TOL)
        assert got_slews[ref][1] == pytest.approx(limit, abs=TOL)


# ---------------------------------------------------------------------- #
# MCMM corners, derates, SI on/off


class TestMcmmEquivalence:
    def test_arrivals_and_slews_match_every_corner(self, batch):
        kernel, oracles = batch
        for ci, ref_sta in enumerate(oracles):
            assert_propagation_equal(kernel.materialize_prop(ci), ref_sta)

    def test_reports_match_every_corner(self, batch):
        kernel, oracles = batch
        for ci, ref_sta in enumerate(oracles):
            assert_report_equal(kernel.report(ci), ref_sta.report)

    def test_si_deltas_match(self, batch):
        kernel, oracles = batch
        for ci, ref_sta in enumerate(oracles):
            got = kernel.si_delta_for(ci)
            if not ref_sta.si_enabled:
                assert got is None
                continue
            assert set(got) == set(ref_sta.si_delta)
            for net, delta in ref_sta.si_delta.items():
                assert got[net] == pytest.approx(delta, abs=TOL)

    @pytest.mark.parametrize("seed", [5, 9])
    def test_randomized_designs(self, libs, stack, seed):
        design = random_logic(n_inputs=6, n_outputs=6, n_gates=90,
                              n_levels=5, seed=seed)
        constraints = Constraints.single_clock(520.0)
        specs = _corner_specs(libs, stack)
        oracles = [_oracle(design, constraints, s, stack) for s in specs]
        kernel = compile_kernel(design, constraints, specs, stack=stack)
        kernel.run()
        for ci, ref_sta in enumerate(oracles):
            assert_propagation_equal(kernel.materialize_prop(ci), ref_sta)
            assert_report_equal(kernel.report(ci), ref_sta.report)


# ---------------------------------------------------------------------- #
# CPPR


def _shared_clock_design():
    """clk -> two shared buffers -> two flops; the common clock prefix
    gives CPPR a real (late - early) split to credit back."""
    d = Design("shared_clk")
    d.add_port("clk", PortDirection.INPUT)
    d.add_port("din", PortDirection.INPUT)
    d.add_port("dout", PortDirection.OUTPUT)
    d.add_instance("cb1", "BUF_X4_SVT", {"A": "clk", "Z": "c1"},
                   location=(0.0, 0.0))
    d.add_instance("cb2", "BUF_X4_SVT", {"A": "c1", "Z": "c2"},
                   location=(5.0, 0.0))
    d.add_instance("ffa", "DFF_X1_SVT",
                   {"D": "din", "CK": "c2", "Q": "q1"}, location=(10.0, 0.0))
    d.add_instance("u1", "INV_X1_SVT", {"A": "q1", "ZN": "n1"},
                   location=(15.0, 0.0))
    d.add_instance("ffb", "DFF_X1_SVT",
                   {"D": "n1", "CK": "c2", "Q": "dout"}, location=(20.0, 0.0))
    return d


class TestCpprEquivalence:
    def test_cppr_credits_match_reference(self, libs, stack):
        design = _shared_clock_design()
        constraints = Constraints.single_clock(300.0)
        corners = conventional_corners(stack)
        # Clock derate split makes the shared prefix's late != early,
        # so the credit is non-degenerate.
        spec = CornerSpec(
            name="tt_ocv", library=libs["tt"], beol_corner=corners["typ"],
            temp_c=25.0,
            derates=Derates(clock_late=1.08, clock_early=0.92),
        )
        ref_sta = _oracle(design, constraints, spec, stack)
        kernel = compile_kernel(design, constraints, [spec], stack=stack)
        kernel.run()
        view = kernel.view(0)
        credits = []
        for got_ep, ref_ep in zip(kernel.report(0).endpoints("setup"),
                                  ref_sta.report.endpoints("setup")):
            got = endpoint_cppr_credit(view, got_ep)
            want = endpoint_cppr_credit(ref_sta, ref_ep)
            assert got == pytest.approx(want, abs=TOL)
            credits.append(want)
        assert any(c > 0.0 for c in credits), \
            "fixture should exercise a non-zero CPPR credit"


# ---------------------------------------------------------------------- #
# randomized ECO sequences through both engines


class TestEcoEquivalence:
    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(data=st.data())
    def test_vector_timer_tracks_reference_through_ecos(self, libs, stack,
                                                        data):
        seed = data.draw(st.integers(min_value=1, max_value=3),
                         label="seed")
        lib = libs["tt"]
        design = random_logic(n_inputs=6, n_outputs=6, n_gates=90,
                              n_levels=5, seed=seed)
        constraints = Constraints.single_clock(520.0)
        sta = STA(design, lib, constraints, stack=stack)
        report, kernel = kernel_full_run(sta)
        sta.report = report
        timer = IncrementalTimer(sta, engine="vector")
        timer._kernel = kernel
        candidates = [
            inst.name for inst in design.combinational_instances(lib)
        ]
        n_steps = data.draw(st.integers(min_value=1, max_value=3),
                            label="steps")
        for _ in range(n_steps):
            picks = data.draw(
                st.lists(st.sampled_from(candidates), min_size=1,
                         max_size=4, unique=True),
                label="instances",
            )
            for name in picks:
                action = data.draw(
                    st.sampled_from(["vt", "up", "down"]), label="action"
                )
                if action == "vt":
                    flavor = data.draw(st.sampled_from(VT_FLAVORS),
                                       label="flavor")
                    swap_vt(design, lib, name, flavor)
                elif action == "up":
                    upsize(design, lib, name)
                else:
                    downsize(design, lib, name)
            # The edit invalidates the compiled kernel; the cone update
            # must fall back to reference propagation and still match a
            # from-scratch reference run.
            incremental = timer.update_cells(picks)
            assert timer._kernel is None
            ref_sta = STA(copy.deepcopy(design), lib,
                          copy.deepcopy(constraints), stack=stack)
            assert_report_equal(incremental, ref_sta.run())
        # A full update recompiles the kernel and stays equivalent.
        full = timer.full_update()
        assert timer._kernel is not None
        ref_sta = STA(copy.deepcopy(design), lib,
                      copy.deepcopy(constraints), stack=stack)
        assert_report_equal(full, ref_sta.run())


# ---------------------------------------------------------------------- #
# hypothesis properties


@pytest.fixture(scope="module")
def small_batch(libs, stack):
    """A small design for the per-example recompiles of the permutation
    property."""
    design = random_logic(n_inputs=5, n_outputs=5, n_gates=50,
                          n_levels=4, seed=13)
    constraints = Constraints.single_clock(480.0)
    specs = _corner_specs(libs, stack)
    kernel = compile_kernel(design, constraints, specs, stack=stack)
    kernel.run()
    return design, constraints, specs, kernel


class TestProperties:
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(perm=st.permutations(list(range(4))))
    def test_batch_result_independent_of_corner_order(self, small_batch,
                                                      stack, perm):
        design, constraints, specs, base = small_batch
        permuted = compile_kernel(
            design, constraints, [specs[i] for i in perm], stack=stack
        )
        permuted.run()
        for pos, ci in enumerate(perm):
            # Corner lanes are data-parallel: permuting the batch must
            # permute the reports bit-for-bit, not perturb them.
            assert permuted.report(pos) == base.report(ci)

    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(data=st.data())
    def test_vector_pba_never_worse_than_gba(self, batch, data):
        kernel, _ = batch
        ci = data.draw(st.integers(min_value=0, max_value=3), label="ci")
        view = kernel.view(ci)
        endpoints = kernel.report(ci).endpoints("setup")
        idx = data.draw(
            st.integers(min_value=0, max_value=len(endpoints) - 1),
            label="endpoint",
        )
        result = analyze_endpoint(view, endpoints[idx], max_paths=16)
        assert result.pba_slack >= result.gba_slack - TOL
        assert result.pessimism_recovered >= -TOL
