"""Unit tests for the kernel's graph flattening and table stacking.

The equivalence suite (:mod:`tests.sta.test_kernel_equivalence`) gates
the kernel end to end; these tests pin the *compile* invariants the
batched pass silently depends on — levelized scheduling (every source
strictly precedes its sink), dense pin/node index maps that round-trip,
and stacked NLDM tensors whose vectorized bilinear lookup reproduces
:meth:`repro.liberty.tables.LookupTable2D.lookup` point-for-point,
including linear extrapolation outside the characterized grid. The
failure modes get the same treatment: corners whose libraries disagree
on arc sets or table shapes must refuse to compile with
:class:`~repro.sta.kernel.KernelCompileError`, because a silently
mis-stacked tensor would time the wrong cell.
"""

import copy

import numpy as np
import pytest

from repro.beol.corners import conventional_corners
from repro.beol.stack import default_stack
from repro.errors import TimingError
from repro.liberty import make_library
from repro.liberty.stdcells import LibraryCondition
from repro.liberty.tables import LookupTable2D
from repro.netlist.generators import random_logic
from repro.sta import Constraints
from repro.sta.graph import NetEdge
from repro.sta.kernel import (
    ENGINES,
    CornerSpec,
    KernelCompileError,
    compile_kernel,
)
from repro.sta.propagation import DIRECTIONS


@pytest.fixture(scope="module")
def stack():
    return default_stack()


@pytest.fixture(scope="module")
def libs():
    return {
        "tt": make_library(),
        "ss": make_library(
            LibraryCondition(process="ssg", vdd=0.72, temp_c=125.0)
        ),
    }


@pytest.fixture(scope="module")
def compiled(libs, stack):
    design = random_logic(n_inputs=6, n_outputs=6, n_gates=80,
                          n_levels=5, seed=21)
    constraints = Constraints.single_clock(500.0)
    corners = conventional_corners(stack)
    specs = [
        CornerSpec(name="tt_typ", library=libs["tt"],
                   beol_corner=corners["typ"], temp_c=25.0),
        CornerSpec(name="ss_cw", library=libs["ss"],
                   beol_corner=corners["cw"], temp_c=125.0),
    ]
    kernel = compile_kernel(design, constraints, specs, stack=stack)
    return design, kernel


class TestIndexMaps:
    def test_pins_follow_reference_topo_order(self, compiled):
        _, kernel = compiled
        assert kernel.pins == list(kernel.graph.topo_order)
        for i, ref in enumerate(kernel.pins):
            assert kernel.pin_index[ref] == i

    def test_node_index_round_trip(self, compiled):
        _, kernel = compiled
        seen = set()
        for ref in kernel.pins:
            for direction in DIRECTIONS:
                node = kernel._node_index[(ref, direction)]
                seen.add(node)
                # node = pin_index * 2 + dir decodes back losslessly.
                assert kernel.pins[node >> 1] == ref
                assert DIRECTIONS[node & 1] == direction
        assert seen == set(range(kernel.n_nodes))


class TestLevelization:
    def test_sources_strictly_precede_sinks(self, compiled):
        _, kernel = compiled
        level = kernel.pin_level
        for e in range(len(kernel.e_src)):
            src = kernel.pins[int(kernel.e_src[e]) >> 1]
            dst = kernel.pins[int(kernel.e_dst[e]) >> 1]
            assert level[src] < level[dst]

    def test_schedule_partitions_every_expansion_once(self, compiled):
        _, kernel = compiled
        level = kernel.pin_level
        net_seen, cell_seen = [], []
        for lvl, (net_ids, cell_ids) in enumerate(kernel._schedule):
            for e in net_ids:
                assert level[kernel.pins[int(kernel.e_dst[e]) >> 1]] == lvl
            for e in cell_ids:
                assert level[kernel.pins[int(kernel.e_dst[e]) >> 1]] == lvl
            net_seen.extend(int(e) for e in net_ids)
            cell_seen.extend(int(e) for e in cell_ids)
        assert sorted(net_seen) == sorted(int(e) for e in kernel._net_rows)
        assert sorted(cell_seen) == sorted(int(e) for e in kernel._cell_rows)
        assert len(net_seen) == len(set(net_seen))
        assert len(cell_seen) == len(set(cell_seen))

    def test_levels_are_longest_paths(self, compiled):
        _, kernel = compiled
        graph, level = kernel.graph, kernel.pin_level
        for ref in kernel.pins:
            fanin = [
                edge.driver if isinstance(edge, NetEdge) else edge.src
                for edge in graph.in_edges.get(ref, [])
            ]
            want = max((level[src] + 1 for src in fanin), default=0)
            assert level[ref] == want


class TestTableStacking:
    #: Sample points inside the NLDM grid and beyond both edges — the
    #: scalar lookup extrapolates linearly outside, and the stacked
    #: tensors must reproduce that too.
    SAMPLES = [(12.0, 1.5), (45.0, 6.0), (95.0, 14.0),
               (0.5, 0.05), (400.0, 80.0)]

    def _corner_table(self, design, kernel, e, ci, which):
        """The scalar LookupTable2D a cell expansion row stacks at a
        corner, resolved straight from that corner's library."""
        edge = kernel.e_edge[e]
        cell_name = design.instance(edge.instance).cell_name
        cell = kernel.corners[ci].library.cell(cell_name)
        key = (edge.arc.related_pin, edge.arc.pin, edge.arc.timing_type)
        arc = next(
            a for a in cell.arcs
            if (a.related_pin, a.pin, a.timing_type) == key
        )
        out_dir = DIRECTIONS[int(kernel.e_dst[e]) & 1]
        timing = arc.timing[out_dir]
        return timing.delay if which == "delay" else timing.slew

    def test_stacked_lookup_matches_scalar(self, compiled):
        design, kernel = compiled
        n_corners = len(kernel.corners)
        # Every distinct (delay, slew) table pair reached through the
        # first ~40 cell rows, at every sample point and corner.
        rows = [int(e) for e in kernel._cell_rows[:40]]
        for e in rows:
            for which, tid_arr in (("delay", kernel._dtid),
                                   ("slew", kernel._stid)):
                tid = np.asarray([tid_arr[e]])
                for slew, load in self.SAMPLES:
                    got = kernel._bilinear(
                        tid,
                        np.full((1, n_corners), slew),
                        np.full((1, n_corners), load),
                    )
                    for ci in range(n_corners):
                        table = self._corner_table(design, kernel, e, ci,
                                                   which)
                        assert got[0, ci] == pytest.approx(
                            table.lookup(slew, load), abs=1e-12
                        )

    def test_tables_deduplicated_across_instances(self, compiled):
        _, kernel = compiled
        # Table count scales with cell *types*, not instances: far
        # fewer stacked tables than cell expansion rows.
        assert kernel.n_tables < kernel.n_cell_expansions


class TestCompileFailures:
    def _base(self, libs, stack):
        design = random_logic(n_inputs=4, n_outputs=4, n_gates=30,
                              n_levels=3, seed=5)
        constraints = Constraints.single_clock(500.0)
        corners = conventional_corners(stack)
        used = design.combinational_instances(libs["tt"])[0].cell_name
        return design, constraints, corners, used

    def test_missing_arc_refuses_to_compile(self, libs, stack):
        design, constraints, corners, used = self._base(libs, stack)
        broken = copy.deepcopy(libs["tt"])
        broken.cell(used).arcs = []
        specs = [
            CornerSpec(name="tt", library=libs["tt"],
                       beol_corner=corners["typ"], temp_c=25.0),
            CornerSpec(name="broken", library=broken,
                       beol_corner=corners["cw"], temp_c=25.0),
        ]
        with pytest.raises(KernelCompileError):
            compile_kernel(design, constraints, specs, stack=stack)

    def test_table_shape_mismatch_refuses_to_compile(self, libs, stack):
        design, constraints, corners, used = self._base(libs, stack)
        broken = copy.deepcopy(libs["tt"])
        arc = broken.cell(used).delay_arcs()[0]
        for timing in arc.timing.values():
            t = timing.delay
            timing.delay = LookupTable2D(
                t.index_1[:-1], t.index_2, t.values[:-1, :]
            )
        specs = [
            CornerSpec(name="tt", library=libs["tt"],
                       beol_corner=corners["typ"], temp_c=25.0),
            CornerSpec(name="broken", library=broken,
                       beol_corner=corners["cw"], temp_c=25.0),
        ]
        with pytest.raises(KernelCompileError):
            compile_kernel(design, constraints, specs, stack=stack)

    def test_empty_corner_list_refuses_to_compile(self, libs, stack):
        design, constraints, _, _ = self._base(libs, stack)
        with pytest.raises(TimingError):
            compile_kernel(design, constraints, [], stack=stack)


class TestLifecycle:
    def test_results_require_run(self, compiled):
        design, _ = compiled
        # A freshly compiled kernel (never run) refuses to report.
        corners = conventional_corners(default_stack())
        spec = CornerSpec(name="tt", library=make_library(),
                          beol_corner=corners["typ"], temp_c=25.0)
        small = random_logic(n_inputs=3, n_outputs=3, n_gates=12,
                             n_levels=2, seed=2)
        kernel = compile_kernel(small, Constraints.single_clock(500.0),
                                [spec])
        with pytest.raises(TimingError):
            kernel.report(0)
        kernel.run()
        assert kernel.report(0).endpoints("setup")

    def test_invalidate_blocks_run(self, compiled):
        _, kernel = compiled
        clone = compile_kernel(kernel.design, kernel.constraints,
                               kernel.corners, stack=kernel.stack,
                               graph=kernel.graph)
        clone.invalidate()
        with pytest.raises(TimingError):
            clone.run()

    def test_engines_registry(self):
        assert ENGINES == ("reference", "vector")

    def test_work_ratio_counts_scalar_vs_batch(self, compiled):
        _, kernel = compiled
        kernel.run()
        stats = kernel.stats()
        # Two corners over the same graph: the scalar engines would
        # visit every expansion once per corner; the kernel visits each
        # level once regardless of corner count.
        assert stats["scalar_edge_visits"] == \
            2 * (kernel.n_net_expansions + kernel.n_cell_expansions)
        assert stats["batch_ops"] <= 2 * kernel.n_levels
        assert kernel.work_ratio() > 1.0
