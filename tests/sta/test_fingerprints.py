"""The shared fingerprint memo: token-validated caching of content
digests, and its two production users (session overlays, the daemon's
scenario fingerprints)."""

import pytest

from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.serve.overlay import DesignOverlay, OverlayEdit
from repro.sta.scheduler import (
    FingerprintMemo,
    design_fingerprint,
    scenario_fingerprint,
)


class TestFingerprintMemo:
    def test_caches_under_stable_token(self):
        memo = FingerprintMemo()
        calls = []

        def compute():
            calls.append(1)
            return "digest-a"

        assert memo.get("k", 7, compute) == "digest-a"
        assert memo.get("k", 7, compute) == "digest-a"
        assert len(calls) == 1
        assert memo.hits == 1 and memo.misses == 1
        assert len(memo) == 1

    def test_token_move_recomputes(self):
        memo = FingerprintMemo()
        assert memo.get("k", 1, lambda: "one") == "one"
        assert memo.get("k", 2, lambda: "two") == "two"
        # Stale tokens are not kept around: going back recomputes too.
        assert memo.get("k", 1, lambda: "one-again") == "one-again"
        assert memo.misses == 3 and memo.hits == 0

    def test_none_token_means_compute_once(self):
        memo = FingerprintMemo()
        memo.get("s1", None, lambda: "fp1")
        assert memo.get("s1", None, lambda: pytest.fail("recomputed")) \
            == "fp1"

    def test_keys_are_independent(self):
        memo = FingerprintMemo()
        memo.get("a", 0, lambda: "fa")
        memo.get("b", 0, lambda: "fb")
        assert memo.get("a", 0, lambda: "x") == "fa"
        assert memo.get("b", 0, lambda: "x") == "fb"
        assert len(memo) == 2

    def test_invalidate(self):
        memo = FingerprintMemo()
        memo.get("a", 0, lambda: "fa")
        memo.get("b", 0, lambda: "fb")
        memo.invalidate("a")
        assert len(memo) == 1
        assert memo.get("a", 0, lambda: "fa2") == "fa2"
        memo.invalidate()
        assert len(memo) == 0


class TestOverlayFingerprint:
    """The overlay memoizes its design fingerprint through the shared
    helper, keyed by commit version."""

    @pytest.fixture()
    def overlay(self):
        design = random_logic(name="fpd", n_gates=40, n_levels=5, seed=2)
        return DesignOverlay(design, "s0")

    def test_memoized_per_version(self, overlay):
        fp1 = overlay.content_fingerprint()
        fp2 = overlay.content_fingerprint()
        assert fp1 == fp2
        assert overlay._fp_memo.hits == 1
        assert overlay._fp_memo.misses == 1
        assert fp1 == design_fingerprint(overlay.materialize())

    def test_apply_bumps_version_and_fingerprint(self, overlay):
        before = overlay.content_fingerprint()
        inst = sorted(overlay.base.instances)[0]
        current = overlay.cell_of(inst)
        alt = next(name for name in make_library().cells
                   if name != current and name.split("_")[0]
                   == current.split("_")[0])
        overlay.apply([OverlayEdit("set_cell", inst, alt)])
        after = overlay.content_fingerprint()
        assert after != before
        assert overlay._fp_memo.misses == 2

    def test_discard_restores_base_fingerprint(self, overlay):
        base_fp = overlay.content_fingerprint()
        inst = sorted(overlay.base.instances)[0]
        current = overlay.cell_of(inst)
        alt = next(name for name in make_library().cells
                   if name != current and name.split("_")[0]
                   == current.split("_")[0])
        overlay.apply([OverlayEdit("set_cell", inst, alt)])
        assert overlay.content_fingerprint() != base_fp
        overlay.discard()
        assert overlay.content_fingerprint() == base_fp


class TestDaemonScenarioFingerprints:
    def test_daemon_warms_the_memo_at_startup(self):
        from repro.serve.server import TimingDaemon
        from repro.sta.constraints import Constraints
        from repro.sta.mcmm import Scenario

        design = random_logic(name="fps", n_gates=30, n_levels=4, seed=3)
        cons = Constraints.single_clock(800.0)
        lib = make_library()
        scenarios = [
            Scenario("tt_typ", lib, cons),
            Scenario("tt_cw", lib, cons, beol_corner_name="cw"),
        ]
        daemon = TimingDaemon(design, scenarios)
        assert len(daemon._fingerprints) == 2
        for s in scenarios:
            assert daemon._fingerprints.get(
                s.name, None, lambda: pytest.fail("not warmed")) \
                == scenario_fingerprint(s)
