"""Tests for endpoint categorization and the Fig 1 failure breakdown."""

import pytest

from repro.liberty import make_library
from repro.netlist.design import PinRef
from repro.netlist.generators import random_logic, tiny_design
from repro.sta import STA, Constraints


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def tight_sta(lib):
    """A design failing setup (reg2reg) and hold (in2reg) at once."""
    d = random_logic(n_gates=200, n_levels=8, seed=3)
    sta = STA(d, lib, Constraints.single_clock(460.0))
    sta.report = sta.run()
    return sta


class TestCategories:
    def test_flop_to_flop_is_reg2reg(self, lib):
        sta = STA(tiny_design(), lib, Constraints.single_clock(500.0))
        report = sta.run()
        ff2 = next(e for e in report.setup
                   if e.endpoint == PinRef("ff2", "D"))
        assert ff2.category == "reg2reg"
        assert ff2.startpoint == PinRef("", "clk")
        assert ff2.launched_from_clock

    def test_port_fed_is_in2reg(self, lib):
        sta = STA(tiny_design(), lib, Constraints.single_clock(500.0))
        report = sta.run()
        ff0 = next(e for e in report.setup
                   if e.endpoint == PinRef("ff0", "D"))
        assert ff0.category == "in2reg"
        assert not ff0.launched_from_clock

    def test_output_port_is_reg2out(self, lib):
        sta = STA(tiny_design(), lib, Constraints.single_clock(500.0))
        report = sta.run()
        out_ep = next(e for e in report.setup if e.kind == "output")
        assert out_ep.category == "reg2out"

    def test_unknown_without_annotation(self):
        from repro.sta.reports import EndpointResult

        bare = EndpointResult(endpoint=PinRef("x", "D"), kind="setup",
                              slack=0.0, arrival=0.0, required=0.0)
        assert bare.category == "unknown"


class TestBreakdown:
    def test_setup_breakdown_is_reg2reg_dominated(self, tight_sta):
        breakdown = tight_sta.report.violation_breakdown("setup")
        assert breakdown.get("reg2reg", 0) > 0
        assert sum(v for k, v in breakdown.items() if k != "slew") == \
            tight_sta.report.violation_count("setup")

    def test_hold_breakdown_is_port_dominated(self, tight_sta):
        """The hold failures of unconstrained-input designs come from
        ports racing the clock."""
        breakdown = tight_sta.report.violation_breakdown("hold")
        assert breakdown.get("in2reg", 0) > 0
        assert breakdown.get("reg2reg", 0) == 0

    def test_clean_design_has_empty_breakdown(self, lib):
        c = Constraints.single_clock(900.0)
        c.input_delays = {"in0": 60.0, "in1": 60.0}
        report = STA(tiny_design(), lib, c).run()
        assert report.violation_breakdown("setup") == {}
        assert report.violation_breakdown("hold") == {}
