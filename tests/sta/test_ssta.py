"""Statistical STA: canonical moments gated against the Monte-Carlo
sample-vector oracle, yield and criticality invariants, and post-silicon
clock-buffer tuning on the PST benchmark block."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints
from repro.sta.algebra import CanonicalAlgebra, VariationModel
from repro.sta.ssta import (
    SstaRun,
    monte_carlo_ssta,
    pst_benchmark_setup,
    run_ssta,
    tune_to_yield,
    yield_vs_tuning_range,
)


def make_setup(seed, n_gates=140, period=700.0):
    design = random_logic(name=f"ssta{seed}", n_inputs=10, n_outputs=10,
                          n_gates=n_gates, n_levels=7, seed=seed)
    return design, make_library(), Constraints.single_clock(period)


@pytest.fixture(scope="module")
def bench():
    """The PST benchmark block plus its canonical run (shared — the
    sampling pass is the expensive part)."""
    design, lib, cons = pst_benchmark_setup(seed=9, n_gates=160)
    run = run_ssta(design, lib, cons, n_samples=4000)
    return design, lib, cons, run


class TestMcValidation:
    """Acceptance gate: canonical endpoint moments within 5% of a
    >=2000-sample Monte-Carlo on randomized LVF designs."""

    @pytest.mark.parametrize("seed", [3, 11])
    def test_moments_within_five_percent(self, seed):
        design, lib, cons = make_setup(seed)
        model = VariationModel()
        run = run_ssta(design, lib, cons, model=model, n_samples=512)
        mc = monte_carlo_ssta(design, lib, cons, model=model,
                              n_samples=2000)
        assert len(mc.setup_moments) == len(run.endpoints)
        for ep in run.endpoints:
            mc_mean, mc_sigma = mc.setup_moments[str(ep.endpoint)]
            # Slack means sit far from zero, so normalize the mean
            # deviation by the larger of |mean| and sigma.
            denom = max(abs(mc_mean), mc_sigma, 1e-9)
            assert abs(ep.mean - mc_mean) / denom < 0.05, str(ep.endpoint)
            if mc_sigma > 0.5:  # below that, both are ~deterministic
                assert abs(ep.sigma - mc_sigma) / mc_sigma < 0.05, \
                    str(ep.endpoint)

    def test_mc_and_canonical_yield_agree(self):
        design, lib, cons = make_setup(5, period=560.0)
        model = VariationModel()
        run = run_ssta(design, lib, cons, model=model, n_samples=4000)
        mc = monte_carlo_ssta(design, lib, cons, model=model,
                              n_samples=2000)
        assert run.timing_yield() == pytest.approx(mc.timing_yield,
                                                   abs=0.05)


class TestSstaRun:
    def test_requires_lvf(self):
        from repro.liberty.lvf import strip_lvf

        design, lib, cons = make_setup(2, n_gates=40)
        assert strip_lvf(lib) > 0
        with pytest.raises(TimingError, match="LVF"):
            run_ssta(design, lib, cons)

    def test_requires_canonical_algebra(self):
        design, lib, cons = make_setup(2, n_gates=40)
        sta = STA(design, lib, cons)
        sta.run()
        with pytest.raises(TimingError, match="Canonical"):
            SstaRun(sta, VariationModel())

    def test_criticalities_sum_to_one(self, bench):
        _, _, _, run = bench
        total = sum(ep.criticality for ep in run.endpoints)
        assert total == pytest.approx(1.0, abs=1e-6)
        assert all(ep.criticality >= 0.0 for ep in run.endpoints)
        by_inst = run.instance_criticality()
        assert by_inst
        assert all(c >= 0.0 for c in by_inst.values())

    def test_yield_monotone_in_period(self, bench):
        _, _, _, run = bench
        curve = run.yield_vs_period([-40.0, 0.0, 40.0, 120.0])
        ys = [y for _, y in curve]
        assert ys == sorted(ys)
        assert 0.0 <= min(ys) and max(ys) <= 1.0
        assert run.timing_yield(run.period) == run.timing_yield()

    def test_render_reports_distributions(self, bench):
        _, _, _, run = bench
        text = run.render(limit=5)
        assert "sigma" in text
        assert "yield" in text


class TestPstTuning:
    def test_tuning_recovers_yield(self, bench):
        """The headline acceptance: tuned-vs-untuned yield delta > 0 and
        the default target reached on the PST benchmark block."""
        _, _, _, run = bench
        tuned = tune_to_yield(run, target_yield=0.99, tune_range=40.0)
        assert tuned.yield_gain > 0.0
        assert tuned.achieved
        assert tuned.selected  # buffers actually inserted
        assert len(tuned.steps) == len(tuned.selected)
        assert "target met" in tuned.render()

    def test_zero_range_changes_nothing(self, bench):
        _, _, _, run = bench
        untuned = tune_to_yield(run, target_yield=0.99, tune_range=0.0)
        assert untuned.tuned_yield == untuned.baseline_yield

    def test_budget_caps_insertions(self, bench):
        _, _, _, run = bench
        capped = tune_to_yield(run, target_yield=1.0, tune_range=40.0,
                               max_buffers=3)
        assert len(capped.selected) <= 3

    def test_yield_vs_tuning_range_is_monotone(self, bench):
        """The PST recovery curve: a wider tuning range never hurts."""
        _, _, _, run = bench
        results = yield_vs_tuning_range(run, [0.0, 15.0, 40.0],
                                        target_yield=0.999)
        ys = [r.tuned_yield for r in results]
        assert ys == sorted(ys)
        assert ys[-1] > ys[0]  # the recovery story, in one assertion
