"""Tests for the interdependent flip-flop model."""

import pytest

from repro.errors import ReproError
from repro.flops.model import InterdependentFlopModel, default_flop_model


@pytest.fixture(scope="module")
def model():
    return default_flop_model()


class TestC2qSurface:
    def test_c2q_decreasing_in_setup(self, model):
        assert model.c2q(10.0) > model.c2q(20.0) > model.c2q(80.0)

    def test_c2q_decreasing_in_hold(self, model):
        assert model.c2q(80.0, hold=5.0) > model.c2q(80.0, hold=80.0)

    def test_c2q_asymptote(self, model):
        assert model.c2q(500.0, 500.0) == pytest.approx(model.c2q_inf, rel=0.01)

    def test_wall_rejected(self, model):
        with pytest.raises(ReproError, match="wall"):
            model.c2q(model.s_wall - 1.0)
        with pytest.raises(ReproError, match="wall"):
            model.c2q(80.0, hold=model.h_wall - 1.0)

    def test_gradient_negative_and_consistent(self, model):
        s = 20.0
        eps = 1e-4
        fd = (model.c2q(s + eps) - model.c2q(s - eps)) / (2 * eps)
        assert model.dc2q_dsetup(s) == pytest.approx(fd, rel=1e-4)
        assert model.dc2q_dsetup(s) < 0.0

    def test_matches_transistor_level_characterization(self, model):
        """The default constants track the six-NAND flop measurements
        (setup sweep at hold=80: see tests/spice/test_testbench)."""
        from repro.spice.testbench import dff_capture_trial

        for setup in (20.0, 40.0, 80.0):
            measured = dff_capture_trial(setup_time=setup, hold_time=80.0)
            assert measured.captured
            assert model.c2q(setup, 80.0) == pytest.approx(
                measured.c2q_delay, rel=0.12
            )


class TestPushout:
    def test_pushout_above_wall(self, model):
        assert model.pushout_setup() > model.s_wall

    def test_smaller_fraction_larger_setup(self, model):
        assert model.pushout_setup(0.02) > model.pushout_setup(0.20)

    def test_pushout_definition(self, model):
        s = model.pushout_setup(0.10)
        assert model.c2q(s) == pytest.approx(1.10 * model.c2q(1e6), rel=0.01)

    def test_hold_pushout_flat_branch_hugs_wall(self, model):
        # The hold branch is shallow: a 10% pushout never triggers.
        assert model.pushout_hold(0.10) == pytest.approx(
            model.h_wall + 0.5
        )


class TestContour:
    def test_equal_c2q_contour_tradeoff(self, model):
        """Fig 10(iii): along an equal-c2q contour, less setup requires
        more hold."""
        target = model.c2q_inf + 0.35
        contour = model.equal_c2q_contour(
            target, setups=[65.0, 70.0, 80.0, 100.0, 120.0]
        )
        assert len(contour) >= 3
        setups = [s for s, _ in contour]
        holds = [h for _, h in contour]
        assert setups == sorted(setups)
        assert holds == sorted(holds, reverse=True)


class TestFit:
    def test_fit_recovers_synthetic_model(self):
        truth = InterdependentFlopModel(
            c2q_inf=50.0, a_s=90.0, tau_s=12.0, s_wall=5.0
        )
        curve = [(s, truth.c2q(s)) for s in (8, 10, 14, 18, 25, 35, 50, 80)]
        curve += [(3.0, None), (5.0, None)]
        fitted = InterdependentFlopModel.fit(curve)
        assert fitted.c2q_inf == pytest.approx(50.0, rel=0.05)
        assert fitted.tau_s == pytest.approx(12.0, rel=0.25)
        assert fitted.s_wall == 5.0

    def test_fit_needs_enough_samples(self):
        with pytest.raises(ReproError):
            InterdependentFlopModel.fit([(10.0, 60.0), (20.0, 55.0)])
