"""Tests for margin recovery with flexible flip-flop timing."""

import pytest

from repro.errors import ReproError
from repro.flops.model import default_flop_model
from repro.flops.recovery import (
    Stage,
    baseline_wns,
    recover_margin,
    stages_from_sta,
)


@pytest.fixture(scope="module")
def model():
    return default_flop_model()


def ring(delays):
    names = [f"f{i}" for i in range(len(delays))]
    return [
        Stage(names[i], names[(i + 1) % len(names)], d)
        for i, d in enumerate(delays)
    ]


class TestBaseline:
    def test_baseline_matches_hand_calculation(self, model):
        stages = [Stage("a", "b", 300.0)]
        s = model.pushout_setup(0.10)
        expected = 430.0 - model.c2q(s) - 300.0 - s
        assert baseline_wns(stages, model, 430.0) == pytest.approx(expected)

    def test_baseline_worst_stage_governs(self, model):
        stages = ring([200.0, 340.0, 250.0])
        lone = [Stage("a", "b", 340.0)]
        assert baseline_wns(stages, model, 430.0) == pytest.approx(
            baseline_wns(lone, model, 430.0)
        )


class TestRecovery:
    def test_never_worse_than_baseline(self, model):
        stages = ring([300.0, 340.0, 250.0])
        res = recover_margin(stages, model, period=430.0)
        assert res.recovered_wns >= res.baseline_wns - 1e-9

    def test_recovers_on_unbalanced_ring(self, model):
        """Unbalanced stages are where flexibility pays: the flop between
        a long and a short stage shifts its operating point."""
        stages = ring([340.0, 220.0, 260.0])
        res = recover_margin(stages, model, period=430.0)
        assert res.improvement > 5.0

    def test_balanced_ring_gains_less(self, model):
        balanced = ring([300.0, 300.0, 300.0])
        unbalanced = ring([360.0, 240.0, 300.0])
        gain_b = recover_margin(balanced, model, period=430.0).improvement
        gain_u = recover_margin(unbalanced, model, period=430.0).improvement
        assert gain_u > gain_b

    def test_setup_points_within_bounds(self, model):
        stages = ring([320.0, 280.0])
        res = recover_margin(stages, model, period=430.0, s_max=120.0)
        for s in res.setup_points.values():
            assert model.s_wall < s <= 120.0

    def test_empty_stages_rejected(self, model):
        with pytest.raises(ReproError):
            recover_margin([], model, period=430.0)

    def test_result_consistent_with_points(self, model):
        stages = ring([340.0, 220.0, 260.0])
        res = recover_margin(stages, model, period=430.0)
        wns = min(
            430.0
            - model.c2q(res.setup_points[st.launch])
            - st.data_delay
            - res.setup_points[st.capture]
            for st in stages
        )
        assert wns == pytest.approx(res.recovered_wns, abs=1e-6)


class TestStagesFromSta:
    def test_extraction(self):
        from repro.liberty import make_library
        from repro.netlist.generators import random_logic
        from repro.sta import STA, Constraints

        lib = make_library()
        d = random_logic(n_gates=120, n_levels=6, seed=3)
        sta = STA(d, lib, Constraints.single_clock(500.0))
        report = sta.run()
        stages = stages_from_sta(sta, report, limit=20)
        assert stages
        for st in stages:
            assert st.data_delay > 0.0
            assert st.launch != ""
            assert st.capture != ""
