"""Tests for block-based SSTA and statistical interconnect."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beol.stack import default_stack
from repro.errors import TimingError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.parasitics.statistical import (
    RcSigmas,
    StatisticalAnnotator,
    layer_rc_sigmas,
    parse_statistical_spef,
    write_statistical_spef,
)
from repro.sta import STA, Constraints
from repro.variation.montecarlo import mc_path_delays
from repro.variation.ssta import GaussianArrival, clark_max, run_ssta


@pytest.fixture(scope="module")
def sta():
    lib = make_library()
    d = random_logic(n_gates=200, n_levels=8, seed=11)
    sta = STA(d, lib, Constraints.single_clock(500.0))
    sta.report = sta.run()
    return sta


@pytest.fixture(scope="module")
def ssta_result(sta):
    return run_ssta(sta, global_sigma_frac=0.3)


class TestGaussianArrival:
    def test_sigma_combines_components(self):
        a = GaussianArrival(10.0, sigma_local=3.0, sigma_global=4.0)
        assert a.sigma == pytest.approx(5.0)

    def test_shifted_rss_local(self):
        a = GaussianArrival(10.0, sigma_local=3.0)
        b = a.shifted(5.0, 4.0)
        assert b.mean == pytest.approx(15.0)
        assert b.sigma_local == pytest.approx(5.0)

    def test_shifted_global_adds_linearly(self):
        a = GaussianArrival(0.0, sigma_global=2.0)
        b = a.shifted(1.0, 0.0, delay_sigma_global=3.0)
        assert b.sigma_global == pytest.approx(5.0)

    def test_quantile(self):
        a = GaussianArrival(10.0, sigma_local=2.0)
        assert a.quantile(3.0) == pytest.approx(16.0)


class TestClarkMax:
    def test_dominant_input_wins(self):
        a = GaussianArrival(100.0, sigma_local=1.0)
        b = GaussianArrival(0.0, sigma_local=1.0)
        m = clark_max(a, b)
        assert m.mean == pytest.approx(100.0, abs=0.01)
        assert m.sigma_local == pytest.approx(1.0, abs=0.01)

    def test_equal_inputs_mean_exceeds_both(self):
        """E[max of two equal iid Gaussians] = mu + sigma/sqrt(pi)."""
        a = GaussianArrival(10.0, sigma_local=2.0)
        m = clark_max(a, GaussianArrival(10.0, sigma_local=2.0))
        assert m.mean == pytest.approx(10.0 + 2.0 / math.sqrt(math.pi),
                                       rel=1e-3)

    @given(
        mu_a=st.floats(-50, 50), mu_b=st.floats(-50, 50),
        s_a=st.floats(0.1, 10), s_b=st.floats(0.1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_max_mean_at_least_both_means(self, mu_a, mu_b, s_a, s_b):
        m = clark_max(GaussianArrival(mu_a, sigma_local=s_a),
                      GaussianArrival(mu_b, sigma_local=s_b))
        assert m.mean >= max(mu_a, mu_b) - 1e-9

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(3)
        xa = rng.normal(10.0, 3.0, 200000)
        xb = rng.normal(12.0, 2.0, 200000)
        mc = np.maximum(xa, xb)
        m = clark_max(GaussianArrival(10.0, sigma_local=3.0),
                      GaussianArrival(12.0, sigma_local=2.0))
        assert m.mean == pytest.approx(float(mc.mean()), rel=0.01)
        assert m.sigma_local == pytest.approx(float(mc.std()), rel=0.03)


class TestRunSsta:
    def test_requires_deterministic_run(self):
        lib = make_library()
        d = random_logic(n_gates=60, n_levels=4, seed=2)
        fresh = STA(d, lib, Constraints.single_clock(500.0))
        with pytest.raises(TimingError):
            run_ssta(fresh)

    def test_endpoint_sigmas_positive(self, ssta_result):
        assert ssta_result.endpoint_slacks
        for dist in ssta_result.endpoint_slacks.values():
            assert dist.sigma > 0.0

    def test_statistical_mean_at_most_det_arrival_plus_bias(self, sta,
                                                            ssta_result):
        """SSTA slack mean tracks deterministic slack within the Clark
        max bias (statistical max >= max of means). Port-fed endpoints
        (no cell stages, zero sigma) are excluded: their slacks differ
        only by the rise/fall constraint convention."""
        for e in sta.report.endpoints("setup"):
            if e.kind != "setup":
                continue
            dist = ssta_result.endpoint_slacks[e.endpoint]
            if dist.sigma < 0.1:
                continue
            assert dist.mean <= e.slack + 1e-6

    def test_sigma_matches_path_mc(self, sta, ssta_result):
        """On the worst endpoint the SSTA sigma must match Monte Carlo
        over the dominant path (single dominant path => Clark is exact)."""
        e = [x for x in sta.report.endpoints("setup") if x.kind == "setup"][0]
        dist = ssta_result.endpoint_slacks[e.endpoint]
        path = sta.worst_path(e)
        samples = mc_path_delays(sta, path, n_samples=4000, seed=1,
                                 global_sigma_frac=0.3)
        assert dist.sigma == pytest.approx(float(samples.std()), rel=0.15)

    def test_yield_aware_slack_below_mean(self, ssta_result):
        ep = next(iter(ssta_result.endpoint_slacks))
        assert ssta_result.slack_at_sigma(ep, 3.0) < \
            ssta_result.endpoint_slacks[ep].mean

    def test_wns_at_sigma_monotone_in_confidence(self, ssta_result):
        assert ssta_result.wns_at_sigma(3.0) < ssta_result.wns_at_sigma(1.0)

    def test_global_fraction_shifts_decomposition(self, sta):
        local = run_ssta(sta, global_sigma_frac=0.0)
        mixed = run_ssta(sta, global_sigma_frac=0.8)
        ep = max(local.endpoint_slacks,
                 key=lambda e: local.endpoint_slacks[e].sigma)
        assert local.endpoint_slacks[ep].sigma_global == 0.0
        assert mixed.endpoint_slacks[ep].sigma_global > 0.0


class TestStatisticalInterconnect:
    @pytest.fixture(scope="class")
    def annotator(self, sta):
        return StatisticalAnnotator(sta.parasitics, default_stack())

    def test_sadp_layer_noisier_than_single(self):
        stack = default_stack()
        sadp = layer_rc_sigmas(stack.layer("M2"))
        single = layer_rc_sigmas(stack.layer("M6"))
        assert sadp.wire_delay_rel > single.wire_delay_rel

    def test_wire_sigma_positive(self, sta, annotator):
        sigmas = annotator.all_wire_sigmas()
        assert sigmas
        assert all(v >= 0.0 for v in sigmas.values())

    def test_ssta_with_wires_widens_sigma(self, sta, annotator):
        base = run_ssta(sta, global_sigma_frac=0.3)
        wired = run_ssta(sta, global_sigma_frac=0.3,
                         wire_annotator=annotator)
        ep = next(iter(base.endpoint_slacks))
        assert wired.endpoint_slacks[ep].sigma >= \
            base.endpoint_slacks[ep].sigma

    def test_sspef_round_trip(self, sta, annotator):
        text = write_statistical_spef("rand", annotator)
        parsed = parse_statistical_spef(text)
        assert parsed
        some_net = next(iter(parsed))
        assert parsed[some_net].r_rel == pytest.approx(
            annotator.net_sigmas(some_net).r_rel
        )

    def test_sspef_malformed_rejected(self):
        from repro.errors import CornerError

        with pytest.raises(CornerError):
            parse_statistical_spef("*X_NET n 1 2\n")

    def test_rc_sigma_delay_combination(self):
        s = RcSigmas(r_rel=0.03, c_rel=0.04)
        assert s.wire_delay_rel == pytest.approx(0.05)
