"""Tests for Monte Carlo timing analysis."""

import numpy as np
import pytest

from repro.errors import TimingError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints
from repro.variation.montecarlo import (
    mc_path_delays,
    nominal_path_delay,
    path_delay_statistics,
    spice_chain_mc,
)


@pytest.fixture(scope="module")
def sta():
    lib = make_library()
    d = random_logic(n_gates=150, n_levels=8, seed=11)
    sta = STA(d, lib, Constraints.single_clock(500.0))
    sta.report = sta.run()
    return sta


@pytest.fixture(scope="module")
def worst_path(sta):
    e = [e for e in sta.report.setup if e.kind == "setup"][0]
    return sta.worst_path(e)


class TestMcPathDelays:
    def test_deterministic_for_seed(self, sta, worst_path):
        a = mc_path_delays(sta, worst_path, n_samples=64, seed=5)
        b = mc_path_delays(sta, worst_path, n_samples=64, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_samples(self, sta, worst_path):
        a = mc_path_delays(sta, worst_path, n_samples=64, seed=5)
        b = mc_path_delays(sta, worst_path, n_samples=64, seed=6)
        assert not np.array_equal(a, b)

    def test_mean_close_to_nominal(self, sta, worst_path):
        samples = mc_path_delays(sta, worst_path, n_samples=4000, seed=1)
        nominal = nominal_path_delay(sta, worst_path)
        # Slight positive bias expected from the asymmetric perturbation.
        assert samples.mean() == pytest.approx(nominal, rel=0.05)

    def test_distribution_right_skewed(self, sta, worst_path):
        """The Fig 7 asymmetry: late tail fatter than early tail."""
        samples = mc_path_delays(sta, worst_path, n_samples=6000, seed=1)
        stats = path_delay_statistics(samples)
        assert stats.skewness > 0.05
        assert stats.asymmetry > 1.1

    def test_global_correlation_widens_sigma(self, sta, worst_path):
        local = mc_path_delays(sta, worst_path, n_samples=3000, seed=1,
                               global_sigma_frac=0.0)
        correlated = mc_path_delays(sta, worst_path, n_samples=3000, seed=1,
                                    global_sigma_frac=0.8)
        assert correlated.std() > local.std()

    def test_statistics_require_enough_samples(self):
        with pytest.raises(TimingError):
            path_delay_statistics(np.array([1.0, 2.0]))

    def test_nominal_close_to_gba_arrival_minus_clock(self, sta, worst_path):
        nominal = nominal_path_delay(sta, worst_path)
        # GBA arrival includes the same stages; allow slack for launch
        # clock wire segments not in the cell-stage model.
        assert nominal == pytest.approx(worst_path.arrival, rel=0.15)


class TestSpiceChainMc:
    """Device-level MC — slow; kept small."""

    @pytest.fixture(scope="class")
    def samples(self):
        return spice_chain_mc(n_stages=4, n_samples=120, seed=3,
                              sigma_vt=0.06, dt=1.0)

    def test_sample_count(self, samples):
        assert samples.shape == (120,)
        assert np.all(samples > 0.0)

    def test_emergent_right_skew(self, samples):
        """Delay is convex in Vt, so the physical distribution is
        right-skewed without any model telling it to be."""
        stats = path_delay_statistics(samples)
        assert stats.skewness > 0.0

    def test_deterministic(self):
        a = spice_chain_mc(n_stages=3, n_samples=8, seed=1)
        b = spice_chain_mc(n_stages=3, n_samples=8, seed=1)
        np.testing.assert_allclose(a, b)
