"""Tests for the variation-model accuracy ladder (Section 3.1)."""

import pytest

from repro.errors import TimingError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints
from repro.variation.accuracy import (
    MODELS,
    ladder_comparison,
    predicted_path_delta,
    true_path_deltas,
)
from repro.variation.derate import aocv_derates, flat_ocv_derates


@pytest.fixture(scope="module")
def sta():
    lib = make_library()
    d = random_logic(n_gates=200, n_levels=8, seed=11)
    sta = STA(d, lib, Constraints.single_clock(500.0))
    sta.report = sta.run()
    return sta


@pytest.fixture(scope="module")
def paths(sta):
    candidates = [sta.worst_path(e) for e in sta.report.endpoints("setup")[:10]
                  if e.kind == "setup"]
    return [p for p in candidates if p.stage_count >= 1]


class TestPredictions:
    def test_all_models_predict_positive_delta(self, sta, paths):
        for model in MODELS:
            for path in paths:
                assert predicted_path_delta(sta, path, model) > 0.0

    def test_unknown_model_rejected(self, sta, paths):
        with pytest.raises(TimingError, match="unknown variation model"):
            predicted_path_delta(sta, paths[0], "ssta")

    def test_pocv_rss_below_linear_sum(self, sta, paths):
        """RSS accumulation must be below the linear (fully correlated)
        sum — the whole point of statistical variation models."""
        path = paths[0]
        pocv = predicted_path_delta(sta, path, "pocv")
        # Linear sum = flat with fraction equal to per-stage 3*sigma_rel:
        # approximate with a generous flat fraction.
        linear = predicted_path_delta(sta, path, "flat", flat_fraction=0.15)
        assert pocv < linear

    def test_deeper_paths_get_relatively_less_aocv(self, sta):
        """AOCV derate fraction shrinks with depth."""
        eps = [e for e in sta.report.endpoints("setup") if e.kind == "setup"]
        # Port-fed flops have zero cell stages; the AOCV fraction is only
        # defined for real logic paths.
        paths = [p for p in (sta.worst_path(e) for e in eps)
                 if p.stage_count >= 1]
        shallow = min(paths, key=lambda p: p.stage_count)
        deep = max(paths, key=lambda p: p.stage_count)
        if deep.stage_count == shallow.stage_count:
            pytest.skip("population lacks depth spread")

        def rel(p):
            delta = predicted_path_delta(sta, p, "aocv")
            cell = p.cell_delay()
            return delta / cell

        assert rel(deep) < rel(shallow)


class TestLadder:
    @pytest.fixture(scope="class")
    def rows(self, sta, paths):
        return ladder_comparison(sta, paths, n_samples=2500, seed=7)

    def test_all_models_present(self, rows):
        assert set(rows) == set(MODELS)

    def test_lvf_beats_pocv(self, rows):
        assert rows["lvf"].mean_abs_error < rows["pocv"].mean_abs_error

    def test_pocv_beats_aocv(self, rows):
        assert rows["pocv"].mean_abs_error < rows["aocv"].mean_abs_error

    def test_lvf_nearly_unbiased(self, rows):
        assert abs(rows["lvf"].mean_signed_error) < \
            abs(rows["aocv"].mean_signed_error)

    def test_truth_positive(self, sta, paths):
        for t in true_path_deltas(sta, paths, n_samples=800, seed=1):
            assert t > 0.0


class TestDerateBuilders:
    def test_flat_ocv_symmetric(self):
        d = flat_ocv_derates(0.08)
        assert d.data_late == pytest.approx(1.08)
        assert d.data_early == pytest.approx(0.92)
        assert d.clock_late == pytest.approx(1.08)

    def test_flat_ocv_separate_clock(self):
        d = flat_ocv_derates(0.08, clock_percent=0.04)
        assert d.clock_late == pytest.approx(1.04)

    def test_flat_ocv_bad_fraction(self):
        from repro.errors import LibraryError

        with pytest.raises(LibraryError):
            flat_ocv_derates(1.5)

    def test_aocv_derates_built_from_library(self, sta):
        d = aocv_derates(sta.library)
        assert d.aocv is not None
        assert d.aocv.derate(1.0, 0.0, "late") > \
            d.aocv.derate(16.0, 0.0, "late") > 1.0
