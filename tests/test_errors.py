"""Tests for the structured error hierarchy and the CLI error paths.

A failed run must exit with a distinct code and a one-line structured
``error:`` message on stderr — never a traceback.
"""

import pytest

from repro import errors
from repro.cli import (
    EXIT_CLEAN,
    EXIT_DEGRADED,
    EXIT_FATAL,
    EXIT_VIOLATIONS,
    main,
)
from repro.errors import (
    CheckpointError,
    ExecutionError,
    ExecutorBrokenError,
    InjectedFaultError,
    ReproError,
    TaskDegradedError,
    ValidationError,
    WorkerCrashError,
    WorkerTimeoutError,
)


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        subclasses = [
            obj for obj in vars(errors).values()
            if isinstance(obj, type) and issubclass(obj, Exception)
        ]
        assert len(subclasses) >= 15
        assert all(issubclass(cls, ReproError) for cls in subclasses)

    def test_runtime_errors_share_a_base(self):
        for cls in (WorkerCrashError, WorkerTimeoutError,
                    ExecutorBrokenError, TaskDegradedError):
            assert issubclass(cls, ExecutionError)

    def test_injected_fault_is_a_worker_crash(self):
        """Injected crashes must walk the production recovery path."""
        assert issubclass(InjectedFaultError, WorkerCrashError)

    def test_checkpoint_error_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise CheckpointError("bad journal")


class TestStructuredContext:
    def test_message_only(self):
        exc = ReproError("plain failure")
        assert str(exc) == "plain failure"
        assert exc.context == {}

    def test_context_rendered_sorted(self):
        exc = ReproError("boom", scenario="ss_cw", attempt=3)
        assert str(exc) == "boom [attempt=3, scenario='ss_cw']"
        assert exc.context == {"scenario": "ss_cw", "attempt": 3}

    def test_with_context_accumulates(self):
        exc = WorkerCrashError("died")
        assert exc.with_context(task="tt_typ") is exc
        exc.with_context(attempt=2)
        assert "attempt=2" in str(exc)
        assert "task='tt_typ'" in str(exc)

    def test_subclass_context_passthrough(self):
        exc = TaskDegradedError("quarantined", task="x", attempts=3)
        assert exc.context["attempts"] == 3

    def test_validation_error_carries_issues(self):
        exc = ValidationError("lint failed", issues=["a", "b"], design="d")
        assert exc.issues == ["a", "b"]
        assert exc.context == {"design": "d"}
        assert ValidationError("no issues").issues == []


class TestCliErrorPaths:
    """Bad inputs must exit EXIT_FATAL with a structured message."""

    def run(self, capsys, *argv):
        code = main(list(argv))
        captured = capsys.readouterr()
        return code, captured.out, captured.err

    def test_bad_jobs_count(self, capsys):
        # Validated up front by the CLI (exit 1, before any work runs)
        # rather than surfacing the scheduler's TimingError as exit 4.
        code, _, err = self.run(
            capsys, "signoff", "--design", "tiny", "--jobs", "0",
            "--no-validate",
        )
        assert code == 1
        assert "error: --jobs must be a positive integer" in err
        assert "Traceback" not in err

    def test_unknown_process_corner(self, capsys):
        code, _, err = self.run(
            capsys, "sta", "--design", "tiny", "--process", "zz",
        )
        assert code == EXIT_FATAL
        assert "error: LibraryError:" in err
        assert "zz" in err
        assert "Traceback" not in err

    def test_missing_library_file(self, capsys, tmp_path):
        missing = tmp_path / "does-not-exist.lib"
        code, _, err = self.run(
            capsys, "validate", "--design", "tiny",
            "--library-file", str(missing),
        )
        assert code == EXIT_FATAL
        assert "error:" in err
        assert "cannot read library file" in err
        assert "Traceback" not in err

    def test_malformed_library_file(self, capsys, tmp_path):
        bad = tmp_path / "garbage.lib"
        bad.write_text("this is not a liberty file {{{")
        code, _, err = self.run(
            capsys, "validate", "--design", "tiny",
            "--library-file", str(bad),
        )
        assert code == EXIT_FATAL
        assert "error:" in err
        assert "Traceback" not in err

    def test_resume_without_checkpoint(self, capsys):
        code, _, err = self.run(
            capsys, "signoff", "--design", "tiny", "--resume",
            "--no-validate",
        )
        assert code == EXIT_FATAL
        assert "error: ReproError: --resume requires --checkpoint PATH" \
            in err

    def test_bad_retries_count(self, capsys):
        code, _, err = self.run(
            capsys, "signoff", "--design", "tiny", "--retries", "-1",
            "--no-validate",
        )
        assert code == EXIT_FATAL
        assert "error: TimingError: retries must be >= 0" in err

    def test_validation_error_lists_issues(self, capsys, tmp_path):
        """A failing pre-run lint prints every issue, not just the first."""
        from repro.liberty import make_library
        from repro.liberty.io import write_library
        from repro.testing.faults import malform_library

        lib = make_library()
        malform_library(lib, seed=1, kind="nan_delay")
        path = tmp_path / "broken.lib"
        path.write_text(write_library(lib))
        code, out, _ = self.run(
            capsys, "validate", "--design", "tiny",
            "--library-file", str(path),
        )
        assert code == EXIT_VIOLATIONS
        assert "non-finite-table" in out

    def test_unknown_design_is_usage_error(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["sta", "--design", "nonexistent"])
        assert info.value.code == 2  # argparse convention

    def test_clean_run_exits_zero(self, capsys):
        code, out, _ = self.run(
            capsys, "validate", "--design", "tiny", "--period", "500",
        )
        assert code == EXIT_CLEAN
        assert "validation clean" in out


class TestCliDegradedExit:
    def test_signoff_degraded_exit_code(self, capsys, tmp_path):
        """Exit codes must triage clean / violations / degraded / fatal."""
        import repro.cli as cli
        from repro.testing.faults import Fault, FaultInjector, FaultPlan

        # Monkeypatch-free determinism: drive main() with an injected
        # persistent fault via --inject-faults is seed-dependent, so
        # instead exercise the scheduler contract the CLI relies on.
        from repro.liberty import make_library
        from repro.netlist.generators import random_logic
        from repro.runtime.supervisor import RetryPolicy
        from repro.sta import Constraints
        from repro.sta.mcmm import Scenario
        from repro.sta.scheduler import SignoffScheduler

        lib = make_library()
        c = Constraints.single_clock(520.0)
        c.input_delays = {f"in{i}": 60.0 for i in range(8)}
        design = random_logic(n_inputs=8, n_outputs=8, n_gates=40,
                              n_levels=4, seed=2)
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="bad", attempts=tuple(range(1, 33))),
        ))
        outcome = SignoffScheduler(
            [Scenario("good", lib, c), Scenario("bad", lib, c)],
            policy=RetryPolicy(retries=1, backoff_s=0.0),
            fault_injector=injector,
        ).signoff(design)
        # the CLI maps a degraded outcome to EXIT_DEGRADED
        assert outcome.degraded and cli.EXIT_DEGRADED == 3
        assert EXIT_DEGRADED not in (EXIT_CLEAN, EXIT_VIOLATIONS,
                                     EXIT_FATAL)
