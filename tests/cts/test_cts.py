"""Tests for clock-tree synthesis, skew analysis and useful skew."""

import pytest

from repro.errors import NetlistError, TimingError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints
from repro.sta.propagation import Derates
from repro.cts.skew import clock_skew_report, multi_corner_skew
from repro.cts.tree import synthesize_clock_tree
from repro.cts.useful_skew import (
    SkewStage,
    schedule_useful_skew,
    stages_from_report,
)


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture()
def design(lib):
    d = random_logic(n_gates=150, n_levels=8, seed=5)
    d.bind(lib)
    return d


class TestTreeSynthesis:
    def test_tree_validates(self, lib, design):
        report = synthesize_clock_tree(design, lib)
        design.validate(lib)
        assert report.n_clusters >= 1
        assert report.root_buffer in design.instances

    def test_all_flops_reachable(self, lib, design):
        report = synthesize_clock_tree(design, lib)
        covered = {f for flops in report.clusters.values() for f in flops}
        flops = {i.name for i in design.sequential_instances(lib)}
        assert covered == flops

    def test_clock_net_feeds_only_root(self, lib, design):
        report = synthesize_clock_tree(design, lib)
        loads = design.get_net("clk").loads
        assert len(loads) == 1
        assert loads[0].instance == report.root_buffer

    def test_sta_still_runs_with_tree(self, lib, design):
        synthesize_clock_tree(design, lib)
        sta = STA(design, lib, Constraints.single_clock(500.0))
        report = sta.run()
        assert report.setup

    def test_insertion_delay_positive(self, lib, design):
        synthesize_clock_tree(design, lib)
        sta = STA(design, lib, Constraints.single_clock(500.0))
        sta.run()
        skew = clock_skew_report(sta)
        assert skew.insertion_delay > 20.0  # two buffer levels

    def test_no_flops_raises(self, lib):
        from repro.netlist.design import Design, PortDirection

        d = Design("comb")
        d.add_port("clk", PortDirection.INPUT)
        d.add_port("a", PortDirection.INPUT)
        d.add_instance("u", "INV_X1_SVT", {"A": "a", "ZN": "z"})
        d.bind(lib)
        with pytest.raises(NetlistError):
            synthesize_clock_tree(d, lib)


class TestSkewReport:
    def test_requires_run(self, lib, design):
        sta = STA(design, lib, Constraints.single_clock(500.0))
        with pytest.raises(TimingError):
            clock_skew_report(sta)

    def test_skew_nonnegative(self, lib, design):
        synthesize_clock_tree(design, lib)
        sta = STA(design, lib, Constraints.single_clock(500.0))
        sta.run()
        skew = clock_skew_report(sta)
        assert skew.global_skew >= 0.0
        assert skew.arrivals[skew.latest] >= skew.arrivals[skew.earliest]

    def test_multi_corner_skew_metrics(self, lib, design):
        from repro.liberty import LibraryCondition, make_library as mk

        synthesize_clock_tree(design, lib)
        reports = {}
        for name, libx in (
            ("tt", lib),
            ("ss", mk(LibraryCondition(process="ss", vdd=0.72, temp_c=125.0))),
        ):
            sta = STA(design, libx, Constraints.single_clock(500.0))
            sta.run()
            reports[name] = clock_skew_report(sta)
        merged = multi_corner_skew(reports)
        assert "cross_corner_variation" in merged
        # Clock insertion delay shifts with corner -> positive variation.
        assert merged["cross_corner_variation"] > 0.0

    def test_multi_corner_requires_reports(self):
        with pytest.raises(TimingError):
            multi_corner_skew({})


class TestUsefulSkew:
    def test_steals_slack_from_fast_stage(self):
        stages = [
            SkewStage("a", "b", setup_slack=-20.0, hold_slack=50.0),
            SkewStage("b", "c", setup_slack=60.0, hold_slack=50.0),
        ]
        res = schedule_useful_skew(stages, max_adjust=50.0)
        assert res.predicted_wns > res.baseline_wns
        assert res.offsets["b"] > 0.0

    def test_hold_constraint_limits_skew(self):
        stages = [
            SkewStage("a", "b", setup_slack=-20.0, hold_slack=5.0),
            SkewStage("b", "c", setup_slack=60.0, hold_slack=5.0),
        ]
        res = schedule_useful_skew(stages, max_adjust=50.0)
        # The capture offset cannot exceed the 5 ps hold slack.
        assert res.offsets["b"] - res.offsets["a"] <= 5.0 + 1e-6

    def test_balanced_stages_no_gain(self):
        stages = [
            SkewStage("a", "b", setup_slack=10.0, hold_slack=50.0),
            SkewStage("b", "a", setup_slack=10.0, hold_slack=50.0),
        ]
        res = schedule_useful_skew(stages)
        assert res.improvement == pytest.approx(0.0, abs=1e-6)

    def test_empty_stages_rejected(self):
        with pytest.raises(TimingError):
            schedule_useful_skew([])

    def test_offsets_within_bounds(self):
        stages = [
            SkewStage("a", "b", setup_slack=-100.0, hold_slack=500.0),
            SkewStage("b", "c", setup_slack=200.0, hold_slack=500.0),
        ]
        res = schedule_useful_skew(stages, max_adjust=30.0)
        assert all(0.0 <= v <= 30.0 for v in res.offsets.values())

    def test_end_to_end_improves_sta_wns(self, lib, design):
        """Apply the schedule through Constraints.clock_latency and verify
        the STA WNS actually improves."""
        constraints = Constraints.single_clock(440.0)
        sta = STA(design, lib, constraints)
        report = sta.run()
        stages = stages_from_report(sta, report)
        if not stages:
            pytest.skip("no flop-to-flop stages in this seed")
        res = schedule_useful_skew(stages, max_adjust=40.0)
        constraints.clock_latency.update(res.offsets)
        after = STA(design, lib, constraints).run()
        flop_wns_before = min(
            e.slack for e in report.setup if e.kind == "setup"
        )
        flop_wns_after = min(
            e.slack for e in after.setup if e.kind == "setup"
        )
        assert flop_wns_after >= flop_wns_before - 1e-6
