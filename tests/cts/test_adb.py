"""Tests for adjustable-delay-buffer multi-mode skew equalization."""

import pytest

from repro.cts.adb import AdbMenu, assign_per_mode, assign_static
from repro.cts.skew import SkewReport, clock_skew_report
from repro.cts.tree import synthesize_clock_tree
from repro.errors import TimingError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.design import PinRef
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints


def fake_report(arrivals):
    return SkewReport(
        arrivals={PinRef(f"f{i}", "CK"): a for i, a in enumerate(arrivals)}
    )


class TestMenu:
    def test_settings_enumerated(self):
        menu = AdbMenu(step=5.0, n_steps=4)
        assert menu.settings() == [0.0, 5.0, 10.0, 15.0, 20.0]
        assert menu.max_delay == 20.0

    def test_quantize_down(self):
        menu = AdbMenu(step=4.0, n_steps=8)
        assert menu.quantize_down(9.9) == 8.0
        assert menu.quantize_down(-3.0) == 0.0
        assert menu.quantize_down(1000.0) == menu.max_delay


class TestPerMode:
    def test_skew_collapses_to_step(self):
        reports = {
            "nominal": fake_report([100.0, 108.0, 117.0, 121.0]),
            "low_v": fake_report([160.0, 185.0, 150.0, 172.0]),
        }
        menu = AdbMenu(step=4.0, n_steps=12)
        result = assign_per_mode(reports, menu)
        for mode in reports:
            assert result.skew_after[mode] < result.skew_before[mode]
            assert result.skew_after[mode] <= menu.step + 1e-9

    def test_settings_differ_across_modes(self):
        """The point of *adjustable* buffers: the same sink needs
        different padding in different voltage modes."""
        reports = {
            "nominal": fake_report([100.0, 120.0]),
            "low_v": fake_report([170.0, 150.0]),  # order reversed
        }
        result = assign_per_mode(reports, AdbMenu(step=2.0, n_steps=20))
        sink0 = PinRef("f0", "CK")
        assert result.settings[("nominal", sink0)] != \
            result.settings[("low_v", sink0)]

    def test_empty_reports_rejected(self):
        with pytest.raises(TimingError):
            assign_per_mode({})

    def test_range_limit_leaves_residual(self):
        reports = {"m": fake_report([0.0, 100.0])}
        menu = AdbMenu(step=4.0, n_steps=5)  # max 20 ps — not enough
        result = assign_per_mode(reports, menu)
        assert result.skew_after["m"] == pytest.approx(80.0)


class TestStaticVsAdjustable:
    def test_static_worse_when_modes_disagree(self):
        reports = {
            "nominal": fake_report([100.0, 120.0, 110.0]),
            "low_v": fake_report([180.0, 150.0, 165.0]),
        }
        menu = AdbMenu(step=2.0, n_steps=30)
        adjustable = assign_per_mode(reports, menu)
        static = assign_static(reports, menu)
        assert adjustable.worst_skew_after < static.worst_skew_after

    def test_static_still_helps(self):
        reports = {
            "nominal": fake_report([100.0, 130.0, 110.0]),
            "low_v": fake_report([150.0, 195.0, 165.0]),  # same ordering
        }
        static = assign_static(reports, AdbMenu(step=2.0, n_steps=30))
        assert static.worst_skew_after < static.worst_skew_before


class TestEndToEnd:
    def test_voltage_modes_from_real_tree(self):
        """Build a clock tree, measure skew at two voltage modes, and
        equalize with ADBs."""
        lib_nom = make_library(LibraryCondition(vdd=0.8))
        design = random_logic(n_gates=120, n_levels=6, seed=5)
        design.bind(lib_nom)
        synthesize_clock_tree(design, lib_nom)
        reports = {}
        for mode, vdd in (("nominal", 0.8), ("low_v", 0.62)):
            lib = make_library(LibraryCondition(vdd=vdd))
            sta = STA(design, lib, Constraints.single_clock(900.0))
            sta.run()
            reports[mode] = clock_skew_report(sta)
        # Low-voltage mode has visibly different (larger) insertion delay.
        assert reports["low_v"].insertion_delay > \
            reports["nominal"].insertion_delay
        result = assign_per_mode(reports, AdbMenu(step=2.0, n_steps=30))
        for mode in reports:
            assert result.skew_after[mode] <= result.skew_before[mode]
