"""Tests for FSG/SFG cross-corners and clock duty-cycle analysis."""

import pytest

from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints
from repro.cts.skew import duty_cycle_report
from repro.cts.tree import synthesize_clock_tree
from repro.errors import TimingError


def inv_delays(process):
    lib = make_library(LibraryCondition(process=process), flavors=("svt",))
    arc = lib.cell("INV_X1_SVT").arcs[0]
    return (
        arc.delay_and_slew("fall", 20.0, 4.0)[0],
        arc.delay_and_slew("rise", 20.0, 4.0)[0],
    )


class TestCrossCornerLibraries:
    def test_fsg_fast_pulldown_slow_pullup(self):
        tt_fall, tt_rise = inv_delays("tt")
        fsg_fall, fsg_rise = inv_delays("fsg")
        assert fsg_fall < tt_fall  # fast NMOS
        assert fsg_rise > tt_rise  # slow PMOS

    def test_sfg_mirror_image(self):
        tt_fall, tt_rise = inv_delays("tt")
        sfg_fall, sfg_rise = inv_delays("sfg")
        assert sfg_fall > tt_fall
        assert sfg_rise < tt_rise

    def test_cross_corners_skew_opposite_directions(self):
        fsg_fall, fsg_rise = inv_delays("fsg")
        sfg_fall, sfg_rise = inv_delays("sfg")
        assert (fsg_rise - fsg_fall) > 0.0 > (sfg_rise - sfg_fall) - \
            (inv_delays("tt")[1] - inv_delays("tt")[0]) * 2

    def test_cross_corner_mean_speed_near_typical(self):
        """FSG/SFG are skew corners, not speed corners: the rise+fall
        average stays near typical."""
        tt_fall, tt_rise = inv_delays("tt")
        fsg_fall, fsg_rise = inv_delays("fsg")
        assert (fsg_fall + fsg_rise) == pytest.approx(
            tt_fall + tt_rise, rel=0.05
        )


class TestDutyCycle:
    @pytest.fixture(scope="class")
    def design(self):
        lib = make_library()
        d = random_logic(n_gates=120, n_levels=6, seed=5)
        d.bind(lib)
        synthesize_clock_tree(d, lib)
        return d

    def run_at(self, design, process):
        lib = make_library(LibraryCondition(process=process))
        sta = STA(design, lib, Constraints.single_clock(600.0))
        sta.run()
        return duty_cycle_report(sta)

    def test_requires_run(self, design):
        lib = make_library()
        sta = STA(design, lib, Constraints.single_clock(600.0))
        with pytest.raises(TimingError):
            duty_cycle_report(sta)

    def test_cross_corner_distorts_more_than_typical(self, design):
        tt = self.run_at(design, "tt")
        fsg = self.run_at(design, "fsg")
        assert abs(fsg.worst) > abs(tt.worst)

    def test_fsg_and_sfg_distort_opposite_ways(self, design):
        fsg = self.run_at(design, "fsg")
        sfg = self.run_at(design, "sfg")
        assert fsg.mean * sfg.mean < 0.0  # opposite signs

    def test_distortion_covers_all_flops(self, design):
        lib = make_library()
        report = self.run_at(design, "tt")
        sta = STA(design, lib, Constraints.single_clock(600.0))
        sta.run()
        assert len(report.distortion) == len(sta.graph.setup_checks())
