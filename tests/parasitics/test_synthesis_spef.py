"""Tests for parasitic synthesis and SPEF-lite round-trip."""

import pytest

from repro.beol.corners import conventional_corners
from repro.beol.stack import default_stack
from repro.liberty import make_library
from repro.netlist.design import PinRef
from repro.netlist.generators import tiny_design
from repro.netlist.transforms import set_ndr
from repro.parasitics.spef import parse_spef, write_spef
from repro.parasitics.synthesis import ParasiticExtractor


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def stack():
    return default_stack()


@pytest.fixture(scope="module")
def corners(stack):
    return conventional_corners(stack)


@pytest.fixture()
def extractor(lib, stack, corners):
    d = tiny_design()
    d.bind(lib)
    return ParasiticExtractor(d, lib, stack, corners["typ"])


class TestExtraction:
    def test_wire_cap_positive(self, extractor):
        para = extractor.extract("n1")
        assert para.wire_cap > 0.0
        assert para.coupling_cap > 0.0

    def test_cache_and_invalidate(self, extractor):
        a = extractor.extract("n1")
        assert extractor.extract("n1") is a
        extractor.invalidate("n1")
        assert extractor.extract("n1") is not a

    def test_sink_resistances_assigned(self, extractor):
        para = extractor.extract("clk")
        assert len(para.sink_resistance) == 3
        assert all(r > 0 for r in para.sink_resistance.values())

    def test_wire_delay_positive_and_monotone_in_pin_cap(self, extractor):
        para = extractor.extract("n1")
        sink = PinRef("u2", "A")
        d_small = para.wire_delay(sink, 1.0)
        d_large = para.wire_delay(sink, 5.0)
        assert 0.0 < d_small < d_large

    def test_slew_degradation_twice_delay(self, extractor):
        para = extractor.extract("n1")
        sink = PinRef("u2", "A")
        assert para.slew_degradation(sink, 2.0) == pytest.approx(
            2.0 * para.wire_delay(sink, 2.0)
        )

    def test_driver_load_includes_pins(self, extractor):
        para = extractor.extract("n1")
        pins = extractor.pin_caps_total("n1")
        assert para.driver_load(pins) == pytest.approx(para.wire_cap + pins)
        assert pins > 0.0

    def test_net_length_uses_hpwl(self, extractor):
        para = extractor.extract("n1")  # u1 (6,1.4) -> u2 (12,1.4), HPWL 6
        assert para.length >= 6.0


class TestCornerEffects:
    def test_cw_corner_raises_cap(self, lib, stack, corners):
        d = tiny_design()
        d.bind(lib)
        typ = ParasiticExtractor(d, lib, stack, corners["typ"]).extract("n1")
        cw = ParasiticExtractor(d, lib, stack, corners["cw"]).extract("n1")
        assert cw.wire_cap > typ.wire_cap

    def test_rcw_corner_raises_resistance(self, lib, stack, corners):
        d = tiny_design()
        d.bind(lib)
        typ = ParasiticExtractor(d, lib, stack, corners["typ"]).extract("n1")
        rcw = ParasiticExtractor(d, lib, stack, corners["rcw"]).extract("n1")
        sink = PinRef("u2", "A")
        assert rcw.sink_resistance[sink] > typ.sink_resistance[sink]

    def test_temperature_raises_resistance(self, lib, stack, corners):
        d = tiny_design()
        d.bind(lib)
        cold = ParasiticExtractor(d, lib, stack, corners["typ"], temp_c=-30.0)
        hot = ParasiticExtractor(d, lib, stack, corners["typ"], temp_c=125.0)
        sink = PinRef("u2", "A")
        assert hot.extract("n1").sink_resistance[sink] > \
            cold.extract("n1").sink_resistance[sink]

    def test_ndr_lowers_resistance_and_coupling(self, lib, stack, corners):
        d = tiny_design()
        d.bind(lib)
        base = ParasiticExtractor(d, lib, stack, corners["typ"]).extract("n1")
        set_ndr(d, "n1")
        ndr = ParasiticExtractor(d, lib, stack, corners["typ"]).extract("n1")
        sink = PinRef("u2", "A")
        assert ndr.sink_resistance[sink] < base.sink_resistance[sink]
        assert ndr.coupling_cap < base.coupling_cap


class TestRcTreeExport:
    def test_rc_tree_total_cap_close_to_star(self, extractor):
        tree = extractor.rc_tree("n1")
        para = extractor.extract("n1")
        pin = extractor.pin_caps_total("n1")
        # Tree carries wire ground+coupling/2 caps plus pin caps.
        assert tree.total_cap() == pytest.approx(pin, rel=1.0, abs=para.wire_cap)

    def test_rc_tree_elmore_positive(self, extractor):
        tree = extractor.rc_tree("clk")
        sinks = [n for n in tree.nodes if n.startswith("sink:")]
        assert sinks
        assert all(tree.elmore(s) > 0 for s in sinks)


class TestSpefRoundTrip:
    def test_round_trip(self, extractor):
        parasitics = extractor.extract_all()
        text = write_spef("tiny", "typ", parasitics)
        back = parse_spef(text)
        assert set(back) == set(parasitics)
        orig = parasitics["n1"]
        rt = back["n1"]
        assert rt.wire_cap == pytest.approx(orig.wire_cap)
        assert rt.layer_name == orig.layer_name
        assert rt.length == pytest.approx(orig.length)
        assert rt.coupling_cap == pytest.approx(orig.coupling_cap)
        for sink, r in orig.sink_resistance.items():
            assert rt.sink_resistance[sink] == pytest.approx(r)

    def test_malformed_line_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            parse_spef("*D_NET n1\n")

    def test_unknown_tag_raises(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            parse_spef("*WHAT 1 2\n")
