"""Tests for RC trees and moment-based delay metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.parasitics.rctree import RCTree


def chain_tree(rs, cs):
    tree = RCTree()
    prev = tree.root
    for i, (r, c) in enumerate(zip(rs, cs)):
        prev = tree.add_node(f"n{i}", prev, r, c)
    return tree


class TestConstruction:
    def test_duplicate_node_rejected(self):
        tree = RCTree()
        tree.add_node("a", tree.root, 1.0, 1.0)
        with pytest.raises(ReproError):
            tree.add_node("a", tree.root, 1.0, 1.0)

    def test_unknown_parent_rejected(self):
        with pytest.raises(ReproError):
            RCTree().add_node("a", "missing", 1.0, 1.0)

    def test_negative_values_rejected(self):
        with pytest.raises(ReproError):
            RCTree().add_node("a", "root", -1.0, 1.0)

    def test_add_cap(self):
        tree = chain_tree([1.0], [1.0])
        tree.add_cap("n0", 2.0)
        assert tree.total_cap() == pytest.approx(3.0)

    def test_add_cap_unknown_node(self):
        with pytest.raises(ReproError):
            chain_tree([1.0], [1.0]).add_cap("zzz", 1.0)


class TestElmore:
    def test_single_segment(self):
        tree = chain_tree([2.0], [3.0])
        assert tree.elmore("n0") == pytest.approx(6.0)

    def test_two_segment_chain(self):
        # R1=1,C1=1; R2=1,C2=1: elmore(n1) = 1*(1+1) + 1*1 = 3.
        tree = chain_tree([1.0, 1.0], [1.0, 1.0])
        assert tree.elmore("n1") == pytest.approx(3.0)

    def test_branch_isolation(self):
        """Caps on a sibling branch count only through shared resistance."""
        tree = RCTree()
        tree.add_node("trunk", "root", 1.0, 0.0)
        tree.add_node("s1", "trunk", 1.0, 1.0)
        tree.add_node("s2", "trunk", 1.0, 5.0)
        # elmore(s1) = R_trunk*(1+5) + R_s1*1 = 7.
        assert tree.elmore("s1") == pytest.approx(7.0)

    def test_unknown_sink_raises(self):
        with pytest.raises(ReproError):
            chain_tree([1.0], [1.0]).elmore("zzz")

    @given(
        rs=st.lists(st.floats(0.01, 5.0), min_size=1, max_size=6),
        cs=st.lists(st.floats(0.01, 5.0), min_size=6, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_elmore_nonnegative_and_monotone_in_r(self, rs, cs):
        cs = cs[: len(rs)]
        tree = chain_tree(rs, cs)
        sink = f"n{len(rs) - 1}"
        base = tree.elmore(sink)
        assert base >= 0.0
        bigger = chain_tree([r * 2 for r in rs], cs)
        assert bigger.elmore(sink) >= base

    @given(extra=st.floats(0.0, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_elmore_monotone_in_cap(self, extra):
        base = chain_tree([1.0, 1.0], [1.0, 1.0])
        loaded = chain_tree([1.0, 1.0], [1.0, 1.0])
        loaded.add_cap("n1", extra)
        assert loaded.elmore("n1") >= base.elmore("n1")


class TestD2M:
    def test_d2m_close_to_elmore_for_lumped(self):
        """Single-lump RC: D2M = ln2*m1^2/sqrt(m2) with m2 = R^2 C^2
        gives ln2 * m1 — the exact 50% point of the exponential."""
        tree = chain_tree([2.0], [3.0])
        m1 = tree.elmore("n0")
        assert tree.d2m("n0") == pytest.approx(0.6931 * m1, rel=1e-3)

    def test_d2m_at_most_elmore_on_chains(self):
        tree = chain_tree([1.0] * 5, [1.0] * 5)
        assert tree.d2m("n4") <= tree.elmore("n4")

    def test_d2m_positive(self):
        tree = chain_tree([0.5, 0.5, 0.5], [1.0, 2.0, 0.5])
        assert tree.d2m("n2") > 0.0


class TestPiModel:
    def test_total_cap_preserved(self):
        tree = chain_tree([1.0, 1.0], [2.0, 3.0])
        c_near, r, c_far = tree.pi_model()
        assert c_near + c_far == pytest.approx(tree.total_cap())

    def test_resistive_shielding(self):
        """More wire resistance shields more cap behind the pi R."""
        light = chain_tree([0.1, 0.1], [2.0, 3.0])
        heavy = chain_tree([5.0, 5.0], [2.0, 3.0])
        assert heavy.pi_model()[1] > light.pi_model()[1]

    def test_cap_only_tree(self):
        tree = RCTree()
        tree.add_node("a", "root", 0.0, 4.0)
        c_near, r, c_far = tree.pi_model()
        assert c_near + c_far == pytest.approx(4.0)
        assert r == pytest.approx(0.0)
