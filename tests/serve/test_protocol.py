"""Tests for the NDJSON wire protocol: framing, bounds, error hydration."""

import pytest

from repro.errors import (
    AdmissionShedError,
    DaemonUnavailableError,
    DeadlineExceededError,
    ProtocolError,
    ServeError,
    SessionNotFoundError,
    SessionQuarantinedError,
)
from repro.serve import protocol


class TestFraming:
    def test_encode_decode_roundtrip(self):
        message = {"v": 1, "id": "r1", "op": "ping", "params": {}}
        data = protocol.encode(message)
        assert data.endswith(b"\n")
        assert b"\n" not in data[:-1]
        assert protocol.decode_line(data[:-1]) == message

    def test_encode_is_canonical(self):
        # Sorted keys: identical messages produce identical frames.
        assert protocol.encode({"b": 1, "a": 2}) == \
            protocol.encode({"a": 2, "b": 1})

    def test_encode_rejects_oversize(self):
        with pytest.raises(ProtocolError) as info:
            protocol.encode({"blob": "x" * protocol.MAX_LINE_BYTES})
        assert info.value.code == "E_BAD_REQUEST"
        assert not info.value.retryable

    def test_decode_rejects_oversize(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"x" * (protocol.MAX_LINE_BYTES + 1))

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"{not json")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b"[1, 2, 3]")

    def test_decode_rejects_bad_utf8(self):
        with pytest.raises(ProtocolError):
            protocol.decode_line(b'{"op": "\xff\xfe"}')


class TestParseRequest:
    def test_defaults_filled_in(self):
        request = protocol.parse_request({"op": "ping"})
        assert request == {"v": 1, "id": None, "op": "ping",
                           "session": None, "params": {}}

    def test_fields_pass_through(self):
        request = protocol.parse_request({
            "v": 1, "id": "q-3", "op": "timing",
            "session": "s-1", "params": {"scenarios": ["tt_typ"]},
        })
        assert request["id"] == "q-3"
        assert request["session"] == "s-1"
        assert request["params"] == {"scenarios": ["tt_typ"]}

    def test_unknown_op(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request({"op": "drop_tables"})

    def test_version_mismatch(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request({"v": 99, "op": "ping"})

    def test_params_must_be_object(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request({"op": "ping", "params": [1]})

    def test_session_must_be_string(self):
        with pytest.raises(ProtocolError):
            protocol.parse_request({"op": "ping", "session": 7})

    def test_control_and_query_ops_partition(self):
        assert not set(protocol.CONTROL_OPS) & set(protocol.QUERY_OPS)
        assert set(protocol.ALL_OPS) == \
            set(protocol.CONTROL_OPS) | set(protocol.QUERY_OPS)


class TestResponses:
    def test_ok_response_shape(self):
        response = protocol.ok_response("r1", {"pong": True})
        assert response == {"v": 1, "id": "r1", "ok": True,
                            "result": {"pong": True}}

    def test_error_response_echoes_id(self):
        response = protocol.error_response(
            "r2", AdmissionShedError("full", queue_depth=4)
        )
        assert response["id"] == "r2"
        assert response["ok"] is False
        assert response["error"]["code"] == "E_OVERLOADED"
        assert response["error"]["retryable"] is True
        assert "queue_depth" in response["error"]["context"]

    @pytest.mark.parametrize("cls", [
        ProtocolError, AdmissionShedError, DeadlineExceededError,
        SessionQuarantinedError, SessionNotFoundError,
        DaemonUnavailableError,
    ])
    def test_error_from_wire_rehydrates_class(self, cls):
        error = cls("boom")
        back = protocol.error_from_wire(error.to_wire())
        assert type(back) is cls
        assert back.code == cls.code
        assert back.retryable == cls.retryable
        assert "boom" in str(back)

    def test_error_from_wire_unknown_code_is_base(self):
        back = protocol.error_from_wire(
            {"code": "E_SOMETHING_NEW", "message": "?"}
        )
        assert type(back) is ServeError

    def test_error_from_wire_trusts_retryable_flag(self):
        back = protocol.error_from_wire({
            "code": "E_INTERNAL", "message": "transient",
            "retryable": True,
        })
        assert back.retryable is True

    def test_error_from_wire_none_payload(self):
        back = protocol.error_from_wire(None)
        assert isinstance(back, ServeError)

    def test_error_roundtrip_through_frames(self):
        frame = protocol.encode(protocol.error_response(
            "r9", DeadlineExceededError("late", deadline_s=0.5)
        ))
        response = protocol.decode_line(frame[:-1])
        error = protocol.error_from_wire(response["error"])
        assert isinstance(error, DeadlineExceededError)
        assert error.retryable
