"""End-to-end daemon tests over real sockets: queries, backpressure,
degradation, containment and warm restart — all in-process."""

import json
import socket
import threading
import time

import pytest

from repro.beol.corners import conventional_corners
from repro.beol.stack import default_stack
from repro.errors import ServeError
from repro.obs import tracing
from repro.obs.export import summarize
from repro.obs.export import chrome_trace
from repro.runtime import RunJournal
from repro.serve import DaemonConfig, TimingClient, protocol
from repro.sta import STA
from repro.testing import FaultInjector, FaultPlan
from repro.testing.faults import Fault
from tests.serve.conftest import make_design, nand2_instance


def client_for(daemon, timeout_s=30.0):
    return TimingClient("127.0.0.1", daemon.port, timeout_s=timeout_s)


def reference_row(design, scenario):
    """(wns, tns) for one scenario straight through the STA stack,
    exactly as the daemon builds it."""
    stack = default_stack()
    corner = conventional_corners(stack)[scenario.beol_corner_name]
    sta = STA(design, scenario.library, scenario.constraints, stack=stack,
              beol_corner=corner, temp_c=scenario.temp_c,
              derates=scenario.derates)
    report = sta.run()
    return round(report.wns("setup"), 6), round(report.tns("setup"), 6)


def raw_exchange(port, frames, expected, timeout=30.0):
    """Pipeline raw frames down one socket; collect `expected` responses."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    try:
        for frame in frames:
            sock.sendall(frame)
        responses, buffer = [], b""
        sock.settimeout(timeout)
        while len(responses) < expected:
            chunk = sock.recv(65536)
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line.strip():
                    responses.append(json.loads(line))
        return responses
    finally:
        sock.close()


class TestQueries:
    def test_ping(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            result = client.request("ping")
        assert result["pong"] is True
        assert result["scenarios"] == ["tt_typ", "ss_cw"]
        assert result["protocol"] == protocol.PROTOCOL_VERSION

    def test_timing_matches_direct_sta(self, daemon_factory, scenarios):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            result = client.request("timing", {"scenarios": ["tt_typ"]})
        row = result["scenarios"]["tt_typ"]
        wns, tns = reference_row(make_design(), scenarios[0])
        assert row["wns_setup"] == wns
        assert row["tns_setup"] == tns
        assert result["sources"]["tt_typ"] == "full"

    def test_repeat_query_hits_cache(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            first = client.request("timing")
            again = client.request("timing")
        assert set(first["sources"].values()) == {"full"}
        assert set(again["sources"].values()) == {"cache"}
        assert first["scenarios"] == again["scenarios"]

    def test_signoff_merges_scenarios(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            result = client.request("signoff")
        rows = result["scenarios"]
        assert set(rows) == {"tt_typ", "ss_cw"}
        wns_values = [rows[n]["wns_setup"] for n in rows]
        assert result["merged_wns_setup"] == min(wns_values)
        assert rows[result["worst_scenario"]]["wns_setup"] == \
            result["merged_wns_setup"]

    def test_histogram_and_paths(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            histogram = client.request(
                "histogram", {"scenario": "tt_typ", "bins": 6}
            )
            paths = client.request(
                "paths", {"scenario": "tt_typ", "count": 2}
            )
        assert histogram["endpoints"] > 0
        assert isinstance(histogram["histogram"], str)
        assert 1 <= len(paths["paths"]) <= 2
        for path in paths["paths"]:
            assert path["stages"] >= 1
            assert isinstance(path["render"], str)
        # Paths come worst-first.
        slacks = [p["slack"] for p in paths["paths"]]
        assert slacks == sorted(slacks)

    def test_unknown_scenario_is_bad_request(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            with pytest.raises(ServeError) as info:
                client.request("timing", {"scenarios": ["ff_nonexistent"]})
        assert info.value.code == "E_BAD_REQUEST"
        assert not info.value.retryable


class TestSessions:
    def test_eco_isolated_per_session_and_discardable(self, daemon_factory,
                                                      scenarios):
        design = make_design()
        daemon = daemon_factory(design=design)
        # Upsize every NAND2_X1 in the block: guaranteed to move timing.
        targets = sorted(n for n, i in design.instances.items()
                         if i.cell_name.startswith("NAND2_X1"))
        edits = [{"kind": "set_cell", "target": n, "value": "NAND2_X4_SVT"}
                 for n in targets]
        with client_for(daemon) as client:
            baseline = client.request("timing")["scenarios"]
            sid = client.request("open_session")["session"]
            other = client.request("open_session")["session"]
            applied = client.request("apply_eco", {"edits": edits},
                                     session=sid)
            assert applied["applied"] == len(edits)
            assert applied["edited_instances"] == targets
            assert not applied["topology_changed"]

            edited = client.request("timing", session=sid)
            assert edited["design"].endswith(f"@{sid}")
            assert edited["scenarios"] != baseline
            # The other session and the shared context never see it.
            assert client.request("timing", session=other)["scenarios"] \
                == baseline
            assert client.request("timing")["scenarios"] == baseline

            # Single-client reference: the same resize applied directly.
            ref_design = make_design()
            for name in targets:
                ref_design.instances[name].cell_name = "NAND2_X4_SVT"
            wns, tns = reference_row(ref_design, scenarios[0])
            assert edited["scenarios"]["tt_typ"]["wns_setup"] == wns
            assert edited["scenarios"]["tt_typ"]["tns_setup"] == tns

            discarded = client.request("discard", session=sid)
            assert discarded["discarded"] == len(edits)
            assert client.request("timing", session=sid)["scenarios"] \
                == baseline

    def test_bad_eco_is_bad_request_and_session_survives(self,
                                                         daemon_factory):
        design = make_design()
        daemon = daemon_factory(design=design)
        target = nand2_instance(design)
        with client_for(daemon) as client:
            sid = client.request("open_session")["session"]
            # Unknown cell: no scenario library can honor the swap.
            with pytest.raises(ServeError) as info:
                client.request("apply_eco", {"edits": [
                    {"kind": "set_cell", "target": target,
                     "value": "NAND2_X512_SVT"},
                ]}, session=sid)
            assert info.value.code == "E_BAD_REQUEST"
            # Footprint change: rejected up front, not at first retime.
            with pytest.raises(ServeError) as info:
                client.request("apply_eco", {"edits": [
                    {"kind": "set_cell", "target": target,
                     "value": "INV_X1_SVT"},
                ]}, session=sid)
            assert "footprint" in str(info.value)
            # Nothing committed, session fully usable, nobody quarantined.
            result = client.request("timing", session=sid)
            assert result["version"] == 0
        assert daemon.quarantines == 0

    def test_apply_eco_requires_session(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            with pytest.raises(ServeError) as info:
                client.request("apply_eco", {"edits": [
                    {"kind": "add_cap", "target": "n0", "value": 5.0},
                ]})
        assert info.value.code == "E_BAD_REQUEST"

    def test_closed_session_is_gone(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            sid = client.request("open_session")["session"]
            client.request("close_session", session=sid)
            with pytest.raises(ServeError) as info:
                client.request("timing", session=sid)
        assert info.value.code == "E_NO_SESSION"


class TestBackpressure:
    def test_expired_deadline_rejected_before_work(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            with pytest.raises(ServeError) as info:
                client.request("timing", deadline_s=0.0)
        assert info.value.code == "E_DEADLINE"
        assert info.value.retryable

    def test_overload_sheds_with_structured_error(self, daemon_factory,
                                                  scenarios):
        # One worker, one queue slot, and every request pinned down by
        # an injected 0.4 s hang: a pipelined burst must shed.
        injector = FaultInjector(FaultPlan.of(
            Fault("hang", task="*", seconds=0.4)
        ))
        daemon = daemon_factory(
            config=DaemonConfig(workers=1, queue_limit=1),
            fault_injector=injector,
        )
        frames = [protocol.encode({
            "v": 1, "id": f"b-{i}", "op": "timing",
            "params": {"scenarios": ["tt_typ"]},
        }) for i in range(8)]
        responses = raw_exchange(daemon.port, frames, expected=8,
                                 timeout=60.0)
        assert len(responses) == 8  # every request answered, none hung
        shed = [r for r in responses if not r["ok"]
                and r["error"]["code"] == "E_OVERLOADED"]
        ok = [r for r in responses if r["ok"]]
        assert shed, "burst should have shed at least one request"
        assert ok, "burst should have completed at least one request"
        assert all(r["error"]["retryable"] for r in shed)
        assert daemon.admission.stats()["shed"] == len(shed)

    def test_dead_client_does_not_wedge_daemon(self, daemon_factory):
        daemon = daemon_factory()
        sock = socket.create_connection(("127.0.0.1", daemon.port))
        sock.sendall(protocol.encode(
            {"v": 1, "id": "dead", "op": "timing"}
        ))
        sock.close()  # gone before the response lands
        time.sleep(0.1)
        with client_for(daemon) as client:
            assert client.request("ping")["pong"] is True

    def test_oversize_frame_rejected_and_dropped(self, daemon_factory):
        daemon = daemon_factory()
        sock = socket.create_connection(("127.0.0.1", daemon.port))
        try:
            sock.sendall(b"x" * (protocol.MAX_LINE_BYTES + 2))
            buffer = b""
            sock.settimeout(30.0)
            while b"\n" not in buffer:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                buffer += chunk
            response = json.loads(buffer.split(b"\n", 1)[0])
            assert response["ok"] is False
            assert response["error"]["code"] == "E_BAD_REQUEST"
            # The connection is dropped afterwards: framing is gone.
            assert sock.recv(65536) == b""
        finally:
            sock.close()

    def test_unparseable_line_gets_null_id_error(self, daemon_factory):
        daemon = daemon_factory()
        responses = raw_exchange(daemon.port, [b"{broken json\n"],
                                 expected=1)
        assert responses[0]["ok"] is False
        assert responses[0]["id"] is None


class TestFaultContainment:
    def test_transient_crash_absorbed_by_retry(self, daemon_factory):
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="tt_typ")  # attempt 1 only
        ))
        daemon = daemon_factory(
            config=DaemonConfig(workers=2, retries=1),
            fault_injector=injector,
        )
        with client_for(daemon) as client:
            result = client.request("timing", {"scenarios": ["tt_typ"]})
        assert result["sources"]["tt_typ"] == "full"
        assert daemon.failures == 0
        assert daemon.quarantines == 0

    def test_persistent_crash_quarantines_only_that_session(
            self, daemon_factory):
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="tt_typ", attempts=(1, 2))
        ))
        daemon = daemon_factory(
            config=DaemonConfig(workers=2, retries=1),
            fault_injector=injector,
        )
        with client_for(daemon) as client:
            sid = client.request("open_session")["session"]
            other = client.request("open_session")["session"]
            with pytest.raises(ServeError) as info:
                client.request("timing", {"scenarios": ["tt_typ"]},
                               session=sid)
            assert info.value.code == "E_QUARANTINED"
            assert not info.value.retryable
            # Every further query on the poisoned session answers the
            # same way, even for a healthy scenario...
            with pytest.raises(ServeError) as info:
                client.request("timing", {"scenarios": ["ss_cw"]},
                               session=sid)
            assert info.value.code == "E_QUARANTINED"
            # ...while other sessions and the daemon itself keep serving.
            ok = client.request("timing", {"scenarios": ["ss_cw"]},
                                session=other)
            assert ok["scenarios"]["ss_cw"]["wns_setup"] is not None
            # Discard is the recovery path: it lifts the quarantine.
            client.request("discard", session=sid)
            recovered = client.request("timing", {"scenarios": ["ss_cw"]},
                                       session=sid)
            assert recovered["scenarios"] == ok["scenarios"]
        assert daemon.quarantines == 1

    def test_shared_context_resets_instead_of_quarantining(
            self, daemon_factory):
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="tt_typ", attempts=tuple(range(1, 33)))
        ))
        daemon = daemon_factory(
            config=DaemonConfig(workers=2, retries=0),
            fault_injector=injector,
        )
        with client_for(daemon) as client:
            with pytest.raises(ServeError) as info:
                client.request("timing", {"scenarios": ["tt_typ"]})
            assert info.value.code == "E_UNAVAILABLE"
            assert info.value.retryable
            # The shared context was reset, not killed: healthy
            # scenarios still answer for every anonymous client.
            result = client.request("timing", {"scenarios": ["ss_cw"]})
            assert result["scenarios"]["ss_cw"]["wns_setup"] is not None

    def test_hang_times_out_as_retryable_deadline(self, daemon_factory):
        injector = FaultInjector(FaultPlan.of(
            Fault("hang", task="tt_typ", seconds=2.0, attempts=(1, 2))
        ))
        daemon = daemon_factory(
            config=DaemonConfig(workers=2, retries=1, timeout_s=0.2),
            fault_injector=injector,
        )
        with client_for(daemon) as client:
            with pytest.raises(ServeError) as info:
                client.request("timing", {"scenarios": ["tt_typ"]})
            assert info.value.code == "E_DEADLINE"
            assert info.value.retryable
            # The abandoned zombie can't poison later queries: the
            # session swapped in fresh runtime objects.
            result = client.request("timing", {"scenarios": ["ss_cw"]})
            assert result["scenarios"]["ss_cw"]["wns_setup"] is not None

    def test_kernel_compile_failure_falls_back_and_traces(
            self, daemon_factory, scenarios):
        injector = FaultInjector(FaultPlan.of(
            Fault("kernel_compile", task="tt_typ")
        ))
        daemon = daemon_factory(
            config=DaemonConfig(workers=2, engine="vector"),
            fault_injector=injector,
        )
        tracer = tracing.Tracer()
        tracing.set_default_tracer(tracer)
        try:
            with client_for(daemon) as client:
                result = client.request("timing")
        finally:
            tracing.set_default_tracer(None)
        # Degraded scenario still answers, and bit-identically to the
        # reference path it fell back to.
        wns, tns = reference_row(make_design(), scenarios[0])
        assert result["scenarios"]["tt_typ"]["wns_setup"] == wns
        assert result["scenarios"]["tt_typ"]["tns_setup"] == tns
        names = [span.name for span in tracer.spans()]
        assert "kernel_fallback" in names
        summary = summarize(chrome_trace(tracer.spans())["traceEvents"])
        assert summary.degraded_scenarios == ["tt_typ"]
        assert "tt_typ" in summary.render()


class TestLifecycleAndStats:
    def test_stats_counters(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            client.request("timing")
            sid = client.request("open_session")["session"]
            client.request("timing", session=sid)
            # done() bookkeeping lands just after the response is sent;
            # poll briefly rather than racing it.
            deadline = time.monotonic() + 5.0
            while True:
                stats = client.request("stats")
                if stats["admission"]["completed"] >= 2 \
                        or time.monotonic() > deadline:
                    break
                time.sleep(0.02)
        assert stats["requests"] >= 2
        assert stats["admission"]["admitted"] >= 2
        assert stats["admission"]["completed"] >= 2
        assert stats["sessions"]["active"] == 1
        assert stats["cache"]["entries"] >= 2
        assert stats["timers"]["builds"] >= 2

    def test_shutdown_op(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            assert client.request("shutdown")["stopping"] is True
        deadline = time.monotonic() + 10.0
        while not daemon._stopping and time.monotonic() < deadline:
            time.sleep(0.02)
        assert daemon._stopping

    def test_warm_restart_prewarms_cache_and_restores_sessions(
            self, daemon_factory, scenarios, tmp_path):
        path = tmp_path / "serve.journal"
        design = make_design()
        target = nand2_instance(design)
        daemon = daemon_factory(design=design,
                                journal=RunJournal(path))
        with client_for(daemon) as client:
            sid = client.request("open_session")["session"]
            client.request("apply_eco", {"edits": [
                {"kind": "set_cell", "target": target,
                 "value": "NAND2_X2_SVT"},
            ]}, session=sid)
            before = client.request("timing", session=sid)
        daemon.stop()

        restarted = daemon_factory(design=make_design(),
                                   journal=RunJournal(path))
        assert restarted.prewarmed >= 1
        assert restarted.sessions.restored == 1
        with client_for(restarted) as client:
            stats = client.request("stats")
            assert stats["journal"]["restored_sessions"] == 1
            after = client.request("timing", session=sid)
        # Replayed overlay reproduces the content fingerprint: the very
        # first post-restart query is a cache hit with identical numbers.
        assert set(after["sources"].values()) == {"cache"}
        assert after["scenarios"] == before["scenarios"]
