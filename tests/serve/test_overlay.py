"""Tests for session-isolated copy-on-write design overlays.

The headline property (and the satellite this file anchors): concurrent
sessions holding conflicting ECOs on the same instances and nets never
observe each other's edits — including when one session aborts
mid-apply.
"""

import threading

import pytest

from repro.errors import NetlistError, ServeError
from repro.serve import DesignOverlay, OverlayEdit
from tests.serve.conftest import make_design, nand2_instance


def edit(kind, target, value=None):
    return OverlayEdit(kind=kind, target=target, value=value)


@pytest.fixture
def base():
    return make_design()


class TestWireShape:
    def test_roundtrip(self):
        e = edit("set_cell", "g0", "NAND2_X2_SVT")
        assert OverlayEdit.from_wire(e.to_wire()) == e

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError):
            OverlayEdit.from_wire({"kind": "delete_instance", "target": "g0"})

    def test_empty_target_rejected(self):
        with pytest.raises(ServeError):
            OverlayEdit.from_wire({"kind": "set_cell", "target": ""})


class TestCopyOnWrite:
    def test_reads_fall_through_to_base(self, base):
        overlay = DesignOverlay(base, "s-1")
        target = nand2_instance(base)
        assert overlay.cell_of(target) == base.instances[target].cell_name

    def test_unedited_instances_are_shared_objects(self, base):
        overlay = DesignOverlay(base, "s-1")
        target = nand2_instance(base)
        overlay.apply([edit("set_cell", target, "NAND2_X2_SVT")])
        view = overlay.materialize()
        for name, inst in base.instances.items():
            if name == target:
                assert view.instances[name] is not inst
                assert view.instances[name].cell_name == "NAND2_X2_SVT"
            else:
                assert view.instances[name] is inst
        stats = overlay.stats()
        assert stats["private_instances"] == 1
        assert stats["shared_instances"] == len(base.instances) - 1

    def test_nets_are_always_private(self, base):
        view = DesignOverlay(base, "s-1").materialize()
        for name, net in base.nets.items():
            assert view.nets[name] is not net

    def test_base_design_never_mutated(self, base):
        target = nand2_instance(base)
        before_cell = base.instances[target].cell_name
        overlay = DesignOverlay(base, "s-1")
        overlay.apply([
            edit("set_cell", target, "NAND2_X2_SVT"),
            edit("add_cap", "n0", 20.0),
            edit("set_ndr", "n0", True),
        ])
        overlay.materialize()
        assert base.instances[target].cell_name == before_cell
        assert base.nets["n0"].extra_cap == 0.0
        assert not base.nets["n0"].ndr

    def test_design_name_is_session_scoped(self, base):
        overlay = DesignOverlay(base, "s-7")
        assert overlay.design_name == f"{base.name}@s-7"
        assert overlay.materialize().name == f"{base.name}@s-7"

    def test_apply_updates_materialized_in_place(self, base):
        overlay = DesignOverlay(base, "s-1")
        view = overlay.materialize()
        target = nand2_instance(base)
        overlay.apply([edit("set_cell", target, "NAND2_X2_SVT")])
        assert overlay.materialize() is view  # warm timers keep binding it
        assert view.instances[target].cell_name == "NAND2_X2_SVT"

    def test_add_cap_accumulates(self, base):
        overlay = DesignOverlay(base, "s-1")
        overlay.apply([edit("add_cap", "n0", 10.0)])
        overlay.apply([edit("add_cap", "n0", 5.0)])
        view = overlay.materialize()
        assert view.nets["n0"].extra_cap == pytest.approx(
            base.nets["n0"].extra_cap + 15.0
        )

    def test_topology_flags(self, base):
        overlay = DesignOverlay(base, "s-1")
        target = nand2_instance(base)
        instances, topo = overlay.apply(
            [edit("set_cell", target, "NAND2_X2_SVT")]
        )
        assert instances == [target] and not topo
        _, topo = overlay.apply([edit("set_ndr", "n0", True)])
        assert topo


class TestAtomicity:
    def test_bad_edit_anywhere_aborts_whole_batch(self, base):
        overlay = DesignOverlay(base, "s-1")
        target = nand2_instance(base)
        with pytest.raises(NetlistError):
            overlay.apply([
                edit("set_cell", target, "NAND2_X2_SVT"),  # valid
                edit("set_cell", "no_such_instance", "INV_X1_SVT"),
            ])
        assert overlay.version == 0
        assert overlay.edit_count == 0
        assert overlay.cell_of(target) == base.instances[target].cell_name
        assert overlay.materialize().instances[target] is \
            base.instances[target]

    def test_abort_preserves_earlier_commits(self, base):
        overlay = DesignOverlay(base, "s-1")
        target = nand2_instance(base)
        overlay.apply([edit("set_cell", target, "NAND2_X2_SVT")])
        with pytest.raises(ServeError):
            overlay.apply([
                edit("add_cap", "n0", 5.0),
                edit("add_cap", "n1", "not-a-number"),
            ])
        assert overlay.version == 1
        assert overlay.edit_count == 1
        assert overlay.cell_of(target) == "NAND2_X2_SVT"
        view = overlay.materialize()
        assert view.nets["n0"].extra_cap == base.nets["n0"].extra_cap

    def test_dont_touch_rejected(self, base):
        target = nand2_instance(base)
        base.instances[target].dont_touch = True
        overlay = DesignOverlay(base, "s-1")
        with pytest.raises(NetlistError):
            overlay.apply([edit("set_cell", target, "NAND2_X2_SVT")])

    def test_set_cell_needs_string_value(self, base):
        overlay = DesignOverlay(base, "s-1")
        with pytest.raises(ServeError):
            overlay.apply([edit("set_cell", nand2_instance(base), None)])

    def test_discard_drops_everything(self, base):
        overlay = DesignOverlay(base, "s-1")
        target = nand2_instance(base)
        overlay.apply([edit("set_cell", target, "NAND2_X2_SVT"),
                       edit("add_cap", "n0", 9.0)])
        assert overlay.discard() == 2
        assert overlay.edit_count == 0
        assert overlay.cell_of(target) == base.instances[target].cell_name
        view = overlay.materialize()
        assert view.instances[target] is base.instances[target]
        assert view.nets["n0"].extra_cap == base.nets["n0"].extra_cap

    def test_refresh_keeps_edits_but_rebuilds_view(self, base):
        overlay = DesignOverlay(base, "s-1")
        target = nand2_instance(base)
        overlay.apply([edit("set_cell", target, "NAND2_X2_SVT")])
        old_view = overlay.materialize()
        overlay.refresh()
        new_view = overlay.materialize()
        assert new_view is not old_view
        assert new_view.nets["n0"] is not old_view.nets["n0"]
        assert new_view.instances[target].cell_name == "NAND2_X2_SVT"
        # A zombie mutating the old view cannot reach the new one.
        old_view.nets["n0"].extra_cap = 999.0
        assert new_view.nets["n0"].extra_cap == base.nets["n0"].extra_cap


class TestConcurrentSessionIsolation:
    """Satellite: conflicting ECOs on the same nets never cross-observe."""

    def test_conflicting_cell_edits_stay_private(self, base):
        target = nand2_instance(base)
        a = DesignOverlay(base, "s-a")
        b = DesignOverlay(base, "s-b")
        a.apply([edit("set_cell", target, "NAND2_X2_SVT")])
        b.apply([edit("set_cell", target, "NAND2_X4_SVT")])
        view_a, view_b = a.materialize(), b.materialize()
        assert view_a.instances[target].cell_name == "NAND2_X2_SVT"
        assert view_b.instances[target].cell_name == "NAND2_X4_SVT"
        assert view_a.instances[target] is not view_b.instances[target]
        assert base.instances[target].cell_name.startswith("NAND2_X1")
        # Unedited instances still alias one shared object across all
        # three views of the design.
        other = next(n for n in base.instances if n != target)
        assert view_a.instances[other] is base.instances[other]
        assert view_b.instances[other] is base.instances[other]

    def test_conflicting_net_edits_stay_private(self, base):
        a = DesignOverlay(base, "s-a")
        b = DesignOverlay(base, "s-b")
        a.apply([edit("add_cap", "n0", 10.0)])
        b.apply([edit("add_cap", "n0", 30.0), edit("set_ndr", "n0", True)])
        net_a = a.materialize().nets["n0"]
        net_b = b.materialize().nets["n0"]
        assert net_a is not net_b
        assert net_a.extra_cap == pytest.approx(10.0)
        assert not net_a.ndr
        assert net_b.extra_cap == pytest.approx(30.0)
        assert net_b.ndr
        assert base.nets["n0"].extra_cap == 0.0

    def test_abort_mid_apply_invisible_to_other_sessions(self, base):
        target = nand2_instance(base)
        a = DesignOverlay(base, "s-a")
        b = DesignOverlay(base, "s-b")
        a.apply([edit("set_cell", target, "NAND2_X2_SVT")])
        view_a = a.materialize()
        # Session b aborts mid-apply: first edit of the batch conflicts
        # with a's, second is invalid, so the batch must vanish whole.
        with pytest.raises(NetlistError):
            b.apply([
                edit("set_cell", target, "NAND2_X4_SVT"),
                edit("add_cap", "no_such_net", 5.0),
            ])
        assert b.edit_count == 0
        assert b.materialize().instances[target] is base.instances[target]
        # a's committed view is untouched by b's abort.
        assert a.materialize() is view_a
        assert view_a.instances[target].cell_name == "NAND2_X2_SVT"
        assert base.instances[target].cell_name.startswith("NAND2_X1")

    def test_many_sessions_thread_stress(self, base):
        target = nand2_instance(base)
        sizes = ["NAND2_X2_SVT", "NAND2_X4_SVT"]
        failures = []

        def session(i):
            overlay = DesignOverlay(base, f"s-{i}")
            want = sizes[i % len(sizes)]
            try:
                overlay.apply([
                    edit("set_cell", target, want),
                    edit("add_cap", "n0", float(i + 1)),
                ])
                if i % 3 == 0:
                    # Interleave aborting batches with the commits.
                    try:
                        overlay.apply([edit("add_cap", "nope", 1.0)])
                    except NetlistError:
                        pass
                for _ in range(20):
                    view = overlay.materialize()
                    if view.instances[target].cell_name != want:
                        failures.append((i, "cell leaked"))
                    if view.nets["n0"].extra_cap != pytest.approx(i + 1):
                        failures.append((i, "cap leaked"))
            except Exception as exc:  # noqa: BLE001 - collect, don't die
                failures.append((i, repr(exc)))

        threads = [threading.Thread(target=session, args=(i,))
                   for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not failures, failures
        assert base.instances[target].cell_name.startswith("NAND2_X1")
        assert base.nets["n0"].extra_cap == 0.0
