"""Tests for the session table, its journal ledger and warm restore."""

import pytest

from repro.errors import (
    ServeError,
    SessionNotFoundError,
    SessionQuarantinedError,
)
from repro.runtime import RunJournal
from repro.serve import OverlayEdit, SessionManager, SessionState
from tests.serve.conftest import make_design, nand2_instance


def set_cell(target, value):
    return OverlayEdit(kind="set_cell", target=target, value=value)


@pytest.fixture
def base():
    return make_design()


class TestLifecycle:
    def test_auto_ids_are_sequential(self, base):
        manager = SessionManager(base)
        assert manager.open().id == "s-1"
        assert manager.open().id == "s-2"

    def test_explicit_id_and_duplicate_rejected(self, base):
        manager = SessionManager(base)
        manager.open("eco-review")
        with pytest.raises(ServeError):
            manager.open("eco-review")

    def test_session_limit(self, base):
        manager = SessionManager(base, session_limit=2)
        manager.open()
        keep = manager.open()
        with pytest.raises(ServeError):
            manager.open()
        manager.close(keep.id)
        manager.open()  # closing freed a slot

    def test_get_unknown_raises(self, base):
        with pytest.raises(SessionNotFoundError):
            SessionManager(base).get("s-404")

    def test_close_makes_session_unreachable(self, base):
        manager = SessionManager(base)
        session = manager.open()
        manager.close(session.id)
        with pytest.raises(SessionNotFoundError):
            manager.get(session.id)
        with pytest.raises(SessionNotFoundError):
            session.ensure_usable()

    def test_quarantine_then_discard_recovers(self, base):
        manager = SessionManager(base)
        session = manager.open()
        target = nand2_instance(base)
        manager.apply_eco(session, [set_cell(target, "NAND2_X2_SVT")])
        manager.quarantine(session.id, "InjectedFaultError: boom")
        with pytest.raises(SessionQuarantinedError):
            session.ensure_usable()
        dropped = manager.discard(session.id)
        assert dropped == 1
        assert session.state is SessionState.ACTIVE
        assert session.error is None
        session.ensure_usable()
        assert session.overlay.cell_of(target) == \
            base.instances[target].cell_name

    def test_discard_unknown_raises(self, base):
        with pytest.raises(SessionNotFoundError):
            SessionManager(base).discard("s-404")

    def test_apply_eco_bumps_seq_per_batch(self, base):
        manager = SessionManager(base)
        session = manager.open()
        target = nand2_instance(base)
        manager.apply_eco(session, [set_cell(target, "NAND2_X2_SVT")])
        manager.apply_eco(session, [set_cell(target, "NAND2_X4_SVT")])
        assert session.eco_seq == 2
        manager.apply_eco(session, [])
        assert session.eco_seq == 2  # empty batches don't burn sequence


class TestJournalRestore:
    def test_open_sessions_replay_with_edits(self, base, tmp_path):
        path = tmp_path / "serve.journal"
        target = nand2_instance(base)
        manager = SessionManager(base, journal=RunJournal(path))
        live = manager.open()
        manager.apply_eco(live, [set_cell(target, "NAND2_X2_SVT")])
        gone = manager.open()
        manager.close(gone.id)

        restored = SessionManager(make_design(), journal=RunJournal(path))
        assert restored.restored == 1
        session = restored.get(live.id)
        assert session.overlay.cell_of(target) == "NAND2_X2_SVT"
        assert session.eco_seq == 1
        with pytest.raises(SessionNotFoundError):
            restored.get(gone.id)

    def test_journaled_ids_never_recycled(self, base, tmp_path):
        path = tmp_path / "serve.journal"
        manager = SessionManager(base, journal=RunJournal(path))
        manager.open()            # s-1
        closed = manager.open()   # s-2
        manager.close(closed.id)

        restored = SessionManager(make_design(), journal=RunJournal(path))
        # Auto ids resume past every journaled id, open or closed...
        assert restored.open().id == "s-3"
        # ...and a journaled id can't be re-opened explicitly either:
        # its dead ECO ledger would splice into the new session on the
        # next restart.
        with pytest.raises(ServeError):
            restored.open("s-2")
        with pytest.raises(ServeError):
            restored.open("s-1")

    def test_discard_seq_keeps_discarded_edits_dead(self, base, tmp_path):
        path = tmp_path / "serve.journal"
        target = nand2_instance(base)
        manager = SessionManager(base, journal=RunJournal(path))
        session = manager.open()
        manager.apply_eco(session, [set_cell(target, "NAND2_X2_SVT")])
        manager.discard(session.id)
        manager.apply_eco(session, [set_cell(target, "NAND2_X4_SVT")])

        restored = SessionManager(make_design(), journal=RunJournal(path))
        replayed = restored.get(session.id)
        assert replayed.overlay.cell_of(target) == "NAND2_X4_SVT"
        assert replayed.overlay.edit_count == 1  # pre-discard edit stayed dead
        assert replayed.eco_seq == 2

    def test_eco_replay_order_is_numeric_not_lexicographic(self, base,
                                                           tmp_path):
        path = tmp_path / "serve.journal"
        target = nand2_instance(base)
        cells = ["NAND2_X2_SVT", "NAND2_X4_SVT"]
        manager = SessionManager(base, journal=RunJournal(path))
        session = manager.open()
        # 11 commits: lexicographic key order would replay seq 10 and 11
        # before seq 2 and corrupt the final state.
        for i in range(11):
            manager.apply_eco(session, [set_cell(target, cells[i % 2])])
        final = session.overlay.cell_of(target)

        restored = SessionManager(make_design(), journal=RunJournal(path))
        assert restored.get(session.id).overlay.cell_of(target) == final

    def test_restore_without_journal_is_empty(self, base):
        manager = SessionManager(base)
        assert manager.restored == 0
        assert manager.counts()["active"] == 0
