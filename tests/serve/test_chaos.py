"""Chaos acceptance tests for the timing daemon.

The scenarios here are the issue's acceptance bar: SIGKILL the daemon
process mid-burst and watch the restart resume warm from the journal;
inject a seeded persistent worker crash and watch it quarantine one
session instead of killing the daemon; point the journal at an
unwritable path and watch serving degrade rather than die; and slam 64
concurrent overlay sessions against a single-client reference.

The process-level tests drive the real CLI (``python -m repro serve``)
through :class:`TimingClient`, so they cover argument plumbing, the
port-file handshake, and signal handling too.
"""

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import (
    DaemonUnavailableError,
    ServeError,
    SessionQuarantinedError,
)
from repro.runtime import RetryPolicy
from repro.serve import DaemonConfig, TimingClient
from repro.testing import FaultPlan
from tests.serve.conftest import make_design, nand2_instance

REPO = Path(__file__).resolve().parents[2]

# First two corners of the standard MCMM set, i.e. what the CLI serves
# with ``--corners 2``.
NAMES = ["ss_720mv_-30c_cw", "ss_720mv_125c_rcw"]

# Mirror of the CLI's --inject-faults plan parameters (cli._cmd_serve).
CLI_FAULT_RATES = dict(crash_rate=0.15, hang_rate=0.05,
                       persistent_rate=0.1, hang_seconds=0.4,
                       kernel_rate=0.15)


def start_serve(tmp_path, *extra):
    """Launch ``repro serve`` in a subprocess; return (proc, port)."""
    port_file = tmp_path / f"port-{time.monotonic_ns()}"
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--design", "rand", "--gates", "60", "--seed", "1",
        "--period", "500", "--corners", "2", "--workers", "2",
        "--port-file", str(port_file),
        *extra,
    ]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.Popen(
        cmd, cwd=str(tmp_path), env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 90.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"serve exited early with code {proc.returncode}"
            )
        if port_file.exists():
            text = port_file.read_text().strip()
            if text:
                return proc, int(text)
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("serve never wrote its port file")


def reap(proc):
    if proc.poll() is None:
        proc.kill()
    proc.wait(timeout=30.0)


def _quarantine_seed():
    """A seed whose CLI fault plan persistently crashes NAMES[0] only."""
    for seed in range(300):
        plan = FaultPlan.seeded(seed, NAMES, **CLI_FAULT_RATES)
        by_task = {f.task: f for f in plan.faults}
        fault = by_task.get(NAMES[0])
        if fault is not None and fault.kind == "crash" \
                and len(fault.attempts) > 1 and NAMES[1] not in by_task:
            return seed
    raise AssertionError("no quarantine seed in range")


class TestSigkillWarmRestart:
    def test_kill_mid_burst_then_resume_from_journal(self, tmp_path):
        journal = tmp_path / "daemon.journal"
        proc, port = start_serve(tmp_path, "--checkpoint", str(journal))
        try:
            with TimingClient("127.0.0.1", port, timeout_s=60.0) as client:
                sid = client.request("open_session")["session"]
                client.request("apply_eco", {"edits": [
                    {"kind": "add_cap", "target": "n0", "value": 25.0},
                ]}, session=sid)
                shared_rows = client.request("timing")["scenarios"]
                eco = client.request("timing", session=sid)
                eco_rows = eco["scenarios"]
            # The ECO must actually change timing, or "restored" proves
            # nothing.
            assert eco_rows != shared_rows

            # Burst of clients hammering the daemon while it is shot.
            outcomes, lock = [], threading.Lock()

            def hammer():
                client = TimingClient("127.0.0.1", port, timeout_s=10.0)
                try:
                    with client:
                        while True:
                            client.request("timing")
                except ServeError as exc:
                    with lock:
                        outcomes.append(exc)
                except Exception as exc:  # noqa: BLE001 - fail the test
                    with lock:
                        outcomes.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            time.sleep(0.3)
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30.0)
            for thread in threads:
                thread.join(timeout=30.0)
            # No client hung, none saw corruption: every in-flight
            # request resolved to a structured *retryable* error.
            assert not any(t.is_alive() for t in threads)
            assert len(outcomes) == 4
            for exc in outcomes:
                assert isinstance(exc, DaemonUnavailableError), exc
                assert exc.retryable
        finally:
            reap(proc)

        # Restart on the same journal: cache prewarmed, session ledger
        # replayed, and the first queries are pure cache hits that match
        # the pre-kill answers exactly.
        proc, port = start_serve(tmp_path, "--checkpoint", str(journal))
        try:
            with TimingClient("127.0.0.1", port, timeout_s=60.0) as client:
                stats = client.request("stats")
                assert stats["cache"]["prewarmed"] >= 2
                assert stats["journal"]["available"]
                assert stats["journal"]["restored_sessions"] == 1

                warm = client.request("timing")
                assert set(warm["sources"].values()) == {"cache"}
                assert warm["scenarios"] == shared_rows

                resumed = client.request("timing", session=sid)
                assert set(resumed["sources"].values()) == {"cache"}
                assert resumed["scenarios"] == eco_rows
                assert resumed["version"] == eco["version"]

                client.request("shutdown")
            assert proc.wait(timeout=30.0) == 0
        finally:
            reap(proc)


class TestSeededFaults:
    def test_persistent_crash_quarantines_session_not_daemon(self,
                                                             tmp_path):
        seed = _quarantine_seed()
        proc, port = start_serve(
            tmp_path, "--inject-faults", str(seed), "--retries", "1",
        )
        try:
            with TimingClient("127.0.0.1", port, timeout_s=60.0) as client:
                sid = client.request("open_session")["session"]
                with pytest.raises(SessionQuarantinedError) as info:
                    client.request("timing", session=sid,
                                   params={"scenarios": [NAMES[0]]})
                assert not info.value.retryable

                # The daemon survived: control plane and the healthy
                # scenario both still serve...
                assert client.request("ping")["pong"] is True
                healthy = client.request(
                    "timing", params={"scenarios": [NAMES[1]]}
                )
                assert NAMES[1] in healthy["scenarios"]
                # ...while the poisoned session stays fenced until the
                # client explicitly discards its overlay.
                with pytest.raises(SessionQuarantinedError):
                    client.request("timing", session=sid,
                                   params={"scenarios": [NAMES[1]]})
                client.request("discard", session=sid)
                recovered = client.request(
                    "timing", session=sid,
                    params={"scenarios": [NAMES[1]]},
                )
                assert recovered["scenarios"][NAMES[1]] == \
                    healthy["scenarios"][NAMES[1]]

                stats = client.request("stats")
                assert stats["quarantines"] == 1
                client.request("shutdown")
            assert proc.wait(timeout=30.0) == 0
        finally:
            reap(proc)


class TestJournalDegradation:
    def test_journal_io_error_degrades_not_dies(self, tmp_path):
        # Parent directory does not exist: loading an absent journal is
        # fine, but the first append raises OSError and must flip the
        # journal to unavailable without failing the query.
        bad = tmp_path / "no_such_dir" / "daemon.journal"
        proc, port = start_serve(tmp_path, "--checkpoint", str(bad))
        try:
            with TimingClient("127.0.0.1", port, timeout_s=60.0) as client:
                first = client.request("timing")
                assert set(first["sources"].values()) <= {"full",
                                                          "incremental"}
                stats = client.request("stats")
                assert stats["journal"]["available"] is False
                assert stats["journal"]["io_errors"] >= 1
                assert stats["journal"]["entries"] == 0
                # Serving continues, now journal-less: the in-memory
                # cache still answers.
                again = client.request("timing")
                assert set(again["sources"].values()) == {"cache"}
                assert again["scenarios"] == first["scenarios"]
                client.request("shutdown")
            assert proc.wait(timeout=30.0) == 0
        finally:
            reap(proc)


class TestConcurrentOverlayStress:
    def test_64_clients_match_single_client_reference(self, daemon_factory,
                                                      scenarios):
        base = make_design()
        target = nand2_instance(base)
        daemon = daemon_factory(
            design=base, scens=scenarios,
            config=DaemonConfig(workers=8, queue_limit=256,
                                session_limit=300),
        )
        # Two conflicting multi-edit ECOs, each heavy enough to move the
        # critical path (so identical answers can only mean real
        # isolation, not a no-op edit).
        nands = sorted(n for n, i in base.instances.items()
                       if i.cell_name.startswith("NAND2_X1"))
        variants = [
            [{"kind": "set_cell", "target": n, "value": "NAND2_X4_SVT"}
             for n in nands],
            [{"kind": "add_cap", "target": f"n{i}", "value": 120.0}
             for i in range(10)],
        ]

        def run_session(client, policy, edits):
            sid = client.call("open_session")["session"]
            client.call("apply_eco", {"edits": edits}, session=sid,
                        policy=policy)
            result = client.call("timing", session=sid, policy=policy)
            client.call("close_session", session=sid)
            return result["scenarios"]

        # Single-client reference: each variant computed alone, first.
        reference = []
        with TimingClient("127.0.0.1", daemon.port,
                          timeout_s=60.0) as client:
            for edits in variants:
                reference.append(run_session(client, None, edits))
        assert reference[0] != reference[1]

        failures, lock = [], threading.Lock()

        def stress(i):
            policy = RetryPolicy(retries=4, backoff_s=0.05)
            try:
                client = TimingClient("127.0.0.1", daemon.port,
                                      timeout_s=60.0)
                with client:
                    rows = run_session(client, policy, variants[i % 2])
                if rows != reference[i % 2]:
                    with lock:
                        failures.append((i, rows))
            except Exception as exc:  # noqa: BLE001 - collect, don't die
                with lock:
                    failures.append((i, repr(exc)))

        threads = [threading.Thread(target=stress, args=(i,))
                   for i in range(64)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads)
        assert not failures, failures[:5]
        assert daemon.quarantines == 0
        # Every overlay died with its session; the base design is clean.
        assert base.instances[target].cell_name.startswith("NAND2_X1")
        assert base.nets["n0"].extra_cap == 0.0
        assert daemon.sessions.counts()["active"] == 0
