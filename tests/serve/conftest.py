"""Shared fixtures for the signoff-as-a-service test suite."""

import pytest

from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic
from repro.serve import DaemonConfig, TimingDaemon
from repro.sta import Constraints
from repro.sta.mcmm import Scenario


def make_design(seed=9):
    """A small but non-trivial block: fast enough to retime per test."""
    return random_logic(n_inputs=8, n_outputs=8, n_gates=40,
                        n_levels=4, seed=seed)


def make_scenarios(lib, lib_ss):
    c = Constraints.single_clock(520.0)
    c.input_delays = {f"in{i}": 60.0 for i in range(8)}
    return [
        Scenario("tt_typ", lib, c),
        Scenario("ss_cw", lib_ss, c, beol_corner_name="cw", temp_c=125.0),
    ]


def nand2_instance(design):
    """Name of some NAND2_X1 instance (a safe footprint-preserving
    resize target present in every generated block)."""
    for name, inst in sorted(design.instances.items()):
        if inst.cell_name.startswith("NAND2_X1"):
            return name
    raise AssertionError("generated design has no NAND2_X1 instance")


@pytest.fixture(scope="session")
def lib():
    return make_library()


@pytest.fixture(scope="session")
def lib_ss():
    return make_library(
        LibraryCondition(process="ss", vdd=0.72, temp_c=125.0)
    )


@pytest.fixture(scope="session")
def scenarios(lib, lib_ss):
    return make_scenarios(lib, lib_ss)


@pytest.fixture
def daemon_factory(scenarios):
    """``start(**kwargs) -> started TimingDaemon``; all stopped on teardown."""
    daemons = []

    def start(design=None, scens=None, config=None, journal=None,
              fault_injector=None):
        daemon = TimingDaemon(
            design if design is not None else make_design(),
            scens if scens is not None else scenarios,
            config=config or DaemonConfig(workers=2, queue_limit=32),
            journal=journal,
            fault_injector=fault_injector,
        )
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield start
    for daemon in daemons:
        daemon.stop()
