"""Tests for the bounded admission queue and its shed backpressure."""

import threading
import time

import pytest

from repro.errors import AdmissionShedError, TimingError
from repro.serve import AdmissionQueue


class TestAdmission:
    def test_fifo_order(self):
        queue = AdmissionQueue(4)
        for i in range(3):
            queue.offer(i)
        assert [queue.take(0.01) for _ in range(3)] == [0, 1, 2]

    def test_take_times_out_empty(self):
        queue = AdmissionQueue(4)
        t0 = time.monotonic()
        assert queue.take(0.05) is None
        assert time.monotonic() - t0 >= 0.05

    def test_shed_at_depth_limit(self):
        queue = AdmissionQueue(2)
        queue.offer("a")
        queue.offer("b")
        with pytest.raises(AdmissionShedError) as info:
            queue.offer("c")
        assert info.value.retryable
        assert info.value.code == "E_OVERLOADED"
        assert info.value.context["depth_limit"] == 2
        assert queue.stats()["shed"] == 1
        # Shed requests were never admitted: the queue still drains the
        # two that were.
        assert queue.take(0.01) == "a"
        assert queue.take(0.01) == "b"

    def test_offer_never_blocks_when_full(self):
        queue = AdmissionQueue(1)
        queue.offer("a")
        t0 = time.monotonic()
        with pytest.raises(AdmissionShedError):
            queue.offer("b")
        assert time.monotonic() - t0 < 0.2

    def test_close_wakes_blocked_taker(self):
        queue = AdmissionQueue(4)
        result = []
        worker = threading.Thread(
            target=lambda: result.append(queue.take(10.0))
        )
        worker.start()
        time.sleep(0.05)
        queue.close()
        worker.join(timeout=2.0)
        assert not worker.is_alive()
        assert result == [None]

    def test_offer_after_close_sheds(self):
        queue = AdmissionQueue(4)
        queue.close()
        with pytest.raises(AdmissionShedError):
            queue.offer("late")

    def test_close_drains_admitted_items(self):
        queue = AdmissionQueue(4)
        queue.offer("a")
        queue.close()
        assert queue.take(0.01) == "a"
        assert queue.take(0.01) is None

    def test_done_counts_completions(self):
        queue = AdmissionQueue(4)
        queue.offer("a")
        queue.take(0.01)
        queue.done()
        stats = queue.stats()
        assert stats["admitted"] == 1
        assert stats["completed"] == 1
        assert stats["depth"] == 0

    def test_depth_limit_validated(self):
        with pytest.raises(TimingError):
            AdmissionQueue(0)

    def test_stats_shape(self):
        stats = AdmissionQueue(8).stats()
        assert set(stats) == {"depth", "depth_limit", "admitted", "shed",
                              "completed"}

    def test_concurrent_producers_and_consumer_account_exactly(self):
        queue = AdmissionQueue(16)
        per_producer, producers = 100, 4
        drained = []
        stop = threading.Event()

        def consume():
            while not stop.is_set() or queue.depth:
                item = queue.take(0.02)
                if item is not None:
                    drained.append(item)
                    queue.done()

        def produce(tag):
            for i in range(per_producer):
                try:
                    queue.offer((tag, i))
                except AdmissionShedError:
                    pass

        consumer = threading.Thread(target=consume)
        consumer.start()
        threads = [threading.Thread(target=produce, args=(t,))
                   for t in range(producers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        consumer.join(timeout=5.0)
        stats = queue.stats()
        total = producers * per_producer
        assert stats["admitted"] + stats["shed"] == total
        assert len(drained) == stats["admitted"] == stats["completed"]
