"""Daemon ``ssta`` query op: statistical timing over a session overlay."""

import pytest

from repro.errors import ServeError
from repro.serve import TimingClient
from tests.serve.conftest import make_design


def client_for(daemon, timeout_s=30.0):
    return TimingClient("127.0.0.1", daemon.port, timeout_s=timeout_s)


PARAMS = {"samples": 128, "seed": 7}


class TestSstaOp:
    def test_yield_and_ranked_endpoints(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            result = client.request("ssta", dict(PARAMS, top=3))
        assert result["scenario"] == "tt_typ"  # first scenario default
        assert result["samples"] == 128
        assert 0.0 <= result["yield"] <= 1.0
        assert 1 <= len(result["endpoints"]) <= 3
        crits = [e["criticality"] for e in result["endpoints"]]
        assert crits == sorted(crits, reverse=True)
        for endpoint in result["endpoints"]:
            assert endpoint["sigma"] >= 0.0
            assert 0.0 <= endpoint["fail_prob"] <= 1.0
        assert "tuning" not in result  # no target_yield requested

    def test_seeded_runs_reproduce(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            a = client.request("ssta", PARAMS)
            b = client.request("ssta", PARAMS)
        assert a["yield"] == b["yield"]
        assert a["endpoints"] == b["endpoints"]

    def test_named_scenario(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            result = client.request(
                "ssta", dict(PARAMS, scenario="ss_cw"))
        assert result["scenario"] == "ss_cw"

    def test_unknown_scenario_is_bad_request(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            with pytest.raises(ServeError) as info:
                client.request("ssta", {"scenario": "ff_nope"})
        assert info.value.code == "E_BAD_REQUEST"
        assert daemon.quarantines == 0

    def test_bad_samples_is_bad_request(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            for samples in (4, 10 ** 6):
                with pytest.raises(ServeError) as info:
                    client.request("ssta", {"samples": samples})
                assert info.value.code == "E_BAD_REQUEST"
                assert not info.value.retryable
        assert daemon.quarantines == 0

    def test_tune_to_target(self, daemon_factory):
        daemon = daemon_factory()
        with client_for(daemon) as client:
            result = client.request("ssta", dict(
                PARAMS, target_yield=0.99, tune_range=40.0))
        tuning = result["tuning"]
        assert tuning["target_yield"] == 0.99
        assert tuning["tuned_yield"] >= tuning["baseline_yield"]
        assert tuning["buffers"] == len(tuning["selected"])
        assert isinstance(tuning["achieved"], bool)

    def test_runs_on_the_session_overlay(self, daemon_factory):
        design = make_design()
        daemon = daemon_factory(design=design)
        # Upsize every NAND2_X1: enough of an ECO to move the sigma
        # landscape, and the overlay must be what SSTA sees.
        edits = [
            {"kind": "set_cell", "target": n, "value": "NAND2_X4_SVT"}
            for n, i in sorted(design.instances.items())
            if i.cell_name.startswith("NAND2_X1")
        ]
        assert edits
        with client_for(daemon) as client:
            base = client.request("ssta", PARAMS)
            sid = client.request("open_session")["session"]
            client.request("apply_eco", {"edits": edits}, session=sid)
            overlaid = client.request("ssta", PARAMS, session=sid)
            shared_after = client.request("ssta", PARAMS)
        assert overlaid["design"].endswith(f"@{sid}")
        assert overlaid["version"] == 1
        assert overlaid["endpoints"] != base["endpoints"]
        # The shared context never saw the ECO.
        assert shared_after["endpoints"] == base["endpoints"]
