"""Tests for the circuit container and the transient/DC solvers."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.spice.devices import NMOS_16NM, PMOS_16NM
from repro.spice.gates import add_inverter, add_nand, add_nor
from repro.spice.network import GROUND, Circuit
from repro.spice.stimulus import Constant, Ramp
from repro.spice.transient import dc_operating_point, simulate


class TestCircuitConstruction:
    def test_ground_always_present(self):
        assert GROUND in Circuit().nodes

    def test_nodes_registered_by_elements(self):
        ckt = Circuit()
        ckt.add_resistor("a", "b", 1.0)
        assert set(ckt.nodes) >= {"a", "b"}

    def test_unknown_nodes_exclude_sources(self):
        ckt = Circuit()
        ckt.add_vdd(0.8)
        ckt.add_resistor("vdd", "x", 1.0)
        assert ckt.unknown_nodes() == ["x"]

    def test_negative_resistance_rejected(self):
        with pytest.raises(SimulationError):
            Circuit().add_resistor("a", "b", -1.0)

    def test_negative_capacitance_rejected(self):
        with pytest.raises(SimulationError):
            Circuit().add_capacitor("a", "b", -1.0)

    def test_empty_node_name_rejected(self):
        with pytest.raises(SimulationError):
            Circuit().node("")

    def test_repr_mentions_counts(self):
        ckt = Circuit("x")
        ckt.add_resistor("a", "b", 1.0)
        assert "R=1" in repr(ckt)


class TestDcOperatingPoint:
    def test_resistive_divider(self):
        ckt = Circuit()
        ckt.add_vdd(1.0)
        ckt.add_resistor("vdd", "mid", 1.0)
        ckt.add_resistor("mid", GROUND, 1.0)
        op = dc_operating_point(ckt)
        assert op["mid"] == pytest.approx(0.5, abs=1e-6)

    def test_inverter_static_levels(self):
        ckt = Circuit()
        vdd = ckt.add_vdd(0.8)
        add_inverter(ckt, "u1", "in", "out", vdd)
        ckt.add_source("in", Constant(0.0))
        op = dc_operating_point(ckt)
        assert op["out"] == pytest.approx(0.8, abs=0.01)

    def test_inverter_static_low(self):
        ckt = Circuit()
        vdd = ckt.add_vdd(0.8)
        add_inverter(ckt, "u1", "in", "out", vdd)
        ckt.add_source("in", Constant(0.8))
        op = dc_operating_point(ckt)
        assert op["out"] == pytest.approx(0.0, abs=0.01)


class TestTransient:
    def test_rc_charging_curve(self):
        """An RC step response must match the analytic exponential."""
        ckt = Circuit()
        ckt.add_source("in", Ramp(t_start=0.0, duration=0.1, v0=0.0, v1=1.0))
        ckt.add_resistor("in", "out", 1.0)  # 1 kohm
        ckt.add_capacitor("out", GROUND, 100.0)  # 100 fF -> tau = 100 ps
        res = simulate(ckt, t_stop=500.0, dt=0.5, t_start=-10.0)
        idx = np.searchsorted(res.times, 100.0)
        v_at_tau = res.wave("out")[idx]
        # At t = tau the response is 1 - 1/e = 0.632 (cap slightly larger
        # due to the solver's MIN_NODE_CAP; tolerance covers it).
        assert v_at_tau == pytest.approx(0.632, abs=0.01)

    def test_inverter_switches(self):
        ckt = Circuit()
        vdd = ckt.add_vdd(0.8)
        add_inverter(ckt, "u1", "in", "out", vdd)
        ckt.add_capacitor("out", GROUND, 5.0)
        ckt.add_source("in", Ramp(20.0, 30.0, 0.0, 0.8))
        res = simulate(ckt, t_stop=200.0, dt=0.5, t_start=-50.0)
        assert res.wave("out")[0] == pytest.approx(0.8, abs=0.02)
        assert res.final("out") == pytest.approx(0.0, abs=0.02)

    def test_nand_truth_table_endpoint(self):
        ckt = Circuit()
        vdd = ckt.add_vdd(0.8)
        add_nand(ckt, "u1", ["a", "b"], "out", vdd)
        ckt.add_source("a", Constant(0.8))
        ckt.add_source("b", Ramp(20.0, 30.0, 0.0, 0.8))
        res = simulate(ckt, t_stop=200.0, dt=0.5, t_start=-20.0)
        assert res.wave("out")[0] == pytest.approx(0.8, abs=0.02)  # NAND(1,0)=1
        assert res.final("out") == pytest.approx(0.0, abs=0.02)  # NAND(1,1)=0

    def test_nor_truth_table_endpoint(self):
        ckt = Circuit()
        vdd = ckt.add_vdd(0.8)
        add_nor(ckt, "u1", ["a", "b"], "out", vdd)
        ckt.add_source("a", Constant(0.0))
        ckt.add_source("b", Ramp(20.0, 30.0, 0.8, 0.0))
        res = simulate(ckt, t_stop=250.0, dt=0.5, t_start=-20.0)
        assert res.wave("out")[0] == pytest.approx(0.0, abs=0.02)  # NOR(0,1)=0
        assert res.final("out") == pytest.approx(0.8, abs=0.02)  # NOR(0,0)=1

    def test_record_subset(self):
        ckt = Circuit()
        vdd = ckt.add_vdd(0.8)
        add_inverter(ckt, "u1", "in", "out", vdd)
        ckt.add_source("in", Constant(0.0))
        res = simulate(ckt, t_stop=10.0, dt=1.0, record=["out"])
        assert list(res.voltages) == ["out"]
        with pytest.raises(SimulationError):
            res.wave("in")

    def test_bad_time_window_rejected(self):
        ckt = Circuit()
        ckt.add_vdd(0.8)
        with pytest.raises(SimulationError):
            simulate(ckt, t_stop=0.0, t_start=10.0)

    def test_bad_dt_rejected(self):
        ckt = Circuit()
        ckt.add_vdd(0.8)
        with pytest.raises(SimulationError):
            simulate(ckt, t_stop=10.0, dt=0.0)

    def test_coupling_capacitor_injects_glitch(self):
        """An aggressor ramp couples onto a floating-ish victim node."""
        ckt = Circuit()
        ckt.add_source("aggr", Ramp(10.0, 20.0, 0.0, 0.8))
        ckt.add_resistor("victim", GROUND, 10.0)
        ckt.add_capacitor("victim", GROUND, 2.0)
        ckt.add_capacitor("aggr", "victim", 2.0)
        res = simulate(ckt, t_stop=400.0, dt=0.25, t_start=-10.0)
        peak = float(np.max(res.wave("victim")))
        assert peak > 0.05  # a visible coupled bump
        assert res.final("victim") == pytest.approx(0.0, abs=0.01)
