"""Tests for waveform measurement utilities."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.spice.measure import (
    crossing_time,
    delay_between,
    ramp_duration_to_slew,
    slew_to_ramp_duration,
    transition_time,
)


def ramp_wave(t0, t1, v0, v1, t_stop=100.0, dt=0.1):
    times = np.arange(0.0, t_stop, dt)
    frac = np.clip((times - t0) / (t1 - t0), 0.0, 1.0)
    return times, v0 + frac * (v1 - v0)


class TestCrossingTime:
    def test_simple_rise(self):
        t, v = ramp_wave(10.0, 20.0, 0.0, 1.0)
        assert crossing_time(t, v, 0.5, "rise") == pytest.approx(15.0, abs=0.1)

    def test_simple_fall(self):
        t, v = ramp_wave(10.0, 20.0, 1.0, 0.0)
        assert crossing_time(t, v, 0.5, "fall") == pytest.approx(15.0, abs=0.1)

    def test_direction_filter(self):
        t, v = ramp_wave(10.0, 20.0, 0.0, 1.0)
        assert crossing_time(t, v, 0.5, "fall") is None

    def test_after_parameter(self):
        times = np.arange(0.0, 100.0, 0.1)
        v = np.where((times > 20) & (times < 40), 1.0, 0.0)
        first = crossing_time(times, v, 0.5, "rise")
        assert first == pytest.approx(20.0, abs=0.2)
        assert crossing_time(times, v, 0.5, "rise", after=25.0) is None

    def test_nth_crossing(self):
        times = np.arange(0.0, 100.0, 0.1)
        v = ((times // 10) % 2).astype(float)  # square wave
        t2 = crossing_time(times, v, 0.5, "rise", nth=2)
        assert t2 == pytest.approx(30.0, abs=0.2)

    def test_never_crosses(self):
        t, v = ramp_wave(10.0, 20.0, 0.0, 0.4)
        assert crossing_time(t, v, 0.5, "rise") is None

    def test_bad_direction(self):
        t, v = ramp_wave(10.0, 20.0, 0.0, 1.0)
        with pytest.raises(SimulationError):
            crossing_time(t, v, 0.5, "up")


class TestDelayBetween:
    def test_delay_between_ramps(self):
        t = np.arange(0.0, 100.0, 0.1)
        _, vin = ramp_wave(10.0, 20.0, 0.0, 1.0)
        _, vout = ramp_wave(25.0, 35.0, 1.0, 0.0)
        d = delay_between(t, vin, vout, vdd=1.0, in_direction="rise",
                          out_direction="fall")
        assert d == pytest.approx(15.0, abs=0.2)

    def test_missing_output_raises(self):
        t, vin = ramp_wave(10.0, 20.0, 0.0, 1.0)
        vout = np.zeros_like(vin)
        with pytest.raises(SimulationError, match="output never crossed"):
            delay_between(t, vin, vout, 1.0, "rise", "fall")

    def test_missing_input_raises(self):
        t, _ = ramp_wave(10.0, 20.0, 0.0, 1.0)
        flat = np.zeros_like(t)
        with pytest.raises(SimulationError, match="input never crossed"):
            delay_between(t, flat, flat, 1.0, "rise", "fall")


class TestTransitionTime:
    def test_linear_ramp_slew(self):
        t, v = ramp_wave(10.0, 20.0, 0.0, 1.0)
        # 20% -> 80% of a 10 ps full ramp is 6 ps.
        assert transition_time(t, v, 1.0, "rise") == pytest.approx(6.0, abs=0.1)

    def test_falling_slew(self):
        t, v = ramp_wave(10.0, 20.0, 1.0, 0.0)
        assert transition_time(t, v, 1.0, "fall") == pytest.approx(6.0, abs=0.1)

    def test_incomplete_transition_raises(self):
        t, v = ramp_wave(10.0, 20.0, 0.0, 0.5)
        with pytest.raises(SimulationError):
            transition_time(t, v, 1.0, "rise")


class TestSlewConversions:
    def test_round_trip(self):
        assert ramp_duration_to_slew(slew_to_ramp_duration(12.0)) == pytest.approx(12.0)

    def test_default_thresholds(self):
        # 20-80% of a full ramp covers 60% of its duration.
        assert slew_to_ramp_duration(6.0) == pytest.approx(10.0)
