"""Transistor-level truth-table checks for the complex gates (AOI/OAI).

Outputs are read from a settled transient rather than a DC solve: fully-
off series stacks leave internal nodes floating, which defeats DC Newton
but settles physically through the node capacitances.
"""

import itertools

import pytest

from repro.spice.gates import add_aoi21, add_nand, add_nor, add_oai21
from repro.spice.network import Circuit
from repro.spice.stimulus import Constant
from repro.spice.transient import simulate

VDD = 0.8


def dc_output(builder, values, **kwargs):
    """Settled output of a gate with inputs held at logic levels."""
    ckt = Circuit("truth_tb")
    vdd = ckt.add_vdd(VDD)
    names = [f"in{i}" for i in range(len(values))]
    if builder in (add_aoi21, add_oai21):
        builder(ckt, "dut", *names, "out", vdd_node=vdd, **kwargs)
    else:
        builder(ckt, "dut", names, "out", vdd_node=vdd, **kwargs)
    for name, value in zip(names, values):
        ckt.add_source(name, Constant(VDD if value else 0.0))
    result = simulate(ckt, t_stop=300.0, dt=1.0, record=["out"])
    return result.final("out")


def logic(level: float) -> int:
    assert level < 0.1 * VDD or level > 0.9 * VDD, \
        f"ambiguous DC level {level}"
    return 1 if level > 0.5 * VDD else 0


class TestAoi21:
    @pytest.mark.parametrize("a1,a2,b", list(itertools.product([0, 1],
                                                               repeat=3)))
    def test_truth_table(self, a1, a2, b):
        out = dc_output(add_aoi21, (a1, a2, b))
        expected = 0 if ((a1 and a2) or b) else 1
        assert logic(out) == expected


class TestOai21:
    @pytest.mark.parametrize("a1,a2,b", list(itertools.product([0, 1],
                                                               repeat=3)))
    def test_truth_table(self, a1, a2, b):
        out = dc_output(add_oai21, (a1, a2, b))
        expected = 0 if ((a1 or a2) and b) else 1
        assert logic(out) == expected


class TestNand3Nor3:
    @pytest.mark.parametrize("bits", list(itertools.product([0, 1],
                                                            repeat=3)))
    def test_nand3(self, bits):
        out = dc_output(add_nand, bits)
        assert logic(out) == (0 if all(bits) else 1)

    @pytest.mark.parametrize("bits", list(itertools.product([0, 1],
                                                            repeat=3)))
    def test_nor3(self, bits):
        out = dc_output(add_nor, bits)
        assert logic(out) == (0 if any(bits) else 1)
