"""Integration tests: testbenches reproduce the paper's device-level physics.

These are the slowest unit-level tests (each runs transient simulations);
they pin down the qualitative claims of the paper's Figs 4, 6(b) and 10.
"""

import pytest

from repro.spice.testbench import (
    dff_capture_trial,
    inverter_delay,
    mis_sis_delays,
    nand2_arc_delay,
)


class TestInverterDelay:
    def test_reasonable_fo4_class_delay(self):
        m = inverter_delay()
        assert 2.0 < m.delay < 60.0
        assert m.out_slew > 0.0

    def test_delay_increases_with_load(self):
        d_small = inverter_delay(load_ff=2.0).delay
        d_large = inverter_delay(load_ff=8.0).delay
        assert d_large > d_small

    def test_delay_decreases_with_size(self):
        d_small = inverter_delay(size=1.0, load_ff=8.0).delay
        d_large = inverter_delay(size=2.0, load_ff=8.0).delay
        assert d_large < d_small

    def test_delay_increases_at_low_voltage(self):
        d_nom = inverter_delay(vdd=0.8).delay
        d_low = inverter_delay(vdd=0.6).delay
        assert d_low > d_nom


class TestTemperatureInversion:
    """Paper Fig 6(b): below V_tr cold is slower; above V_tr hot is slower."""

    def test_low_voltage_cold_slower(self):
        d_cold = inverter_delay(vdd=0.55, temp_c=-30.0).delay
        d_hot = inverter_delay(vdd=0.55, temp_c=125.0).delay
        assert d_cold > d_hot

    def test_high_voltage_hot_slower(self):
        d_cold = inverter_delay(vdd=1.0, temp_c=-30.0).delay
        d_hot = inverter_delay(vdd=1.0, temp_c=125.0).delay
        assert d_hot > d_cold


class TestNand2Arc:
    def test_sis_arc_measurable(self):
        m = nand2_arc_delay()
        assert m.delay > 0.0

    def test_mis_requires_offset(self):
        with pytest.raises(Exception):
            nand2_arc_delay(other_input="switching", mis_offset=None)

    def test_bad_other_input(self):
        with pytest.raises(Exception):
            nand2_arc_delay(other_input="low")


class TestMisVsSis:
    """Paper Fig 4: falling-input MIS strongly speeds the arc; rising-input
    MIS slows it."""

    @pytest.fixture(scope="class")
    def fall_study(self):
        return mis_sis_delays(input_direction="fall",
                              offsets=[-20.0, -10.0, 0.0, 10.0, 20.0])

    @pytest.fixture(scope="class")
    def rise_study(self):
        return mis_sis_delays(input_direction="rise",
                              offsets=[-20.0, -10.0, 0.0, 10.0, 20.0])

    def test_falling_input_mis_much_faster(self, fall_study):
        # Paper: MIS delay can be less than ~50% of SIS delay.
        assert fall_study.speedup_ratio < 0.6

    def test_rising_input_mis_slower(self, rise_study):
        # Paper: MIS delay more than ~10% greater than SIS (we require >3%
        # to stay robust to testbench detail).
        assert rise_study.slowdown_ratio > 1.03

    def test_sweep_recorded(self, fall_study):
        assert len(fall_study.sweep) >= 3

    def test_mis_effect_persists_at_low_voltage(self):
        """Fig 4 shows the MIS speedup at nominal and 80% of nominal VDD."""
        nom = mis_sis_delays(input_direction="fall", vdd=0.8,
                             offsets=[-10.0, 0.0, 10.0])
        low = mis_sis_delays(input_direction="fall", vdd=0.64,
                             offsets=[-10.0, 0.0, 10.0])
        assert nom.speedup_ratio < 0.7
        assert low.speedup_ratio < 0.7


class TestFlopCapture:
    """Paper Fig 10: c2q rises steeply as setup shrinks; capture fails
    below a critical setup."""

    def test_comfortable_setup_captures(self):
        trial = dff_capture_trial(setup_time=100.0, hold_time=80.0)
        assert trial.captured
        assert trial.c2q_delay > 0.0

    def test_c2q_grows_as_setup_shrinks(self):
        slow = dff_capture_trial(setup_time=15.0, hold_time=80.0)
        fast = dff_capture_trial(setup_time=100.0, hold_time=80.0)
        assert slow.captured and fast.captured
        assert slow.c2q_delay > 1.15 * fast.c2q_delay

    def test_tiny_setup_fails(self):
        trial = dff_capture_trial(setup_time=1.0, hold_time=80.0)
        assert not trial.captured

    def test_excessive_setup_rejected(self):
        with pytest.raises(Exception):
            dff_capture_trial(setup_time=500.0, hold_time=80.0)
