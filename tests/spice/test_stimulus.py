"""Tests for stimulus waveforms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice.stimulus import Constant, PiecewiseLinear, Pulse, Ramp


class TestConstant:
    def test_value_everywhere(self):
        w = Constant(0.8)
        assert w.value(-100.0) == 0.8
        assert w.value(0.0) == 0.8
        assert w.value(1e9) == 0.8


class TestRamp:
    def test_before_start(self):
        w = Ramp(10.0, 20.0, 0.0, 1.0)
        assert w.value(5.0) == 0.0

    def test_after_end(self):
        w = Ramp(10.0, 20.0, 0.0, 1.0)
        assert w.value(31.0) == 1.0

    def test_midpoint(self):
        w = Ramp(10.0, 20.0, 0.0, 1.0)
        assert w.value(20.0) == pytest.approx(0.5)

    def test_falling(self):
        w = Ramp(0.0, 10.0, 1.0, 0.0)
        assert w.value(5.0) == pytest.approx(0.5)

    @given(t=st.floats(-1e3, 1e3))
    @settings(max_examples=50, deadline=None)
    def test_bounded_by_endpoints(self, t):
        w = Ramp(0.0, 50.0, 0.2, 0.9)
        assert 0.2 <= w.value(t) <= 0.9


class TestPulse:
    def test_low_before_start(self):
        w = Pulse(t_start=100.0, period=100.0, width=40.0, v_low=0.0, v_high=1.0)
        assert w.value(0.0) == 0.0

    def test_high_mid_pulse(self):
        w = Pulse(t_start=0.0, period=100.0, width=40.0, v_low=0.0, v_high=1.0,
                  edge=5.0)
        assert w.value(20.0) == 1.0

    def test_low_after_pulse(self):
        w = Pulse(t_start=0.0, period=100.0, width=40.0, v_low=0.0, v_high=1.0,
                  edge=5.0)
        assert w.value(80.0) == 0.0

    def test_periodicity(self):
        w = Pulse(t_start=0.0, period=100.0, width=40.0, v_low=0.0, v_high=1.0,
                  edge=5.0)
        assert w.value(20.0) == w.value(120.0) == w.value(1020.0)

    def test_edges_are_finite_ramps(self):
        w = Pulse(t_start=0.0, period=100.0, width=40.0, v_low=0.0, v_high=1.0,
                  edge=10.0)
        assert 0.0 < w.value(5.0) < 1.0


class TestPiecewiseLinear:
    def test_holds_first_value(self):
        w = PiecewiseLinear([10.0, 20.0], [0.5, 1.0])
        assert w.value(0.0) == 0.5

    def test_holds_last_value(self):
        w = PiecewiseLinear([10.0, 20.0], [0.5, 1.0])
        assert w.value(100.0) == 1.0

    def test_interpolates(self):
        w = PiecewiseLinear([0.0, 10.0, 20.0], [0.0, 1.0, 0.0])
        assert w.value(5.0) == pytest.approx(0.5)
        assert w.value(15.0) == pytest.approx(0.5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0, 1.0], [0.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([], [])

    def test_non_monotone_times_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinear([0.0, 0.0], [0.0, 1.0])

    def test_single_breakpoint(self):
        w = PiecewiseLinear([5.0], [0.7])
        assert w.value(0.0) == 0.7
        assert w.value(10.0) == 0.7
