"""Unit tests for the MOSFET device model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spice.devices import (
    MosParams,
    NMOS_16NM,
    PMOS_16NM,
    Transistor,
    vt_flavor_params,
)


def nmos_fet(**kwargs):
    return Transistor(drain="d", gate="g", source="s", params=NMOS_16NM, **kwargs)


def pmos_fet(**kwargs):
    return Transistor(drain="d", gate="g", source="s", params=PMOS_16NM, **kwargs)


class TestMosParams:
    def test_vt_decreases_with_temperature(self):
        assert NMOS_16NM.vt_at(125.0) < NMOS_16NM.vt_at(25.0)
        assert NMOS_16NM.vt_at(-30.0) > NMOS_16NM.vt_at(25.0)

    def test_vt_at_reference_is_vt0(self):
        assert NMOS_16NM.vt_at(25.0) == pytest.approx(NMOS_16NM.vt0)

    def test_vt_shift_adds(self):
        assert NMOS_16NM.vt_at(25.0, vt_shift=0.05) == pytest.approx(
            NMOS_16NM.vt0 + 0.05
        )

    def test_k_degrades_with_temperature(self):
        assert NMOS_16NM.k_at(125.0) < NMOS_16NM.k_at(25.0)
        assert NMOS_16NM.k_at(-30.0) > NMOS_16NM.k_at(25.0)

    def test_k_scale_multiplies(self):
        assert NMOS_16NM.k_at(25.0, k_scale=1.2) == pytest.approx(
            1.2 * NMOS_16NM.k_at(25.0)
        )

    def test_phi_t_at_room_temperature(self):
        assert NMOS_16NM.phi_t_at(26.85) == pytest.approx(0.02585, rel=1e-6)


class TestVtFlavors:
    def test_flavor_ordering(self):
        vts = [vt_flavor_params(NMOS_16NM, f).vt0
               for f in ("ulvt", "lvt", "svt", "hvt", "uhvt")]
        assert vts == sorted(vts)

    def test_svt_is_base(self):
        assert vt_flavor_params(NMOS_16NM, "svt").vt0 == NMOS_16NM.vt0

    def test_unknown_flavor_raises(self):
        with pytest.raises(ValueError, match="unknown Vt flavor"):
            vt_flavor_params(NMOS_16NM, "xvt")

    def test_flavor_case_insensitive(self):
        assert vt_flavor_params(NMOS_16NM, "LVT").vt0 == pytest.approx(
            NMOS_16NM.vt0 - 0.06
        )


class TestNmosCurrent:
    def test_off_device_has_negligible_current(self):
        fet = nmos_fet()
        i = fet.current(v_d=0.8, v_g=0.0, v_s=0.0)
        assert abs(i) < 1e-4  # well under a microamp-scale on-current

    def test_on_device_conducts(self):
        fet = nmos_fet()
        i = fet.current(v_d=0.8, v_g=0.8, v_s=0.0)
        assert i > 0.05  # tens of microamps to fraction of mA

    def test_current_scales_with_width(self):
        i1 = nmos_fet(width=1.0).current(0.8, 0.8, 0.0)
        i2 = nmos_fet(width=2.0).current(0.8, 0.8, 0.0)
        assert i2 == pytest.approx(2.0 * i1)

    def test_zero_vds_gives_zero_current(self):
        assert nmos_fet().current(0.0, 0.8, 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_symmetric_swap(self):
        """Swapping drain/source voltages negates the current."""
        fet = nmos_fet()
        i_fwd = fet.current(v_d=0.4, v_g=0.8, v_s=0.0)
        i_rev = fet.current(v_d=0.0, v_g=0.8, v_s=0.4)
        assert i_rev == pytest.approx(-i_fwd, rel=1e-9)

    def test_monotone_in_vgs(self):
        fet = nmos_fet()
        currents = [fet.current(0.8, vg, 0.0) for vg in (0.2, 0.4, 0.6, 0.8)]
        assert currents == sorted(currents)

    def test_monotone_in_vds(self):
        fet = nmos_fet()
        currents = [fet.current(vd, 0.8, 0.0) for vd in (0.05, 0.2, 0.5, 0.8)]
        assert currents == sorted(currents)

    def test_vt_shift_reduces_current(self):
        i_nom = nmos_fet().current(0.8, 0.8, 0.0)
        i_aged = nmos_fet(vt_shift=0.05).current(0.8, 0.8, 0.0)
        assert i_aged < i_nom


class TestPmosCurrent:
    def test_off_device(self):
        fet = pmos_fet()
        # Source at VDD, gate high -> off.
        i = fet.current(v_d=0.0, v_g=0.8, v_s=0.8)
        assert abs(i) < 1e-4

    def test_on_device_current_sign(self):
        fet = pmos_fet()
        # Gate low, source at VDD, drain low: current flows source->drain,
        # i.e. drain-to-source current is negative.
        i = fet.current(v_d=0.0, v_g=0.0, v_s=0.8)
        assert i < -0.02

    def test_pmos_weaker_than_nmos(self):
        i_n = nmos_fet().current(0.8, 0.8, 0.0)
        i_p = pmos_fet().current(0.0, 0.0, 0.8)
        assert abs(i_p) < abs(i_n)


class TestDerivatives:
    @given(
        vd=st.floats(0.0, 1.2),
        vg=st.floats(0.0, 1.2),
        vs=st.floats(0.0, 1.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_analytic_derivatives_match_finite_differences(self, vd, vg, vs):
        fet = nmos_fet()
        eps = 1e-6
        i0, did, dig, dis = fet.current_and_derivs(vd, vg, vs)
        fd_d = (fet.current(vd + eps, vg, vs) - fet.current(vd - eps, vg, vs)) / (2 * eps)
        fd_g = (fet.current(vd, vg + eps, vs) - fet.current(vd, vg - eps, vs)) / (2 * eps)
        fd_s = (fet.current(vd, vg, vs + eps) - fet.current(vd, vg, vs - eps)) / (2 * eps)
        tol = 1e-4 + 0.02 * max(abs(fd_d), abs(fd_g), abs(fd_s))
        assert abs(did - fd_d) < tol
        assert abs(dig - fd_g) < tol
        assert abs(dis - fd_s) < tol

    @given(
        vd=st.floats(0.0, 1.2),
        vg=st.floats(0.0, 1.2),
        vs=st.floats(0.0, 1.2),
    )
    @settings(max_examples=60, deadline=None)
    def test_pmos_derivatives_match_finite_differences(self, vd, vg, vs):
        fet = pmos_fet()
        eps = 1e-6
        i0, did, dig, dis = fet.current_and_derivs(vd, vg, vs)
        fd_d = (fet.current(vd + eps, vg, vs) - fet.current(vd - eps, vg, vs)) / (2 * eps)
        fd_g = (fet.current(vd, vg + eps, vs) - fet.current(vd, vg - eps, vs)) / (2 * eps)
        fd_s = (fet.current(vd, vg, vs + eps) - fet.current(vd, vg, vs - eps)) / (2 * eps)
        tol = 1e-4 + 0.02 * max(abs(fd_d), abs(fd_g), abs(fd_s))
        assert abs(did - fd_d) < tol
        assert abs(dig - fd_g) < tol
        assert abs(dis - fd_s) < tol


class TestTemperatureInversionAtDeviceLevel:
    def test_low_overdrive_current_higher_when_hot(self):
        """At barely-on gate voltage the Vt drop wins: hot is stronger."""
        fet_params = NMOS_16NM
        vg = fet_params.vt0 + 0.05
        cold = Transistor("d", "g", "s", fet_params).current(0.8, vg, 0.0)
        hot = Transistor("d", "g", "s", fet_params)
        i_cold = cold
        i_hot = hot.current(0.8, vg, 0.0)  # same call, different temp below

        i_cold = Transistor("d", "g", "s", fet_params).current(0.8, vg, 0.0, temp_c=-30.0)
        i_hot = Transistor("d", "g", "s", fet_params).current(0.8, vg, 0.0, temp_c=125.0)
        assert i_hot > i_cold

    def test_high_overdrive_current_lower_when_hot(self):
        """At strong overdrive mobility degradation wins: hot is weaker."""
        fet_params = NMOS_16NM
        vg = 1.1
        i_cold = Transistor("d", "g", "s", fet_params).current(1.1, vg, 0.0, temp_c=-30.0)
        i_hot = Transistor("d", "g", "s", fet_params).current(1.1, vg, 0.0, temp_c=125.0)
        assert i_hot < i_cold


class TestCapacitances:
    def test_gate_cap_scales_with_width(self):
        assert nmos_fet(width=3.0).gate_capacitance() == pytest.approx(
            3.0 * nmos_fet(width=1.0).gate_capacitance()
        )

    def test_junction_cap_positive(self):
        assert nmos_fet().junction_capacitance() > 0.0
