"""Golden-file regression tests for cheap benchmark figures.

The benchmark harness (``pytest benchmarks/``) regenerates every figure
and persists its table under ``benchmarks/results/``. Those tables are
committed, which makes them golden files: this suite re-runs the cheap
figures (fig01 closure loop, fig04 MIS/SIS, sec13 GBA-vs-PBA, sec23
corner explosion) inside tier-1 and diffs the key numbers against the
recorded tables within tolerance — so a change that silently drifts a
figure fails fast, not at the next full benchmark pass.

Volatile lines (wall-clock runtimes) are deliberately not compared.
"""

import pathlib
import re

import pytest

from repro.liberty import LibraryCondition, make_library

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "benchmarks" / "results"


def golden(name: str) -> str:
    path = RESULTS_DIR / f"{name}.txt"
    if not path.exists():
        pytest.skip(f"no golden file {path}; run the benchmarks first")
    return path.read_text()


@pytest.fixture(scope="module")
def lib():
    return make_library()


def test_sec23_corner_explosion_counts_match_golden():
    from repro.beol.corners import corner_explosion_count
    from repro.beol.stack import default_stack

    text = golden("sec23_corner_explosion")
    recorded = {
        m.group(1): int(m.group(2).replace(",", ""))
        for m in re.finditer(r"^(\w+)\s+([\d,]+)\s*$", text, re.M)
    }
    assert recorded, "golden file held no counts"
    counts = corner_explosion_count(n_modes=6, n_voltage_domains=4,
                                    stack=default_stack())
    # Counting arithmetic is exact: any drift is a real behavior change.
    for key, value in recorded.items():
        assert counts[key] == value, f"{key} drifted"


def test_sec13_gba_vs_pba_matches_golden(lib):
    from repro.netlist.generators import random_logic
    from repro.sta import STA, Constraints
    from repro.sta.pba import gba_vs_pba

    text = golden("sec13_gba_vs_pba")
    recorded_rows = {
        m.group(1): (float(m.group(2)), float(m.group(3)))
        for m in re.finditer(
            r"^(\S+/D)\s+(-?[\d.]+)\s+(-?[\d.]+)\s+(-?[\d.]+)\s+\d+\s*$",
            text, re.M,
        )
    }
    recorded_mean = float(
        re.search(r"mean pessimism recovered: (-?[\d.]+) ps", text).group(1)
    )
    assert recorded_rows, "golden file held no endpoint rows"

    design = random_logic(n_gates=400, n_levels=10, seed=17)
    sta = STA(design, lib, Constraints.single_clock(520.0))
    sta.report = sta.run()
    results = gba_vs_pba(sta, sta.report, n_endpoints=12, max_paths=64)
    by_endpoint = {str(r.endpoint): r for r in results}
    for endpoint, (gba, pba) in recorded_rows.items():
        row = by_endpoint.get(endpoint)
        assert row is not None, f"endpoint {endpoint} vanished"
        assert row.gba_slack == pytest.approx(gba, abs=0.05)
        assert row.pba_slack == pytest.approx(pba, abs=0.05)
    mean = sum(r.pessimism_recovered for r in results) / len(results)
    assert mean == pytest.approx(recorded_mean, abs=0.05)


def test_fig01_closure_trajectory_matches_golden(lib):
    from repro.core.closure import ClosureConfig, ClosureEngine
    from repro.netlist.generators import random_logic
    from repro.sta import Constraints

    text = golden("fig01_closure_loop")
    recorded = [
        (int(m.group(1)), float(m.group(2)), float(m.group(3)))
        for m in re.finditer(
            r"^\s*(\d+)\s+(-?[\d.]+)\s+(-?[\d.]+)\s+\d+\s+\d+\s+\d+\s+\d+(?:\s+\S.*)?$",
            text, re.M,
        )
    ]
    recorded_final = float(
        re.search(r"final WNS (-?[\d.]+) ps", text).group(1)
    )
    assert recorded, "golden file held no iteration rows"

    design = random_logic(n_gates=300, n_levels=10, seed=3)
    constraints = Constraints.single_clock(520.0)
    constraints.input_delays = {f"in{i}": 60.0 for i in range(32)}
    engine = ClosureEngine(design, lib, constraints)
    result = engine.run(ClosureConfig(max_iterations=8, budget_per_fix=24))

    assert result.converged
    wns = result.trajectory("wns_setup")
    tns = result.trajectory("tns_setup")
    assert len(wns) == len(recorded)
    for (_, rec_wns, rec_tns), got_wns, got_tns in zip(recorded, wns, tns):
        assert got_wns == pytest.approx(rec_wns, abs=0.5)
        assert got_tns == pytest.approx(rec_tns, abs=5.0)
    assert wns[-1] == pytest.approx(recorded_final, abs=0.5)


def test_fig04_mis_sis_matches_golden():
    from repro.mis.analysis import fig4_study

    text = golden("fig04_mis_sis")
    recorded = {
        (float(m.group(1)), m.group(2)):
            (float(m.group(3)), float(m.group(4)), float(m.group(5)))
        for m in re.finditer(
            r"^\s*([\d.]+)\s+(rise|fall)\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)",
            text, re.M,
        )
    }
    assert len(recorded) == 4, "golden file held no MIS/SIS rows"

    rows = fig4_study(
        voltages=[0.8, 0.64],
        offsets=[-30.0, -15.0, -5.0, 0.0, 5.0, 15.0, 30.0],
        dt=0.5,
    )
    for r in rows:
        key = (round(r.vdd, 2), r.input_direction)
        assert key in recorded, f"row {key} vanished"
        sis, mis, ratio = recorded[key]
        assert r.sis_delay == pytest.approx(sis, rel=0.02, abs=0.05)
        assert r.mis_delay == pytest.approx(mis, rel=0.02, abs=0.05)
        assert r.ratio == pytest.approx(ratio, abs=0.03)
