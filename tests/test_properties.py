"""Cross-cutting property-based tests (hypothesis) for DESIGN.md's
invariant list — the ones not already covered inside module suites."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.aging.bti import BtiModel
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints
from repro.sta.pba import gba_vs_pba
from repro.beol.corners import conventional_corners, tightened_corner
from repro.beol.stack import default_stack
from repro.core.margins import MarginStackup
from repro.cts.useful_skew import SkewStage, schedule_useful_skew
from repro.flops.model import default_flop_model
from repro.flops.recovery import Stage, recover_margin
from repro.variation.ssta import GaussianArrival, clark_max


_PROPERTY_LIB = None


def _property_lib():
    """Library shared across hypothesis examples (building it is the
    expensive part, and it is immutable)."""
    global _PROPERTY_LIB
    if _PROPERTY_LIB is None:
        _PROPERTY_LIB = make_library()
    return _PROPERTY_LIB


def _random_sta(seed: int, n_gates: int, period: float) -> STA:
    design = random_logic(n_gates=n_gates,
                          n_levels=max(3, n_gates // 15),
                          seed=seed)
    constraints = Constraints.single_clock(period)
    constraints.input_delays = {
        p: 60.0 for p in design.input_ports() if p != "clk"
    }
    sta = STA(design, _property_lib(), constraints)
    sta.report = sta.run()
    return sta


class TestStaInvariantProperties:
    """STA invariants on randomly generated small DAGs."""

    @given(seed=st.integers(0, 10_000), n_gates=st.integers(30, 90))
    @settings(max_examples=8, deadline=None)
    def test_pba_never_worse_than_gba(self, seed, n_gates):
        """PBA applies path-specific slews and CPPR credit on top of the
        GBA bound, so per-endpoint PBA slack >= GBA slack, always."""
        sta = _random_sta(seed, n_gates, period=450.0)
        assume(sta.report.endpoints("setup"))
        for row in gba_vs_pba(sta, sta.report, n_endpoints=4, max_paths=16):
            assert row.pba_slack >= row.gba_slack - 1e-9
            assert row.pessimism_recovered >= -1e-9

    @given(
        seed=st.integers(0, 10_000),
        n_gates=st.integers(30, 90),
        period=st.floats(350.0, 650.0),
        tighten=st.floats(10.0, 200.0),
    )
    @settings(max_examples=8, deadline=None)
    def test_worst_slack_monotone_in_clock_period(self, seed, n_gates,
                                                  period, tighten):
        """Tightening the clock period can only hurt setup: every
        endpoint's slack (and hence WNS/TNS) shifts down by exactly the
        period delta; hold checks are same-edge and unaffected."""
        sta = _random_sta(seed, n_gates, period=period)
        assume(sta.report.endpoints("setup"))
        tight = STA(sta.design, _property_lib(),
                    sta.constraints.with_period(period - tighten))
        tight_report = tight.run()

        assert tight_report.wns("setup") <= \
            sta.report.wns("setup") - tighten + 1e-6
        assert tight_report.tns("setup") <= sta.report.tns("setup") + 1e-9
        loose_slacks = {e.endpoint: e.slack
                        for e in sta.report.endpoints("setup")}
        for e in tight_report.endpoints("setup"):
            assert e.slack == pytest.approx(
                loose_slacks[e.endpoint] - tighten, abs=1e-6
            )
        assert tight_report.wns("hold") == \
            pytest.approx(sta.report.wns("hold"), abs=1e-6)


class TestUsefulSkewProperties:
    @given(
        slacks=st.lists(
            st.tuples(st.floats(-80.0, 80.0), st.floats(5.0, 200.0)),
            min_size=2, max_size=6,
        ),
        max_adjust=st.floats(5.0, 60.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_worse_and_hold_safe(self, slacks, max_adjust):
        """The LP never degrades the worst setup slack, keeps offsets in
        bounds, and never eats more hold slack than a stage has."""
        stages = [
            SkewStage(f"f{i}", f"f{(i + 1) % len(slacks)}", setup, hold)
            for i, (setup, hold) in enumerate(slacks)
        ]
        result = schedule_useful_skew(stages, max_adjust=max_adjust)
        assert result.predicted_wns >= result.baseline_wns - 1e-6
        for v in result.offsets.values():
            assert -1e-9 <= v <= max_adjust + 1e-9
        for stage in stages:
            taken = result.offsets[stage.capture] - \
                result.offsets[stage.launch]
            assert taken <= stage.hold_slack + 1e-6


class TestMarginProperties:
    @given(
        components=st.dictionaries(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            st.floats(0.0, 50.0),
            min_size=1, max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_rss_never_exceeds_linear(self, components):
        stackup = MarginStackup(components)
        assert stackup.rss_total() <= stackup.linear_total() + 1e-9

    @given(factor=st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_jitter_accounting_monotone(self, factor):
        base = MarginStackup()
        scaled = base.with_cycle_jitter_accounting(factor)
        assert scaled.linear_total() <= base.linear_total() + 1e-9


class TestCornerTighteningProperties:
    @given(factor=st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_tightened_scales_bracketed(self, factor):
        """Every tightened multiplier lies between typical (1.0) and the
        original corner's multiplier."""
        stack = default_stack()
        cw = conventional_corners(stack)["cw"]
        tbc = tightened_corner(cw, factor)
        for layer, original in cw.scales:
            tight = tbc.layer_scales(layer)
            for attr in ("r", "c_ground", "c_coupling"):
                o = getattr(original, attr)
                t = getattr(tight, attr)
                lo, hi = sorted((1.0, o))
                assert lo - 1e-9 <= t <= hi + 1e-9


class TestBtiProperties:
    @given(
        segments=st.lists(
            st.tuples(st.floats(0.1, 4.0), st.floats(0.6, 1.0)),
            min_size=1, max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_accumulation_bracketed_by_constant_voltage(self, segments):
        """Piecewise stress lies between all-time-at-min-V and
        all-time-at-max-V."""
        bti = BtiModel()
        total_time = sum(t for t, _ in segments)
        v_lo = min(v for _, v in segments)
        v_hi = max(v for _, v in segments)
        shift = bti.accumulate(segments)
        assert bti.delta_vt(total_time, v_lo) - 1e-12 <= shift
        assert shift <= bti.delta_vt(total_time, v_hi) + 1e-12


class TestClarkMaxProperties:
    arrivals = st.builds(
        GaussianArrival,
        mean=st.floats(-100.0, 100.0),
        sigma_local=st.floats(0.01, 20.0),
        sigma_global=st.floats(0.0, 10.0),
    )

    @given(a=arrivals, b=arrivals)
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, a, b):
        m1 = clark_max(a, b)
        m2 = clark_max(b, a)
        assert m1.mean == pytest.approx(m2.mean, rel=1e-6, abs=1e-6)
        assert m1.sigma_local == pytest.approx(m2.sigma_local, rel=1e-5,
                                               abs=1e-6)

    @given(a=arrivals, b=arrivals)
    @settings(max_examples=50, deadline=None)
    def test_sigma_bounded_by_inputs(self, a, b):
        m = clark_max(a, b)
        assert m.sigma_local <= max(a.sigma_local, b.sigma_local) + 1e-6

    @given(a=arrivals, shift=st.floats(0.0, 50.0))
    @settings(max_examples=40, deadline=None)
    def test_translation_invariance(self, a, shift):
        b = GaussianArrival(a.mean - 10.0, sigma_local=2.0)
        m0 = clark_max(a, b)
        m1 = clark_max(
            GaussianArrival(a.mean + shift, a.sigma_local, a.sigma_global),
            GaussianArrival(b.mean + shift, b.sigma_local, b.sigma_global),
        )
        assert m1.mean - m0.mean == pytest.approx(shift, abs=1e-6)


class TestRecoveryProperties:
    @given(
        delays=st.lists(st.floats(200.0, 380.0), min_size=2, max_size=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_recovery_never_worse(self, delays):
        model = default_flop_model()
        stages = [
            Stage(f"f{i}", f"f{(i + 1) % len(delays)}", d)
            for i, d in enumerate(delays)
        ]
        result = recover_margin(stages, model, period=430.0, iterations=6)
        assert result.recovered_wns >= result.baseline_wns - 1e-6
        for s in result.setup_points.values():
            assert s > model.s_wall
