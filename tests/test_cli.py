"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSta:
    def test_passing_design_exits_zero(self, capsys):
        rc = main(["sta", "--design", "tiny", "--period", "800"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "WNS" in out
        assert "slack histogram" in out

    def test_failing_design_exits_nonzero(self, capsys):
        rc = main(["sta", "--design", "tiny", "--period", "60"])
        assert rc == 1

    def test_paths_printed(self, capsys):
        main(["sta", "--design", "tiny", "--period", "800", "--paths", "2"])
        out = capsys.readouterr().out
        assert out.count("Path (setup)") == 2

    def test_corner_options(self, capsys):
        rc = main([
            "sta", "--design", "tiny", "--period", "800",
            "--process", "ss", "--vdd", "0.72", "--temp", "125",
        ])
        assert rc == 0
        assert "ss" in capsys.readouterr().out

    def test_si_flag(self, capsys):
        assert main(["sta", "--design", "tiny", "--period", "800",
                     "--si"]) == 0


class TestClosure:
    def test_closure_converges(self, capsys):
        rc = main([
            "closure", "--design", "rand", "--gates", "120",
            "--period", "600", "--iterations", "6",
        ])
        out = capsys.readouterr().out
        assert "WNS" in out
        assert rc == 0
        assert "converged" in out

    def test_closure_timing_modes_agree(self, capsys):
        outputs = {}
        for mode in ("incremental", "full"):
            rc = main([
                "closure", "--design", "rand", "--gates", "240",
                "--period", "440", "--iterations", "6",
                "--timing", mode,
            ])
            assert rc == 0
            outputs[mode] = capsys.readouterr().out
        # Same trajectory table either way; the incremental run also
        # surfaces its retime instrumentation.
        inc, full = outputs["incremental"], outputs["full"]
        assert "timing:" in inc
        assert "retime" in inc
        for line in inc.splitlines():
            if line.startswith("final WNS"):
                assert line in full


class TestLibrary:
    def test_library_to_stdout(self, capsys):
        rc = main(["library", "--process", "tt"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "library (" in out
        assert "INV_X1_SVT" in out

    def test_library_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.lib"
        rc = main(["library", "-o", str(target)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        from repro.liberty.io import parse_library

        lib = parse_library(target.read_text())
        assert len(lib) > 0

    def test_aged_library(self, capsys):
        rc = main(["library", "--aging-mv", "40"])
        assert rc == 0


class TestOtherCommands:
    def test_etm(self, capsys):
        rc = main(["etm", "--design", "tiny", "--period", "600"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ETM for block" in out

    def test_corners(self, capsys):
        rc = main(["corners", "--modes", "4", "--domains", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scenarios_per_layer" in out

    def test_history(self, capsys):
        rc = main(["history"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OLD" in out and "care-about" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["sta", "--design", "bogus"])


class TestJobsValidation:
    def test_jobs_zero_rejected_with_exit_1(self, capsys):
        rc = main(["signoff", "--design", "tiny", "--jobs", "0"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "--jobs must be a positive integer (got 0)" in captured.err
        assert captured.out == ""  # rejected before any work ran

    def test_jobs_negative_rejected_with_exit_1(self, capsys):
        rc = main(["signoff", "--design", "tiny", "--jobs", "-3"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "--jobs must be a positive integer (got -3)" in captured.err


class TestEngineSelection:
    def test_unknown_engine_rejected_with_exit_1(self, capsys):
        # Same contract as the --jobs guard: exit 1 with the valid
        # choices listed, not argparse's usage-error 2.
        rc = main(["signoff", "--design", "tiny", "--engine", "warp"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "unknown engine 'warp'" in captured.err
        assert "reference" in captured.err
        assert "vector" in captured.err
        assert captured.out == ""  # rejected before any work ran

    @staticmethod
    def _stable_lines(text):
        # Everything except the wall-time footer is deterministic.
        return [l for l in text.splitlines() if not l.startswith("jobs:")]

    def test_vector_engine_output_matches_reference(self, capsys):
        rc_ref = main(["signoff", "--design", "tiny", "--period", "800",
                       "--no-validate"])
        ref_out = capsys.readouterr().out
        rc_vec = main(["signoff", "--design", "tiny", "--period", "800",
                       "--no-validate", "--engine", "vector"])
        vec_out = capsys.readouterr().out
        assert rc_vec == rc_ref
        assert self._stable_lines(vec_out) == self._stable_lines(ref_out)

    def test_vector_signoff_trace_shows_kernel_spans(self, tmp_path,
                                                     capsys):
        import json

        trace = tmp_path / "signoff.trace.json"
        rc = main([
            "signoff", "--design", "tiny", "--period", "800",
            "--no-validate", "--engine", "vector", "--trace", str(trace),
        ])
        assert rc in (0, 1)
        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"signoff", "vector_signoff", "kernel_compile",
                "kernel_batch", "scenario"} <= names


class TestObservability:
    def test_closure_trace_and_metrics_files(self, tmp_path, capsys):
        import json

        trace = tmp_path / "closure.trace.json"
        metrics = tmp_path / "closure.metrics.json"
        rc = main([
            "closure", "--design", "rand", "--gates", "240",
            "--period", "440", "--iterations", "6",
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "wrote" in captured.err
        payload = json.loads(trace.read_text())
        assert payload["traceEvents"]
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"closure", "iteration", "stage", "retime"} <= names
        snapshot = json.loads(metrics.read_text())
        assert snapshot["closure.iterations"]["type"] == "counter"

    def test_signoff_trace_collects_worker_spans(self, tmp_path, capsys):
        import json

        trace = tmp_path / "signoff.trace.json"
        rc = main([
            "signoff", "--design", "tiny", "--period", "800",
            "--jobs", "2", "--no-validate", "--trace", str(trace),
        ])
        assert rc in (0, 1)
        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"signoff", "cache_triage", "scenario_fanout",
                "scenario", "sta_run"} <= names

    def test_trace_summarize(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        rc = main([
            "closure", "--design", "rand", "--gates", "240",
            "--period", "440", "--iterations", "6",
            "--trace", str(trace),
        ])
        assert rc == 0
        capsys.readouterr()
        rc = main(["trace", "summarize", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "phase" in out and "self (s)" in out
        assert "closure" in out and "retime" in out
        assert "span(s)" in out

    def test_trace_summarize_missing_file_exits_one(
            self, tmp_path, capsys):
        """A missing trace file is an operator mistake, not an internal
        failure: exit 1 with a one-line message, not the fatal path."""
        rc = main(["trace", "summarize", str(tmp_path / "absent.json")])
        captured = capsys.readouterr()
        assert rc == 1
        assert captured.err.startswith("error:")
        assert "cannot read trace file" in captured.err
        assert "absent.json" in captured.err
        assert "Traceback" not in captured.err

    def test_trace_summarize_empty_file_exits_one(self, tmp_path, capsys):
        empty = tmp_path / "empty.trace.json"
        empty.write_text("")
        rc = main(["trace", "summarize", str(empty)])
        captured = capsys.readouterr()
        assert rc == 1
        assert captured.err.startswith("error:")
        assert "empty" in captured.err

    def test_untraced_run_writes_nothing(self, tmp_path, capsys):
        rc = main([
            "closure", "--design", "rand", "--gates", "120",
            "--period", "600", "--iterations", "4",
        ])
        captured = capsys.readouterr()
        assert rc == 0
        assert "wrote" not in captured.err
        assert list(tmp_path.iterdir()) == []


class TestHierSignoff:
    def test_hier_signoff_exits_clean(self, capsys):
        rc = main([
            "signoff", "--hier", "--blocks", "2", "--period", "1100",
            "--jobs", "2", "--executor", "thread", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "block-internal WNS" in out
        assert "ETM extractions" in out
        assert "hier merged WNS" in out

    def test_hier_signoff_reports_violations(self, capsys):
        rc = main([
            "signoff", "--hier", "--blocks", "2", "--period", "210",
            "--jobs", "1", "--executor", "serial", "--seed", "3",
        ])
        assert rc == 1


class TestSstaSignoff:
    def test_ssta_bench_tunes_to_target(self, capsys):
        """The PST benchmark through the CLI: distributional report, MC
        cross-check, tuning reaches the default yield target (exit 0)."""
        rc = main([
            "signoff", "--ssta", "--ssta-bench", "--seed", "9",
            "--ssta-samples", "2000", "--ssta-mc", "500",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "yield" in out and "sigma" in out
        assert "mc yield (500 samples)" in out
        assert "pst tuning" in out and "target met" in out

    def test_ssta_unreachable_target_exits_one(self, capsys):
        rc = main([
            "signoff", "--ssta", "--ssta-bench", "--seed", "9",
            "--ssta-samples", "1000", "--yield-target", "1.0",
            "--tune-range", "1.0",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "target missed" in out


class TestCampaign:
    @staticmethod
    def tiny_spec_file(tmp_path):
        from repro.campaign import CampaignSpec, Factor

        spec = CampaignSpec(
            name="clitest",
            factors=[Factor("recipe", ("none", "lvt_crit"))],
            seed=3,
        )
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(), encoding="utf-8")
        return path

    def test_run_then_pareto_roundtrip(self, tmp_path, capsys):
        db = tmp_path / "c.db"
        spec_file = self.tiny_spec_file(tmp_path)
        rc = main([
            "campaign", "run", "--db", str(db),
            "--spec-file", str(spec_file),
            "--jobs", "1", "--executor", "serial",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "2 computed, 0 resumed" in out

        pareto_out = tmp_path / "front.txt"
        rc = main([
            "campaign", "pareto", "--db", str(db),
            "--factors", "recipe", "--out", str(pareto_out),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "pareto front: campaign clitest" in out
        assert pareto_out.read_text(encoding="utf-8").strip() \
            == out.strip()

        # Re-running resumes everything from the DB.
        rc = main([
            "campaign", "run", "--db", str(db),
            "--spec-file", str(spec_file),
            "--jobs", "1", "--executor", "serial",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 computed, 2 resumed" in out

    def test_missing_spec_file_is_structured_fatal(self, tmp_path,
                                                   capsys):
        rc = main([
            "campaign", "run", "--db", str(tmp_path / "c.db"),
            "--spec-file", str(tmp_path / "absent.json"),
        ])
        captured = capsys.readouterr()
        assert rc == 4
        assert captured.err.startswith("error: CampaignError")
        assert "absent.json" in captured.err
        assert "Traceback" not in captured.err

    def test_pareto_on_empty_db_exits_one(self, tmp_path, capsys):
        rc = main([
            "campaign", "pareto", "--db", str(tmp_path / "empty.db"),
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert captured.err.startswith("error:")

    def test_bad_axes_is_structured_fatal(self, tmp_path, capsys):
        db = tmp_path / "c.db"
        spec_file = self.tiny_spec_file(tmp_path)
        main([
            "campaign", "run", "--db", str(db),
            "--spec-file", str(spec_file),
            "--jobs", "1", "--executor", "serial",
        ])
        capsys.readouterr()
        rc = main([
            "campaign", "pareto", "--db", str(db),
            "--axes", "power_mw:upways",
        ])
        captured = capsys.readouterr()
        assert rc == 4
        assert captured.err.startswith("error: CampaignError")
        assert "Traceback" not in captured.err
