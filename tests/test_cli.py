"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestSta:
    def test_passing_design_exits_zero(self, capsys):
        rc = main(["sta", "--design", "tiny", "--period", "800"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "WNS" in out
        assert "slack histogram" in out

    def test_failing_design_exits_nonzero(self, capsys):
        rc = main(["sta", "--design", "tiny", "--period", "60"])
        assert rc == 1

    def test_paths_printed(self, capsys):
        main(["sta", "--design", "tiny", "--period", "800", "--paths", "2"])
        out = capsys.readouterr().out
        assert out.count("Path (setup)") == 2

    def test_corner_options(self, capsys):
        rc = main([
            "sta", "--design", "tiny", "--period", "800",
            "--process", "ss", "--vdd", "0.72", "--temp", "125",
        ])
        assert rc == 0
        assert "ss" in capsys.readouterr().out

    def test_si_flag(self, capsys):
        assert main(["sta", "--design", "tiny", "--period", "800",
                     "--si"]) == 0


class TestClosure:
    def test_closure_converges(self, capsys):
        rc = main([
            "closure", "--design", "rand", "--gates", "120",
            "--period", "600", "--iterations", "6",
        ])
        out = capsys.readouterr().out
        assert "WNS" in out
        assert rc == 0
        assert "converged" in out

    def test_closure_timing_modes_agree(self, capsys):
        outputs = {}
        for mode in ("incremental", "full"):
            rc = main([
                "closure", "--design", "rand", "--gates", "240",
                "--period", "440", "--iterations", "6",
                "--timing", mode,
            ])
            assert rc == 0
            outputs[mode] = capsys.readouterr().out
        # Same trajectory table either way; the incremental run also
        # surfaces its retime instrumentation.
        inc, full = outputs["incremental"], outputs["full"]
        assert "timing:" in inc
        assert "retime" in inc
        for line in inc.splitlines():
            if line.startswith("final WNS"):
                assert line in full


class TestLibrary:
    def test_library_to_stdout(self, capsys):
        rc = main(["library", "--process", "tt"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "library (" in out
        assert "INV_X1_SVT" in out

    def test_library_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.lib"
        rc = main(["library", "-o", str(target)])
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        from repro.liberty.io import parse_library

        lib = parse_library(target.read_text())
        assert len(lib) > 0

    def test_aged_library(self, capsys):
        rc = main(["library", "--aging-mv", "40"])
        assert rc == 0


class TestOtherCommands:
    def test_etm(self, capsys):
        rc = main(["etm", "--design", "tiny", "--period", "600"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "ETM for block" in out

    def test_corners(self, capsys):
        rc = main(["corners", "--modes", "4", "--domains", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "scenarios_per_layer" in out

    def test_history(self, capsys):
        rc = main(["history"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OLD" in out and "care-about" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_design_rejected(self):
        with pytest.raises(SystemExit):
            main(["sta", "--design", "bogus"])
