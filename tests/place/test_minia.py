"""Tests for placement rows and MinIA checking/fixing."""

import random

import pytest

from repro.errors import PlacementError
from repro.liberty import make_library
from repro.netlist.generators import random_logic, tiny_design
from repro.netlist.transforms import swap_vt
from repro.place.minia import (
    DEFAULT_MIN_IMPLANT_WIDTH,
    find_minia_violations,
    fix_minia_violations,
)
from repro.place.rows import PlacedCell, Placement, Row


@pytest.fixture(scope="module")
def lib():
    return make_library()


def mixed_vt_design(lib, seed=1, swap_fraction=0.3):
    d = random_logic(n_gates=150, n_levels=8, seed=seed)
    d.bind(lib)
    rng = random.Random(seed)
    for name in list(d.instances):
        inst = d.instances[name]
        if not lib.cell(inst.cell_name).is_sequential and \
                rng.random() < swap_fraction:
            swap_vt(d, lib, name, rng.choice(["lvt", "hvt"]))
    return d


class TestRows:
    def test_legalize_removes_overlaps(self):
        row = Row(index=0, cells=[
            PlacedCell("a", 0.0, 2.0, "svt"),
            PlacedCell("b", 1.0, 2.0, "svt"),  # overlaps a
        ])
        displacement = row.legalize()
        assert displacement == pytest.approx(1.0)
        assert row.cells[1].x == pytest.approx(2.0)

    def test_runs_split_by_flavor(self):
        row = Row(index=0, cells=[
            PlacedCell("a", 0.0, 1.0, "svt"),
            PlacedCell("b", 1.0, 1.0, "svt"),
            PlacedCell("c", 2.0, 1.0, "hvt"),
            PlacedCell("d", 3.0, 1.0, "svt"),
        ])
        runs = row.runs()
        assert [len(r) for r in runs] == [2, 1, 1]

    def test_runs_split_by_gap(self):
        row = Row(index=0, cells=[
            PlacedCell("a", 0.0, 1.0, "svt"),
            PlacedCell("b", 5.0, 1.0, "svt"),  # gap
        ])
        assert len(row.runs()) == 2

    def test_from_design_places_located_instances(self, lib):
        d = tiny_design()
        d.bind(lib)
        placement = Placement.from_design(d, lib)
        assert placement.total_cells() == 5

    def test_missing_cell_raises(self, lib):
        d = tiny_design()
        d.bind(lib)
        placement = Placement.from_design(d, lib)
        with pytest.raises(PlacementError):
            placement.cell("nope")

    def test_abut_all_removes_gaps(self, lib):
        d = tiny_design()
        d.bind(lib)
        placement = Placement.from_design(d, lib)
        placement.abut_all()
        for row in placement.rows.values():
            for a, b in zip(row.cells, row.cells[1:]):
                assert b.x == pytest.approx(a.right)


class TestChecker:
    def test_fig6a_scenario(self):
        """A narrow Vt2 cell sandwiched between Vt1 cells violates."""
        row = Row(index=0, cells=[
            PlacedCell("c1", 0.0, 2.0, "svt"),
            PlacedCell("c2", 2.0, 0.5, "hvt"),  # narrow island
            PlacedCell("c3", 2.5, 2.0, "svt"),
        ])
        placement = Placement({0: row})
        violations = find_minia_violations(placement, min_width=1.0)
        assert len(violations) == 1
        assert violations[0].cells == ("c2",)
        assert violations[0].vt_flavor == "hvt"

    def test_wide_island_passes(self):
        row = Row(index=0, cells=[
            PlacedCell("c1", 0.0, 2.0, "svt"),
            PlacedCell("c2", 2.0, 1.5, "hvt"),
            PlacedCell("c3", 3.5, 2.0, "svt"),
        ])
        placement = Placement({0: row})
        assert find_minia_violations(placement, min_width=1.0) == []

    def test_boundary_runs_exempt(self):
        row = Row(index=0, cells=[
            PlacedCell("c1", 0.0, 0.3, "hvt"),  # first run: exempt
            PlacedCell("c2", 0.3, 2.0, "svt"),
            PlacedCell("c3", 2.3, 0.3, "lvt"),  # last run: exempt
        ])
        placement = Placement({0: row})
        assert find_minia_violations(placement, min_width=1.0) == []

    def test_abutting_same_flavor_cells_merge(self):
        row = Row(index=0, cells=[
            PlacedCell("c1", 0.0, 2.0, "svt"),
            PlacedCell("c2", 2.0, 0.6, "hvt"),
            PlacedCell("c3", 2.6, 0.6, "hvt"),  # together 1.2 >= 1.0
            PlacedCell("c4", 3.2, 2.0, "svt"),
        ])
        placement = Placement({0: row})
        assert find_minia_violations(placement, min_width=1.0) == []


class TestFixer:
    def test_fixes_most_violations(self, lib):
        d = mixed_vt_design(lib, seed=2)
        placement = Placement.from_design(d, lib)
        placement.abut_all()
        before = find_minia_violations(placement)
        assert before  # the scenario must actually exercise the fixer
        report = fix_minia_violations(d, lib, placement)
        assert report.violations_before == len(before)
        assert report.fix_rate >= 0.9  # paper: up to 100%

    def test_fix_updates_netlist_consistently(self, lib):
        d = mixed_vt_design(lib, seed=3)
        placement = Placement.from_design(d, lib)
        placement.abut_all()
        fix_minia_violations(d, lib, placement)
        for row in placement.rows.values():
            for cell in row.cells:
                inst = d.instance(cell.name)
                assert lib.cell(inst.cell_name).vt_flavor == cell.vt_flavor

    def test_timing_guard_blocks_swaps(self, lib):
        """With every cell declared critical, slower swaps are refused."""
        d = mixed_vt_design(lib, seed=4)
        placement = Placement.from_design(d, lib)
        placement.abut_all()
        report = fix_minia_violations(
            d, lib, placement, slack_of=lambda name: -1.0, slack_guard=0.0
        )
        # Fixing may still proceed through faster swaps or regrouping,
        # but cannot be *better* than the unguarded run.
        d2 = mixed_vt_design(lib, seed=4)
        p2 = Placement.from_design(d2, lib)
        p2.abut_all()
        free = fix_minia_violations(d2, lib, p2)
        assert report.fix_rate <= free.fix_rate + 1e-9

    def test_report_counts(self, lib):
        d = mixed_vt_design(lib, seed=5)
        placement = Placement.from_design(d, lib)
        placement.abut_all()
        report = fix_minia_violations(d, lib, placement)
        assert report.swaps + report.moves > 0
        assert report.displacement >= 0.0

    def test_clean_design_untouched(self, lib):
        d = random_logic(n_gates=60, n_levels=4, seed=6)  # all SVT
        d.bind(lib)
        placement = Placement.from_design(d, lib)
        placement.abut_all()
        report = fix_minia_violations(d, lib, placement)
        assert report.violations_before == 0
        assert report.fix_rate == 1.0
        assert report.swaps == 0
