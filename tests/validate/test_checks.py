"""Tests for the pre-run validation lint."""

import math

import pytest

from repro.errors import ValidationError
from repro.liberty import make_library
from repro.netlist.design import Design, Instance
from repro.netlist.generators import random_logic
from repro.sta import Constraints
from repro.validate import (
    Severity,
    ValidationReport,
    ensure_valid,
    validate_constraints,
    validate_design,
    validate_library,
    validate_setup,
)


@pytest.fixture(scope="module")
def lib():
    return make_library()


def make_design(seed=11):
    return random_logic(n_inputs=8, n_outputs=8, n_gates=40,
                        n_levels=4, seed=seed)


def make_constraints():
    c = Constraints.single_clock(520.0)
    c.input_delays = {f"in{i}": 60.0 for i in range(8)}
    return c


def codes(issues):
    return {i.code for i in issues}


class TestValidateDesign:
    def test_clean_design(self, lib):
        issues = validate_design(make_design(), lib)
        # random_logic legitimately leaves some unloaded gate outputs
        # (dangling-net warnings); what matters is zero errors.
        assert all(i.severity is Severity.WARNING for i in issues)
        assert codes(issues) <= {"dangling-net"}

    def test_empty_design(self, lib):
        issues = validate_design(Design("void"), lib)
        assert codes(issues) == {"empty-design"}

    def test_unknown_cell(self, lib):
        design = make_design()
        inst = next(iter(design.instances.values()))
        inst.cell_name = "QUANTUM_GATE"
        assert "unknown-cell" in codes(validate_design(design, lib))

    def test_unknown_pin(self, lib):
        design = make_design()
        inst = next(iter(design.instances.values()))
        net = next(iter(inst.connections.values()))
        inst.connections["ZZ"] = net
        assert "unknown-pin" in codes(validate_design(design, lib))

    def test_unconnected_pin(self, lib):
        design = make_design()
        inst = next(
            i for i in design.instances.values()
            if len(i.connections) > 1
        )
        pin = next(iter(inst.connections))
        del inst.connections[pin]
        assert "unconnected-pin" in codes(validate_design(design, lib))

    def test_multi_driver(self, lib):
        design = make_design()
        outputs = [
            (inst, pin) for inst in design.instances.values()
            for pin, net in inst.connections.items()
            if lib.cells[inst.cell_name].pins[pin].direction.value == "output"
        ]
        (inst_a, pin_a), (inst_b, pin_b) = outputs[0], outputs[1]
        inst_b.connections[pin_b] = inst_a.connections[pin_a]
        found = codes(validate_design(design, lib))
        assert "multi-driver" in found

    def test_undriven_net(self, lib):
        design = make_design()
        inst = next(iter(design.instances.values()))
        pin = next(
            p for p in inst.connections
            if lib.cells[inst.cell_name].pins[p].direction.value == "input"
        )
        inst.connections[pin] = "net_from_nowhere"
        assert "undriven-net" in codes(validate_design(design, lib))

    def test_structural_checks_work_without_library(self):
        issues = validate_design(make_design())
        assert issues == []  # library-aware checks are skipped


class TestValidateLibrary:
    def test_clean_library(self, lib):
        report = ValidationReport(issues=validate_library(lib))
        assert report.ok

    def test_empty_library(self):
        from repro.liberty.library import Library

        issues = validate_library(
            Library("hollow", vdd=0.8, temp_c=25.0, cells={})
        )
        assert codes(issues) == {"empty-library"}

    def test_bad_capacitance(self):
        lib = make_library()
        cell = next(iter(lib.cells.values()))
        next(iter(cell.pins.values())).capacitance = math.nan
        assert "bad-capacitance" in codes(validate_library(lib))

    def test_nan_in_delay_table(self):
        lib = make_library()
        cell = next(c for c in lib.cells.values() if c.arcs)
        arc = next(a for a in cell.arcs if a.timing)
        timing = arc.timing[sorted(arc.timing)[0]]
        timing.delay.values[0, 0] = math.nan
        assert "non-finite-table" in codes(validate_library(lib))

    def test_negative_delay(self):
        lib = make_library()
        cell = next(c for c in lib.cells.values() if c.arcs)
        arc = next(a for a in cell.arcs if a.timing)
        timing = arc.timing[sorted(arc.timing)[0]]
        timing.delay.values[0, 0] = -10.0
        assert "negative-delay" in codes(validate_library(lib))


class TestValidateConstraints:
    def test_clean(self, lib):
        issues = validate_constraints(make_constraints(), make_design())
        assert issues == []

    def test_no_clock(self):
        c = Constraints()
        assert "no-clock" in codes(validate_constraints(c))

    def test_uncertainty_exceeds_period(self):
        import dataclasses

        c = make_constraints()
        name, clock = next(iter(c.clocks.items()))
        c.clocks[name] = dataclasses.replace(
            clock, uncertainty_setup=clock.period + 1.0
        )
        assert "uncertainty-exceeds-period" in codes(validate_constraints(c))

    def test_input_delay_unknown_port(self):
        c = make_constraints()
        c.input_delays["no_such_port"] = 10.0
        issues = validate_constraints(c, make_design())
        assert "input-delay-unknown-port" in codes(issues)

    def test_negative_output_delay(self):
        c = make_constraints()
        c.output_delays["out0"] = -5.0
        issues = validate_constraints(c, make_design())
        assert "output-delay-negative" in codes(issues)

    def test_delay_exceeding_period_is_warning(self):
        c = make_constraints()
        c.input_delays["in0"] = 1000.0
        issues = validate_constraints(c, make_design())
        (issue,) = [i for i in issues
                    if i.code == "input-delay-exceeds-period"]
        assert issue.severity is Severity.WARNING

    def test_bad_max_transition(self):
        c = make_constraints()
        c.max_transition = -1.0
        assert "bad-max-transition" in codes(validate_constraints(c))


class TestEntryPoints:
    def test_validate_setup_clean(self, lib):
        report = validate_setup(make_design(), lib, make_constraints())
        assert report.ok
        assert not report.errors

    def test_empty_report_renders_clean(self):
        assert ValidationReport().render() == "validation clean: no issues"

    def test_report_sorts_errors_first(self, lib):
        c = make_constraints()
        c.input_delays["in0"] = 1000.0      # warning
        c.output_delays["out0"] = -5.0      # error
        report = validate_setup(make_design(), lib, c)
        assert not report.ok
        assert report.issues[0].severity is Severity.ERROR
        assert report.issues[-1].severity is Severity.WARNING
        assert f"1 error(s), {len(report.warnings)} warning(s)" \
            in report.render()

    def test_ensure_valid_passes_clean(self, lib):
        report = ensure_valid(make_design(), lib, make_constraints())
        assert report.ok

    def test_ensure_valid_raises_with_issues(self, lib):
        design = make_design()
        inst = next(iter(design.instances.values()))
        inst.cell_name = "QUANTUM_GATE"
        with pytest.raises(ValidationError) as info:
            ensure_valid(design, lib, make_constraints())
        exc = info.value
        assert exc.context["design"] == design.name
        assert "pre-run validation failed" in str(exc)
        assert any(i.code == "unknown-cell" for i in exc.issues)

    def test_warnings_do_not_raise(self, lib):
        c = make_constraints()
        c.input_delays["in0"] = 1000.0  # warning only
        report = ensure_valid(make_design(), lib, c)
        assert report.warnings and report.ok
