"""Tests for the signoff-criteria engine."""

import pytest

from repro.errors import SignoffError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic
from repro.sta import Constraints
from repro.sta.mcmm import Scenario, ScenarioSet
from repro.core.margins import MarginStackup
from repro.core.signoff import SignoffPolicy, SignoffVerdict, evaluate_signoff


@pytest.fixture(scope="module")
def libs():
    return {
        "tt": make_library(LibraryCondition()),
        "ss": make_library(
            LibraryCondition(process="ss", vdd=0.72, temp_c=125.0)
        ),
    }


def scenario_set(libs, period):
    c = Constraints.single_clock(period)
    c.input_delays = {f"in{i}": 60.0 for i in range(16)}
    return ScenarioSet([
        Scenario("tt_typ", libs["tt"], c, beol_corner_name="typ"),
        Scenario("ss_cw", libs["ss"], c, beol_corner_name="cw",
                 temp_c=125.0),
    ])


@pytest.fixture(scope="module")
def design():
    return random_logic(n_inputs=16, n_outputs=16, n_gates=150,
                        n_levels=6, seed=9)


class TestPolicy:
    def test_unknown_style_rejected(self, libs):
        with pytest.raises(SignoffError):
            SignoffPolicy(scenarios=scenario_set(libs, 600.0),
                          setup_style="hope")

    def test_margin_depends_on_style(self, libs):
        sset = scenario_set(libs, 600.0)
        worst = SignoffPolicy(scenarios=sset, setup_style="worst_corner")
        typical = SignoffPolicy(scenarios=sset, setup_style="typical_avs")
        assert typical.setup_margin() < worst.setup_margin()


class TestWorstCornerSignoff:
    def test_relaxed_period_passes(self, libs, design):
        policy = SignoffPolicy(scenarios=scenario_set(libs, 900.0))
        verdict = evaluate_signoff(design, policy)
        assert verdict.passed
        assert verdict.worst_scenario == "ss_cw"

    def test_tight_period_fails(self, libs, design):
        policy = SignoffPolicy(scenarios=scenario_set(libs, 420.0))
        verdict = evaluate_signoff(design, policy)
        assert not verdict.passed

    def test_margin_applied_to_wns(self, libs, design):
        sset = scenario_set(libs, 900.0)
        policy = SignoffPolicy(scenarios=sset)
        verdict = evaluate_signoff(design, policy)
        raw = sset.run(design).merged_wns("setup")
        assert verdict.setup_wns == pytest.approx(
            raw - policy.setup_margin()
        )

    def test_render(self, libs, design):
        policy = SignoffPolicy(scenarios=scenario_set(libs, 900.0))
        text = evaluate_signoff(design, policy).render()
        assert "signoff" in text and "WNS" in text


class TestTypicalAvsSignoff:
    def test_avs_style_recovers_margin(self, libs, design):
        """The 'new goal post': a period that fails worst-corner signoff
        (because of the full flat margin) passes typical+AVS signoff."""
        period = 560.0
        worst = evaluate_signoff(
            design,
            SignoffPolicy(scenarios=scenario_set(libs, period),
                          setup_style="worst_corner"),
        )
        typical = evaluate_signoff(
            design,
            SignoffPolicy(scenarios=scenario_set(libs, period),
                          setup_style="typical_avs", avs_v_max=1.05),
        )
        assert typical.setup_wns > worst.setup_wns
        assert typical.avs_voltage is not None

    def test_avs_verdict_reports_voltage_note(self, libs, design):
        verdict = evaluate_signoff(
            design,
            SignoffPolicy(scenarios=scenario_set(libs, 700.0),
                          setup_style="typical_avs", avs_v_max=1.05),
        )
        assert any("closes at" in n or "cannot close" in n
                   for n in verdict.notes)

    def test_impossible_avs_fails(self, libs, design):
        verdict = evaluate_signoff(
            design,
            SignoffPolicy(scenarios=scenario_set(libs, 300.0),
                          setup_style="typical_avs", avs_v_max=0.85),
        )
        assert not verdict.passed
