"""Tests for resilient-design evaluation ([22])."""

import numpy as np
import pytest

from repro.core.resilience import (
    ResilienceConfig,
    best_operating_point,
    cycle_error_probability,
    resilience_curve,
    resilience_gain,
    worst_case_period,
)
from repro.errors import SignoffError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints
from repro.variation.ssta import GaussianArrival, SstaResult, run_ssta


@pytest.fixture(scope="module")
def ssta():
    lib = make_library()
    d = random_logic(n_gates=150, n_levels=8, seed=11)
    sta = STA(d, lib, Constraints.single_clock(520.0))
    sta.report = sta.run()
    return run_ssta(sta, global_sigma_frac=0.3)


BASE = 520.0


class TestErrorProbability:
    def test_empty_rejected(self):
        with pytest.raises(SignoffError):
            cycle_error_probability(SstaResult(), 0.0)

    def test_monotone_in_period(self, ssta):
        """A faster clock (negative shift) makes errors more likely."""
        slow = cycle_error_probability(ssta, +40.0)
        nominal = cycle_error_probability(ssta, 0.0)
        fast = cycle_error_probability(ssta, -40.0)
        assert slow <= nominal <= fast

    def test_bounds(self, ssta):
        for shift in (-100.0, 0.0, 100.0):
            p = cycle_error_probability(ssta, shift)
            assert 0.0 <= p <= 1.0

    def test_activity_scales_probability(self, ssta):
        quiet = cycle_error_probability(
            ssta, -20.0, ResilienceConfig(endpoint_activity=0.01)
        )
        busy = cycle_error_probability(
            ssta, -20.0, ResilienceConfig(endpoint_activity=0.5)
        )
        assert busy >= quiet


class TestCurve:
    def test_razor_shape(self, ssta):
        """Throughput rises past worst case, peaks, then collapses as
        replay dominates — the classic resilience curve."""
        t_wc = worst_case_period(ssta, BASE, flat_margin=30.0)
        periods = np.linspace(0.7 * t_wc, 1.05 * t_wc, 30)
        curve = resilience_curve(ssta, BASE, periods)
        best = best_operating_point(curve)
        # The optimum is strictly inside the sweep, faster than worst case.
        assert periods[0] < best.period < t_wc
        # Pushing far past the optimum loses throughput.
        assert curve[0].throughput < best.throughput

    def test_error_free_points_flagged(self, ssta):
        t_wc = worst_case_period(ssta, BASE, flat_margin=30.0)
        curve = resilience_curve(ssta, BASE, [t_wc * 1.02])
        assert curve[0].is_error_free

    def test_energy_grows_with_errors(self, ssta):
        curve = resilience_curve(ssta, BASE, [440.0, 560.0])
        assert curve[0].energy_per_op > curve[1].energy_per_op

    def test_empty_curve_rejected(self):
        with pytest.raises(SignoffError):
            best_operating_point([])


class TestGain:
    def test_resilience_beats_worst_case(self, ssta):
        gain = resilience_gain(ssta, BASE, flat_margin=30.0)
        assert gain["speedup"] > 1.02
        assert gain["resilient_period"] < gain["worst_case_period"]
        # The optimum tolerates only rare errors.
        assert gain["error_probability_at_best"] < 0.05

    def test_more_margin_more_gain(self, ssta):
        little = resilience_gain(ssta, BASE, flat_margin=10.0)
        lots = resilience_gain(ssta, BASE, flat_margin=50.0)
        assert lots["speedup"] > little["speedup"]

    def test_costlier_replay_reduces_gain(self, ssta):
        cheap = resilience_gain(
            ssta, BASE, config=ResilienceConfig(replay_cycles=2.0)
        )
        costly = resilience_gain(
            ssta, BASE, config=ResilienceConfig(replay_cycles=50.0)
        )
        assert costly["speedup"] <= cheap["speedup"] + 1e-9
