"""Tests for supervised closure: STA retry, abort-with-trajectory, and
journal checkpoint/resume."""

import pytest

from repro.core.closure import ClosureConfig, ClosureEngine
from repro.errors import ClosureError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.runtime.journal import RunJournal
from repro.runtime.supervisor import RetryPolicy
from repro.sta import Constraints
from repro.testing.faults import Fault, FaultInjector, FaultPlan


@pytest.fixture(scope="module")
def lib():
    return make_library()


def constrained_design(period=480.0, seed=3, n_gates=150):
    d = random_logic(n_gates=n_gates, n_levels=8, seed=seed)
    c = Constraints.single_clock(period)
    c.input_delays = {f"in{i}": 60.0 for i in range(32)}
    return d, c


def fast_policy(retries=2):
    return RetryPolicy(retries=retries, backoff_s=0.0)


CONFIG = dict(max_iterations=4, budget_per_fix=16)


class TestStaRetry:
    def test_transient_sta_crash_is_retried(self, lib):
        d, c = constrained_design()
        injector = FaultInjector(FaultPlan.of(Fault("crash", task="iter1")))
        engine = ClosureEngine(d, lib, c, policy=fast_policy(),
                               fault_injector=injector)
        report = engine.run(ClosureConfig(**CONFIG))
        assert report.aborted is None
        assert report.iterations
        assert engine.sta_attempts == engine.sta_runs + 1

    def test_initial_sta_failure_raises(self, lib):
        d, c = constrained_design()
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="iter1", attempts=tuple(range(1, 33))),
        ))
        engine = ClosureEngine(d, lib, c, policy=fast_policy(retries=1),
                               fault_injector=injector)
        with pytest.raises(ClosureError) as info:
            engine.run(ClosureConfig(**CONFIG))
        assert info.value.context["attempts"] == 2
        assert info.value.context["stage"] == "iter1"

    def test_midloop_failure_keeps_trajectory(self, lib):
        d, c = constrained_design()
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="iter2", attempts=tuple(range(1, 33))),
        ))
        engine = ClosureEngine(d, lib, c, policy=fast_policy(retries=1),
                               fault_injector=injector)
        report = engine.run(ClosureConfig(**CONFIG))
        assert report.aborted is not None
        assert "ClosureError" in report.aborted
        assert not report.converged
        assert len(report.iterations) == 1  # iteration 1 survived
        assert "ABORTED" in report.render()


class TestCheckpointResume:
    def test_resume_replays_completed_iterations(self, lib, tmp_path):
        d, c = constrained_design()
        path = tmp_path / "closure.jsonl"
        config = ClosureConfig(**CONFIG)

        # Full run with journaling: checkpoints land per iteration.
        full = ClosureEngine(d, lib, c, journal=RunJournal(path),
                             policy=fast_policy())
        full_report = full.run(config)
        assert RunJournal(path).count("closure") >= 1

        # A fresh engine over the same inputs resumes instead of redoing.
        d2, c2 = constrained_design()
        resumed = ClosureEngine(d2, lib, c2, journal=RunJournal(path),
                                policy=fast_policy())
        resumed_report = resumed.run(config, resume=True)
        assert resumed_report.resumed_iterations >= 1
        assert resumed.sta_runs < full.sta_runs
        assert "resumed from checkpoint" in resumed_report.render()
        # the replayed trajectory prefix is identical
        for a, b in zip(full_report.iterations, resumed_report.iterations):
            assert a.iteration == b.iteration
            assert a.wns_setup == b.wns_setup
            assert a.edits == b.edits

    def test_resume_is_content_addressed(self, lib, tmp_path):
        """A checkpoint from different inputs must not be resumed."""
        d, c = constrained_design(seed=3)
        path = tmp_path / "closure.jsonl"
        config = ClosureConfig(**CONFIG)
        ClosureEngine(d, lib, c, journal=RunJournal(path),
                      policy=fast_policy()).run(config)

        d_other, c_other = constrained_design(seed=4)
        engine = ClosureEngine(d_other, lib, c_other,
                               journal=RunJournal(path),
                               policy=fast_policy())
        report = engine.run(config, resume=True)
        assert report.resumed_iterations == 0

    def test_resume_without_journal_is_fresh(self, lib):
        d, c = constrained_design()
        engine = ClosureEngine(d, lib, c, policy=fast_policy())
        report = engine.run(ClosureConfig(**CONFIG), resume=True)
        assert report.resumed_iterations == 0

    def test_aborted_run_resumes_past_the_fault(self, lib, tmp_path):
        """The acceptance shape: a run that aborts mid-loop leaves its
        checkpoints; a healed re-run resumes and only recomputes the
        remaining iterations."""
        # tighter period + smaller budget: this design needs 3 healthy
        # iterations to close, so a persistent iter3 fault aborts mid-loop
        d, c = constrained_design(period=440.0)
        path = tmp_path / "closure.jsonl"
        config = ClosureConfig(max_iterations=4, budget_per_fix=8)
        injector = FaultInjector(FaultPlan.of(
            Fault("crash", task="iter3", attempts=tuple(range(1, 33))),
        ))
        crashed = ClosureEngine(d, lib, c, journal=RunJournal(path),
                                policy=fast_policy(retries=1),
                                fault_injector=injector)
        crashed_report = crashed.run(config)
        assert crashed_report.aborted is not None
        journaled = RunJournal(path).count("closure")
        assert journaled >= 1

        d2, c2 = constrained_design(period=440.0)
        healed = ClosureEngine(d2, lib, c2, journal=RunJournal(path),
                               policy=fast_policy())
        report = healed.run(config, resume=True)
        assert report.aborted is None
        assert report.resumed_iterations == journaled
        # recomputation bounded by the un-journaled tail
        assert healed.sta_runs <= config.max_iterations + 1 - journaled
