"""Tests for TBC analysis, margin stackups and the history tables."""

import math

import pytest

from repro.errors import ReproError, SignoffError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.sta import Constraints
from repro.core.history import (
    CARE_ABOUTS,
    OLD_VS_NEW,
    care_abouts_at,
    new_at,
    node_of,
    render_old_vs_new,
    render_timeline,
)
from repro.core.margins import MarginStackup, recovery_ladder
from repro.core.tbc import (
    PathCornerStats,
    alpha_analysis,
    classify_tbc_safe,
    tbc_signoff,
)


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def stats(lib):
    d = random_logic(n_gates=200, n_levels=8, seed=3)
    return alpha_analysis(d, lib, Constraints.single_clock(600.0),
                          n_endpoints=20)


class TestAlphaAnalysis:
    def test_deltas_positive_at_worst_corners(self, stats):
        for s in stats:
            assert s.delta_cw > 0.0
            assert s.delta_rcw > 0.0

    def test_alpha_small_means_pessimism(self, stats):
        """Homogeneous corners are pessimistic vs the statistical 3-sigma
        on these gate-dominated paths: alpha << 1 (the Fig 8 story)."""
        alphas = [s.alpha(s.dominant_corner) for s in stats]
        assert sum(alphas) / len(alphas) < 0.5

    def test_alpha_infinite_when_no_excursion(self):
        s = PathCornerStats(endpoint=None, arrival_typ=100.0, delta_cw=0.0,
                            delta_rcw=5.0, sigma3=1.0)
        assert s.alpha("cw") == math.inf

    def test_gate_dominated_paths_cw_dominant(self, stats):
        """Short-wire random logic is gate-dominated -> Cw dominates."""
        dominant = [s.dominant_corner for s in stats]
        assert dominant.count("cw") > dominant.count("rcw")

    def test_classification_partition(self, stats):
        safe, unsafe = classify_tbc_safe(stats, 0.05, 0.05)
        assert len(safe) + len(unsafe) == len(stats)

    def test_looser_thresholds_accept_more(self, stats):
        tight, _ = classify_tbc_safe(stats, 0.01, 0.01)
        loose, _ = classify_tbc_safe(stats, 0.10, 0.10)
        assert len(loose) >= len(tight)


class TestTbcSignoff:
    def test_tbc_reduces_violations(self, lib):
        """Pick a period where the Cw corner fails but typical passes; TBC
        signoff must remove some violations for safe paths."""
        d = random_logic(n_gates=200, n_levels=8, seed=3)
        result = tbc_signoff(
            d, lib, Constraints.single_clock(505.0),
            tighten_factor=0.4, a_cw=0.05, a_rcw=0.05,
        )
        assert result.violations_tbc <= result.violations_cbc
        assert result.total_paths > 0


class TestMargins:
    def test_rss_below_linear(self):
        m = MarginStackup()
        assert m.rss_total() < m.linear_total()
        assert m.pessimism() > 0.0

    def test_avs_drops_aging(self):
        m = MarginStackup()
        assert m.with_avs().components["aging_dc"] == 0.0
        assert m.with_avs().linear_total() < m.linear_total()

    def test_cycle_jitter_scaling(self):
        m = MarginStackup()
        half = m.with_cycle_jitter_accounting(0.5)
        assert half.components["pll_jitter"] == pytest.approx(
            0.5 * m.components["pll_jitter"]
        )

    def test_bad_jitter_factor_rejected(self):
        with pytest.raises(SignoffError):
            MarginStackup().with_cycle_jitter_accounting(2.0)

    def test_dynamic_ir_caps_component(self):
        m = MarginStackup().with_dynamic_ir_analysis(residual=3.0)
        assert m.components["ir_drop"] == 3.0

    def test_negative_component_rejected(self):
        with pytest.raises(SignoffError):
            MarginStackup({"jitter": -1.0})

    def test_recovery_ladder_monotone(self):
        steps = recovery_ladder(MarginStackup())
        values = [v for _, v in steps]
        assert values == sorted(values, reverse=True)
        assert values[-1] < 0.5 * values[0]

    def test_table_renders(self):
        text = MarginStackup().table()
        assert "linear total" in text and "RSS total" in text


class TestHistory:
    def test_old_vs_new_rows(self):
        assert len(OLD_VS_NEW) >= 8
        assert any("LVF" in new for _, new in OLD_VS_NEW)

    def test_care_abouts_accumulate(self):
        older = care_abouts_at(45)
        newer = care_abouts_at(16)
        assert set(older) < set(newer)

    def test_new_at_20nm_includes_multi_patterning(self):
        assert "multi_patterning" in new_at(20)
        assert "min_implant" in new_at(20)

    def test_lvf_is_a_10nm_care_about(self):
        assert node_of("lvf") == 10
        assert "lvf" not in care_abouts_at(16)
        assert "lvf" in care_abouts_at(10)

    def test_unknown_node_rejected(self):
        with pytest.raises(ReproError):
            care_abouts_at(3)
        with pytest.raises(ReproError):
            new_at(14)

    def test_unknown_care_about_rejected(self):
        with pytest.raises(ReproError):
            node_of("quantum_tunneling")

    def test_renders(self):
        assert "OLD" in render_old_vs_new()
        assert "care-about" in render_timeline()
