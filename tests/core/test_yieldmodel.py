"""Tests for parametric timing yield and the goalpost comparison."""

import pytest

from repro.core.yieldmodel import (
    design_yield,
    endpoint_pass_probability,
    goalpost_sweep,
    minimum_passing_period,
)
from repro.errors import SignoffError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints
from repro.variation.ssta import GaussianArrival, SstaResult, run_ssta


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def ssta(lib):
    d = random_logic(n_gates=150, n_levels=8, seed=11)
    sta = STA(d, lib, Constraints.single_clock(540.0))
    sta.report = sta.run()
    return run_ssta(sta, global_sigma_frac=0.3)


def synthetic_result(slacks):
    result = SstaResult()
    from repro.netlist.design import PinRef

    for i, (mean, s_local, s_global) in enumerate(slacks):
        result.endpoint_slacks[PinRef(f"f{i}", "D")] = GaussianArrival(
            mean, sigma_local=s_local, sigma_global=s_global
        )
    return result


class TestEndpointProbability:
    def test_huge_positive_slack_is_certain(self):
        r = synthetic_result([(100.0, 2.0, 1.0)])
        ep = next(iter(r.endpoint_slacks))
        assert endpoint_pass_probability(r, ep) == pytest.approx(1.0)

    def test_huge_negative_slack_is_doomed(self):
        r = synthetic_result([(-100.0, 2.0, 1.0)])
        ep = next(iter(r.endpoint_slacks))
        assert endpoint_pass_probability(r, ep) == pytest.approx(0.0)

    def test_zero_mean_is_coin_flip(self):
        r = synthetic_result([(0.0, 2.0, 0.0)])
        ep = next(iter(r.endpoint_slacks))
        assert endpoint_pass_probability(r, ep) == pytest.approx(0.5,
                                                                 abs=0.01)

    def test_sigma_scale_moves_marginal_endpoint(self):
        r = synthetic_result([(3.0, 2.0, 1.0)])
        ep = next(iter(r.endpoint_slacks))
        assert endpoint_pass_probability(r, ep, sigma_scale=0.5) > \
            endpoint_pass_probability(r, ep, sigma_scale=2.0)


class TestDesignYield:
    def test_empty_result_rejected(self):
        with pytest.raises(SignoffError):
            design_yield(SstaResult())

    def test_yield_below_worst_endpoint(self):
        r = synthetic_result([(3.0, 2.0, 0.0), (50.0, 2.0, 0.0)])
        worst_ep = next(iter(r.endpoint_slacks))
        assert design_yield(r) <= \
            endpoint_pass_probability(r, worst_ep) + 1e-9

    def test_correlated_endpoints_yield_higher_than_independent(self):
        """Global correlation helps: endpoints fail together or pass
        together, so total yield exceeds the independent product."""
        correlated = synthetic_result([(4.0, 0.5, 3.0)] * 8)
        independent = synthetic_result([(4.0, 3.04, 0.0)] * 8)
        assert design_yield(correlated) > design_yield(independent)

    def test_real_ssta_yield_in_unit_interval(self, ssta):
        y = design_yield(ssta)
        assert 0.0 <= y <= 1.0


class TestGoalpostSweep:
    @pytest.fixture(scope="class")
    def comparisons(self, lib):
        d = random_logic(n_gates=150, n_levels=8, seed=11)

        def mk(period):
            c = Constraints.single_clock(period)
            c.input_delays = {f"in{i}": 60.0 for i in range(32)}
            return c

        return goalpost_sweep(d, lib, mk,
                              [480.0, 510.0, 540.0, 570.0, 600.0])

    def test_yield_monotone_in_period(self, comparisons):
        yields = [c.yield_estimate for c in comparisons]
        assert yields == sorted(yields)

    def test_corner_wns_monotone_in_period(self, comparisons):
        wns = [c.corner_wns for c in comparisons]
        assert wns == sorted(wns)

    def test_yield_goalpost_less_conservative(self, comparisons):
        """The paper's 'new goal post': yield signoff accepts a period at
        or below what corner signoff needs."""
        corner = minimum_passing_period(comparisons, "corner")
        stat = minimum_passing_period(comparisons, "yield")
        assert corner is not None and stat is not None
        assert stat <= corner

    def test_sigma_instability_bands(self, comparisons):
        """In the signoff-relevant regime (yield above 50%, slack means
        positive) larger believed sigma means lower yield. Below 50% the
        direction legitimately reverses (extra spread pushes mass above
        zero), so only the passing side is asserted."""
        for c in comparisons:
            if c.yield_estimate < 0.5:
                continue
            assert c.yield_low_sigma <= c.yield_estimate + 1e-9
            assert c.yield_estimate <= c.yield_high_sigma + 1e-9

    def test_no_passing_period_returns_none(self, comparisons):
        hopeless = [c for c in comparisons if not c.corner_passes]
        assert minimum_passing_period(hopeless, "corner") is None
