"""Tests for the Fig 1 closure loop and the fix engines."""

import pytest

from repro.errors import ClosureError
from repro.liberty import make_library
from repro.netlist.generators import random_logic, tiny_design
from repro.sta import STA, Constraints
from repro.core.closure import ClosureConfig, ClosureEngine
from repro.core.fixes import FIX_ENGINES, FixContext


@pytest.fixture(scope="module")
def lib():
    return make_library()


def constrained_design(period=520.0, seed=3, n_gates=300):
    d = random_logic(n_gates=n_gates, n_levels=10, seed=seed)
    c = Constraints.single_clock(period)
    c.input_delays = {f"in{i}": 60.0 for i in range(32)}
    return d, c


class TestConfig:
    def test_unknown_fix_rejected(self):
        with pytest.raises(ClosureError, match="unknown fix engines"):
            ClosureConfig(fix_order=("vt_swap", "magic"))

    def test_default_order_valid(self):
        config = ClosureConfig()
        assert all(f in FIX_ENGINES for f in config.fix_order)


class TestClosureLoop:
    @pytest.fixture(scope="class")
    def result(self, lib):
        d, c = constrained_design()
        engine = ClosureEngine(d, lib, c)
        return engine.run(ClosureConfig(max_iterations=10, budget_per_fix=24))

    def test_converges(self, result):
        assert result.converged
        assert result.final_wns >= 0.0

    def test_timing_improves_over_iterations(self, result):
        """Fig 1's expectation: top-level timing improves per iteration
        (we allow one-step noise but require strict overall progress and
        a mostly-monotone trajectory)."""
        wns = result.trajectory("wns_setup")
        assert wns[-1] > wns[0]
        improvements = sum(1 for a, b in zip(wns, wns[1:]) if b > a)
        assert improvements >= (len(wns) - 1) * 0.7

    def test_no_hold_or_slew_damage(self, result):
        assert not result.final.violations("hold")
        assert not result.final.slew_violations

    def test_schedule_accounting(self, result):
        assert result.schedule_days == pytest.approx(
            len(result.iterations) * 3.0
        )

    def test_edits_recorded(self, result):
        kinds = set()
        for rec in result.iterations:
            kinds |= set(rec.edits)
        assert "vt_swap" in kinds
        assert "sizing" in kinds

    def test_render(self, result):
        text = result.render()
        assert "WNS" in text and "converged" in text

    def test_clean_design_stops_immediately(self, lib):
        d = tiny_design()
        c = Constraints.single_clock(800.0)
        c.input_delays = {"in0": 60.0, "in1": 60.0}
        result = ClosureEngine(d, lib, c).run()
        assert result.converged
        assert len(result.iterations) == 1
        assert result.iterations[0].total_edits == 0

    def test_impossible_target_stops_on_budget(self, lib):
        d, c = constrained_design(period=150.0, n_gates=150)
        result = ClosureEngine(d, lib, c).run(
            ClosureConfig(max_iterations=3, budget_per_fix=8)
        )
        assert not result.converged
        assert len(result.iterations) <= 3


class TestFixEngines:
    @pytest.fixture()
    def ctx(self, lib):
        d, c = constrained_design(n_gates=200)
        sta = STA(d, lib, c)
        sta.report = sta.run()
        return FixContext(design=d, library=lib, sta=sta, report=sta.report,
                          budget=10)

    def test_vt_swap_produces_edits(self, ctx):
        edits = FIX_ENGINES["vt_swap"](ctx)
        assert edits
        assert all(e.kind == "swap" for e in edits)

    def test_vt_swap_makes_cells_faster(self, ctx, lib):
        before = ctx.report.wns("setup")
        FIX_ENGINES["vt_swap"](ctx)
        after = STA(ctx.design, lib, ctx.sta.constraints).run().wns("setup")
        assert after > before

    def test_sizing_produces_edits(self, ctx):
        assert FIX_ENGINES["sizing"](ctx)

    def test_budget_respected(self, ctx):
        ctx.budget = 3
        assert len(FIX_ENGINES["vt_swap"](ctx)) <= 3
        ctx.touched.clear()
        assert len(FIX_ENGINES["sizing"](ctx)) <= 3

    def test_dont_touch_respected(self, ctx):
        for inst in ctx.design.instances.values():
            inst.dont_touch = True
        assert FIX_ENGINES["vt_swap"](ctx) == []
        assert FIX_ENGINES["sizing"](ctx) == []

    def test_buffering_skips_clock_nets(self, ctx):
        edits = FIX_ENGINES["buffering"](ctx)
        assert "clk" not in {e.target for e in edits}

    def test_useful_skew_updates_constraints(self, ctx):
        edits = FIX_ENGINES["useful_skew"](ctx)
        if edits:  # LP may find no profitable skew on some seeds
            assert ctx.sta.constraints.clock_latency

    def test_area_recovery_downsizes(self, lib):
        d, c = constrained_design(period=2000.0, n_gates=150)  # relaxed
        sta = STA(d, lib, c)
        sta.report = sta.run()
        ctx = FixContext(design=d, library=lib, sta=sta, report=sta.report,
                         budget=10)
        area_before = d.total_area(lib)
        edits = FIX_ENGINES["area_recovery"](ctx)
        assert edits
        assert d.total_area(lib) < area_before


class TestIncrementalTiming:
    """The tentpole: cone-limited retiming inside the closure loop."""

    def test_bad_timing_mode_rejected(self):
        with pytest.raises(ClosureError, match="unknown timing mode"):
            ClosureConfig(timing="magic")

    def test_modes_produce_identical_results(self, lib):
        configs = {}
        for mode in ("incremental", "full"):
            d, c = constrained_design()
            engine = ClosureEngine(d, lib, c)
            configs[mode] = engine.run(
                ClosureConfig(max_iterations=6, budget_per_fix=12,
                              timing=mode)
            )
        inc, full = configs["incremental"], configs["full"]
        assert inc.trajectory() == full.trajectory()
        assert inc.trajectory("tns_setup") == full.trajectory("tns_setup")
        assert inc.final_wns == full.final_wns
        assert inc.final.tns("setup") == full.final.tns("setup")
        assert inc.converged == full.converged

    def test_incremental_run_is_instrumented(self, lib):
        d, c = constrained_design()
        engine = ClosureEngine(d, lib, c)
        result = engine.run(
            ClosureConfig(max_iterations=6, budget_per_fix=12)
        )
        # The default-order loop serves its swap stages cone-limited.
        assert result.incremental_retimes > 0
        assert 0.0 < result.reuse_ratio <= 1.0
        assert result.pin_count > 0
        assert 0.0 < result.mean_cone_fraction < 1.0
        assert result.timing_wall_s > 0.0
        cone_recs = [r for r in result.iterations
                     if r.incremental_retimes]
        assert cone_recs
        for rec in cone_recs:
            assert 0 < rec.cone_size
            assert 0.0 < rec.cone_fraction < 1.0
            assert rec.retime_engine in ("incremental", "mixed")
        rendered = result.render()
        assert "retime" in rendered
        assert "cone" in rendered
        assert "timing:" in rendered
        assert "reuse" in rendered

    def test_full_mode_only_rebuilds(self, lib):
        d, c = constrained_design()
        engine = ClosureEngine(d, lib, c)
        result = engine.run(
            ClosureConfig(max_iterations=4, budget_per_fix=12,
                          timing="full")
        )
        assert result.incremental_retimes == 0
        assert result.reuse_ratio == 0.0
        engines_seen = {r.retime_engine for r in result.iterations}
        assert engines_seen <= {"rebuild", ""}

    def test_warm_timer_reused_across_iterations(self, lib):
        d, c = constrained_design()
        engine = ClosureEngine(d, lib, c)
        result = engine.run(
            ClosureConfig(max_iterations=6, budget_per_fix=12)
        )
        pool = engine.timer_pool
        # One scenario, one registered timer, warm the whole run.
        assert pool.names() == [lib.name]
        timer = pool.get(lib.name)
        assert timer.incremental_updates == result.incremental_retimes
        assert pool.builds == 0  # adopted from the initial run, not rebuilt
