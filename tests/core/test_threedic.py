"""Tests for 3DIC partitioning, TSV parasitics and cross-die corners."""

import pytest

from repro.core.threedic import (
    TsvSpec,
    apply_tsv_parasitics,
    cross_die_corner_matrix,
    cross_die_nets,
    die_derates,
    partition_by_y,
    repartition_to_avoid_cross_die_criticality,
    worst_off_diagonal_penalty,
)
from repro.errors import TimingError
from repro.liberty import make_library
from repro.netlist.design import Design, PortDirection
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture()
def design(lib):
    d = random_logic(n_gates=150, n_levels=8, seed=5)
    d.bind(lib)
    return d


class TestPartition:
    def test_roughly_balanced(self, design):
        assignment = partition_by_y(design)
        counts = [list(assignment.values()).count(d) for d in (0, 1)]
        assert min(counts) > 0.25 * sum(counts)

    def test_unplaced_design_rejected(self, lib):
        d = Design("unplaced")
        d.add_port("clk", PortDirection.INPUT)
        d.add_instance("u", "INV_X1_SVT", {"A": "clk", "ZN": "z"})
        with pytest.raises(TimingError):
            partition_by_y(d)

    def test_only_two_dies(self, design):
        with pytest.raises(TimingError):
            partition_by_y(design, n_dies=3)

    def test_cross_die_nets_found(self, design):
        assignment = partition_by_y(design)
        crossings = cross_die_nets(design, assignment)
        assert crossings
        assert "clk" in crossings  # the clock reaches both dies


class TestTsv:
    def test_tsv_caps_added(self, design):
        assignment = partition_by_y(design)
        count = apply_tsv_parasitics(design, assignment, TsvSpec())
        assert count == len(cross_die_nets(design, assignment))
        crossing = cross_die_nets(design, assignment)[0]
        assert design.get_net(crossing).extra_cap >= 25.0

    def test_tsv_slows_timing(self, lib, design):
        c = Constraints.single_clock(500.0)
        before = STA(design, lib, c).run().wns("setup")
        apply_tsv_parasitics(design, partition_by_y(design))
        after = STA(design, lib, c).run().wns("setup")
        assert after < before

    def test_delay_hint(self):
        assert TsvSpec(0.1, 30.0).extra_delay_hint == pytest.approx(3.0)


class TestCrossDieCorners:
    @pytest.fixture(scope="class")
    def matrix(self, lib):
        from repro.cts.tree import synthesize_clock_tree

        d = random_logic(n_gates=150, n_levels=8, seed=5)
        d.bind(lib)
        # A buffered clock tree is essential: with an ideal clock the
        # capture side would not move with die speed at all.
        synthesize_clock_tree(d, lib)
        assignment = partition_by_y(d)
        apply_tsv_parasitics(d, assignment)
        c = Constraints.single_clock(560.0)
        c.input_delays = {f"in{i}": 60.0 for i in range(32)}
        return cross_die_corner_matrix(d, lib, c, assignment)

    def test_matrix_complete(self, matrix):
        assert len(matrix) == 9
        labels = {r.label for r in matrix}
        assert "d0:fast/d1:slow" in labels

    def test_slow_slow_is_setup_worst(self, matrix):
        worst = min(matrix, key=lambda r: r.wns_setup)
        assert worst.die0_speed >= 1.0 and worst.die1_speed >= 1.0

    def test_off_diagonal_hold_penalty(self, matrix):
        """Mismatched dies hurt hold: a fast launch die racing a slow
        capture die is the 3DIC-specific corner."""
        penalty = worst_off_diagonal_penalty(matrix, "hold")
        assert penalty > 0.0

    def test_per_die_derates_structure(self):
        derates = die_derates({"a": 0, "b": 1}, {0: 0.95, 1: 1.05})
        assert derates.factor(False, "late", 1, "a") == pytest.approx(0.95)
        assert derates.factor(False, "late", 1, "b") == pytest.approx(1.05)
        assert derates.factor(False, "late", 1, "unknown") == 1.0


class TestRepartitioning:
    def test_moves_reduce_cross_die_critical_paths(self, lib):
        d = random_logic(n_gates=150, n_levels=8, seed=5)
        d.bind(lib)
        assignment = partition_by_y(d)
        c = Constraints.single_clock(500.0)
        c.input_delays = {f"in{i}": 60.0 for i in range(32)}

        def critical_crossings(asg):
            sta = STA(d, lib, c)
            report = sta.run()
            count = 0
            for e in report.endpoints("setup")[:10]:
                if e.kind != "setup":
                    continue
                path = sta.worst_path(e)
                dies = {asg.get(p.ref.instance) for p in path.points
                        if not p.ref.is_port}
                if len(dies) > 1:
                    count += 1
            return count

        before = critical_crossings(assignment)
        new_assignment, moves = repartition_to_avoid_cross_die_criticality(
            d, lib, c, assignment, max_moves=60
        )
        after = critical_crossings(new_assignment)
        assert moves > 0
        assert after <= before
