"""End-to-end integration: the full tapeout-march pipeline.

One design goes through the whole methodology the paper describes:
clock-tree synthesis -> metal fill -> closure loop (with SI enabled) ->
MCMM signoff -> margin/TBC analyses -> power report -> ETM extraction.
Each stage's output is checked for consistency with its neighbours.
"""

import pytest

from repro.beol.fill import FillEngine, FillPolicy
from repro.core.closure import ClosureConfig, ClosureEngine
from repro.core.margins import MarginStackup
from repro.core.signoff import SignoffPolicy, evaluate_signoff
from repro.core.tbc import alpha_analysis
from repro.cts.skew import clock_skew_report
from repro.cts.tree import synthesize_clock_tree
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import c5315_like
from repro.power.models import design_power
from repro.sta import STA, Constraints
from repro.sta.etm import extract_etm
from repro.sta.mcmm import Scenario, ScenarioSet


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def flow(lib):
    """Run the whole pipeline once; stages assert incrementally."""
    design = c5315_like(scale=0.08)
    design.bind(lib)
    period = 620.0
    constraints = Constraints.single_clock(period)
    constraints.input_delays = {
        p: 60.0 for p in design.input_ports() if p != "clk"
    }
    state = {"design": design, "constraints": constraints, "period": period}

    # Stage 1: CTS.
    state["cts"] = synthesize_clock_tree(design, lib)

    # Stage 2: metal fill (clock excluded).
    sta0 = STA(design, lib, constraints)
    sta0.report = sta0.run()
    engine = FillEngine(design, sta0.parasitics, sta0.stack,
                        FillPolicy(min_density=0.3))
    state["fill"] = engine.insert_fill()

    # Stage 3: closure with SI enabled.
    closure = ClosureEngine(design, lib, constraints, si_enabled=True)
    state["closure"] = closure.run(
        ClosureConfig(max_iterations=10, budget_per_fix=24)
    )

    # Stage 4: final STA + skew.
    sta = STA(design, lib, constraints, si_enabled=True)
    sta.report = sta.run()
    state["sta"] = sta
    state["skew"] = clock_skew_report(sta)

    # Stage 4b: hold fixing at the slow corner (hold constraints scale
    # with the corner, so a typical-corner hold-clean design can still
    # fail there — the classic dedicated hold-fix pass).
    slow = make_library(LibraryCondition(process="ss", vdd=0.72,
                                         temp_c=125.0))
    hold_fix = ClosureEngine(design, slow, constraints, temp_c=125.0)
    state["hold_fix"] = hold_fix.run(
        ClosureConfig(max_iterations=4, budget_per_fix=24,
                      fix_order=("hold_buffering",))
    )

    # Stage 5: MCMM signoff.
    scenarios = ScenarioSet([
        Scenario("tt_typ", lib, constraints),
        Scenario("ss_cw", slow, constraints, beol_corner_name="cw",
                 temp_c=125.0),
    ])
    state["verdict"] = evaluate_signoff(
        design,
        SignoffPolicy(scenarios=scenarios, margins=MarginStackup(),
                      setup_style="typical_avs", avs_v_max=1.05),
    )

    # Stage 6: power.
    state["power"] = design_power(design, lib, sta.parasitics, period)

    # Stage 7: TBC stats on the closed design.
    state["tbc"] = alpha_analysis(design, lib, constraints, n_endpoints=10)
    return state


class TestFlow:
    def test_cts_covers_all_flops(self, lib, flow):
        flops = {i.name for i in
                 flow["design"].sequential_instances(lib)}
        covered = {f for fl in flow["cts"].clusters.values() for f in fl}
        assert covered == flops

    def test_fill_happened_but_spared_clock(self, flow):
        assert flow["fill"].tiles_filled > 0
        assert flow["design"].get_net("clk").extra_cap == 0.0

    def test_closure_converged_with_si(self, flow):
        assert flow["closure"].converged
        assert flow["closure"].final_wns >= 0.0

    def test_final_sta_confirms_closure(self, flow):
        report = flow["sta"].report
        assert report.wns("setup") >= 0.0
        assert report.wns("hold") >= 0.0
        assert not report.slew_violations

    def test_skew_bounded(self, flow):
        assert flow["skew"].global_skew < 40.0
        assert flow["skew"].insertion_delay > 0.0

    def test_signoff_verdict(self, flow):
        verdict = flow["verdict"]
        # Typical+AVS policy must pass on a design closed at typical with
        # the AVS rail able to cover the slow corner.
        assert verdict.passed, verdict.render()
        assert verdict.avs_voltage is not None

    def test_power_report_sane(self, flow):
        power = flow["power"]
        assert power.total > 0.0
        assert power.dynamic > power.leakage  # active logic at 0.8 V

    def test_tbc_stats_available_on_closed_design(self, flow):
        assert flow["tbc"]
        for s in flow["tbc"]:
            assert s.delta_cw >= 0.0 or s.delta_rcw >= 0.0

    def test_etm_extractable_from_closed_design(self, lib, flow):
        design = flow["design"]
        constraints = Constraints.single_clock(flow["period"])
        sta = STA(design, lib, constraints, si_enabled=True)
        sta.report = sta.run()
        etm = extract_etm(sta)
        assert etm.input_ports()
        assert etm.internal_wns >= 0.0  # the block is closed

    def test_closure_work_matches_problem(self, flow):
        """At this relaxed period setup is clean from the start; the
        closure loop's work is hold padding (port-fed inputs racing the
        clock), and the dedicated slow-corner pass finishes the job."""
        totals = {}
        for rec in flow["closure"].iterations:
            for kind, n in rec.edits.items():
                totals[kind] = totals.get(kind, 0) + n
        assert totals.get("hold_buffering", 0) > 0
        assert totals.get("buffering", 0) == 0  # no setup work needed
        # The slow-corner hold pass also converged.
        assert flow["hold_fix"].final.wns("hold") >= 0.0
