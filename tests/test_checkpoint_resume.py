"""Acceptance test: a multi-corner signoff killed with SIGKILL resumes
from its journal, recomputing only the un-journaled scenarios.

The assertion is count-based (scenario evaluations), never wall-clock:
``resumed.evaluations == total - journaled``.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic
from repro.runtime.journal import RunJournal
from repro.sta import Constraints
from repro.sta.mcmm import standard_scenario_set
from repro.sta.scheduler import SignoffScheduler

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Must mirror the CLI defaults the subprocess runs with
# (``repro signoff --design rand --gates 260 --seed 1 --period 500``).
GATES, SEED, PERIOD, INPUT_DELAY = 260, 1, 500.0, 60.0


def cli_setup():
    design = random_logic(n_gates=GATES, n_levels=max(4, GATES // 30),
                          seed=SEED)
    constraints = Constraints.single_clock(PERIOD)
    constraints.input_delays = {
        p: INPUT_DELAY for p in design.input_ports() if p != "clk"
    }

    def factory(process, vdd, temp):
        return make_library(
            LibraryCondition(process=process, vdd=vdd, temp_c=temp)
        )

    return design, standard_scenario_set(constraints, factory)


def test_sigkilled_signoff_resumes_from_journal(tmp_path):
    journal_path = tmp_path / "signoff.journal"

    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "signoff",
            "--design", "rand", "--gates", str(GATES),
            "--seed", str(SEED), "--period", str(PERIOD),
            "--jobs", "1", "--no-validate",
            "--checkpoint", str(journal_path),
        ],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )

    # Wait for at least one journaled scenario, then SIGKILL mid-batch.
    deadline = time.monotonic() + 120.0
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before we could kill it (still valid)
            if journal_path.exists() and \
                    RunJournal(journal_path).count("scenario") >= 1:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
                break
            time.sleep(0.05)
        else:
            pytest.fail("subprocess journaled nothing within 120 s")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    # The on-disk journal holds every *completed* scenario; a torn final
    # line (killed mid-write) is tolerated, not trusted.
    journal = RunJournal(journal_path)
    journaled = journal.count("scenario")
    assert journaled >= 1

    # Resume in-process over the identical inputs: only the un-journaled
    # scenarios recompute. Asserted by recomputation counts.
    design, scenario_set = cli_setup()
    total = len(scenario_set.scenarios)
    assert journaled <= total

    scheduler = SignoffScheduler(
        scenario_set.scenarios, stack=scenario_set.stack,
        journal=journal,
    )
    outcome = scheduler.signoff(design)

    assert scheduler.evaluations == total - journaled
    assert len(outcome.journal_hits) == journaled
    assert len(outcome.recomputed) == total - journaled
    assert sorted(outcome.reports) == sorted(
        s.name for s in scenario_set.scenarios
    )

    # A second resume recomputes nothing at all.
    again = SignoffScheduler(
        scenario_set.scenarios, stack=scenario_set.stack,
        journal=RunJournal(journal_path),
    )
    outcome2 = again.signoff(design)
    assert again.evaluations == 0
    assert len(outcome2.journal_hits) == total
    for name in outcome.reports:
        assert outcome.reports[name].render_full() == \
            outcome2.reports[name].render_full()
