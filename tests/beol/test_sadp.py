"""Tests for the SADP sigma model (paper Fig 5(c))."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beol.sadp import (
    PatterningCase,
    SadpSigmas,
    all_case_sigmas,
    assign_cases,
    cd_sigma_to_rc_sensitivity,
    line_cd_sigma,
    line_cd_variance,
    segment_population_rc_sigmas,
)
from repro.errors import CornerError


SIGMAS = SadpSigmas(mandrel=1.0, spacer=0.8, block=1.5,
                    mandrel_block_overlay=1.2)


class TestFormulas:
    """The four Fig 5(c) variance formulas, verified term by term."""

    def test_case_i(self):
        assert line_cd_variance(PatterningCase.MANDREL_MANDREL, SIGMAS) == \
            pytest.approx(1.0**2)

    def test_case_ii(self):
        assert line_cd_variance(PatterningCase.SPACER_SPACER, SIGMAS) == \
            pytest.approx(1.0**2 + 2 * 0.8**2)

    def test_case_iii(self):
        assert line_cd_variance(PatterningCase.MANDREL_BLOCK, SIGMAS) == \
            pytest.approx((0.5 * 1.0) ** 2 + 1.2**2 + (0.5 * 1.5) ** 2)

    def test_case_iv(self):
        assert line_cd_variance(PatterningCase.SPACER_BLOCK, SIGMAS) == \
            pytest.approx(
                (0.5 * 1.0) ** 2 + 0.8**2 + 1.2**2 + (0.5 * 1.5) ** 2
            )

    def test_sigma_is_sqrt_of_variance(self):
        for case in PatterningCase:
            assert line_cd_sigma(case, SIGMAS) == pytest.approx(
                math.sqrt(line_cd_variance(case, SIGMAS))
            )

    @given(
        m=st.floats(0.0, 5.0),
        s=st.floats(0.0, 5.0),
        b=st.floats(0.0, 5.0),
        mb=st.floats(0.0, 5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_spacer_case_never_below_mandrel_case(self, m, s, b, mb):
        """Case II adds spacer variance on top of case I; case IV adds it
        on top of case III."""
        sig = SadpSigmas(m, s, b, mb)
        assert line_cd_variance(PatterningCase.SPACER_SPACER, sig) >= \
            line_cd_variance(PatterningCase.MANDREL_MANDREL, sig)
        assert line_cd_variance(PatterningCase.SPACER_BLOCK, sig) >= \
            line_cd_variance(PatterningCase.MANDREL_BLOCK, sig)

    def test_all_case_sigmas_table(self):
        table = all_case_sigmas(SIGMAS)
        assert set(table) == set(PatterningCase)
        assert all(v >= 0 for v in table.values())

    def test_negative_sigma_rejected(self):
        with pytest.raises(CornerError):
            SadpSigmas(mandrel=-1.0)


class TestCaseAssignment:
    def test_deterministic(self):
        assert assign_cases(50, seed=3) == assign_cases(50, seed=3)

    def test_alternation_without_cuts(self):
        cases = assign_cases(6, seed=0, cut_fraction=0.0)
        assert cases == [
            PatterningCase.MANDREL_MANDREL,
            PatterningCase.SPACER_SPACER,
        ] * 3

    def test_all_cut(self):
        cases = assign_cases(4, seed=0, cut_fraction=1.0)
        assert cases == [
            PatterningCase.MANDREL_BLOCK,
            PatterningCase.SPACER_BLOCK,
        ] * 2

    def test_bad_fraction_rejected(self):
        with pytest.raises(CornerError):
            assign_cases(4, cut_fraction=1.5)


class TestRcSensitivity:
    def test_relative_sigma(self):
        out = cd_sigma_to_rc_sensitivity(2.0, 20.0)
        assert out["r_rel_sigma"] == pytest.approx(0.1)
        assert out["c_coupling_rel_sigma"] == pytest.approx(0.1)
        assert out["c_ground_rel_sigma"] == pytest.approx(0.03)

    def test_zero_width_rejected(self):
        with pytest.raises(CornerError):
            cd_sigma_to_rc_sensitivity(1.0, 0.0)

    def test_population_is_bimodal_by_case(self):
        pop = segment_population_rc_sigmas(
            200, SIGMAS, nominal_width_nm=20.0, seed=1, cut_fraction=0.0
        )
        sigmas = {p["case"]: p["r_rel_sigma"] for p in pop}
        # Only cases i and ii appear, with different sigma levels.
        assert set(sigmas) == {"i", "ii"}
        assert sigmas["ii"] > sigmas["i"]
