"""Tests for the BEOL stack and corner algebra."""

import pytest

from repro.beol.corners import (
    conventional_corners,
    corner_explosion_count,
    dominant_corner_for_path,
    per_layer_corner_space,
    tightened_corner,
)
from repro.beol.stack import BeolStack, MetalLayer, default_stack
from repro.errors import CornerError


@pytest.fixture(scope="module")
def stack():
    return default_stack()


@pytest.fixture(scope="module")
def corners(stack):
    return conventional_corners(stack)


class TestStack:
    def test_eight_layers(self, stack):
        assert len(stack.layers) == 8

    def test_lower_layers_more_resistive(self, stack):
        assert stack.layer("M1").r_per_um > stack.layer("M6").r_per_um

    def test_lower_layers_multi_patterned(self, stack):
        assert stack.layer("M2").is_multi_patterned
        assert not stack.layer("M6").is_multi_patterned

    def test_resistance_rises_with_temperature(self, stack):
        m2 = stack.layer("M2")
        assert m2.r_at(125.0) > m2.r_at(25.0) > m2.r_at(-30.0)

    def test_missing_layer_raises(self, stack):
        with pytest.raises(CornerError):
            stack.layer("M99")

    def test_layer_for_route_by_length(self, stack):
        assert stack.layer_for_route(5.0).name == "M2"
        assert stack.layer_for_route(30.0).name == "M4"
        assert stack.layer_for_route(200.0).name == "M6"

    def test_ndr_promotes_layer(self, stack):
        normal = stack.layer_for_route(30.0)
        promoted = stack.layer_for_route(30.0, ndr=True)
        assert promoted.r_per_um < normal.r_per_um

    def test_variability_factor_ordering(self):
        single = MetalLayer("X", 1, 1, 1, patterning="single")
        sadp = MetalLayer("X", 1, 1, 1, patterning="sadp")
        saqp = MetalLayer("X", 1, 1, 1, patterning="saqp")
        assert single.variability_factor < sadp.variability_factor \
            < saqp.variability_factor


class TestConventionalCorners:
    def test_all_families_present(self, corners):
        assert set(corners) == {"typ", "cw", "cb", "ccw", "ccb", "rcw", "rcb"}

    def test_typical_is_unity(self, corners):
        s = corners["typ"].layer_scales("M2")
        assert (s.r, s.c_ground, s.c_coupling) == (1.0, 1.0, 1.0)

    def test_cw_raises_cap_lowers_r(self, corners):
        s = corners["cw"].layer_scales("M4")
        assert s.c_ground > 1.0 and s.c_coupling > 1.0 and s.r < 1.0

    def test_rcw_raises_r(self, corners):
        s = corners["rcw"].layer_scales("M4")
        assert s.r > 1.15

    def test_multi_patterned_layers_take_wider_excursions(self, corners):
        sadp = corners["cw"].layer_scales("M2")  # SADP layer
        single = corners["cw"].layer_scales("M6")
        assert sadp.c_ground - 1.0 > single.c_ground - 1.0

    def test_missing_layer_raises(self, corners):
        with pytest.raises(CornerError):
            corners["cw"].layer_scales("M99")


class TestTightenedCorners:
    def test_factor_one_is_identity(self, corners):
        tbc = tightened_corner(corners["cw"], 1.0)
        assert tbc.layer_scales("M2") == corners["cw"].layer_scales("M2")

    def test_factor_zero_is_typical(self, corners):
        tbc = tightened_corner(corners["cw"], 0.0)
        s = tbc.layer_scales("M2")
        assert s.r == pytest.approx(1.0)
        assert s.c_ground == pytest.approx(1.0)

    def test_half_tightening_between(self, corners):
        full = corners["cw"].layer_scales("M2").c_ground
        half = tightened_corner(corners["cw"], 0.5).layer_scales("M2").c_ground
        assert 1.0 < half < full

    def test_bad_factor_rejected(self, corners):
        with pytest.raises(CornerError):
            tightened_corner(corners["cw"], 1.5)

    def test_name_generated(self, corners):
        assert "tbc50" in tightened_corner(corners["cw"], 0.5).name


class TestCornerExplosion:
    def test_per_layer_space_grows_exponentially(self, stack):
        three = per_layer_corner_space(stack, families=["a", "b", "c"])
        five = per_layer_corner_space(stack, families=list("abcde"))
        n_mp = len(stack.multi_patterned_layers())
        assert three == 3 ** n_mp * 3
        assert five == 5 ** n_mp * 5

    def test_explosion_count_components(self, stack):
        counts = corner_explosion_count(
            n_modes=4, n_voltage_domains=3, stack=stack
        )
        assert counts["scenarios_homogeneous"] == 4 * 3 * 3 * 5
        assert counts["scenarios_per_layer"] > counts["scenarios_homogeneous"]

    def test_dominant_corner_rule(self):
        assert dominant_corner_for_path(0.95) == "cw"   # gate-dominated
        assert dominant_corner_for_path(0.5) == "rcw"   # wire-dominated

    def test_dominant_corner_bad_fraction(self):
        with pytest.raises(CornerError):
            dominant_corner_for_path(1.5)
