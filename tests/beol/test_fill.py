"""Tests for metal-fill density analysis and timing impact."""

import pytest

from repro.beol.fill import FillEngine, FillPolicy
from repro.beol.stack import default_stack
from repro.errors import CornerError
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints


@pytest.fixture(scope="module")
def lib():
    return make_library()


def build(lib, policy=None, seed=5):
    design = random_logic(n_gates=150, n_levels=8, seed=seed)
    sta = STA(design, lib, Constraints.single_clock(500.0))
    sta.report = sta.run()
    engine = FillEngine(design, sta.parasitics, sta.stack,
                        policy or FillPolicy())
    return design, sta, engine


class TestPolicy:
    def test_bad_density_rejected(self):
        with pytest.raises(CornerError):
            FillPolicy(min_density=0.0)
        with pytest.raises(CornerError):
            FillPolicy(min_density=1.0)

    def test_bad_tile_rejected(self):
        with pytest.raises(CornerError):
            FillPolicy(tile_um=0.0)


class TestDensity:
    def test_density_map_nonempty(self, lib):
        _, _, engine = build(lib)
        density = engine.density_map()
        assert density
        assert all(d >= 0.0 for d in density.values())

    def test_net_tiles_cover_span(self, lib):
        design, _, engine = build(lib)
        # A multi-fanout net spans at least one tile.
        for net_name, net in design.nets.items():
            if net.fanout >= 2 and net.driver and not net.driver.is_port:
                assert engine.net_tiles(net_name)
                break


class TestInsertFill:
    def test_fill_adds_capacitance(self, lib):
        design, _, engine = build(lib)
        report = engine.insert_fill()
        assert report.tiles_filled > 0
        assert report.nets_affected > 0
        assert report.total_added_cap > 0.0
        assert report.fill_fraction > 0.0

    def test_fill_slows_timing(self, lib):
        design, sta, engine = build(lib)
        wns_before = sta.report.wns("setup")
        engine.insert_fill()
        wns_after = STA(design, lib, sta.constraints).run().wns("setup")
        assert wns_after < wns_before

    def test_clock_exclusion_protects_clock_net(self, lib):
        design, _, engine = build(lib)
        engine.insert_fill()
        assert design.get_net("clk").extra_cap == 0.0

    def test_without_exclusion_clock_gets_fill(self, lib):
        policy = FillPolicy(exclude_clock_nets=False, min_density=0.6)
        design, _, engine = build(lib, policy=policy)
        report = engine.insert_fill()
        # The big clock net crosses many tiles; with no exclusion and a
        # demanding density rule it picks up fill coupling.
        assert design.get_net("clk").extra_cap > 0.0

    def test_exclusion_counted(self, lib):
        design, _, engine = build(lib)
        report = engine.insert_fill()
        assert report.tiles_excluded >= 0

    def test_tighter_rule_fills_more(self, lib):
        d1, _, e1 = build(lib, policy=FillPolicy(min_density=0.1))
        d2, _, e2 = build(lib, policy=FillPolicy(min_density=0.6))
        assert e2.insert_fill().tiles_filled >= e1.insert_fill().tiles_filled
