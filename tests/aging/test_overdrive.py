"""Tests for overdrive-signoff optimization ([4])."""

import pytest

from repro.aging.overdrive import (
    OverdriveOutcome,
    best_outcome,
    optimize_overdrive_signoff,
)
from repro.errors import SignoffError
from repro.netlist.generators import random_logic


@pytest.fixture(scope="module")
def outcomes():
    return optimize_overdrive_signoff(
        design_factory=lambda: random_logic(n_gates=80, n_levels=6, seed=2),
        nominal_period=450.0,
        overdrive_period=330.0,
        v_candidates=(0.84, 0.90, 0.96, 1.02),
    )


class TestSweep:
    def test_low_rail_infeasible(self, outcomes):
        """The overdrive frequency is unreachable at the lowest rail even
        with maximal upsizing — the area wall."""
        assert not outcomes[0].closed_overdrive

    def test_high_rail_feasible(self, outcomes):
        assert outcomes[-1].feasible

    def test_aging_monotone_in_rail(self, outcomes):
        """Higher overdrive rails accelerate BTI: EOL shift grows."""
        shifts = [o.eol_shift_mv for o in outcomes]
        assert shifts == sorted(shifts)

    def test_area_decreases_with_rail(self, outcomes):
        """More voltage headroom means less upsizing."""
        feasible_area = [o.area for o in outcomes if o.closed_overdrive]
        infeasible_area = [o.area for o in outcomes
                           if not o.closed_overdrive]
        # Closed implementations are smaller than the maxed-out failures.
        assert min(infeasible_area) > max(feasible_area)

    def test_nominal_mode_always_checked(self, outcomes):
        assert all(o.closed_nominal for o in outcomes)


class TestSelection:
    def test_best_is_feasible(self, outcomes):
        assert best_outcome(outcomes).feasible

    def test_weights_steer_the_choice(self, outcomes):
        """Pure-area weighting picks the highest feasible rail (least
        upsizing); power weighting cannot pick a costlier-power rail."""
        by_area = best_outcome(outcomes, area_weight=1.0)
        by_power = best_outcome(outcomes, area_weight=0.0)
        feasible = [o for o in outcomes if o.feasible]
        assert by_area.area == min(o.area for o in feasible)
        assert by_power.lifetime_power == min(
            o.lifetime_power for o in feasible
        )

    def test_no_feasible_rail_raises(self):
        bad = [
            OverdriveOutcome(v_od=0.8, closed_overdrive=False,
                             closed_nominal=True, area=1.0,
                             lifetime_power=1.0, eol_shift_mv=10.0)
        ]
        with pytest.raises(SignoffError):
            best_outcome(bad)

    def test_cost_normalization(self):
        o = OverdriveOutcome(v_od=0.9, closed_overdrive=True,
                             closed_nominal=True, area=200.0,
                             lifetime_power=2.0, eol_shift_mv=30.0)
        assert o.cost(area_ref=100.0, power_ref=1.0, area_weight=0.5) == \
            pytest.approx(0.5 * 2.0 + 0.5 * 2.0)
