"""Tests for BTI, AVS and the aging-signoff loop."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aging.avs import AvsController
from repro.aging.bti import BtiModel
from repro.aging.signoff import (
    greedy_upsize_closure,
    simulate_lifetime,
    sweep_aging_corners,
)
from repro.errors import ReproError, SignoffError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic, tiny_design
from repro.sta import Constraints


@pytest.fixture(scope="module")
def bti():
    return BtiModel()


class TestBtiModel:
    def test_zero_time_zero_shift(self, bti):
        assert bti.delta_vt(0.0, 0.8) == 0.0

    @given(
        t1=st.floats(0.1, 10.0),
        t2=st.floats(0.1, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_time(self, bti, t1, t2):
        lo, hi = sorted((t1, t2))
        assert bti.delta_vt(lo, 0.8) <= bti.delta_vt(hi, 0.8) + 1e-15

    @given(
        v1=st.floats(0.5, 1.1),
        v2=st.floats(0.5, 1.1),
    )
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_voltage(self, bti, v1, v2):
        lo, hi = sorted((v1, v2))
        assert bti.delta_vt(5.0, lo) <= bti.delta_vt(5.0, hi) + 1e-15

    def test_monotone_in_temperature(self, bti):
        assert bti.delta_vt(5.0, 0.8, temp_c=125.0) > \
            bti.delta_vt(5.0, 0.8, temp_c=25.0)

    def test_ac_less_than_dc(self, bti):
        assert bti.delta_vt(5.0, 0.8, dc_stress=False) < \
            bti.delta_vt(5.0, 0.8, dc_stress=True)

    def test_ten_year_shift_in_expected_regime(self, bti):
        shift_mv = bti.delta_vt(10.0, 0.8, temp_c=105.0) * 1000.0
        assert 20.0 < shift_mv < 70.0

    def test_stress_equivalent_round_trip(self, bti):
        shift = bti.delta_vt(4.0, 0.85)
        t_eq = bti.stress_equivalent_years(shift, 0.85)
        assert t_eq == pytest.approx(4.0, rel=1e-6)

    def test_accumulate_matches_constant_voltage(self, bti):
        direct = bti.delta_vt(6.0, 0.8)
        segmented = bti.accumulate([(2.0, 0.8), (2.0, 0.8), (2.0, 0.8)])
        assert segmented == pytest.approx(direct, rel=1e-9)

    def test_accumulate_higher_voltage_ages_faster(self, bti):
        low = bti.accumulate([(5.0, 0.75), (5.0, 0.75)])
        high = bti.accumulate([(5.0, 0.75), (5.0, 0.95)])
        assert high > low

    def test_bad_parameters_rejected(self):
        with pytest.raises(ReproError):
            BtiModel(time_exponent=1.5)
        with pytest.raises(ReproError):
            BtiModel(prefactor=-1.0)

    def test_negative_time_rejected(self, bti):
        with pytest.raises(ReproError):
            bti.delta_vt(-1.0, 0.8)


class TestAvs:
    @pytest.fixture(scope="class")
    def controller(self):
        d = random_logic(n_gates=60, n_levels=5, seed=7)
        return AvsController(
            design=d, constraints=Constraints.single_clock(450.0)
        )

    def test_aged_silicon_needs_higher_voltage(self, controller):
        fresh = controller.voltage_for(0.0)
        aged = controller.voltage_for(0.04)
        assert aged > fresh

    def test_voltage_within_rails(self, controller):
        v = controller.voltage_for(0.02)
        assert controller.v_min <= v <= controller.v_max

    def test_found_voltage_meets_timing(self, controller):
        v = controller.voltage_for(0.03)
        assert controller.wns_at(v, 0.03) >= 0.0

    def test_impossible_target_raises(self):
        d = random_logic(n_gates=60, n_levels=5, seed=7)
        controller = AvsController(
            design=d, constraints=Constraints.single_clock(80.0)
        )
        with pytest.raises(SignoffError):
            controller.voltage_for(0.0)


class TestLifetime:
    @pytest.fixture(scope="class")
    def life(self):
        d = random_logic(n_gates=60, n_levels=5, seed=7)
        return simulate_lifetime(
            d, Constraints.single_clock(450.0), years=10.0, steps=3
        )

    def test_voltage_monotone_nondecreasing(self, life):
        assert life.voltages == sorted(life.voltages)

    def test_shift_monotone(self, life):
        assert life.delta_vts == sorted(life.delta_vts)

    def test_average_power_positive(self, life):
        assert life.average_power > 0.0

    def test_chicken_egg_visible(self, life):
        """The loop must actually move: voltage rises measurably and the
        accumulated shift lands in the tens of mV."""
        assert life.final_voltage > life.voltages[0] + 0.01
        assert life.delta_vts[-1] > 0.02


class TestAgingCornerSweep:
    @pytest.fixture(scope="class")
    def outcomes(self):
        return sweep_aging_corners(
            design_factory=lambda: random_logic(n_gates=60, n_levels=5,
                                                seed=7),
            constraints=Constraints.single_clock(420.0),
            corners_mv=(0.0, 30.0, 60.0),
            steps=2,
        )

    def test_all_corners_closed(self, outcomes):
        assert all(o.closed for o in outcomes)

    def test_area_grows_with_assumed_aging(self, outcomes):
        """Fig 9's x-axis: pessimistic aging corners cost area."""
        areas = [o.area for o in outcomes]
        assert areas[-1] > areas[0]

    def test_power_area_tradeoff_exists(self, outcomes):
        """Fig 9's shape: the corner with the least area must not also
        have the least lifetime power (otherwise there is no tradeoff)."""
        by_area = min(outcomes, key=lambda o: o.area)
        by_power = min(outcomes, key=lambda o: o.average_power)
        assert by_area.assumed_shift_mv != by_power.assumed_shift_mv

    def test_greedy_closure_on_tiny(self):
        lib = make_library()
        d = tiny_design()
        assert greedy_upsize_closure(d, lib, Constraints.single_clock(400.0))
