"""Tests for ring-oscillator performance monitors (DDRO)."""

import random

import pytest

from repro.aging.monitors import (
    RingOscillator,
    MonitorStage,
    design_dependent_ro,
    evaluate_tracking,
    generic_ro,
    monitor_guided_voltage,
)
from repro.errors import SignoffError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic
from repro.netlist.transforms import swap_vt
from repro.sta import STA, Constraints


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def hvt_heavy_sta(lib):
    """A design whose critical paths are HVT-heavy, so the DDRO's cell
    mix matters (HVT slows disproportionately at low voltage)."""
    d = random_logic(n_gates=150, n_levels=8, seed=5)
    d.bind(lib)
    rng = random.Random(1)
    for name in list(d.instances):
        inst = d.instances[name]
        if not lib.cell(inst.cell_name).is_sequential and rng.random() < 0.5:
            swap_vt(d, lib, name, "hvt")
    sta = STA(d, lib, Constraints.single_clock(600.0))
    sta.report = sta.run()
    return sta


class TestRingOscillator:
    def test_generic_ro_period_positive(self, lib):
        assert generic_ro().period(lib) > 0.0

    def test_frequency_inverse_of_period(self, lib):
        ro = generic_ro()
        assert ro.frequency(lib) == pytest.approx(1e3 / ro.period(lib))

    def test_more_stages_slower(self, lib):
        assert generic_ro(n_stages=21).period(lib) > \
            generic_ro(n_stages=15).period(lib)

    def test_period_slows_at_low_voltage(self, lib):
        low = make_library(LibraryCondition(vdd=0.65))
        assert generic_ro().period(low) > generic_ro().period(lib)

    def test_period_slows_with_aging(self, lib):
        aged = make_library(LibraryCondition(vt_shift_aging=0.05))
        assert generic_ro().period(aged) > generic_ro().period(lib)

    def test_hvt_ro_slower_than_lvt(self, lib):
        assert generic_ro(flavor="hvt").period(lib) > \
            generic_ro(flavor="lvt").period(lib)


class TestDdro:
    def test_ddro_copies_path_cells(self, hvt_heavy_sta):
        ddro = design_dependent_ro(hvt_heavy_sta, hvt_heavy_sta.report)
        assert ddro.stages
        flavors = {s.cell_name.rsplit("_", 1)[-1] for s in ddro.stages}
        assert "HVT" in flavors  # the critical mix is represented

    def test_ddro_respects_stage_cap(self, hvt_heavy_sta):
        ddro = design_dependent_ro(hvt_heavy_sta, hvt_heavy_sta.report,
                                   max_stages=10)
        assert len(ddro.stages) <= 10

    def test_ddro_tracks_better_than_generic(self, hvt_heavy_sta):
        """The [3] headline: the design-dependent monitor follows the
        critical paths across PVT/aging better than an inverter RO."""
        conditions = [
            LibraryCondition(vdd=0.65),
            LibraryCondition(vdd=0.72, temp_c=125.0, process="ss"),
            LibraryCondition(vdd=0.9, temp_c=-30.0, process="ff"),
            LibraryCondition(vt_shift_aging=0.04, temp_c=105.0),
        ]
        design = hvt_heavy_sta.design
        constraints = hvt_heavy_sta.constraints
        ddro = design_dependent_ro(hvt_heavy_sta, hvt_heavy_sta.report)
        ddro_track = evaluate_tracking(ddro, design, constraints, conditions)
        generic_track = evaluate_tracking(generic_ro(), design, constraints,
                                          conditions)
        assert ddro_track.mean_tracking_error < \
            0.5 * generic_track.mean_tracking_error
        assert ddro_track.max_tracking_error < \
            generic_track.max_tracking_error


class TestMonitorGuidedAvs:
    def test_aged_silicon_needs_more_voltage(self):
        ro = generic_ro()
        fresh = monitor_guided_voltage(ro, 1.15, delta_vt=0.0)
        aged = monitor_guided_voltage(ro, 1.15, delta_vt=0.05)
        assert aged > fresh

    def test_looser_target_lower_voltage(self):
        ro = generic_ro()
        tight = monitor_guided_voltage(ro, 1.05, delta_vt=0.03)
        loose = monitor_guided_voltage(ro, 1.40, delta_vt=0.03)
        assert loose <= tight

    def test_unreachable_target_raises(self):
        ro = generic_ro()
        with pytest.raises(SignoffError):
            monitor_guided_voltage(ro, 0.3, delta_vt=0.08, v_max=0.7)
