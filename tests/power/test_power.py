"""Tests for power models."""

import pytest

from repro.beol.corners import conventional_corners
from repro.beol.stack import default_stack
from repro.errors import ReproError
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import tiny_design
from repro.parasitics.synthesis import ParasiticExtractor
from repro.power.models import (
    PowerReport,
    design_power,
    dynamic_power,
    power_area_summary,
)


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture()
def setup(lib):
    d = tiny_design()
    d.bind(lib)
    stack = default_stack()
    extractor = ParasiticExtractor(
        d, lib, stack, conventional_corners(stack)["typ"]
    )
    return d, extractor


class TestDynamicPower:
    def test_positive(self, lib, setup):
        d, ex = setup
        assert dynamic_power(d, lib, ex, period=500.0) > 0.0

    def test_scales_with_frequency(self, lib, setup):
        d, ex = setup
        fast = dynamic_power(d, lib, ex, period=250.0)
        slow = dynamic_power(d, lib, ex, period=500.0)
        assert fast == pytest.approx(2.0 * slow)

    def test_scales_with_voltage_squared(self, lib, setup):
        d, ex = setup
        hi = dynamic_power(d, lib, ex, period=500.0, vdd=1.0)
        lo = dynamic_power(d, lib, ex, period=500.0, vdd=0.5)
        assert hi == pytest.approx(4.0 * lo)

    def test_scales_with_activity(self, lib, setup):
        d, ex = setup
        busy = dynamic_power(d, lib, ex, period=500.0, activity=0.3)
        idle = dynamic_power(d, lib, ex, period=500.0, activity=0.1)
        assert busy == pytest.approx(3.0 * idle)

    def test_bad_period_rejected(self, lib, setup):
        d, ex = setup
        with pytest.raises(ReproError):
            dynamic_power(d, lib, ex, period=0.0)


class TestDesignPower:
    def test_report_components(self, lib, setup):
        d, ex = setup
        report = design_power(d, lib, ex, period=500.0)
        assert report.total == pytest.approx(report.leakage + report.dynamic)
        assert report.leakage > 0.0
        assert "power" in str(report)

    def test_leakage_scales_with_voltage(self, lib, setup):
        d, ex = setup
        hi = design_power(d, lib, ex, period=500.0, vdd=1.0)
        lo = design_power(d, lib, ex, period=500.0, vdd=0.8)
        assert hi.leakage > lo.leakage

    def test_lvt_design_leaks_more(self, setup):
        d, _ = setup
        lvt_lib = make_library(LibraryCondition(), flavors=("lvt",))
        svt_lib = make_library(LibraryCondition(), flavors=("svt",))
        from repro.netlist.generators import tiny_design as td

        d_lvt = td(flavor="lvt")
        d_svt = td(flavor="svt")
        assert d_lvt.total_leakage(lvt_lib) > d_svt.total_leakage(svt_lib)

    def test_hot_library_leaks_more(self):
        cold = make_library(LibraryCondition(temp_c=25.0))
        hot = make_library(LibraryCondition(temp_c=125.0))
        d_cold = tiny_design()
        d_hot = tiny_design()
        assert d_hot.total_leakage(hot) > d_cold.total_leakage(cold)


class TestPowerAreaSummary:
    def test_matches_building_blocks(self, lib, setup):
        d, ex = setup
        summary = power_area_summary(d, lib, period=500.0)
        report = design_power(d, lib, ex, period=500.0)
        assert summary.total_power == pytest.approx(report.total)
        assert summary.power.leakage == pytest.approx(report.leakage)
        assert summary.area == pytest.approx(d.total_area(lib))
        assert summary.cells == len(d.instances)

    def test_unbound_design_ok(self, lib):
        # A campaign worker scores candidates without binding them.
        summary = power_area_summary(tiny_design(), lib, period=500.0)
        assert summary.total_power > 0.0
        assert summary.area > 0.0

    def test_dynamic_scales_with_frequency(self, lib):
        d = tiny_design()
        fast = power_area_summary(d, lib, period=250.0)
        slow = power_area_summary(d, lib, period=500.0)
        assert fast.power.dynamic == pytest.approx(
            2.0 * slow.power.dynamic)
        assert fast.area == pytest.approx(slow.area)

    def test_activity_knob(self, lib):
        d = tiny_design()
        busy = power_area_summary(d, lib, period=500.0, activity=0.3)
        idle = power_area_summary(d, lib, period=500.0, activity=0.1)
        assert busy.power.dynamic == pytest.approx(
            3.0 * idle.power.dynamic)

    def test_render_mentions_components(self, lib):
        text = power_area_summary(tiny_design(), lib, period=500.0).render()
        assert "power" in text and "area" in text

    def test_bad_period_rejected(self, lib):
        with pytest.raises(ReproError):
            power_area_summary(tiny_design(), lib, period=-1.0)
