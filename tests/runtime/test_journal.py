"""Tests for the append-only checkpoint journal."""

import json

import pytest

from repro.errors import CheckpointError
from repro.runtime.journal import RunJournal


class TestRoundtrip:
    def test_record_lookup(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record("scenario", ("chip", "abc", "fp1"), {"wns": -12.5})
        assert journal.lookup("scenario", ("chip", "abc", "fp1")) == {
            "wns": -12.5
        }
        assert journal.lookup("scenario", ("chip", "abc", "fp2")) is None
        assert journal.lookup("closure", ("chip", "abc", "fp1")) is None

    def test_survives_reload(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("scenario", ("a",), {"x": 1})
        journal.record("scenario", ("b",), {"x": 2})
        journal.record("closure", ("a", 1), [1, 2, 3])

        reloaded = RunJournal(path)
        assert len(reloaded) == 3
        assert reloaded.lookup("scenario", ("b",)) == {"x": 2}
        assert reloaded.lookup("closure", ("a", 1)) == [1, 2, 3]
        assert reloaded.corrupt_entries == 0

    def test_rerecord_overwrites(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record("scenario", ("a",), {"x": 1})
        journal.record("scenario", ("a",), {"x": 2})
        assert journal.lookup("scenario", ("a",)) == {"x": 2}
        # on reload the later line wins too
        assert RunJournal(journal.path).lookup("scenario", ("a",)) == {"x": 2}

    def test_lookup_returns_fresh_copies(self, tmp_path):
        """Journaled state must not alias live objects the caller keeps
        mutating (closure checkpoints a design that changes every
        iteration)."""
        journal = RunJournal(tmp_path / "run.jsonl")
        payload = {"edits": [1, 2]}
        journal.record("closure", ("k", 1), payload)
        payload["edits"].append(3)  # caller keeps mutating
        assert journal.lookup("closure", ("k", 1)) == {"edits": [1, 2]}
        # and each lookup is an independent copy
        first = journal.lookup("closure", ("k", 1))
        first["edits"].clear()
        assert journal.lookup("closure", ("k", 1)) == {"edits": [1, 2]}

    def test_keys_and_count(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record("scenario", ("a",), 1)
        journal.record("scenario", ("b",), 2)
        journal.record("closure", ("c", 3), 3)
        assert journal.keys("scenario") == [("a",), ("b",)]
        assert journal.count("scenario") == 2
        assert journal.count() == 3

    def test_list_keys_normalized_to_tuples(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record("scenario", ["a", ["b", 1]], "payload")
        assert journal.lookup("scenario", ("a", ("b", 1))) == "payload"
        # and survives the JSON round-trip on reload
        assert RunJournal(journal.path).lookup(
            "scenario", ("a", ("b", 1))
        ) == "payload"

    def test_non_plain_key_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        with pytest.raises(CheckpointError):
            journal.record("scenario", (object(),), 1)

    def test_unpicklable_payload_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "run.jsonl")
        with pytest.raises(CheckpointError):
            journal.record("scenario", ("a",), lambda: None)
        # nothing half-written
        assert len(journal) == 0


class TestCrashSafety:
    def test_truncated_tail_is_skipped(self, tmp_path):
        """A SIGKILL mid-write leaves a truncated final line; every
        intact entry before it must still load."""
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("scenario", ("a",), {"x": 1})
        journal.record("scenario", ("b",), {"x": 2})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "kind": "scenario", "key": ["c"], "sh')

        reloaded = RunJournal(path)
        assert len(reloaded) == 2
        assert reloaded.corrupt_entries == 1
        assert reloaded.lookup("scenario", ("a",)) == {"x": 1}
        assert reloaded.lookup("scenario", ("c",)) is None

    def test_corrupted_payload_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("scenario", ("a",), {"x": 1})
        journal.record("scenario", ("b",), {"x": 2})

        # flip the payload of the first line without fixing its sha
        lines = path.read_text().splitlines()
        row = json.loads(lines[0])
        row["data"] = row["data"][:-4] + "AAA="
        lines[0] = json.dumps(row)
        path.write_text("\n".join(lines) + "\n")

        reloaded = RunJournal(path)
        assert reloaded.corrupt_entries == 1
        assert reloaded.lookup("scenario", ("a",)) is None
        assert reloaded.lookup("scenario", ("b",)) == {"x": 2}

    def test_version_mismatch_is_skipped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("scenario", ("a",), 1)
        lines = path.read_text().splitlines()
        row = json.loads(lines[0])
        row["v"] = 99
        path.write_text(json.dumps(row) + "\n")
        reloaded = RunJournal(path)
        assert len(reloaded) == 0
        assert reloaded.corrupt_entries == 1

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("scenario", ("a",), 1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("\n\n")
        reloaded = RunJournal(path)
        assert len(reloaded) == 1
        assert reloaded.corrupt_entries == 0

    def test_missing_file_is_empty(self, tmp_path):
        journal = RunJournal(tmp_path / "does-not-exist.jsonl")
        assert len(journal) == 0
        assert journal.lookup("scenario", ("a",)) is None

    def test_clear_removes_file(self, tmp_path):
        path = tmp_path / "run.jsonl"
        journal = RunJournal(path)
        journal.record("scenario", ("a",), 1)
        assert path.exists()
        journal.clear()
        assert not path.exists()
        assert len(journal) == 0
        assert len(RunJournal(path)) == 0


class TestIoDegradation:
    """IO failure degrades the journal, never the run (PR 5 contract)."""

    def test_fsync_oserror_marks_unavailable(self, tmp_path, monkeypatch):
        journal = RunJournal(tmp_path / "run.jsonl")
        assert journal.record("scenario", ("ok",), {"x": 1}) is True

        def dying_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr("repro.runtime.journal.os.fsync", dying_fsync)
        assert journal.record("scenario", ("lost",), {"x": 2}) is False
        assert journal.available is False
        assert journal.io_errors == 1
        assert "OSError" in journal.last_error
        assert "No space left" in journal.last_error

    def test_open_oserror_marks_unavailable(self, tmp_path, monkeypatch):
        journal = RunJournal(tmp_path / "run.jsonl")
        real_open = open

        def dying_open(*args, **kwargs):
            raise PermissionError(13, "Permission denied")

        monkeypatch.setattr("builtins.open", dying_open)
        try:
            assert journal.record("scenario", ("lost",), {"x": 1}) is False
        finally:
            monkeypatch.setattr("builtins.open", real_open)
        assert journal.available is False
        assert journal.last_error.startswith("PermissionError")

    def test_further_records_noop_after_failure(self, tmp_path,
                                                monkeypatch):
        journal = RunJournal(tmp_path / "run.jsonl")
        monkeypatch.setattr(
            "repro.runtime.journal.os.fsync",
            lambda fd: (_ for _ in ()).throw(OSError(5, "I/O error")),
        )
        assert journal.record("scenario", ("a",), {}) is False
        monkeypatch.undo()  # the disk "recovers" — journal stays down
        assert journal.record("scenario", ("b",), {}) is False
        assert journal.io_errors == 1  # only the first append touched IO

    def test_failed_entry_not_served_from_memory(self, tmp_path,
                                                 monkeypatch):
        journal = RunJournal(tmp_path / "run.jsonl")
        monkeypatch.setattr(
            "repro.runtime.journal.os.fsync",
            lambda fd: (_ for _ in ()).throw(OSError(5, "I/O error")),
        )
        journal.record("scenario", ("lost",), {"x": 1})
        # The entry never hit disk, so it must not be claimable later.
        assert journal.lookup("scenario", ("lost",)) is None
        assert len(journal) == 0

    def test_recorded_entries_survive_degradation(self, tmp_path,
                                                  monkeypatch):
        journal = RunJournal(tmp_path / "run.jsonl")
        journal.record("scenario", ("kept",), {"wns": -1.0})
        monkeypatch.setattr(
            "repro.runtime.journal.os.fsync",
            lambda fd: (_ for _ in ()).throw(OSError(5, "I/O error")),
        )
        journal.record("scenario", ("lost",), {"wns": -2.0})
        # In-process lookups of already-durable entries keep working.
        assert journal.lookup("scenario", ("kept",)) == {"wns": -1.0}
        assert journal.available is False

    def test_degraded_record_skips_serialization_entirely(self, tmp_path,
                                                          monkeypatch):
        journal = RunJournal(tmp_path / "run.jsonl")
        monkeypatch.setattr(
            "repro.runtime.journal.os.fsync",
            lambda fd: (_ for _ in ()).throw(OSError(5, "I/O error")),
        )
        journal.record("scenario", ("a",), {})
        assert not journal.available
        # A dead journal does no work: even an unpicklable payload is a
        # silent no-op (the picklable-check belongs to the live path).
        assert journal.record("scenario", ("b",), lambda: None) is False
