"""Tests for the supervised executor: retries, timeouts, quarantine,
executor fallback."""

import time

import pytest

from repro.errors import (
    ExecutorBrokenError,
    TaskDegradedError,
    TimingError,
)
from repro.runtime.supervisor import (
    RetryPolicy,
    SupervisedExecutor,
    SupervisedTask,
    TaskStatus,
)


def _ok(payload, attempt):
    return payload * 2


def _flaky(payload, attempt):
    """Fails on attempt 1, succeeds after."""
    if attempt == 1:
        raise ValueError("transient")
    return f"recovered:{payload}"


def _always_fails(payload, attempt):
    raise RuntimeError("persistent corruption")


def _hangs_once(payload, attempt):
    if attempt == 1:
        time.sleep(0.6)
    return f"done:{payload}"


def _breaks_pool_once(payload, attempt):
    if attempt == 1:
        raise ExecutorBrokenError("injected pool death")
    return f"survived:{payload}"


def run_tasks(fn, payloads, **kwargs):
    kwargs.setdefault("sleep", lambda s: None)
    sup = SupervisedExecutor(**{k: v for k, v in kwargs.items()
                                if k not in ("names",)})
    names = kwargs.get("names") or [f"t{i}" for i in range(len(payloads))]
    tasks = [SupervisedTask(name=n, fn=fn, payload=p)
             for n, p in zip(names, payloads)]
    return sup, sup.run(tasks)


class TestHappyPath:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_all_ok(self, executor):
        sup, execs = run_tasks(_ok, [1, 2, 3], jobs=2, executor=executor)
        assert [e.result for e in execs] == [2, 4, 6]
        assert all(e.status is TaskStatus.OK for e in execs)
        assert all(e.attempts == 1 for e in execs)
        assert sup.fallbacks == []
        assert sup.executor_used == executor

    def test_results_in_submission_order(self):
        sup, execs = run_tasks(_ok, list(range(8)), jobs=4)
        assert [e.name for e in execs] == [f"t{i}" for i in range(8)]
        assert [e.result for e in execs] == [i * 2 for i in range(8)]

    def test_unique_names_required(self):
        sup = SupervisedExecutor()
        with pytest.raises(TimingError):
            sup.run([SupervisedTask("a", _ok, 1),
                     SupervisedTask("a", _ok, 2)])

    def test_unknown_executor_rejected(self):
        with pytest.raises(TimingError):
            SupervisedExecutor(executor="mpi")

    def test_jobs_positive(self):
        with pytest.raises(TimingError):
            SupervisedExecutor(jobs=0)


class TestRetry:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_transient_failure_is_retried(self, executor):
        sup, execs = run_tasks(_flaky, ["a"], executor=executor,
                               policy=RetryPolicy(retries=2))
        (e,) = execs
        assert e.status is TaskStatus.RETRIED
        assert e.attempts == 2
        assert e.result == "recovered:a"
        assert "attempt 1" in e.error_chain[0]

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_persistent_failure_quarantined(self, executor):
        sup, execs = run_tasks(_always_fails, ["a"], executor=executor,
                               policy=RetryPolicy(retries=2))
        (e,) = execs
        assert e.status is TaskStatus.DEGRADED
        assert e.attempts == 3
        assert isinstance(e.error, TaskDegradedError)
        assert e.error.context["attempts"] == 3
        assert len(e.error_chain) == 3

    def test_degraded_does_not_abort_batch(self):
        def one_bad(payload, attempt):
            if payload == "bad":
                raise RuntimeError("boom")
            return payload

        sup, execs = run_tasks(
            one_bad, ["ok1", "bad", "ok2"], jobs=2,
            policy=RetryPolicy(retries=1),
        )
        assert [e.status for e in execs] == [
            TaskStatus.OK, TaskStatus.DEGRADED, TaskStatus.OK
        ]
        assert execs[0].result == "ok1" and execs[2].result == "ok2"

    def test_backoff_schedule(self):
        slept = []
        run_tasks(_always_fails, ["a"],
                  policy=RetryPolicy(retries=3, backoff_s=0.1,
                                     backoff_factor=2.0, max_backoff_s=0.3),
                  sleep=slept.append)
        assert slept == [0.1, 0.2, 0.3]  # capped at max_backoff_s

    def test_retry_policy_validation(self):
        with pytest.raises(TimingError):
            RetryPolicy(retries=-1)
        with pytest.raises(TimingError):
            RetryPolicy(timeout_s=0.0)


class TestTimeout:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_hang_times_out_and_retries(self, executor):
        sup, execs = run_tasks(
            _hangs_once, ["x"], executor=executor,
            policy=RetryPolicy(retries=1, timeout_s=0.1, backoff_s=0.0),
        )
        (e,) = execs
        assert e.status is TaskStatus.RETRIED
        assert e.result == "done:x"
        assert "WorkerTimeoutError" in e.error_chain[0]

    def test_hang_exhausting_attempts_degrades(self):
        def hang_forever(payload, attempt):
            time.sleep(0.4)
            return "never awarded"

        sup, execs = run_tasks(
            hang_forever, ["x"], executor="thread",
            policy=RetryPolicy(retries=1, timeout_s=0.05, backoff_s=0.0),
        )
        (e,) = execs
        assert e.status is TaskStatus.DEGRADED
        assert "WorkerTimeoutError" in e.error_chain[-1]

    def test_bystanders_survive_a_hang(self):
        def one_hangs(payload, attempt):
            if payload == "slow" and attempt == 1:
                time.sleep(0.5)
            return payload

        sup, execs = run_tasks(
            one_hangs, ["a", "slow", "b", "c"], jobs=2, executor="thread",
            policy=RetryPolicy(retries=2, timeout_s=0.1, backoff_s=0.0),
        )
        by_name = {e.name: e for e in execs}
        assert all(e.ok for e in execs)
        assert by_name["t1"].status is TaskStatus.RETRIED


class TestFallback:
    def test_pool_break_falls_back(self):
        sup, execs = run_tasks(
            _breaks_pool_once, ["x"], jobs=2, executor="thread",
            policy=RetryPolicy(retries=2, backoff_s=0.0),
        )
        (e,) = execs
        assert e.ok
        assert e.result == "survived:x"
        assert sup.fallbacks == ["thread->serial"]
        assert sup.executor_used == "serial"

    def test_fallback_disabled_raises(self):
        with pytest.raises(ExecutorBrokenError):
            run_tasks(_breaks_pool_once, ["x"], jobs=2, executor="thread",
                      allow_fallback=False,
                      policy=RetryPolicy(retries=2, backoff_s=0.0))

    def test_serial_treats_pool_break_as_crash(self):
        # Serial has nowhere to fall back: the injected breakage is
        # charged as a normal attempt failure and retried in place.
        sup, execs = run_tasks(
            _breaks_pool_once, ["x"], executor="serial",
            policy=RetryPolicy(retries=2, backoff_s=0.0),
        )
        (e,) = execs
        assert e.ok
        assert sup.fallbacks == []

    def test_bystanders_not_charged_by_pool_death(self):
        def breaker(payload, attempt):
            if payload == "bomb" and attempt == 1:
                raise ExecutorBrokenError("pool killed")
            return payload

        sup, execs = run_tasks(
            breaker, ["a", "bomb", "b"], jobs=3, executor="thread",
            policy=RetryPolicy(retries=1, backoff_s=0.0),
        )
        by_name = {e.name: e for e in execs}
        assert all(e.ok for e in execs)
        # only the triggering task pays an attempt
        assert by_name["t1"].attempts == 2
        assert by_name["t0"].status is not TaskStatus.DEGRADED
        assert by_name["t2"].status is not TaskStatus.DEGRADED


class TestWallTime:
    def test_wall_time_recorded(self):
        sup, execs = run_tasks(_ok, [1], executor="serial")
        assert execs[0].wall_time_s >= 0.0
