"""Tests for synthetic benchmark generators."""

import pytest

from repro.errors import NetlistError
from repro.liberty import make_library
from repro.netlist.generators import (
    aes_like,
    c5315_like,
    c7552_like,
    mpeg2_like,
    random_logic,
    ripple_adder_design,
    tiny_design,
)


@pytest.fixture(scope="module")
def lib():
    return make_library()


def bind_and_validate(design, lib):
    design.bind(lib)
    design.validate(lib)
    return design


class TestRandomLogic:
    def test_deterministic(self, lib):
        a = random_logic(n_gates=80, n_levels=4, seed=7)
        b = random_logic(n_gates=80, n_levels=4, seed=7)
        assert [i.cell_name for i in a.instances.values()] == [
            i.cell_name for i in b.instances.values()
        ]
        assert list(a.nets) == list(b.nets)

    def test_seed_changes_structure(self):
        a = random_logic(n_gates=80, n_levels=4, seed=7)
        b = random_logic(n_gates=80, n_levels=4, seed=8)
        assert [i.cell_name for i in a.instances.values()] != [
            i.cell_name for i in b.instances.values()
        ]

    def test_validates(self, lib):
        bind_and_validate(random_logic(n_gates=120, n_levels=6), lib)

    def test_gate_count(self, lib):
        d = random_logic(n_inputs=8, n_outputs=8, n_gates=100, n_levels=5)
        d.bind(lib)
        comb = [i for i in d.combinational_instances(lib)
                if not i.name.startswith("obuf")]
        assert len(comb) == 100

    def test_flop_counts(self, lib):
        d = random_logic(n_inputs=8, n_outputs=6, n_gates=50, n_levels=5)
        d.bind(lib)
        assert len(d.sequential_instances(lib)) == 14

    def test_clock_reaches_all_flops(self, lib):
        d = random_logic(n_inputs=4, n_outputs=4, n_gates=30, n_levels=3)
        d.bind(lib)
        clk_loads = {ref.instance for ref in d.get_net("clk").loads}
        flops = {i.name for i in d.sequential_instances(lib)}
        assert flops <= clk_loads

    def test_all_instances_placed(self):
        d = random_logic(n_gates=40, n_levels=4)
        assert all(i.location is not None for i in d.instances.values())

    def test_too_few_gates_rejected(self):
        with pytest.raises(NetlistError):
            random_logic(n_gates=2, n_levels=5)


class TestProfiles:
    def test_c5315_like_scaled(self, lib):
        d = bind_and_validate(c5315_like(scale=0.1), lib)
        assert 200 < len(d.instances) < 400

    def test_c7552_like_scaled(self, lib):
        d = bind_and_validate(c7552_like(scale=0.1), lib)
        assert 300 < len(d.instances) < 600

    def test_aes_like(self, lib):
        d = bind_and_validate(aes_like(n_sboxes=4, sbox_gates=20), lib)
        assert len(d.sequential_instances(lib)) == 4 * 8 + 4

    def test_mpeg2_like(self, lib):
        d = bind_and_validate(
            mpeg2_like(lanes=2, bits=4, control_gates=40), lib
        )
        assert len(d.instances) > 100

    def test_ripple_adder_structure(self, lib):
        d = bind_and_validate(ripple_adder_design(bits=4, lanes=1), lib)
        # 4 FAs x 9 NANDs plus 2*4 input flops + cin flop + 4 output flops.
        nands = [i for i in d.instances.values()
                 if i.cell_name.startswith("NAND2")]
        assert len(nands) == 36
        assert len(d.sequential_instances(lib)) == 13

    def test_tiny_design(self, lib):
        d = bind_and_validate(tiny_design(), lib)
        assert len(d.instances) == 5
