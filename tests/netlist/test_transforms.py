"""Tests for netlist transforms (the closure fix primitives)."""

import pytest

from repro.errors import NetlistError
from repro.liberty import make_library
from repro.netlist.design import PinRef
from repro.netlist.generators import tiny_design
from repro.netlist.transforms import (
    downsize,
    insert_buffer,
    resize,
    set_ndr,
    swap_cell,
    swap_vt,
    upsize,
)


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture()
def tiny(lib):
    d = tiny_design()
    d.bind(lib)
    return d


class TestSwap:
    def test_swap_vt(self, lib, tiny):
        edit = swap_vt(tiny, lib, "u1", "lvt")
        assert edit is not None
        assert tiny.instance("u1").cell_name == "NAND2_X1_LVT"
        assert edit.kind == "swap"

    def test_swap_vt_same_flavor_noop(self, lib, tiny):
        assert swap_vt(tiny, lib, "u1", "svt") is None

    def test_swap_vt_missing_variant(self, lib, tiny):
        assert swap_vt(tiny, lib, "u1", "uhvt") is None

    def test_swap_wrong_footprint_rejected(self, lib, tiny):
        with pytest.raises(NetlistError, match="footprint"):
            swap_cell(tiny, lib, "u1", "INV_X1_SVT")

    def test_dont_touch_respected(self, lib, tiny):
        tiny.instance("u1").dont_touch = True
        with pytest.raises(NetlistError, match="dont_touch"):
            swap_cell(tiny, lib, "u1", "NAND2_X2_SVT")


class TestResize:
    def test_resize(self, lib, tiny):
        edit = resize(tiny, lib, "u2", 4.0)
        assert tiny.instance("u2").cell_name == "INV_X4_SVT"
        assert "INV_X1_SVT" in edit.before

    def test_upsize_steps_one(self, lib, tiny):
        upsize(tiny, lib, "u2")
        assert tiny.instance("u2").cell_name == "INV_X2_SVT"

    def test_upsize_at_max_returns_none(self, lib, tiny):
        resize(tiny, lib, "u2", 8.0)
        assert upsize(tiny, lib, "u2") is None

    def test_downsize_steps_one(self, lib, tiny):
        resize(tiny, lib, "u2", 4.0)
        downsize(tiny, lib, "u2")
        assert tiny.instance("u2").cell_name == "INV_X2_SVT"

    def test_downsize_at_min_returns_none(self, lib, tiny):
        resize(tiny, lib, "u2", 0.5)
        assert downsize(tiny, lib, "u2") is None


class TestBufferInsertion:
    def test_buffer_all_loads(self, lib, tiny):
        edit = insert_buffer(tiny, lib, "n1", "BUF_X2_SVT")
        buf_name = edit.after
        buf = tiny.instance(buf_name)
        assert buf.cell_name == "BUF_X2_SVT"
        # Original net now feeds only the buffer.
        assert tiny.get_net("n1").loads == [PinRef(buf_name, "A")]
        # u2 moved onto the new net.
        new_net = buf.net_of("Z")
        assert PinRef("u2", "A") in tiny.get_net(new_net).loads
        assert tiny.instance("u2").net_of("A") == new_net
        tiny.validate(lib)

    def test_buffer_subset(self, lib):
        d = tiny_design()
        d.bind(lib)
        # clk has three flop loads; split off two.
        subset = [PinRef("ff0", "CK"), PinRef("ff1", "CK")]
        insert_buffer(d, lib, "clk", "BUF_X4_SVT", load_subset=subset)
        assert d.get_net("clk").fanout == 2  # remaining flop + buffer input
        d.validate(lib)

    def test_buffer_placed_at_centroid(self, lib, tiny):
        edit = insert_buffer(tiny, lib, "n1", "BUF_X1_SVT")
        loc = tiny.instance(edit.after).location
        assert loc == (12.0, 1.4)  # centroid of u2's location

    def test_buffer_undriven_net_rejected(self, lib, tiny):
        tiny.get_net("n1").driver = None
        with pytest.raises(NetlistError, match="undriven"):
            insert_buffer(tiny, lib, "n1", "BUF_X1_SVT")

    def test_buffer_non_buffer_cell_rejected(self, lib, tiny):
        with pytest.raises(NetlistError, match="not a buffer"):
            insert_buffer(tiny, lib, "n1", "INV_X1_SVT")

    def test_buffer_bad_subset_rejected(self, lib, tiny):
        with pytest.raises(NetlistError, match="not a load"):
            insert_buffer(tiny, lib, "n1", "BUF_X1_SVT",
                          load_subset=[PinRef("ff0", "CK")])


class TestNdr:
    def test_set_ndr(self, tiny):
        edit = set_ndr(tiny, "n1")
        assert tiny.get_net("n1").ndr
        assert edit.kind == "ndr"

    def test_edit_str(self, tiny):
        edit = set_ndr(tiny, "n1")
        assert "ndr" in str(edit)
