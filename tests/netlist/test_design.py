"""Tests for the netlist data model."""

import pytest

from repro.errors import NetlistError
from repro.liberty import make_library
from repro.netlist.design import Design, PinRef, PortDirection
from repro.netlist.generators import tiny_design


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture()
def tiny(lib):
    d = tiny_design()
    d.bind(lib)
    return d


class TestPinRef:
    def test_port_ref(self):
        ref = PinRef("", "clk")
        assert ref.is_port
        assert str(ref) == "clk"

    def test_instance_ref(self):
        ref = PinRef("u1", "A")
        assert not ref.is_port
        assert str(ref) == "u1/A"


class TestConstruction:
    def test_duplicate_port_rejected(self):
        d = Design("x")
        d.add_port("a", PortDirection.INPUT)
        with pytest.raises(NetlistError):
            d.add_port("a", PortDirection.INPUT)

    def test_duplicate_instance_rejected(self, lib):
        d = Design("x")
        d.add_instance("u1", "INV_X1_SVT", {"A": "a", "ZN": "z"})
        with pytest.raises(NetlistError):
            d.add_instance("u1", "INV_X1_SVT", {"A": "a", "ZN": "z"})

    def test_input_port_drives_its_net(self):
        d = Design("x")
        d.add_port("a", PortDirection.INPUT)
        assert d.get_net("a").driver == PinRef("", "a")

    def test_output_port_loads_its_net(self):
        d = Design("x")
        d.add_port("z", PortDirection.OUTPUT)
        assert PinRef("", "z") in d.get_net("z").loads


class TestBind:
    def test_bind_assigns_drivers(self, tiny):
        assert tiny.get_net("n1").driver == PinRef("u1", "ZN")

    def test_bind_assigns_loads(self, tiny):
        loads = tiny.get_net("n1").loads
        assert PinRef("u2", "A") in loads

    def test_bind_is_idempotent(self, lib, tiny):
        before = list(tiny.get_net("n1").loads)
        tiny.bind(lib)
        assert tiny.get_net("n1").loads == before

    def test_multiple_drivers_rejected(self, lib):
        d = Design("x")
        d.add_instance("u1", "INV_X1_SVT", {"A": "a", "ZN": "z"})
        d.add_instance("u2", "INV_X1_SVT", {"A": "b", "ZN": "z"})
        with pytest.raises(NetlistError, match="multiple drivers"):
            d.bind(lib)

    def test_validate_catches_unconnected_pin(self, lib):
        d = Design("x")
        d.add_instance("u1", "NAND2_X1_SVT", {"A": "a", "ZN": "z"})  # B missing
        d.bind(lib)
        with pytest.raises(NetlistError, match="unconnected"):
            d.validate(lib)

    def test_validate_catches_undriven_net(self, lib):
        d = Design("x")
        d.add_instance("u1", "INV_X1_SVT", {"A": "floating", "ZN": "z"})
        d.bind(lib)
        with pytest.raises(NetlistError, match="no driver"):
            d.validate(lib)

    def test_tiny_validates(self, lib, tiny):
        tiny.validate(lib)  # must not raise


class TestQueries:
    def test_missing_instance_raises(self, tiny):
        with pytest.raises(NetlistError):
            tiny.instance("nope")

    def test_missing_net_raises(self, tiny):
        with pytest.raises(NetlistError):
            tiny.get_net("nope")

    def test_ports_by_direction(self, tiny):
        assert set(tiny.input_ports()) == {"clk", "in0", "in1"}
        assert tiny.output_ports() == ["out"]

    def test_sequential_split(self, lib, tiny):
        seq = {i.name for i in tiny.sequential_instances(lib)}
        comb = {i.name for i in tiny.combinational_instances(lib)}
        assert seq == {"ff0", "ff1", "ff2"}
        assert comb == {"u1", "u2"}

    def test_total_area_positive(self, lib, tiny):
        assert tiny.total_area(lib) > 0.0

    def test_total_leakage_positive(self, lib, tiny):
        assert tiny.total_leakage(lib) > 0.0

    def test_hpwl(self, tiny):
        # n1: u1 at (6, 1.4), u2 at (12, 1.4) -> HPWL = 6.
        assert tiny.net_hpwl("n1") == pytest.approx(6.0)

    def test_hpwl_single_pin_zero(self, lib):
        d = Design("x")
        d.add_instance("u1", "INV_X1_SVT", {"A": "a", "ZN": "z"},
                       location=(0.0, 0.0))
        assert d.net_hpwl("z") == 0.0

    def test_unique_name(self, tiny):
        n1 = tiny.unique_name("buf")
        n2 = tiny.unique_name("buf")
        assert n1 != n2

    def test_fanout(self, tiny):
        assert tiny.get_net("clk").fanout == 3

    def test_net_of(self, tiny):
        assert tiny.instance("u1").net_of("ZN") == "n1"
        with pytest.raises(NetlistError):
            tiny.instance("u1").net_of("X")
