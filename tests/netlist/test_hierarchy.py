"""Tests for hierarchical SoC construction and flattening."""

import pytest

from repro.errors import NetlistError
from repro.liberty import make_library
from repro.netlist.design import PortDirection
from repro.netlist.generators import aes_like, hierarchical_soc, random_logic
from repro.netlist.hierarchy import (
    HierarchicalDesign,
    feedthrough_block,
    with_boundary_anchors,
)
from repro.sta import STA


@pytest.fixture(scope="module")
def lib():
    return make_library()


class TestBoundaryAnchors:
    def test_every_data_port_gets_an_anchor(self):
        d = with_boundary_anchors(random_logic("blk", seed=5))
        for port, direction in d.ports.items():
            if port == "clk":
                continue
            name = (f"abuf_{port}" if direction is PortDirection.INPUT
                    else f"obuf_{port}")
            assert name in d.instances
            assert d.instances[name].location == (0.0, 0.0)

    def test_input_anchor_is_the_ports_only_consumer(self, lib):
        d = with_boundary_anchors(random_logic("blk", seed=5))
        d.bind(lib)
        for port, direction in d.ports.items():
            if port == "clk" or direction is not PortDirection.INPUT:
                continue
            loads = d.nets[port].loads
            assert len(loads) == 1
            assert loads[0].instance == f"abuf_{port}"

    def test_anchored_block_still_times_cleanly(self, lib):
        from repro.sta import Constraints

        d = with_boundary_anchors(aes_like("a", n_sboxes=2, seed=3))
        report = STA(d, lib, Constraints.single_clock(900.0)).run()
        assert report.wns("setup") > 0

    def test_internal_net_collision_rejected(self):
        d = random_logic("blk", seed=5)
        port = next(p for p, dr in d.ports.items()
                    if dr is PortDirection.INPUT and p != "clk")
        d.add_instance("clash", "BUF_X1_SVT",
                       {"A": port, "Z": f"{port}__a"})
        with pytest.raises(NetlistError, match="already exists"):
            with_boundary_anchors(d)


class TestFeedthroughBlock:
    def test_channels_and_registered_path(self):
        d = feedthrough_block(channels=3)
        for i in range(3):
            assert f"ft_in{i}" in d.ports and f"ft_out{i}" in d.ports
            assert f"ftbuf{i}" in d.instances
        assert "ffd" in d.instances
        assert d.instances["ffd"].cell_name.startswith("DFF")


class TestHierarchicalDesign:
    def _two_blocks(self):
        hier = HierarchicalDesign("duo")
        hier.add_block("b0", with_boundary_anchors(
            random_logic("rl0", seed=1)), origin=(40.0, 20.0))
        hier.add_block("b1", with_boundary_anchors(
            random_logic("rl1", seed=2)), origin=(200.0, 110.0))
        return hier

    def test_duplicate_block_rejected(self):
        hier = self._two_blocks()
        with pytest.raises(NetlistError, match="duplicate"):
            hier.add_block("b0", random_logic("x", seed=3))

    def test_block_needs_clock_port(self):
        hier = HierarchicalDesign()
        from repro.netlist.design import Design

        clockless = Design("nc")
        clockless.add_port("a", PortDirection.INPUT)
        with pytest.raises(NetlistError, match="clock port"):
            hier.add_block("b", clockless)

    def test_connect_validates_directions(self):
        hier = self._two_blocks()
        out = hier.free_outputs("b0")[0]
        inp = hier.free_inputs("b1")[0]
        hier.connect("b0", out, "b1", inp)
        with pytest.raises(NetlistError, match="already driven"):
            hier.connect("b0", out, "b1", inp)
        with pytest.raises(NetlistError, match="not an output"):
            hier.connect("b0", hier.free_inputs("b0")[0], "b1",
                         hier.free_inputs("b1")[0])
        with pytest.raises(NetlistError, match="clock port"):
            hier.connect("b0", hier.free_outputs("b0")[0], "b1", "clk")

    def test_flatten_prefixes_and_clock_ports(self):
        hier = self._two_blocks()
        out = hier.free_outputs("b0")[0]
        inp = hier.free_inputs("b1")[0]
        hier.connect("b0", out, "b1", inp)
        flat = hier.flatten()
        assert flat.ports["clk_b0"] is PortDirection.INPUT
        assert flat.ports["clk_b1"] is PortDirection.INPUT
        # the linked pair shares one net and exposes no top port
        assert f"b0_{out}" not in flat.ports
        assert f"b1_{inp}" not in flat.ports
        for name, block in hier.blocks.items():
            for inst in block.design.instances:
                assert f"{name}_{inst}" in flat.instances

    def test_flatten_translates_locations(self):
        hier = self._two_blocks()
        flat = hier.flatten()
        block = hier.blocks["b1"]
        inst = next(iter(block.design.instances.values()))
        ox, oy = block.origin
        moved = flat.instances[f"b1_{inst.name}"].location
        assert moved == (inst.location[0] + ox, inst.location[1] + oy)

    def test_flatten_is_deterministic(self):
        a = self._two_blocks().flatten()
        b = self._two_blocks().flatten()
        assert list(a.instances) == list(b.instances)
        assert {str(k): v.name for k, v in a.nets.items()}.keys() == \
            {str(k): v.name for k, v in b.nets.items()}.keys()

    def test_top_constraints_one_clock_per_block(self):
        hier = self._two_blocks()
        cons = hier.top_constraints(period=800.0, periods={"b1": 640.0})
        assert set(cons.clocks) == {"clk_b0", "clk_b1"}
        assert cons.clocks["clk_b0"].period == 800.0
        assert cons.clocks["clk_b1"].period == 640.0
        assert cons.clocks["clk_b1"].port == "clk_b1"


class TestHierarchicalSocGenerator:
    def test_needs_two_blocks(self):
        with pytest.raises(NetlistError):
            hierarchical_soc(n_blocks=1)

    def test_round_trip_times_cleanly(self, lib):
        hier = hierarchical_soc(seed=4, n_blocks=3)
        flat = hier.flatten()
        cons = hier.top_constraints(period=900.0)
        report = STA(flat, lib, cons).run()
        assert report.wns("setup") > 0
        assert report.wns("hold") > 0

    def test_feedthrough_block_present_and_linked(self):
        hier = hierarchical_soc(seed=4, n_blocks=3)
        assert "ft" in hier.blocks
        dsts = {(l.dst_block, l.dst_port) for l in hier.links}
        assert ("ft", "ft_in0") in dsts
        srcs = {(l.src_block, l.src_port) for l in hier.links}
        assert ("ft", "ft_out0") in srcs

    def test_deterministic_for_seed(self):
        a = hierarchical_soc(seed=9).flatten()
        b = hierarchical_soc(seed=9).flatten()
        assert list(a.instances) == list(b.instances)
