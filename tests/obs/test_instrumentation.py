"""Integration tests: spans/metrics wired through the real pipelines.

These exercise the *instrumented sites* — closure loop, signoff
scheduler, incremental timer, supervisor — rather than the obs
primitives (covered in the sibling test modules).
"""

import pytest

from repro.core.closure import ClosureConfig, ClosureEngine
from repro.core.signoff import SignoffPolicy, evaluate_signoff
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic, tiny_design
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.export import chrome_trace, summarize
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.sta import Constraints
from repro.sta.mcmm import Scenario, ScenarioSet
from repro.sta.scheduler import ScenarioResultCache, SignoffScheduler


@pytest.fixture(scope="module")
def lib():
    return make_library()


@pytest.fixture(scope="module")
def lib_ss():
    return make_library(
        LibraryCondition(process="ss", vdd=0.72, temp_c=125.0)
    )


def constrained_design(period=520.0, seed=3, n_gates=300):
    d = random_logic(n_gates=n_gates, n_levels=10, seed=seed)
    c = Constraints.single_clock(period)
    c.input_delays = {p: 60.0 for p in d.input_ports() if p != "clk"}
    return d, c


def make_scenarios(lib, lib_ss):
    c = Constraints.single_clock(520.0)
    c.input_delays = {f"in{i}": 60.0 for i in range(16)}
    return [
        Scenario("tt_typ", lib, c),
        Scenario("ss_cw", lib_ss, c, beol_corner_name="cw", temp_c=125.0),
        Scenario("ss_rcw", lib_ss, c, beol_corner_name="rcw", temp_c=125.0),
    ]


def make_design(seed=9):
    return random_logic(n_inputs=16, n_outputs=16, n_gates=120,
                        n_levels=6, seed=seed)


def children(spans, parent):
    return [s for s in spans if s.parent_id == parent.span_id]


class TestClosureTracing:
    @pytest.fixture(scope="class")
    def traced(self, lib):
        d, c = constrained_design()
        tracer = Tracer()
        with obs_tracing.use(tracer):
            report = ClosureEngine(d, lib, c).run(
                ClosureConfig(max_iterations=5)
            )
        return tracer.spans(), report

    def test_span_tree_nests_iterations_stages_retimes(self, traced):
        spans, report = traced
        roots = [s for s in spans if s.parent_id is None]
        assert [s.name for s in roots] == ["closure"]
        root = roots[0]
        iterations = [s for s in children(spans, root)
                      if s.name == "iteration"]
        assert len(iterations) == len(report.iterations)
        assert [s.attrs["iteration"] for s in iterations] == \
            [r.iteration for r in report.iterations]
        # Every stage hangs off an iteration; every retime off a stage.
        stages = [s for s in spans if s.name == "stage"]
        assert stages, "closure on a violating design must run fix stages"
        iteration_ids = {s.span_id for s in iterations}
        assert all(s.parent_id in iteration_ids for s in stages)
        retimes = [s for s in spans if s.name == "retime"]
        stage_ids = {s.span_id for s in stages}
        assert retimes and all(s.parent_id in stage_ids for s in retimes)
        # The timer's cone/full spans nest under the retime spans.
        leaf_names = {"retime_cone", "full_update", "sta_build"}
        retime_ids = {s.span_id for s in retimes}
        leaves = [s for s in spans if s.name in leaf_names
                  and s.parent_id in retime_ids]
        assert leaves, "retime spans must contain timer-level spans"

    def test_fix_spans_record_engines(self, traced):
        spans, report = traced
        fix_spans = [s for s in spans if s.name == "fix"]
        engines_traced = {s.attrs["engine"] for s in fix_spans
                         if s.attrs.get("edits", 0) > 0}
        engines_reported = {name for r in report.iterations
                            for name in r.edits}
        assert engines_reported <= engines_traced

    def test_report_timing_fields_are_span_backed(self, traced):
        spans, report = traced
        retime_total = sum(s.duration_s for s in spans
                           if s.name == "retime" and "error" not in s.attrs)
        assert report.timing_wall_s == pytest.approx(retime_total, rel=1e-6)
        for record in report.iterations:
            assert record.retime_s >= 0.0
        assert sum(r.retime_s for r in report.iterations) == \
            pytest.approx(report.timing_wall_s, rel=1e-6)

    def test_summarize_sees_the_phases(self, traced):
        spans, _ = traced
        summary = summarize(chrome_trace(spans)["traceEvents"])
        for phase in ("closure", "iteration", "stage", "retime"):
            assert summary.phase(phase) is not None

    def test_disabled_tracing_gives_identical_render(self, lib):
        d1, c1 = constrained_design(seed=11, n_gates=150)
        d2, c2 = constrained_design(seed=11, n_gates=150)
        tracer = Tracer()
        with obs_tracing.use(tracer):
            traced = ClosureEngine(d1, lib, c1).run(
                ClosureConfig(max_iterations=3)
            )
        with obs_tracing.use(None):
            plain = ClosureEngine(d2, lib, c2).run(
                ClosureConfig(max_iterations=3)
            )
        # Wall-clock fields differ run to run; the trajectory and the
        # render *shape* must not.
        assert len(traced.iterations) == len(plain.iterations)
        for a, b in zip(traced.iterations, plain.iterations):
            assert (a.wns_setup, a.edits) == (b.wns_setup, b.edits)
            if a.total_edits:  # iterations that retimed have real walls
                assert a.retime_s > 0.0 and b.retime_s > 0.0
        assert traced.converged == plain.converged
        assert len(tracer) > 0

    def test_closure_metrics(self, lib):
        d, c = constrained_design(seed=11, n_gates=150)
        registry = MetricsRegistry()
        with obs_metrics.use(registry):
            report = ClosureEngine(d, lib, c).run(
                ClosureConfig(max_iterations=3)
            )
        assert registry.counter("closure.iterations").value == \
            len(report.iterations)
        total_edits = sum(r.total_edits for r in report.iterations)
        assert registry.counter("closure.edits").value == total_edits
        hist = registry.get("closure.retime_wall_s")
        assert hist is not None and hist.total > 0


class TestSignoffTracing:
    def test_worker_spans_come_home(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        tracer = Tracer()
        with obs_tracing.use(tracer):
            outcome = SignoffScheduler(
                scenarios, jobs=2, executor="thread"
            ).signoff(make_design())
        spans = tracer.spans()
        assert outcome.reports
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        (root,) = by_name["signoff"]
        (fanout,) = by_name["scenario_fanout"]
        assert fanout.parent_id == root.span_id
        scenario_spans = by_name["scenario"]
        assert {s.attrs["scenario"] for s in scenario_spans} == \
            {s.name for s in scenarios}
        assert all(s.parent_id == fanout.span_id for s in scenario_spans)
        scenario_ids = {s.span_id for s in scenario_spans}
        assert all(s.parent_id in scenario_ids
                   for s in by_name["sta_run"])

    def test_span_ids_deterministic_across_jobs_counts(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)

        def run(jobs):
            tracer = Tracer()
            with obs_tracing.use(tracer):
                SignoffScheduler(
                    scenarios, jobs=jobs, executor="thread"
                ).signoff(make_design())
            return [(s.span_id, s.parent_id, s.name,
                     s.attrs.get("scenario"))
                    for s in tracer.spans()]

        # jobs=1 legitimately skips isolate_design spans (serial runs
        # need no design isolation); parallel runs must match exactly.
        assert run(2) == run(3)
        serial = [row for row in run(1) if row[2] != "isolate_design"]
        parallel = [row[2:] for row in run(2)
                    if row[2] != "isolate_design"]
        assert [row[2:] for row in serial] == parallel

    def test_untraced_signoff_records_no_spans(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        with obs_tracing.use(None):
            outcome = SignoffScheduler(scenarios, jobs=2).signoff(
                make_design()
            )
        assert outcome.reports  # plain run unaffected


class TestSignoffMetricsAndCacheFooter:
    def test_cache_metrics_and_render_footer(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        design = make_design()
        cache = ScenarioResultCache(verify=False)
        scheduler = SignoffScheduler(scenarios, jobs=1, cache=cache)
        registry = MetricsRegistry()
        with obs_metrics.use(registry):
            cold = scheduler.signoff(design)
            warm = scheduler.signoff(design)
        assert registry.counter("signoff.cache.misses").value == \
            len(scenarios)
        assert registry.counter("signoff.cache.hits").value == \
            len(scenarios)
        assert registry.counter("signoff.passes").value == 2
        # The render footer surfaces the cache outcome of *this* pass.
        assert "cache: 0 hit(s) / 3 miss(es)" in cold.render("setup")
        assert "cache: 3 hit(s) / 0 miss(es)" in warm.render("setup")
        assert warm.cache_stats.hits == 3

    def test_render_without_cache_has_no_footer(self, lib, lib_ss):
        scenarios = make_scenarios(lib, lib_ss)
        outcome = SignoffScheduler(scenarios, jobs=1).signoff(make_design())
        assert outcome.cache_stats is None
        assert "cache:" not in outcome.render("setup")


class TestEvaluateSignoffSpan:
    def test_verdict_span_and_counters(self, lib):
        c = Constraints.single_clock(900.0)
        policy = SignoffPolicy(
            scenarios=ScenarioSet([Scenario("tt", lib, c)])
        )
        tracer, registry = Tracer(), MetricsRegistry()
        with obs_tracing.use(tracer), obs_metrics.use(registry):
            verdict = evaluate_signoff(tiny_design(), policy)
        names = [s.name for s in tracer.spans()]
        assert "evaluate_signoff" in names
        top = [s for s in tracer.spans()
               if s.name == "evaluate_signoff"][0]
        assert top.attrs["passed"] == verdict.passed
        assert registry.counter("signoff.verdicts").value == 1
        key = ("signoff.verdicts.passed" if verdict.passed
               else "signoff.verdicts.failed")
        assert registry.counter(key).value == 1


class TestJournalDegradationSurfaced:
    def test_signoff_continues_when_journal_dies(self, lib, lib_ss,
                                                 tmp_path, monkeypatch):
        from repro.runtime.journal import RunJournal

        scenarios = make_scenarios(lib, lib_ss)
        journal = RunJournal(tmp_path / "run.journal")
        registry = MetricsRegistry()
        # Kill the filesystem under the journal after construction.
        monkeypatch.setattr(
            "repro.runtime.journal.os.fsync",
            lambda fd: (_ for _ in ()).throw(OSError(28, "disk full")),
        )
        scheduler = SignoffScheduler(scenarios, jobs=1, journal=journal)
        with obs_metrics.use(registry):
            outcome = scheduler.signoff(make_design())
        # Every scenario still computed; the degradation is surfaced.
        assert sorted(outcome.reports) == sorted(s.name
                                                 for s in scenarios)
        assert not journal.available
        assert any("checkpoint unavailable" in e for e in outcome.events)
        assert registry.counter("runtime.journal.io_errors").value >= 1
