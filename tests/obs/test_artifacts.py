"""Tests for the shared results-artifact writer."""

import pytest

from repro.errors import ReproError
from repro.obs import format_table, write_artifact


class TestFormatTable:
    def test_alignment_and_precision(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.0], ["beta", 2.25]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        # Numeric column right-aligned, default 4 decimals.
        assert lines[1].endswith("1.0000")
        assert lines[2].endswith("2.2500")

    def test_title_and_notes(self):
        text = format_table(
            ["a"], [[1]], title="the title",
            notes=["first note", "second note"],
        )
        lines = text.splitlines()
        assert lines[0] == "the title"
        assert lines[-2] == "first note"
        assert lines[-1] == "second note"
        assert "" in lines  # blank separator before notes

    def test_none_renders_dash(self):
        text = format_table(["a", "b"], [[None, 1.5]])
        assert "-" in text.splitlines()[1]

    def test_numeric_with_suffix_right_aligned(self):
        # Ratio columns like "12.3x" still count as numeric.
        text = format_table(["speed"], [["9.1x"], ["12.3x"]])
        lines = text.splitlines()
        assert lines[1].endswith(" 9.1x")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestWriteArtifact:
    def test_writes_with_final_newline(self, tmp_path):
        path = write_artifact(tmp_path / "t.txt", "hello")
        assert path.read_text() == "hello\n"

    def test_creates_parent_dirs(self, tmp_path):
        path = write_artifact(tmp_path / "a" / "b" / "t.txt", "x")
        assert path.exists()

    def test_roundtrip_table(self, tmp_path):
        text = format_table(["k"], [[1]], title="t")
        path = write_artifact(tmp_path / "table.txt", text)
        assert path.read_text() == text + "\n"
