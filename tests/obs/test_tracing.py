"""Tests for the hierarchical span tracer."""

import pickle
import threading

from repro.obs import tracing
from repro.obs.tracing import NULL_SPAN, NullSpan, Span, Tracer


class TestSpanTree:
    def test_nesting_records_parent_links(self):
        tracer = Tracer()
        with tracer.span("signoff") as root:
            with tracer.span("scenario", corner="ss") as child:
                with tracer.span("sta_run") as grandchild:
                    pass
        spans = tracer.spans()
        assert [s.name for s in spans] == ["signoff", "scenario", "sta_run"]
        assert root.parent_id is None
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert child.attrs == {"corner": "ss"}

    def test_ids_are_deterministic_and_sequential(self):
        def record(tracer):
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass

        first, second = Tracer(), Tracer()
        record(first)
        record(second)
        assert [(s.span_id, s.parent_id, s.name) for s in first.spans()] == \
            [(s.span_id, s.parent_id, s.name) for s in second.spans()]
        assert [s.span_id for s in first.spans()] == [1, 2, 3]

    def test_durations_are_monotonic_and_nested(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans()
        assert outer.duration_s >= inner.duration_s >= 0.0
        assert outer.start_s <= inner.start_s
        assert outer.end_s >= inner.end_s

    def test_exception_closes_span_and_tags_error(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise ValueError("boom")
        except ValueError:
            pass
        (span_obj,) = tracer.spans()
        assert span_obj.attrs["error"] == "ValueError"
        assert span_obj.duration_s >= 0.0
        assert tracer.current_span_id() is None  # stack is clean

    def test_set_attaches_attrs_mid_span(self):
        tracer = Tracer()
        with tracer.span("retime_cone", edited=3) as span_obj:
            span_obj.set(cone=17)
        assert tracer.spans()[0].attrs == {"edited": 3, "cone": 17}

    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("worker_root"):
                done.set()

        with tracer.span("main_root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        by_name = {s.name: s for s in tracer.spans()}
        # The worker's root must NOT be parented under main's span.
        assert by_name["worker_root"].parent_id is None
        assert by_name["main_root"].parent_id is None
        assert done.is_set()


class TestIngest:
    def test_ingest_renumbers_and_reparents(self):
        worker = Tracer()
        with worker.span("scenario"):
            with worker.span("sta_run"):
                pass
        parent = Tracer()
        with parent.span("signoff") as root:
            pass
        adopted = parent.ingest(worker.spans(), parent_id=root.span_id)
        by_name = {s.name: s for s in parent.spans()}
        assert by_name["scenario"].parent_id == root.span_id
        assert by_name["sta_run"].parent_id == by_name["scenario"].span_id
        # New ids continue the parent tracer's sequence.
        assert {s.span_id for s in adopted} == {2, 3}

    def test_ingest_is_deterministic_across_orderings(self):
        def one_worker(name):
            tracer = Tracer()
            with tracer.span(name):
                pass
            return tracer.spans()

        a, b = one_worker("alpha"), one_worker("beta")
        first, second = Tracer(), Tracer()
        for target in (first, second):
            target.ingest(a)
            target.ingest(b)
        assert [(s.span_id, s.name) for s in first.spans()] == \
            [(s.span_id, s.name) for s in second.spans()]

    def test_spans_survive_pickling(self):
        tracer = Tracer()
        with tracer.span("scenario", corner="ss_720mv"):
            pass
        blob = pickle.dumps(tracer.spans())
        restored = pickle.loads(blob)
        target = Tracer()
        adopted = target.ingest(restored, parent_id=None)
        assert adopted[0].name == "scenario"
        assert adopted[0].attrs == {"corner": "ss_720mv"}


class TestActiveTracerProtocol:
    def test_disabled_span_is_shared_noop(self):
        assert tracing.active_tracer() is None
        span_obj = tracing.span("anything", key="value")
        assert span_obj is NULL_SPAN
        with span_obj as inner:
            inner.set(more="attrs")
        assert isinstance(span_obj, NullSpan)
        assert span_obj.attrs == {}

    def test_use_installs_and_restores(self):
        tracer = Tracer()
        assert tracing.active_tracer() is None
        with tracing.use(tracer):
            assert tracing.active_tracer() is tracer
            with tracing.span("live"):
                pass
        assert tracing.active_tracer() is None
        assert [s.name for s in tracer.spans()] == ["live"]

    def test_use_none_masks_process_default(self):
        tracer = Tracer()
        previous = tracing.set_default_tracer(tracer)
        try:
            assert tracing.active_tracer() is tracer
            with tracing.use(None):
                assert tracing.active_tracer() is None
                assert tracing.span("hidden") is NULL_SPAN
            assert tracing.active_tracer() is tracer
        finally:
            tracing.set_default_tracer(previous)

    def test_use_nests(self):
        outer, inner = Tracer(), Tracer()
        with tracing.use(outer):
            with tracing.use(inner):
                assert tracing.active_tracer() is inner
            assert tracing.active_tracer() is outer

    def test_thread_local_override_does_not_leak_across_threads(self):
        tracer = Tracer()
        seen = {}

        def probe():
            seen["other_thread"] = tracing.active_tracer()

        with tracing.use(tracer):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other_thread"] is None

    def test_clear_and_len(self):
        tracer = Tracer()
        with tracer.span("one"):
            pass
        assert len(tracer) == 1
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.spans() == []
