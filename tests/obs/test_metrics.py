"""Tests for the process-local metrics registry."""

import json

import pytest

from repro.errors import TimingError
from repro.obs import metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_accumulates_and_rejects_negative(self):
        counter = Counter("hits")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(TimingError):
            counter.inc(-1)
        assert counter.snapshot() == {"type": "counter", "value": 3.5}

    def test_gauge_is_last_write_wins(self):
        gauge = Gauge("entries")
        gauge.set(9)
        gauge.set(4)
        assert gauge.value == 4
        assert gauge.snapshot() == {"type": "gauge", "value": 4}

    def test_histogram_buckets_are_inclusive_upper_bounds(self):
        hist = Histogram("cone", buckets=(10, 100))
        for value in (1, 10, 11, 100, 5000):
            hist.observe(value)
        # counts: <=10, <=100, +inf
        assert hist.counts == [2, 2, 1]
        assert hist.total == 5
        assert hist.sum == 5122
        assert hist.mean == pytest.approx(1024.4)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(TimingError):
            Histogram("bad", buckets=())
        with pytest.raises(TimingError):
            Histogram("bad", buckets=(5, 1))
        with pytest.raises(TimingError):
            Histogram("bad", buckets=(1, 1, 2))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")
        assert len(registry) == 3
        assert registry.names() == ["g", "h", "x"]

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TimingError):
            registry.gauge("x")
        with pytest.raises(TimingError):
            registry.histogram("x")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1, 2))
        with pytest.raises(TimingError):
            registry.histogram("h", buckets=(1, 2, 3))

    def test_snapshot_and_write_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("cache.hits").inc(3)
        registry.gauge("cache.entries").set(7)
        registry.histogram("cone", buckets=(10, 100)).observe(42)
        path = tmp_path / "metrics.json"
        registry.write_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["cache.hits"] == {"type": "counter", "value": 3}
        assert loaded["cache.entries"] == {"type": "gauge", "value": 7}
        assert loaded["cone"]["counts"] == [0, 1, 0]
        assert list(loaded) == sorted(loaded)

    def test_render_is_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.histogram("h").observe(3.0)
        text = registry.render()
        assert text.index("a") < text.index("b")
        assert "n=1 mean=3" in text


class TestActiveRegistryProtocol:
    def test_helpers_noop_when_disabled(self):
        assert metrics.active_registry() is None
        # Must not raise, must not create anything.
        metrics.inc("nope")
        metrics.observe("nope", 1.0)
        metrics.set_gauge("nope", 1.0)

    def test_helpers_record_into_active_registry(self):
        registry = MetricsRegistry()
        with metrics.use(registry):
            metrics.inc("runs")
            metrics.inc("runs", 2)
            metrics.set_gauge("depth", 5)
            metrics.observe("wall", 0.25, buckets=(0.1, 1.0))
        assert metrics.active_registry() is None
        assert registry.counter("runs").value == 3
        assert registry.gauge("depth").value == 5
        assert registry.histogram("wall", buckets=(0.1, 1.0)).counts == \
            [0, 1, 0]

    def test_use_none_masks_process_default(self):
        registry = MetricsRegistry()
        previous = metrics.set_default_registry(registry)
        try:
            metrics.inc("seen")
            with metrics.use(None):
                metrics.inc("hidden")
            assert registry.counter("seen").value == 1
            assert registry.get("hidden") is None
        finally:
            metrics.set_default_registry(previous)

    def test_default_buckets_are_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
