"""Tests for opt-in per-span cProfile capture."""

from repro.obs.profile import SpanProfiler
from repro.obs.tracing import Tracer


def _busywork(n=2000):
    return sum(i * i for i in range(n))


class TestSpanProfiler:
    def test_captures_watched_span(self):
        profiler = SpanProfiler({"retime"})
        tracer = Tracer(profiler=profiler)
        with tracer.span("retime"):
            _busywork()
        assert profiler.profiled_names() == ["retime"]
        stats = profiler.stats("retime")
        assert stats is not None
        assert "_busywork" in profiler.render("retime")

    def test_unwatched_span_passes_through(self):
        profiler = SpanProfiler({"retime"})
        tracer = Tracer(profiler=profiler)
        with tracer.span("iteration"):
            _busywork()
        assert profiler.profiled_names() == []
        assert profiler.stats("iteration") is None
        assert "no profile captured" in profiler.render("iteration")

    def test_aggregates_across_occurrences(self):
        profiler = SpanProfiler({"retime"})
        tracer = Tracer(profiler=profiler)
        for _ in range(3):
            with tracer.span("retime"):
                _busywork()
        stats = profiler.stats("retime")
        # One primitive call of _busywork per span occurrence.
        busy = [key for key in stats.stats if key[2] == "_busywork"]
        assert len(busy) == 1
        assert stats.stats[busy[0]][0] == 3  # call count

    def test_nested_watched_span_is_skipped_not_fatal(self):
        profiler = SpanProfiler({"outer", "inner"})
        tracer = Tracer(profiler=profiler)
        with tracer.span("outer"):
            with tracer.span("inner"):
                _busywork()
        # CPython allows one profiler per thread: the inner capture is
        # skipped, its frames live inside the outer capture.
        assert profiler.skipped == 1
        assert profiler.profiled_names() == ["outer"]

    def test_tracer_without_profiler_is_unaffected(self):
        tracer = Tracer()
        with tracer.span("retime"):
            _busywork()
        assert len(tracer) == 1
