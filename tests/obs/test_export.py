"""Tests for trace export (Chrome trace / JSONL) and summaries."""

import json

import pytest

from repro.errors import ReproError
from repro.obs.export import (
    chrome_trace,
    load_events,
    summarize,
    summarize_file,
    write_chrome_trace,
    write_events_jsonl,
)
from repro.obs.tracing import Span, Tracer


def _sample_spans():
    """A two-level tree with hand-authored timings (seconds)."""
    return [
        Span(name="closure", span_id=1, parent_id=None,
             start_s=100.0, duration_s=1.0, attrs={"design": "aes"},
             pid=7, tid=11),
        Span(name="iteration", span_id=2, parent_id=1,
             start_s=100.1, duration_s=0.6, attrs={"iteration": 1}),
        Span(name="retime", span_id=3, parent_id=2,
             start_s=100.2, duration_s=0.4, attrs={}),
    ]


class TestChromeTrace:
    def test_schema(self):
        trace = chrome_trace(_sample_spans(), metadata={"design": "aes"})
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert set(event) >= {"name", "ts", "dur", "pid", "tid", "args"}
        root = events[0]
        assert root["ts"] == 0.0  # rebased to the earliest span
        assert root["dur"] == pytest.approx(1e6)  # 1 s in µs
        assert root["args"]["span_id"] == 1
        assert "parent_id" not in root["args"]
        assert events[1]["args"]["parent_id"] == 1
        assert root["args"]["design"] == "aes"
        assert root["pid"] == 7 and root["tid"] == 11

    def test_non_json_attrs_are_repred(self):
        span = Span(name="x", span_id=1, parent_id=None, start_s=0.0,
                    duration_s=0.1, attrs={"obj": {"nested": 1}})
        event = chrome_trace([span])["traceEvents"][0]
        assert event["args"]["obj"] == repr({"nested": 1})

    def test_roundtrip_through_file(self, tmp_path):
        path = tmp_path / "run.trace.json"
        write_chrome_trace(path, _sample_spans())
        json.loads(path.read_text())  # valid JSON document
        events = load_events(path)
        assert [e["name"] for e in events] == \
            ["closure", "iteration", "retime"]


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_events_jsonl(path, _sample_spans())
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3
        events = load_events(path)
        assert events == [json.loads(line) for line in lines]

    def test_summaries_agree_across_formats(self, tmp_path):
        chrome, jsonl = tmp_path / "t.json", tmp_path / "t.jsonl"
        write_chrome_trace(chrome, _sample_spans())
        write_events_jsonl(jsonl, _sample_spans())
        assert summarize_file(chrome).render() == \
            summarize_file(jsonl).render()


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read"):
            load_events(tmp_path / "absent.json")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("")
        with pytest.raises(ReproError, match="empty"):
            load_events(path)

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(ReproError, match="neither"):
            load_events(path)


class TestSummarize:
    def test_self_time_subtracts_direct_children(self):
        summary = summarize(
            chrome_trace(_sample_spans())["traceEvents"]
        )
        closure = summary.phase("closure")
        iteration = summary.phase("iteration")
        retime = summary.phase("retime")
        assert closure.total_s == pytest.approx(1.0)
        assert closure.self_s == pytest.approx(0.4)  # 1.0 - 0.6 child
        assert iteration.self_s == pytest.approx(0.2)  # 0.6 - 0.4 child
        assert retime.self_s == pytest.approx(0.4)  # leaf: self == total
        assert summary.span_count == 3
        assert summary.wall_s == pytest.approx(1.0)

    def test_phases_sorted_by_self_time(self):
        summary = summarize(chrome_trace(_sample_spans())["traceEvents"])
        selfs = [stat.self_s for stat in summary.phases]
        assert selfs == sorted(selfs, reverse=True)

    def test_render_mentions_every_phase(self):
        summary = summarize(chrome_trace(_sample_spans())["traceEvents"])
        text = summary.render()
        for name in ("closure", "iteration", "retime"):
            assert name in text
        assert "3 phase(s), 3 span(s)" in text

    def test_summarize_live_tracer_output(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        summary = summarize(chrome_trace(tracer.spans())["traceEvents"])
        assert summary.phase("outer").count == 1
        assert summary.phase("inner").count == 1
        assert summary.phase("outer").total_s >= \
            summary.phase("inner").total_s

    def test_empty_events(self):
        summary = summarize([])
        assert summary.phases == []
        assert summary.wall_s == 0.0


class TestDegradedScenarios:
    """kernel_fallback spans surface the vector->reference degradations."""

    @staticmethod
    def _fallback_span(span_id, start_s, scenario):
        return Span(name="kernel_fallback", span_id=span_id,
                    parent_id=None, start_s=start_s, duration_s=0.001,
                    attrs={"scenario": scenario, "error": "injected"})

    def test_collected_in_event_order_and_deduped(self):
        spans = _sample_spans() + [
            self._fallback_span(10, 100.3, "ss_cw"),
            self._fallback_span(11, 100.4, "tt_typ"),
            self._fallback_span(12, 100.5, "ss_cw"),  # retime of the same
        ]
        summary = summarize(chrome_trace(spans)["traceEvents"])
        assert summary.degraded_scenarios == ["ss_cw", "tt_typ"]

    def test_render_names_the_fallbacks(self):
        spans = [self._fallback_span(1, 0.0, "ss_cw")]
        text = summarize(chrome_trace(spans)["traceEvents"]).render()
        assert "kernel fallbacks (vector -> reference): ss_cw" in text

    def test_clean_trace_has_no_fallback_line(self):
        summary = summarize(chrome_trace(_sample_spans())["traceEvents"])
        assert summary.degraded_scenarios == []
        assert "kernel fallbacks" not in summary.render()

    def test_survives_file_roundtrip(self, tmp_path):
        path = tmp_path / "degraded.trace.json"
        write_chrome_trace(path, [self._fallback_span(1, 0.0, "ss_cw")])
        assert summarize_file(path).degraded_scenarios == ["ss_cw"]
