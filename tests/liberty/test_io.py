"""Round-trip tests for the Liberty-lite writer/parser."""

import numpy as np
import pytest

from repro.errors import LibraryError
from repro.liberty import make_library
from repro.liberty.arcs import TimingType
from repro.liberty.io import parse_library, write_library


@pytest.fixture(scope="module")
def lib():
    return make_library(flavors=("svt",))


@pytest.fixture(scope="module")
def round_tripped(lib):
    return parse_library(write_library(lib))


class TestRoundTrip:
    def test_library_attributes(self, lib, round_tripped):
        assert round_tripped.name == lib.name
        assert round_tripped.vdd == lib.vdd
        assert round_tripped.temp_c == lib.temp_c
        assert round_tripped.process == lib.process

    def test_cell_count_preserved(self, lib, round_tripped):
        assert set(round_tripped.cells) == set(lib.cells)

    def test_cell_metadata_preserved(self, lib, round_tripped):
        a, b = lib.cell("INV_X1_SVT"), round_tripped.cell("INV_X1_SVT")
        assert b.footprint == a.footprint
        assert b.size == a.size
        assert b.vt_flavor == a.vt_flavor
        assert b.area == pytest.approx(a.area)
        assert b.leakage == pytest.approx(a.leakage)
        assert b.function == a.function

    def test_pins_preserved(self, lib, round_tripped):
        a, b = lib.cell("DFF_X1_SVT"), round_tripped.cell("DFF_X1_SVT")
        assert set(b.pins) == set(a.pins)
        assert b.pin("CK").is_clock
        assert b.pin("D").capacitance == pytest.approx(a.pin("D").capacitance)
        assert b.pin("Q").max_capacitance == pytest.approx(
            a.pin("Q").max_capacitance
        )

    def test_delay_tables_preserved(self, lib, round_tripped):
        a = lib.cell("NAND2_X2_SVT").arcs[0]
        b = round_tripped.cell("NAND2_X2_SVT").arcs[0]
        np.testing.assert_allclose(
            b.timing["fall"].delay.values, a.timing["fall"].delay.values
        )
        np.testing.assert_allclose(
            b.timing["rise"].slew.values, a.timing["rise"].slew.values
        )

    def test_lvf_sigma_tables_preserved(self, lib, round_tripped):
        a = lib.cell("INV_X2_SVT").arcs[0]
        b = round_tripped.cell("INV_X2_SVT").arcs[0]
        np.testing.assert_allclose(
            b.timing["fall"].sigma_late.values, a.timing["fall"].sigma_late.values
        )
        np.testing.assert_allclose(
            b.timing["fall"].sigma_early.values,
            a.timing["fall"].sigma_early.values,
        )

    def test_constraint_tables_preserved(self, lib, round_tripped):
        a = lib.cell("DFF_X1_SVT").arc_between("CK", "D", TimingType.SETUP_RISING)
        b = round_tripped.cell("DFF_X1_SVT").arc_between(
            "CK", "D", TimingType.SETUP_RISING
        )
        np.testing.assert_allclose(
            b.constraint["rise"].values, a.constraint["rise"].values
        )

    def test_sequential_flag_preserved(self, round_tripped):
        assert round_tripped.cell("DFF_X1_SVT").is_sequential

    def test_lookups_identical(self, lib, round_tripped):
        a = lib.cell("AOI21_X1_SVT").arc_between("A1", "ZN")
        b = round_tripped.cell("AOI21_X1_SVT").arc_between("A1", "ZN")
        assert b.delay_and_slew("rise", 13.0, 9.5) == pytest.approx(
            a.delay_and_slew("rise", 13.0, 9.5)
        )


class TestParserErrors:
    def test_empty_text_rejected(self):
        with pytest.raises(LibraryError):
            parse_library("")

    def test_wrong_root_group(self):
        with pytest.raises(LibraryError, match="expected a library group"):
            parse_library("cell (X) { }")

    def test_unterminated_group(self):
        with pytest.raises(LibraryError):
            parse_library("library (l) { cell (c) {")

    def test_malformed_table(self):
        text = """
        library (l) {
          cell (c) {
            timing () {
              related_pin : A;
              pin : Z;
              cell_rise { index_1 : "1, 2"; values : "1, 2 | 3, 4"; }
            }
          }
        }
        """
        with pytest.raises(LibraryError, match="malformed table"):
            parse_library(text)
