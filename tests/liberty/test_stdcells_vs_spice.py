"""Cross-validation: analytic NLDM tables vs transistor-level simulation.

These tests pin the calibration of the analytic factory to the simulator,
so that STA results remain grounded in the device model. They run real
transient simulations and are the slowest tests in the liberty suite.
"""

import pytest

from repro.liberty import make_library, LibraryCondition
from repro.liberty.characterize import characterize_inverter
from repro.spice.testbench import inverter_delay


TOLERANCE = 0.25  # relative agreement required between model and simulation


@pytest.fixture(scope="module")
def lib():
    return make_library(flavors=("svt",))


def analytic_inv_delay(lib, direction, slew, load):
    return lib.cell("INV_X1_SVT").arcs[0].delay_and_slew(direction, slew, load)


class TestInverterAgreement:
    @pytest.mark.parametrize("direction", ["rise", "fall"])
    @pytest.mark.parametrize("load", [2.0, 8.0])
    def test_delay_agreement(self, lib, direction, load):
        sim = inverter_delay(direction=direction, load_ff=load, in_slew=20.0)
        model_d, model_s = analytic_inv_delay(lib, direction, 20.0, load)
        assert model_d == pytest.approx(sim.delay, rel=TOLERANCE)
        assert model_s == pytest.approx(sim.out_slew, rel=TOLERANCE)

    def test_low_voltage_agreement(self):
        lib = make_library(LibraryCondition(vdd=0.6), flavors=("svt",))
        sim = inverter_delay(vdd=0.6, load_ff=4.0, in_slew=20.0)
        model_d, _ = analytic_inv_delay(lib, "fall", 20.0, 4.0)
        assert model_d == pytest.approx(sim.delay, rel=TOLERANCE)

    def test_hot_agreement(self):
        lib = make_library(LibraryCondition(temp_c=125.0), flavors=("svt",))
        sim = inverter_delay(temp_c=125.0, load_ff=4.0, in_slew=20.0)
        model_d, _ = analytic_inv_delay(lib, "fall", 20.0, 4.0)
        assert model_d == pytest.approx(sim.delay, rel=TOLERANCE)


class TestCharacterizedTables:
    def test_characterized_grid_monotone(self):
        timing = characterize_inverter(
            slew_grid=(5.0, 40.0), load_grid=(2.0, 16.0)
        )
        for direction in ("rise", "fall"):
            assert timing[direction].delay.is_monotone_nondecreasing()
            assert timing[direction].slew.is_monotone_nondecreasing()

    def test_characterized_matches_analytic(self, lib):
        timing = characterize_inverter(slew_grid=(5.0, 40.0), load_grid=(2.0, 16.0))
        sim_d = timing["fall"].delay.lookup(40.0, 16.0)
        model_d, _ = analytic_inv_delay(lib, "fall", 40.0, 16.0)
        assert model_d == pytest.approx(sim_d, rel=TOLERANCE)


class TestMultiInputGateAgreement:
    """Generic-gate characterization against the analytic factory."""

    @pytest.mark.parametrize("footprint,cell_name", [
        ("nand2", "NAND2_X1_SVT"),
        ("nor2", "NOR2_X1_SVT"),
    ])
    def test_gate_agreement(self, lib, footprint, cell_name):
        from repro.liberty.characterize import characterize_gate

        timing = characterize_gate(footprint, slew_grid=(10.0, 40.0),
                                   load_grid=(4.0, 16.0))
        arc = lib.cell(cell_name).arcs[0]
        for direction in ("rise", "fall"):
            sim = timing[direction].delay.lookup(40.0, 16.0)
            model = arc.delay_and_slew(direction, 40.0, 16.0)[0]
            assert model == pytest.approx(sim, rel=TOLERANCE)

    def test_unknown_footprint_rejected(self):
        from repro.errors import SimulationError
        from repro.liberty.characterize import characterize_gate

        with pytest.raises(SimulationError, match="cannot characterize"):
            characterize_gate("xor2")

    def test_nand3_stack_slower_than_nand2(self):
        from repro.liberty.characterize import characterize_gate

        d2 = characterize_gate("nand2", slew_grid=(10.0, 40.0),
                               load_grid=(4.0, 16.0))
        d3 = characterize_gate("nand3", slew_grid=(10.0, 40.0),
                               load_grid=(4.0, 16.0))
        # Deeper stacks are slower per unit drive... the nand3's stack is
        # upsized 3x vs 2x, so compare rise (PMOS side, same width): the
        # nand3's heavier self-load makes it slower.
        assert d3["rise"].delay.lookup(10.0, 4.0) > \
            d2["rise"].delay.lookup(10.0, 4.0)
