"""Tests for NLDM lookup tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LibraryError
from repro.liberty.tables import LookupTable2D


def simple_table():
    return LookupTable2D(
        index_1=[1.0, 2.0, 4.0],
        index_2=[10.0, 20.0],
        values=[[1.0, 2.0], [2.0, 4.0], [4.0, 8.0]],
    )


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(LibraryError):
            LookupTable2D([1, 2], [1, 2], [[1, 2]])

    def test_non_increasing_index_rejected(self):
        with pytest.raises(LibraryError):
            LookupTable2D([2, 1], [1, 2], [[1, 2], [3, 4]])

    def test_duplicate_index_rejected(self):
        with pytest.raises(LibraryError):
            LookupTable2D([1, 1], [1, 2], [[1, 2], [3, 4]])

    def test_too_small_grid_rejected(self):
        with pytest.raises(LibraryError):
            LookupTable2D([1], [1, 2], [[1, 2]])

    def test_from_function(self):
        t = LookupTable2D.from_function([1, 2], [3, 4], lambda a, b: a * b)
        assert t.lookup(2, 4) == pytest.approx(8.0)


class TestLookup:
    def test_exact_grid_points(self):
        t = simple_table()
        for i, x1 in enumerate(t.index_1):
            for j, x2 in enumerate(t.index_2):
                assert t.lookup(float(x1), float(x2)) == pytest.approx(
                    t.values[i, j]
                )

    def test_bilinear_midpoint(self):
        t = simple_table()
        assert t.lookup(1.5, 15.0) == pytest.approx((1 + 2 + 2 + 4) / 4)

    def test_extrapolation_below(self):
        t = simple_table()
        # Linear continuation of the first segment.
        assert t.lookup(0.0, 10.0) == pytest.approx(0.0)

    def test_extrapolation_above(self):
        t = simple_table()
        assert t.lookup(8.0, 10.0) == pytest.approx(8.0)

    @given(
        x1=st.floats(0.5, 5.0),
        x2=st.floats(8.0, 25.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_interpolant_within_bounds_inside_grid(self, x1, x2):
        t = simple_table()
        x1 = min(max(x1, 1.0), 4.0)
        x2 = min(max(x2, 10.0), 20.0)
        v = t.lookup(x1, x2)
        assert t.min_value - 1e-9 <= v <= t.max_value + 1e-9

    @given(
        x1a=st.floats(1.0, 4.0),
        x1b=st.floats(1.0, 4.0),
        x2=st.floats(10.0, 20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_table_gives_monotone_interpolant(self, x1a, x1b, x2):
        t = simple_table()
        lo, hi = sorted((x1a, x1b))
        assert t.lookup(lo, x2) <= t.lookup(hi, x2) + 1e-9


class TestTransforms:
    def test_scaled(self):
        t = simple_table().scaled(2.0)
        assert t.lookup(1.0, 10.0) == pytest.approx(2.0)

    def test_shifted(self):
        t = simple_table().shifted(1.0)
        assert t.lookup(1.0, 10.0) == pytest.approx(2.0)

    def test_combined(self):
        t = simple_table()
        s = t.combined(t, lambda a, b: a + b)
        assert s.lookup(2.0, 20.0) == pytest.approx(8.0)

    def test_combined_grid_mismatch_rejected(self):
        t = simple_table()
        other = LookupTable2D([1.0, 2.0], [10.0, 20.0], [[1, 2], [3, 4]])
        with pytest.raises(LibraryError):
            t.combined(other, lambda a, b: a + b)

    def test_monotone_check(self):
        assert simple_table().is_monotone_nondecreasing()
        t = LookupTable2D([1, 2], [1, 2], [[2, 1], [3, 4]])
        assert not t.is_monotone_nondecreasing()

    def test_same_grid(self):
        assert simple_table().same_grid(simple_table())
