"""Tests for library queries (footprints, menus, swap variants)."""

import pytest

from repro.errors import LibraryError
from repro.liberty import make_library


@pytest.fixture(scope="module")
def lib():
    return make_library()


class TestLookup:
    def test_cell_lookup(self, lib):
        assert lib.cell("INV_X1_SVT").name == "INV_X1_SVT"

    def test_missing_cell_raises(self, lib):
        with pytest.raises(LibraryError):
            lib.cell("MISSING")

    def test_duplicate_add_rejected(self, lib):
        with pytest.raises(LibraryError):
            lib.add_cell(lib.cell("INV_X1_SVT"))

    def test_len_and_repr(self, lib):
        assert len(lib) == len(lib.cells)
        assert "repro16" in repr(lib)


class TestMenus:
    def test_footprint_variants_sorted(self, lib):
        variants = lib.footprint_variants("inv")
        sizes = [c.size for c in variants]
        assert sizes == sorted(sizes)
        assert all(c.footprint == "inv" for c in variants)

    def test_unknown_footprint_raises(self, lib):
        with pytest.raises(LibraryError):
            lib.footprint_variants("xor9")

    def test_vt_menu_order(self, lib):
        menu = lib.vt_menu(lib.cell("NAND2_X2_SVT"))
        assert [c.vt_flavor for c in menu] == ["lvt", "svt", "hvt"]
        assert all(c.size == 2.0 for c in menu)

    def test_size_menu_order(self, lib):
        menu = lib.size_menu(lib.cell("NAND2_X2_SVT"))
        assert [c.size for c in menu] == [1.0, 2.0, 4.0]
        assert all(c.vt_flavor == "svt" for c in menu)

    def test_swap_variant_flavor(self, lib):
        hvt = lib.swap_variant(lib.cell("INV_X2_SVT"), vt_flavor="hvt")
        assert hvt.name == "INV_X2_HVT"

    def test_swap_variant_size(self, lib):
        big = lib.swap_variant(lib.cell("INV_X2_SVT"), size=4.0)
        assert big.name == "INV_X4_SVT"

    def test_swap_variant_missing_returns_none(self, lib):
        assert lib.swap_variant(lib.cell("INV_X2_SVT"), size=64.0) is None

    def test_buffers_sorted_by_size(self, lib):
        bufs = lib.buffers()
        assert [b.size for b in bufs] == [1.0, 2.0, 4.0, 8.0]

    def test_sequential_cells(self, lib):
        seqs = lib.sequential_cells()
        assert seqs and all(c.footprint == "dff" for c in seqs)
