"""Tests for AOCV/POCV and LVF variation models."""

import pytest

from repro.errors import LibraryError
from repro.liberty import make_library
from repro.liberty.aocv import (
    AocvTable,
    arc_pocv_sigma,
    library_reference_sigma,
    pocv_sigma,
)
from repro.liberty.lvf import arc_sigma, has_lvf, sigma_asymmetry, strip_lvf


@pytest.fixture()
def lib():
    return make_library(flavors=("svt",))


class TestAocvTable:
    def test_late_derate_above_one(self):
        t = AocvTable.from_reference_sigma(0.05)
        assert t.derate(1.0, 0.0, "late") > 1.0

    def test_early_derate_below_one(self):
        t = AocvTable.from_reference_sigma(0.05)
        assert t.derate(1.0, 0.0, "early") < 1.0

    def test_statistical_averaging_with_depth(self):
        """Deeper paths get milder derates — the AOCV premise."""
        t = AocvTable.from_reference_sigma(0.05)
        d1 = t.derate(1.0, 0.0, "late")
        d16 = t.derate(16.0, 0.0, "late")
        assert d16 < d1
        assert d16 > 1.0

    def test_distance_increases_derate(self):
        t = AocvTable.from_reference_sigma(0.05)
        near = t.derate(4.0, 0.0, "late")
        far = t.derate(4.0, 1000.0, "late")
        assert far > near

    def test_depth_clamped_outside_table(self):
        t = AocvTable.from_reference_sigma(0.05)
        assert t.derate(64.0, 0.0, "late") == pytest.approx(
            t.derate(32.0, 0.0, "late")
        )

    def test_interpolation_between_depths(self):
        t = AocvTable.from_reference_sigma(0.05)
        d2, d3, d4 = (t.derate(d, 0.0, "late") for d in (2.0, 3.0, 4.0))
        assert d4 < d3 < d2

    def test_bad_mode_rejected(self):
        t = AocvTable.from_reference_sigma(0.05)
        with pytest.raises(LibraryError):
            t.derate(1.0, 0.0, "typ")

    def test_early_never_negative(self):
        t = AocvTable.from_reference_sigma(0.5)  # absurd sigma
        assert t.derate(1.0, 1000.0, "early") >= 0.05


class TestPocv:
    def test_pocv_sigma_positive(self, lib):
        assert pocv_sigma(lib.cell("INV_X1_SVT")) > 0.0

    def test_pocv_smaller_for_larger_cells(self, lib):
        """Pelgrom: bigger devices vary relatively less."""
        assert pocv_sigma(lib.cell("INV_X4_SVT")) < pocv_sigma(
            lib.cell("INV_X1_SVT")
        )

    def test_late_mode_exceeds_early(self, lib):
        cell = lib.cell("NAND2_X1_SVT")
        assert pocv_sigma(cell, mode="late") > pocv_sigma(cell, mode="early")

    def test_arc_pocv_sigma_matches_cell_level(self, lib):
        cell = lib.cell("INV_X1_SVT")
        assert arc_pocv_sigma(cell.arcs[0]) == pytest.approx(pocv_sigma(cell))

    def test_reference_sigma_is_mean(self, lib):
        cells = [lib.cell("INV_X1_SVT"), lib.cell("INV_X4_SVT")]
        ref = library_reference_sigma(cells)
        lo, hi = sorted(pocv_sigma(c) for c in cells)
        assert lo <= ref <= hi

    def test_pocv_on_cell_without_arcs_raises(self, lib):
        from repro.liberty.cell import Cell

        empty = Cell(name="X", footprint="x", size=1.0, vt_flavor="svt",
                     area=1.0, leakage=0.0)
        with pytest.raises(LibraryError):
            pocv_sigma(empty)


class TestLvf:
    def test_factory_library_has_lvf(self, lib):
        assert has_lvf(lib)

    def test_strip_lvf(self, lib):
        stripped = strip_lvf(lib)
        assert stripped > 0
        assert not has_lvf(lib)

    def test_arc_sigma_lookup(self, lib):
        arc = lib.cell("INV_X1_SVT").arcs[0]
        sigma = arc_sigma(arc, "fall", 20.0, 8.0, "late")
        assert sigma > 0.0

    def test_arc_sigma_grows_with_load(self, lib):
        arc = lib.cell("INV_X1_SVT").arcs[0]
        assert arc_sigma(arc, "fall", 20.0, 32.0, "late") > arc_sigma(
            arc, "fall", 20.0, 2.0, "late"
        )

    def test_arc_sigma_missing_raises(self, lib):
        strip_lvf(lib)
        arc = lib.cell("INV_X1_SVT").arcs[0]
        with pytest.raises(LibraryError):
            arc_sigma(arc, "fall", 20.0, 8.0, "late")

    def test_sigma_asymmetry_reflects_long_tail(self, lib):
        ratio = sigma_asymmetry(lib.cell("INV_X1_SVT"))
        assert ratio is not None
        assert ratio > 1.2  # late sigma dominates (Fig 7 setup long tail)

    def test_sigma_asymmetry_none_after_strip(self, lib):
        strip_lvf(lib)
        assert sigma_asymmetry(lib.cell("INV_X1_SVT")) is None
