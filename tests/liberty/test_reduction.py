"""Tests for library-variant reduction and voltage interpolation."""

import pytest

from repro.errors import LibraryError
from repro.liberty import LibraryCondition, make_library
from repro.liberty.reduction import (
    InterpolatedArcLookup,
    condition_fingerprint,
    reduce_library_set,
)


def voltage_ladder(n=7, lo=0.65, hi=0.95):
    return [
        LibraryCondition(vdd=lo + i * (hi - lo) / (n - 1)) for i in range(n)
    ]


class TestFingerprint:
    def test_fingerprint_length_matches_probes(self):
        lib = make_library()
        assert len(condition_fingerprint(lib)) == 6

    def test_slower_condition_larger_fingerprint(self):
        fast = condition_fingerprint(make_library(LibraryCondition(vdd=0.9)))
        slow = condition_fingerprint(make_library(LibraryCondition(vdd=0.7)))
        assert all(s > f for s, f in zip(slow, fast))


class TestReduction:
    def test_empty_rejected(self):
        with pytest.raises(LibraryError):
            reduce_library_set([])

    def test_single_condition_kept(self):
        result = reduce_library_set([LibraryCondition()])
        assert len(result.kept) == 1
        assert not result.dropped

    def test_extremes_always_kept(self):
        conditions = voltage_ladder()
        result = reduce_library_set(conditions, tolerance=0.10)
        kept_vdds = {c.vdd for c in result.kept}
        assert conditions[0].vdd in kept_vdds
        assert conditions[-1].vdd in kept_vdds

    def test_dense_ladder_reduces(self):
        result = reduce_library_set(voltage_ladder(9), tolerance=0.10)
        assert result.reduction_ratio > 0.3
        assert result.worst_coverage_error <= 0.10

    def test_tighter_tolerance_keeps_more(self):
        loose = reduce_library_set(voltage_ladder(9), tolerance=0.15)
        tight = reduce_library_set(voltage_ladder(9), tolerance=0.02)
        assert len(tight.kept) >= len(loose.kept)

    def test_coverage_error_respected(self):
        result = reduce_library_set(voltage_ladder(9), tolerance=0.08)
        assert result.worst_coverage_error <= 0.08


class TestVoltageInterpolation:
    @pytest.fixture(scope="class")
    def lookup(self):
        return InterpolatedArcLookup(
            make_library(LibraryCondition(vdd=0.7)),
            make_library(LibraryCondition(vdd=0.9)),
        )

    def test_wrong_order_rejected(self):
        with pytest.raises(LibraryError):
            InterpolatedArcLookup(
                make_library(LibraryCondition(vdd=0.9)),
                make_library(LibraryCondition(vdd=0.7)),
            )

    def test_endpoints_exact(self, lookup):
        d_lo = lookup.delay("INV_X1_SVT", "fall", 20.0, 4.0, 0.7)
        true_lo = lookup.lib_lo.cell("INV_X1_SVT").delay_arcs()[0] \
            .delay_and_slew("fall", 20.0, 4.0)[0]
        assert d_lo == pytest.approx(true_lo)

    def test_out_of_range_rejected(self, lookup):
        with pytest.raises(LibraryError):
            lookup.delay("INV_X1_SVT", "fall", 20.0, 4.0, 1.2)

    def test_interpolated_between_endpoints(self, lookup):
        mid = lookup.delay("INV_X1_SVT", "fall", 20.0, 4.0, 0.8)
        lo = lookup.delay("INV_X1_SVT", "fall", 20.0, 4.0, 0.7)
        hi = lookup.delay("INV_X1_SVT", "fall", 20.0, 4.0, 0.9)
        assert hi < mid < lo  # delay decreases with voltage

    def test_interpolation_error_small_at_midpoint(self, lookup):
        """A 200 mV bracket interpolates to within a few percent — the
        quantitative case for 'interpolation across lib groups'."""
        err = lookup.interpolation_error("INV_X1_SVT", "fall", 20.0, 4.0,
                                         0.8)
        assert err < 0.05

    def test_error_grows_with_bracket_width(self):
        narrow = InterpolatedArcLookup(
            make_library(LibraryCondition(vdd=0.75)),
            make_library(LibraryCondition(vdd=0.85)),
        ).interpolation_error("INV_X1_SVT", "fall", 20.0, 4.0, 0.8)
        wide = InterpolatedArcLookup(
            make_library(LibraryCondition(vdd=0.6)),
            make_library(LibraryCondition(vdd=1.0)),
        ).interpolation_error("INV_X1_SVT", "fall", 20.0, 4.0, 0.8)
        assert narrow < wide
