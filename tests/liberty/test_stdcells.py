"""Tests for the analytic standard-cell factory."""

import pytest

from repro.errors import LibraryError
from repro.liberty import LibraryCondition, make_library
from repro.liberty.arcs import TimingSense, TimingType
from repro.liberty.stdcells import PROCESS_CORNERS


@pytest.fixture(scope="module")
def lib():
    return make_library()


class TestFactoryContents:
    def test_cell_count(self, lib):
        # 7 comb archetypes x sizes + 4 buf + 2 dff, x 3 flavors.
        assert len(lib) == 87

    def test_all_footprints_present(self, lib):
        assert set(lib.footprints()) == {
            "inv", "buf", "nand2", "nand3", "nor2", "nor3",
            "aoi21", "oai21", "dff",
        }

    def test_flavor_variants_exist(self, lib):
        for flavor in ("LVT", "SVT", "HVT"):
            assert f"INV_X1_{flavor}" in lib.cells

    def test_dff_is_sequential(self, lib):
        assert lib.cell("DFF_X1_SVT").is_sequential
        assert not lib.cell("INV_X1_SVT").is_sequential

    def test_dff_has_clock_pin(self, lib):
        assert lib.cell("DFF_X1_SVT").clock_pin().name == "CK"

    def test_all_delay_tables_monotone(self, lib):
        for cell in lib.cells.values():
            for arc in cell.delay_arcs():
                for timing in arc.timing.values():
                    assert timing.delay.is_monotone_nondecreasing(), cell.name
                    assert timing.slew.is_monotone_nondecreasing(), cell.name

    def test_all_delay_tables_positive(self, lib):
        for cell in lib.cells.values():
            for arc in cell.delay_arcs():
                for timing in arc.timing.values():
                    assert timing.delay.min_value > 0.0
                    assert timing.slew.min_value > 0.0

    def test_lvf_tables_present_and_late_exceeds_early(self, lib):
        for cell in lib.cells.values():
            for arc in cell.delay_arcs():
                for timing in arc.timing.values():
                    assert timing.sigma_early is not None
                    assert timing.sigma_late is not None
                    assert (
                        timing.sigma_late.values >= timing.sigma_early.values
                    ).all()


class TestPhysicalTrends:
    def test_larger_cells_are_faster(self, lib):
        d1 = lib.cell("INV_X1_SVT").arcs[0].delay_and_slew("fall", 20.0, 16.0)[0]
        d4 = lib.cell("INV_X4_SVT").arcs[0].delay_and_slew("fall", 20.0, 16.0)[0]
        assert d4 < d1

    def test_lvt_faster_than_hvt(self, lib):
        d_lvt = lib.cell("INV_X1_LVT").arcs[0].delay_and_slew("fall", 20.0, 4.0)[0]
        d_hvt = lib.cell("INV_X1_HVT").arcs[0].delay_and_slew("fall", 20.0, 4.0)[0]
        assert d_lvt < d_hvt

    def test_lvt_leaks_more_than_hvt(self, lib):
        assert lib.cell("INV_X1_LVT").leakage > 10.0 * lib.cell("INV_X1_HVT").leakage

    def test_larger_cells_cost_more_area_and_leakage(self, lib):
        c1, c4 = lib.cell("INV_X1_SVT"), lib.cell("INV_X4_SVT")
        assert c4.area > c1.area
        assert c4.leakage > c1.leakage

    def test_input_cap_grows_with_size(self, lib):
        c1 = lib.cell("NAND2_X1_SVT").input_capacitance("A")
        c4 = lib.cell("NAND2_X4_SVT").input_capacitance("A")
        assert c4 == pytest.approx(4.0 * c1)

    def test_buffer_input_cap_independent_of_size(self, lib):
        c1 = lib.cell("BUF_X1_SVT").input_capacitance("A")
        c8 = lib.cell("BUF_X8_SVT").input_capacitance("A")
        assert c8 == pytest.approx(c1)

    def test_nand_second_input_slower(self, lib):
        cell = lib.cell("NAND2_X1_SVT")
        arc_a = cell.arc_between("A", "ZN")
        arc_b = cell.arc_between("B", "ZN")
        da = arc_a.delay_and_slew("fall", 20.0, 8.0)[0]
        db = arc_b.delay_and_slew("fall", 20.0, 8.0)[0]
        assert db > da


class TestConditionScaling:
    def test_low_voltage_slower(self):
        nom = make_library(LibraryCondition(vdd=0.8))
        low = make_library(LibraryCondition(vdd=0.6))
        d_nom = nom.cell("INV_X1_SVT").arcs[0].delay_and_slew("fall", 20.0, 4.0)[0]
        d_low = low.cell("INV_X1_SVT").arcs[0].delay_and_slew("fall", 20.0, 4.0)[0]
        assert d_low > 1.1 * d_nom

    def test_ss_corner_slower_than_ff(self):
        ss = make_library(LibraryCondition(process="ss"))
        ff = make_library(LibraryCondition(process="ff"))
        d_ss = ss.cell("INV_X1_SVT").arcs[0].delay_and_slew("fall", 20.0, 4.0)[0]
        d_ff = ff.cell("INV_X1_SVT").arcs[0].delay_and_slew("fall", 20.0, 4.0)[0]
        assert d_ss > d_ff

    def test_ssg_between_tt_and_ss(self):
        def inv_delay(process):
            lib = make_library(LibraryCondition(process=process))
            return lib.cell("INV_X1_SVT").arcs[0].delay_and_slew("fall", 20.0, 4.0)[0]

        assert inv_delay("tt") < inv_delay("ssg") < inv_delay("ss")

    def test_temperature_inversion_in_library(self):
        """The analytic library inherits Fig 6(b)'s temperature inversion."""

        def inv_delay(vdd, temp):
            lib = make_library(LibraryCondition(vdd=vdd, temp_c=temp))
            return lib.cell("INV_X1_SVT").arcs[0].delay_and_slew("fall", 20.0, 4.0)[0]

        # Low voltage: cold is slower.
        assert inv_delay(0.55, -30.0) > inv_delay(0.55, 125.0)
        # High voltage: hot is slower.
        assert inv_delay(1.0, 125.0) > inv_delay(1.0, -30.0)

    def test_aging_shift_slows_cells(self):
        fresh = make_library(LibraryCondition())
        aged = make_library(LibraryCondition(vt_shift_aging=0.04))
        d_fresh = fresh.cell("INV_X1_SVT").arcs[0].delay_and_slew("fall", 20.0, 4.0)[0]
        d_aged = aged.cell("INV_X1_SVT").arcs[0].delay_and_slew("fall", 20.0, 4.0)[0]
        assert d_aged > d_fresh

    def test_unknown_process_rejected(self):
        with pytest.raises(LibraryError):
            make_library(LibraryCondition(process="zz"))

    def test_label_encodes_condition(self):
        label = LibraryCondition(vdd=0.72, temp_c=-30, process="ssg").label()
        assert "ssg" in label and "720mv" in label and "m30c" in label

    def test_hvt_sigma_larger_than_lvt(self, ):
        """Lower overdrive (HVT) means larger relative variation — the
        paper's 'variation hotspot' point (footnote 10/12)."""
        from repro.liberty.aocv import pocv_sigma

        lib = make_library()
        assert pocv_sigma(lib.cell("INV_X1_HVT")) > pocv_sigma(
            lib.cell("INV_X1_LVT")
        )


class TestDffConstraints:
    def test_setup_positive(self, lib):
        dff = lib.cell("DFF_X1_SVT")
        arc = dff.arc_between("CK", "D", TimingType.SETUP_RISING)
        assert arc.constraint_value("rise", 10.0, 10.0) > 0.0

    def test_setup_grows_with_data_slew(self, lib):
        dff = lib.cell("DFF_X1_SVT")
        arc = dff.arc_between("CK", "D", TimingType.SETUP_RISING)
        assert arc.constraint_value("rise", 80.0, 10.0) > arc.constraint_value(
            "rise", 5.0, 10.0
        )

    def test_hold_smaller_than_setup(self, lib):
        dff = lib.cell("DFF_X1_SVT")
        setup = dff.arc_between("CK", "D", TimingType.SETUP_RISING)
        hold = dff.arc_between("CK", "D", TimingType.HOLD_RISING)
        assert hold.constraint_value("rise", 10.0, 10.0) < setup.constraint_value(
            "rise", 10.0, 10.0
        )

    def test_ck_to_q_arc_non_unate(self, lib):
        arc = lib.cell("DFF_X1_SVT").arc_between("CK", "Q")
        assert arc.sense is TimingSense.NON_UNATE
        assert arc.timing_type is TimingType.RISING_EDGE

    def test_slow_corner_has_larger_setup(self):
        tt = make_library(LibraryCondition(process="tt"))
        ss = make_library(LibraryCondition(process="ss", vdd=0.72, temp_c=125.0))
        s_tt = tt.cell("DFF_X1_SVT").arc_between(
            "CK", "D", TimingType.SETUP_RISING
        ).constraint_value("rise", 10.0, 10.0)
        s_ss = ss.cell("DFF_X1_SVT").arc_between(
            "CK", "D", TimingType.SETUP_RISING
        ).constraint_value("rise", 10.0, 10.0)
        assert s_ss > s_tt
