"""Taming the corner super-explosion (Sections 2.3 and 3.2).

Counts the combinatorial scenario space for a realistic SOC, prunes a
concrete MCMM scenario set by dominance, and applies the tightened-BEOL-
corner (TBC) methodology to recover the pessimism the Fig 8 alpha metric
exposes.

Run with:  python examples/corner_pruning_tbc.py
"""

from repro.beol.corners import corner_explosion_count
from repro.beol.stack import default_stack
from repro.core.tbc import alpha_analysis, classify_tbc_safe, tbc_signoff
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic
from repro.sta import Constraints
from repro.sta.mcmm import Scenario, ScenarioSet


def main() -> None:
    stack = default_stack()

    print("=== the corner super-explosion (Section 2.3) ===")
    counts = corner_explosion_count(n_modes=6, n_voltage_domains=4,
                                    stack=stack)
    for key, value in counts.items():
        print(f"  {key:<26} {value:>14,}")

    print("\n=== scenario pruning by dominance ===")
    constraints = Constraints.single_clock(520.0)
    constraints.input_delays = {f"in{i}": 60.0 for i in range(16)}
    design = random_logic(n_inputs=16, n_outputs=16, n_gates=150,
                          n_levels=6, seed=9)
    scenarios = ScenarioSet([
        Scenario("tt_typ", make_library(LibraryCondition()), constraints),
        Scenario("ssg_cw",
                 make_library(LibraryCondition(process="ssg", vdd=0.72,
                                               temp_c=125.0)),
                 constraints, beol_corner_name="cw", temp_c=125.0),
        Scenario("ss_cw",
                 make_library(LibraryCondition(process="ss", vdd=0.72,
                                               temp_c=125.0)),
                 constraints, beol_corner_name="cw", temp_c=125.0),
    ])
    reduced, dropped = scenarios.prune(design, guard_margin=2.0)
    print(f"  started with {len(scenarios.scenarios)} scenarios, "
          f"dropped {dropped}, kept {[s.name for s in reduced.scenarios]}")

    print("\n=== tightened BEOL corners (Fig 8 / Section 3.2) ===")
    library = make_library()
    stats = alpha_analysis(design, library,
                           Constraints.single_clock(600.0), n_endpoints=15)
    safe, unsafe = classify_tbc_safe(stats, a_cw=0.05, a_rcw=0.05)
    mean_alpha = sum(s.alpha(s.dominant_corner) for s in stats) / len(stats)
    print(f"  mean alpha at the dominant corner: {mean_alpha:.2f} "
          f"(small alpha = heavy CBC pessimism)")
    print(f"  TBC-safe paths at 5% thresholds: {len(safe)}/{len(stats)}")

    result = tbc_signoff(design, library, Constraints.single_clock(505.0),
                         tighten_factor=0.4, a_cw=0.05, a_rcw=0.05)
    print(f"  setup violations: {result.violations_cbc} at the Cw CBC "
          f"-> {result.violations_tbc} with TBC "
          f"({result.violations_removed} removed)")


if __name__ == "__main__":
    main()
