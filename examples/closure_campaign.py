"""A timing-closure campaign: the paper's Fig 1 loop, end to end.

Generates a constrained block, runs the iterative closure loop (Vt-swap
-> sizing -> buffering -> NDR -> useful skew), then evaluates the closed
design against a two-scenario MCMM signoff policy.

Run with:  python examples/closure_campaign.py
"""

from repro.core.closure import ClosureConfig, ClosureEngine
from repro.core.margins import MarginStackup
from repro.core.signoff import SignoffPolicy, evaluate_signoff
from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic
from repro.sta import Constraints
from repro.sta.mcmm import Scenario, ScenarioSet


def main() -> None:
    library = make_library()
    slow_lib = make_library(
        LibraryCondition(process="ss", vdd=0.72, temp_c=125.0)
    )
    design = random_logic(n_gates=300, n_levels=10, seed=3)
    constraints = Constraints.single_clock(900.0)
    constraints.input_delays = {f"in{i}": 60.0 for i in range(32)}

    print("=== closure loop (Fig 1), run at the slow signoff corner ===")
    engine = ClosureEngine(design, slow_lib, constraints,
                           temp_c=125.0)
    result = engine.run(ClosureConfig(max_iterations=8, budget_per_fix=24))
    print(result.render())

    print()
    print("=== MCMM signoff of the closed design ===")
    scenarios = ScenarioSet([
        Scenario("tt_typ", library, constraints, beol_corner_name="typ"),
        Scenario("ss_cw", slow_lib, constraints, beol_corner_name="cw",
                 temp_c=125.0),
    ])
    for style in ("worst_corner", "typical_avs"):
        policy = SignoffPolicy(scenarios=scenarios, margins=MarginStackup(),
                               setup_style=style, avs_v_max=1.05)
        verdict = evaluate_signoff(design, policy)
        print(f"--- policy: {style}")
        print(verdict.render())


if __name__ == "__main__":
    main()
