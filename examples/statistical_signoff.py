"""Statistical signoff: SSTA, yield, and the two goal posts.

Runs deterministic STA, block-based SSTA (with statistical interconnect),
and the old-vs-new goal-post comparison of the paper's title and
footnote 7.

Run with:  python examples/statistical_signoff.py
"""

from repro.beol.stack import default_stack
from repro.core.yieldmodel import (
    design_yield,
    goalpost_sweep,
    minimum_passing_period,
)
from repro.liberty import make_library
from repro.netlist.generators import random_logic
from repro.parasitics.statistical import StatisticalAnnotator
from repro.sta import STA, Constraints
from repro.variation.ssta import run_ssta


def main() -> None:
    library = make_library()
    design = random_logic(n_gates=200, n_levels=8, seed=11)

    def make_constraints(period):
        c = Constraints.single_clock(period)
        c.input_delays = {f"in{i}": 60.0 for i in range(32)}
        return c

    print("=== SSTA at a 540 ps clock ===")
    sta = STA(design, library, make_constraints(540.0))
    sta.report = sta.run()
    annotator = StatisticalAnnotator(sta.parasitics, default_stack())
    ssta = run_ssta(sta, global_sigma_frac=0.3, wire_annotator=annotator)
    worst_ep = min(ssta.endpoint_slacks,
                   key=lambda e: ssta.endpoint_slacks[e].mean)
    dist = ssta.endpoint_slacks[worst_ep]
    print(f"worst endpoint {worst_ep}:")
    print(f"  deterministic slack : "
          f"{sta.report.slack_of(worst_ep, 'setup'):8.2f} ps")
    print(f"  statistical mean    : {dist.mean:8.2f} ps")
    print(f"  sigma (local+global): {dist.sigma:8.2f} ps")
    for n in (1.0, 2.0, 3.0):
        print(f"  slack at {n:.0f} sigma    : "
              f"{ssta.slack_at_sigma(worst_ep, n):8.2f} ps")
    print(f"design parametric yield: {design_yield(ssta):.4f}")

    print("\n=== old vs new goal posts (title / footnote 7) ===")
    comparisons = goalpost_sweep(
        design, library, make_constraints,
        periods=[480.0, 510.0, 540.0, 570.0, 600.0],
    )
    print(f"{'period':>7} {'corner WNS':>11} {'yield':>8} "
          f"{'old':>5} {'new':>5}")
    for c in comparisons:
        print(f"{c.period:7.0f} {c.corner_wns:11.2f} "
              f"{c.yield_estimate:8.4f} "
              f"{'PASS' if c.corner_passes else 'fail':>5} "
              f"{'PASS' if c.yield_passes else 'fail':>5}")
    print(f"old goal post needs {minimum_passing_period(comparisons, 'corner'):.0f} ps; "
          f"new goal post accepts "
          f"{minimum_passing_period(comparisons, 'yield'):.0f} ps")


if __name__ == "__main__":
    main()
