"""Aging-aware signoff with AVS (the paper's Section 3.3 / Fig 9).

Walks the chicken-egg loop explicitly: sign off a block at several
assumed BTI corners, then simulate each implementation's AVS-managed
10-year lifetime and compare area vs lifetime-average power.

Run with:  python examples/aging_aware_signoff.py
"""

from repro.aging.bti import BtiModel
from repro.aging.signoff import simulate_lifetime, sweep_aging_corners
from repro.netlist.generators import random_logic
from repro.sta import Constraints


def main() -> None:
    bti = BtiModel()
    print("BTI model: 10-year DC shift at 105C:")
    for vdd in (0.7, 0.8, 0.9):
        print(f"  {vdd:.1f} V -> {bti.delta_vt(10.0, vdd) * 1000:5.1f} mV")

    constraints = Constraints.single_clock(450.0)

    print("\n=== one lifetime under AVS (the chicken-egg loop) ===")
    design = random_logic(n_gates=80, n_levels=6, seed=2)
    life = simulate_lifetime(design, constraints, years=10.0, steps=4)
    print(f"{'year':>6} {'V_avs':>7} {'dVt (mV)':>9} {'power (mW)':>11}")
    for t, v, dvt, p in zip(life.times, life.voltages, life.delta_vts,
                            life.powers):
        print(f"{t:6.1f} {v:7.3f} {dvt * 1000:9.1f} {p:11.4f}")
    print(f"lifetime average power: {life.average_power:.4f} mW")

    print("\n=== aging-corner sweep (Fig 9 tradeoff) ===")
    outcomes = sweep_aging_corners(
        design_factory=lambda: random_logic(n_gates=80, n_levels=6, seed=2),
        constraints=constraints,
        corners_mv=(0.0, 20.0, 40.0, 60.0),
        steps=2,
    )
    ref = outcomes[len(outcomes) // 2]
    print(f"{'corner (mV)':>11} {'area %':>8} {'power %':>9} {'V_final':>8}")
    for o in outcomes:
        print(f"{o.assumed_shift_mv:11.0f} "
              f"{100 * o.area / ref.area:8.1f} "
              f"{100 * o.average_power / ref.average_power:9.1f} "
              f"{o.final_voltage:8.3f}")
    print("\nunderestimate aging -> lifetime power up (AVS runs hot);")
    print("overestimate aging  -> area up (overdesign at tapeout).")


if __name__ == "__main__":
    main()
