"""Quickstart: generate a library and a netlist, run STA, read a report.

Run with:  python examples/quickstart.py
"""

from repro.liberty import LibraryCondition, make_library
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints


def main() -> None:
    # 1. A standard-cell library at a chosen PVT condition. The analytic
    #    factory derives NLDM tables from the same alpha-power device
    #    physics as the transistor-level simulator.
    library = make_library(LibraryCondition(vdd=0.8, temp_c=25.0,
                                            process="tt"))
    print(f"library: {library}")

    # 2. A synthetic design: launch flops -> random logic -> capture flops.
    design = random_logic(n_inputs=16, n_outputs=16, n_gates=200,
                          n_levels=8, seed=42)
    print(f"design:  {design}")

    # 3. Constraints: one 500 ps clock, inputs arriving 60 ps after it.
    constraints = Constraints.single_clock(500.0)
    constraints.input_delays = {f"in{i}": 60.0 for i in range(16)}

    # 4. Run STA and read the results.
    sta = STA(design, library, constraints)
    report = sta.run()
    print()
    print(report.summary())
    print()
    print(report.slack_histogram("setup", bins=6))
    print()

    worst = report.worst("setup")
    print("worst setup path:")
    print(sta.worst_path(worst).render())


if __name__ == "__main__":
    main()
