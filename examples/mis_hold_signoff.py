"""Multi-input switching and hold signoff (the paper's Section 2.1).

Characterizes SIS-vs-MIS arc delays at the transistor level (the Fig 4
experiment, reduced sweep), builds a MIS derate model from the
measurements, and applies it to the hold analysis of a synthetic block —
showing which endpoints a MIS-blind signoff would optimistically miss.

Run with:  python examples/mis_hold_signoff.py
"""

from repro.liberty import make_library
from repro.mis.analysis import fig4_study
from repro.mis.derate import MisDerateModel, mis_hold_adjustments
from repro.netlist.generators import random_logic
from repro.sta import STA, Constraints


def main() -> None:
    print("=== device-level MIS characterization (Fig 4, reduced) ===")
    rows = fig4_study(voltages=[0.8], offsets=[-10.0, 0.0, 10.0], dt=0.5)
    for r in rows:
        role = "hold-critical" if r.hold_critical else "setup-critical"
        print(f"  vdd={r.vdd} {r.input_direction:>5}: SIS {r.sis_delay:6.2f}"
              f" ps, MIS {r.mis_delay:6.2f} ps  (x{r.ratio:.2f}, {role})")

    model = MisDerateModel.from_fig4_rows(rows)
    print(f"\nfitted NAND2 MIS speedup factor: "
          f"{model.factor('nand2', 2):.2f}")

    print("\n=== MIS-aware hold signoff ===")
    library = make_library()
    design = random_logic(n_gates=200, n_levels=8, seed=21)
    constraints = Constraints.single_clock(500.0)
    constraints.input_delays = {f"in{i}": 60.0 for i in range(32)}
    sta = STA(design, library, constraints)
    sta.report = sta.run()

    adjustments = mis_hold_adjustments(sta, sta.report, model=model,
                                       overlap_window=50.0, limit=200)
    newly_violating = [
        a for a in adjustments
        if a.original_slack >= 0.0 > a.adjusted_slack
    ]
    affected = [a for a in adjustments if a.delta > 0.5]
    print(f"endpoints examined: {len(adjustments)}")
    print(f"endpoints with >0.5 ps MIS pessimism: {len(affected)}")
    print(f"endpoints flipped to violating by MIS: {len(newly_violating)}")
    for a in sorted(affected, key=lambda a: a.adjusted_slack)[:8]:
        print(f"  {str(a.endpoint):<18} hold slack {a.original_slack:7.2f}"
              f" -> {a.adjusted_slack:7.2f} ps "
              f"({a.susceptible_stages} MIS stages)")


if __name__ == "__main__":
    main()
