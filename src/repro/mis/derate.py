"""A practical MIS derate model and its hold-signoff application.

Conventional libraries characterize single-input switching only; MIS can
make a NAND/NOR arc dramatically faster (parallel pull networks), which is
*unsafe to ignore in hold analysis* — a path assumed to be slow enough may
actually be much faster. Following the spirit of [Lutkemeyer TAU'15], we
derive a simple derate factor per (gate family, #inputs) from simulator
characterization and apply it to early (hold) delays of gates whose input
arrival windows overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import TimingError
from repro.mis.analysis import Fig4Row, mis_window_probability
from repro.netlist.design import PinRef
from repro.sta.graph import CellEdge
from repro.sta.reports import EndpointResult


@dataclass
class MisDerateModel:
    """Speedup derates: early delay is multiplied by the derate when all
    inputs of a gate can switch together.

    ``speedup[(footprint_prefix, n_inputs)]`` holds the worst (smallest)
    MIS/SIS delay ratio; unknown combinations fall back to a conservative
    ``1/n_inputs`` bound (n parallel devices at best n-times the drive).
    """

    speedup: Dict[Tuple[str, int], float] = field(default_factory=dict)

    @classmethod
    def from_fig4_rows(cls, rows: List[Fig4Row]) -> "MisDerateModel":
        """Build the NAND2 entry from measured Fig 4 rows (the
        hold-critical falling-input speedups)."""
        model = cls()
        ratios = [r.ratio for r in rows if r.hold_critical]
        if not ratios:
            raise TimingError("no hold-critical MIS rows to fit from")
        model.speedup[("nand", 2)] = min(ratios)
        return model

    @classmethod
    def conservative(cls) -> "MisDerateModel":
        """The 1/n parallel-drive bound for common families."""
        model = cls()
        for fam in ("nand", "nor"):
            for n in (2, 3):
                model.speedup[(fam, n)] = 1.0 / n
        return model

    def factor(self, footprint: str, n_inputs: int) -> float:
        """MIS speedup factor (<= 1) for a gate family."""
        if n_inputs < 2:
            return 1.0
        for (fam, n), value in self.speedup.items():
            if footprint.startswith(fam) and n == n_inputs:
                return value
        if footprint.startswith(("nand", "nor", "aoi", "oai")):
            return 1.0 / n_inputs
        return 1.0


@dataclass
class MisHoldAdjustment:
    """Extra hold pessimism at one endpoint from MIS-susceptible stages."""

    endpoint: PinRef
    original_slack: float
    adjusted_slack: float
    susceptible_stages: int

    @property
    def delta(self) -> float:
        return self.original_slack - self.adjusted_slack


def mis_hold_adjustments(
    sta,
    report,
    model: Optional[MisDerateModel] = None,
    overlap_window: float = 30.0,
    limit: int = 50,
) -> List[MisHoldAdjustment]:
    """Recompute hold slacks assuming MIS speedups on susceptible stages.

    A stage is susceptible when its gate has 2+ inputs whose early
    arrivals overlap within ``overlap_window`` ps. The stage's early
    delay contribution is scaled by the model's speedup factor weighted
    by the overlap probability.
    """
    model = model or MisDerateModel.conservative()
    if sta.prop is None:
        raise TimingError("run() must be called before MIS hold analysis")
    out: List[MisHoldAdjustment] = []
    for endpoint in report.endpoints("hold")[:limit]:
        path = sta.worst_path(endpoint)
        reduction = 0.0
        susceptible = 0
        for point in path.points:
            if point.kind != "cell":
                continue
            pred = sta.prop.at(point.ref, point.direction).pred_early
            if pred is None or not isinstance(pred[0], CellEdge):
                continue
            edge = pred[0]
            cell = sta.graph.cell_of(point.ref)
            n_inputs = len(cell.input_pins())
            factor = model.factor(cell.footprint, n_inputs)
            if factor >= 1.0:
                continue
            weight = _input_overlap_weight(sta, edge, overlap_window)
            if weight <= 0.0:
                continue
            susceptible += 1
            effective = 1.0 - weight * (1.0 - factor)
            reduction += point.increment * (1.0 - effective)
        out.append(
            MisHoldAdjustment(
                endpoint=endpoint.endpoint,
                original_slack=endpoint.slack,
                adjusted_slack=endpoint.slack - reduction,
                susceptible_stages=susceptible,
            )
        )
    return out


def _input_overlap_weight(sta, edge: CellEdge, window: float) -> float:
    """Overlap weight of the *other* inputs of a gate vs the arc input."""
    inst = sta.graph.instance_of(edge.dst)
    cell = sta.graph.cell_of(edge.dst)
    ref_arr = None
    others: List[float] = []
    for pin in cell.input_pins():
        ref = PinRef(inst.name, pin.name)
        _, early = sta.prop.best_early(ref)
        if early == float("inf"):
            continue
        if pin.name == edge.arc.related_pin:
            ref_arr = early
        else:
            others.append(early)
    if ref_arr is None or not others:
        return 0.0
    return max(
        mis_window_probability(ref_arr, other, window) for other in others
    )
