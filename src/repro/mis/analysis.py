"""SIS-vs-MIS characterization (the Fig 4 experiment).

Runs the paper's exact procedure through the analytical simulator: NAND2
with an FO3 load, ramp on IN, the IN1 arrival offset swept, at nominal
and 80%-of-nominal supply, for rising and falling inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.spice.testbench import MisStudy, mis_sis_delays


@dataclass
class Fig4Row:
    """One (voltage, input direction) row of the Fig 4 comparison."""

    vdd: float
    input_direction: str
    sis_delay: float
    mis_delay: float  # the signoff-relevant extreme (min for fall, max-at-
    # simultaneity for rise)
    study: MisStudy

    @property
    def ratio(self) -> float:
        return self.mis_delay / self.sis_delay

    @property
    def hold_critical(self) -> bool:
        """The arc got faster under MIS — dangerous for hold signoff."""
        return self.ratio < 1.0


def fig4_study(
    nominal_vdd: float = 0.8,
    voltages: Optional[Sequence[float]] = None,
    in_slew: float = 20.0,
    fanout: int = 3,
    offsets: Optional[Sequence[float]] = None,
    dt: float = 0.5,
) -> List[Fig4Row]:
    """Run the full Fig 4 matrix: both directions at both voltages.

    For falling inputs the reported MIS delay is the sweep minimum (the
    hold-critical speedup); for rising inputs it is the simultaneous-
    arrival delay (the setup-critical slowdown) — matching how the two
    halves of Fig 4(b) are read.
    """
    voltages = list(voltages) if voltages is not None else \
        [nominal_vdd, 0.8 * nominal_vdd]
    offsets = list(offsets) if offsets is not None else \
        [-30.0, -15.0, -5.0, 0.0, 5.0, 15.0, 30.0]
    rows: List[Fig4Row] = []
    for vdd in voltages:
        for direction in ("rise", "fall"):
            study = mis_sis_delays(
                vdd=vdd,
                input_direction=direction,
                in_slew=in_slew,
                fanout=fanout,
                offsets=offsets,
                dt=dt,
            )
            mis = (
                study.mis_min_delay
                if direction == "fall"
                else study.mis_simultaneous_delay
            )
            rows.append(
                Fig4Row(
                    vdd=vdd,
                    input_direction=direction,
                    sis_delay=study.sis_delay,
                    mis_delay=mis,
                    study=study,
                )
            )
    return rows


def mis_window_probability(
    arrival_a: float, arrival_b: float, window: float
) -> float:
    """A triangular overlap weight: 1 at simultaneous arrival, linearly
    falling to 0 when the offset reaches ``window``. Used to decide which
    gates need MIS-aware hold derating."""
    offset = abs(arrival_a - arrival_b)
    if window <= 0.0:
        return 0.0
    return max(0.0, 1.0 - offset / window)
