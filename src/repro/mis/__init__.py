"""Multi-input switching (MIS) analysis — the paper's Section 2.1 / Fig 4.

- :mod:`repro.mis.analysis` — SIS-vs-MIS characterization sweeps through
  the transistor-level simulator;
- :mod:`repro.mis.derate` — a practical MIS derate model (in the spirit of
  [Lutkemeyer TAU'15]) and its application to hold signoff.
"""

from repro.mis.analysis import Fig4Row, fig4_study, mis_window_probability
from repro.mis.derate import MisDerateModel, mis_hold_adjustments

__all__ = [
    "Fig4Row",
    "fig4_study",
    "mis_window_probability",
    "MisDerateModel",
    "mis_hold_adjustments",
]
