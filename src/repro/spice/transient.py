"""Transient and DC solvers for :class:`repro.spice.network.Circuit`.

The transient engine uses Backward Euler with a full Newton iteration per
time step. Device currents and analytic conductances are evaluated
vectorized over all transistors, so circuits with a few hundred devices
(the flip-flop and Monte Carlo path testbenches) simulate in well under a
second per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.spice.network import GROUND, Circuit

_MAX_NEWTON_ITERS = 80
_NEWTON_TOL_V = 1e-7
_MAX_STEP_V = 0.5


class _CompiledCircuit:
    """Circuit flattened into numpy arrays for fast repeated evaluation."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.node_names = circuit.nodes
        self.index = {name: i for i, name in enumerate(self.node_names)}
        self.n = len(self.node_names)

        self.fixed_idx = np.array(
            [self.index[GROUND]] + [self.index[s] for s in circuit.sources],
            dtype=np.intp,
        )
        self.unknown_idx = np.array(
            [self.index[u] for u in circuit.unknown_nodes()], dtype=np.intp
        )
        self.source_nodes = list(circuit.sources)
        self.source_waveforms = [circuit.sources[s] for s in self.source_nodes]
        self.source_idx = np.array(
            [self.index[s] for s in self.source_nodes], dtype=np.intp
        )

        # Capacitance matrix (full) with the minimum node cap on unknowns.
        c_mat = np.zeros((self.n, self.n))
        for cap in circuit.capacitors:
            a, b = self.index[cap.node_a], self.index[cap.node_b]
            if a == b:
                continue
            c_mat[a, a] += cap.ff
            c_mat[b, b] += cap.ff
            c_mat[a, b] -= cap.ff
            c_mat[b, a] -= cap.ff
        for u in self.unknown_idx:
            c_mat[u, u] += Circuit.MIN_NODE_CAP
        self.c_mat = c_mat

        # Conductance Laplacian: current INTO nodes = -g_lap @ v.
        g_lap = np.zeros((self.n, self.n))
        for res in circuit.resistors:
            a, b = self.index[res.node_a], self.index[res.node_b]
            g = 1.0 / res.kohm
            g_lap[a, a] += g
            g_lap[b, b] += g
            g_lap[a, b] -= g
            g_lap[b, a] -= g
        self.g_lap = g_lap

        # Device arrays.
        fets = circuit.transistors
        self.m = len(fets)
        temp = circuit.temp_c
        if self.m:
            self.f_d = np.array([self.index[t.drain] for t in fets], dtype=np.intp)
            self.f_g = np.array([self.index[t.gate] for t in fets], dtype=np.intp)
            self.f_s = np.array([self.index[t.source] for t in fets], dtype=np.intp)
            self.f_pol = np.array([t.params.polarity for t in fets], dtype=float)
            self.f_vt = np.array(
                [t.params.vt_at(temp, t.vt_shift) for t in fets]
            )
            self.f_k = np.array(
                [t.params.k_at(temp, t.k_scale) * t.width for t in fets]
            )
            self.f_alpha = np.array([t.params.alpha for t in fets])
            self.f_kv = np.array([t.params.kv for t in fets])
            self.f_lam = np.array([t.params.lam for t in fets])
            self.f_nphit = np.array(
                [t.params.subthreshold_n * t.params.phi_t_at(temp) for t in fets]
            )

    # ------------------------------------------------------------------ #

    def source_values(self, t: float) -> np.ndarray:
        """Voltage of each source node at time ``t``."""
        return np.array([w.value(t) for w in self.source_waveforms])

    def device_currents(self, v: np.ndarray):
        """Vectorized device evaluation at node-voltage vector ``v``.

        Returns ``(i_into, rows, cols, vals)`` where ``i_into`` is the
        current injected into each node by all transistors and the triplets
        are Jacobian contributions ``d(i_into[row])/d(v[col])``.
        """
        if not self.m:
            empty = np.zeros(0, dtype=np.intp)
            return np.zeros(self.n), empty, empty, np.zeros(0)

        pol = self.f_pol
        a = pol * v[self.f_d]
        b = pol * v[self.f_s]
        swapped = a < b
        dd = np.where(swapped, b, a)
        ss = np.where(swapped, a, b)
        vgs = pol * v[self.f_g] - ss
        vds = dd - ss

        i, gm, gds = _alpha_power_vec(
            vgs, vds, self.f_vt, self.f_k, self.f_alpha, self.f_kv,
            self.f_lam, self.f_nphit,
        )

        # Node index playing the drain role / source role in the
        # normalized (always-NMOS, vds >= 0) frame.
        dd_node = np.where(swapped, self.f_s, self.f_d)
        ss_node = np.where(swapped, self.f_d, self.f_s)

        i_into = np.zeros(self.n)
        np.add.at(i_into, dd_node, -pol * i)
        np.add.at(i_into, ss_node, pol * i)

        # Jacobian triplets; polarity cancels in the chain rule.
        g_node = self.f_g
        rows = np.concatenate([dd_node, dd_node, dd_node, ss_node, ss_node, ss_node])
        cols = np.concatenate([g_node, dd_node, ss_node, g_node, dd_node, ss_node])
        vals = np.concatenate([-gm, -gds, gm + gds, gm, gds, -(gm + gds)])
        return i_into, rows, cols, vals

    def device_jacobian(self, rows, cols, vals) -> np.ndarray:
        """Dense Jacobian d(i_into)/dv from triplets."""
        jac = np.zeros((self.n, self.n))
        np.add.at(jac, (rows, cols), vals)
        return jac


def _alpha_power_vec(vgs, vds, vt, k, alpha, kv, lam, n_phi_t):
    """Vectorized smoothed alpha-power model (normalized NMOS frame)."""
    x = (vgs - vt) / n_phi_t
    xc = np.clip(x, -35.0, 35.0)
    v_ov = n_phi_t * np.where(x > 35.0, x, np.log1p(np.exp(xc)))
    dvov = np.where(x > 35.0, 1.0, 1.0 / (1.0 + np.exp(-xc)))

    pow_a = v_ov**alpha
    clm = 1.0 + lam * vds
    idsat = k * pow_a * clm
    didsat_dvgs = k * alpha * v_ov ** (alpha - 1.0) * clm * dvov
    didsat_dvds = k * pow_a * lam

    vdsat = kv * v_ov ** (alpha / 2.0)
    sat = vds >= vdsat
    u = np.where(sat, 1.0, vds / vdsat)
    shape = u * (2.0 - u)
    dshape_du = 2.0 - 2.0 * u
    dvdsat_dvgs = kv * (alpha / 2.0) * v_ov ** (alpha / 2.0 - 1.0) * dvov
    du_dvgs = np.where(sat, 0.0, -vds * dvdsat_dvgs / (vdsat * vdsat))
    du_dvds = np.where(sat, 0.0, 1.0 / vdsat)

    i = idsat * shape
    gm = didsat_dvgs * shape + idsat * dshape_du * du_dvgs
    gds = didsat_dvds * shape + idsat * dshape_du * du_dvds
    return i, gm, gds


@dataclass
class TransientResult:
    """Simulated waveforms: a shared time axis plus per-node voltages."""

    times: np.ndarray
    voltages: Dict[str, np.ndarray]

    def wave(self, node: str) -> np.ndarray:
        """Voltage samples for ``node``."""
        try:
            return self.voltages[node]
        except KeyError:
            raise SimulationError(f"no such node in result: {node!r}") from None

    def final(self, node: str) -> float:
        """Final voltage of ``node``."""
        return float(self.wave(node)[-1])


def dc_operating_point(
    circuit: Circuit,
    t: float = 0.0,
    initial: Optional[Dict[str, float]] = None,
    strict: bool = True,
) -> Dict[str, float]:
    """Solve the DC operating point with source values frozen at time ``t``.

    Uses gmin-stepping (a shunt conductance to ground swept from large to
    negligible) so that CMOS stacks converge from a cold start. Multi-stable
    circuits (latches) converge to *a* solution; testbenches that care about
    state should establish it with an input sequence instead.

    With ``strict=False``, non-convergence (typically a floating node
    inside a fully-off series stack) returns the best iterate instead of
    raising — adequate as a transient starting point.
    """
    comp = _CompiledCircuit(circuit)
    v = np.zeros(comp.n)
    v[comp.source_idx] = comp.source_values(t)
    if initial:
        for node, val in initial.items():
            v[comp.index[node]] = val

    uu = comp.unknown_idx
    if uu.size == 0:
        return {name: float(v[comp.index[name]]) for name in comp.node_names}

    for gshunt in (1e-1, 1e-3, 1e-6, 1e-9, 1e-12):
        for _ in range(_MAX_NEWTON_ITERS):
            i_dev, rows, cols, vals = comp.device_currents(v)
            i_in = i_dev - comp.g_lap @ v
            residual = -i_in[uu] + gshunt * v[uu]
            jac_full = comp.g_lap - comp.device_jacobian(rows, cols, vals)
            jac = jac_full[np.ix_(uu, uu)] + gshunt * np.eye(uu.size)
            try:
                delta = np.linalg.solve(jac, -residual)
            except np.linalg.LinAlgError as exc:
                raise SimulationError(f"singular DC Jacobian: {exc}") from exc
            delta = np.clip(delta, -_MAX_STEP_V, _MAX_STEP_V)
            v[uu] += delta
            if np.max(np.abs(delta)) < _NEWTON_TOL_V:
                break
        else:
            if strict:
                raise SimulationError(
                    f"DC operating point did not converge (gshunt={gshunt})"
                )
            # Non-strict mode (used by the transient solver for its
            # starting point): a floating all-off stack node can defeat
            # Newton, but any bounded state is a fine transient start —
            # the settle window resolves it physically.
            break
    return {name: float(v[comp.index[name]]) for name in comp.node_names}


def simulate(
    circuit: Circuit,
    t_stop: float,
    dt: float = 1.0,
    t_start: float = 0.0,
    initial: Optional[Dict[str, float]] = None,
    record: Optional[List[str]] = None,
) -> TransientResult:
    """Backward-Euler transient simulation.

    Args:
        circuit: the circuit to simulate.
        t_stop: end time, ps.
        dt: fixed time step, ps.
        t_start: start time (may be negative to allow settling).
        initial: initial node voltages; unspecified unknowns start from the
            DC operating point at ``t_start``.
        record: node names to record (default: all nodes).

    Returns:
        A :class:`TransientResult` with one sample per accepted step.
    """
    if t_stop <= t_start:
        raise SimulationError("t_stop must exceed t_start")
    if dt <= 0:
        raise SimulationError("dt must be positive")

    comp = _CompiledCircuit(circuit)
    op = dc_operating_point(circuit, t=t_start, initial=initial, strict=False)
    v = np.array([op[name] for name in comp.node_names])

    n_steps = int(np.ceil((t_stop - t_start) / dt))
    times = t_start + dt * np.arange(n_steps + 1)
    times[-1] = min(times[-1], t_stop)

    record_names = record if record is not None else comp.node_names
    record_idx = [comp.index[name] for name in record_names]
    out = np.empty((n_steps + 1, len(record_idx)))
    out[0] = v[record_idx]

    uu = comp.unknown_idx
    c_uu_base = comp.c_mat[np.ix_(uu, uu)] if uu.size else None

    for step in range(1, n_steps + 1):
        t_new = times[step]
        h = t_new - times[step - 1]
        v_old = v.copy()
        v[comp.source_idx] = comp.source_values(t_new)
        if uu.size:
            _newton_step(comp, v, v_old, h, uu, c_uu_base)
        out[step] = v[record_idx]

    return TransientResult(
        times=times, voltages={n: out[:, j] for j, n in enumerate(record_names)}
    )


def _newton_step(comp, v, v_old, h, uu, c_uu_base) -> None:
    """Advance unknown voltages by one Backward-Euler step, in place."""
    for iteration in range(_MAX_NEWTON_ITERS):
        i_dev, rows, cols, vals = comp.device_currents(v)
        i_in = i_dev - comp.g_lap @ v
        residual = (comp.c_mat @ (v - v_old))[uu] / h - i_in[uu]
        jac_full = comp.g_lap - comp.device_jacobian(rows, cols, vals)
        jac = c_uu_base / h + jac_full[np.ix_(uu, uu)]
        try:
            delta = np.linalg.solve(jac, -residual)
        except np.linalg.LinAlgError as exc:
            raise SimulationError(f"singular transient Jacobian: {exc}") from exc
        delta = np.clip(delta, -_MAX_STEP_V, _MAX_STEP_V)
        v[uu] += delta
        if np.max(np.abs(delta)) < _NEWTON_TOL_V:
            return
    raise SimulationError(
        f"transient Newton did not converge within {_MAX_NEWTON_ITERS} iterations"
    )
