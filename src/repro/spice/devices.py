"""MOSFET device model: smoothed alpha-power law with temperature effects.

The model follows Sakurai-Newton's alpha-power law, smoothed through the
threshold with a softplus overdrive so a single C1-continuous expression
covers subthreshold and strong inversion (good Newton behaviour):

    v_ov   = n*phi_t * ln(1 + exp((vgs - vt) / (n*phi_t)))
    vdsat  = kv * v_ov^(alpha/2)
    idsat  = k * W * v_ov^alpha * (1 + lambda * vds)
    id     = idsat * u * (2 - u)          for u = vds/vdsat < 1   (triode)
    id     = idsat                        for vds >= vdsat        (saturation)

Temperature enters twice, which is what produces the paper's Fig 6(b)
*temperature inversion*: threshold voltage drops with temperature
(``vt(T) = vt0 - vt_tc * (T - 25C)``, making hot devices faster at low
supply) while mobility degrades with temperature
(``k(T) = k0 * (T_ref/T_K)^mu_exp``, making hot devices slower at high
supply). The supply voltage where the two effects cancel is the
temperature-reversal point V_tr.

Per-device variation and aging enter through ``vt_shift`` (added to the
threshold) and ``k_scale`` (multiplies the current factor); Monte Carlo and
BTI-aging studies perturb only these two fields.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.units import celsius_to_kelvin

# Thermal voltage at 300 K, in volts.
PHI_T_300K = 0.02585
T_REF_KELVIN = 298.15
T_REF_CELSIUS = 25.0


@dataclass(frozen=True)
class MosParams:
    """Process parameters for one transistor flavor.

    Attributes:
        polarity: +1 for NMOS, -1 for PMOS.
        vt0: threshold voltage magnitude at 25 C, in volts.
        k: current factor per unit width, in mA / V^alpha.
        alpha: velocity-saturation exponent (2.0 = long channel, ~1.2-1.4
            for deeply scaled devices).
        kv: saturation-voltage coefficient, vdsat = kv * v_ov^(alpha/2).
        lam: channel-length modulation, 1/V.
        vt_tc: threshold temperature coefficient, V per degree C (the
            threshold *decreases* by ``vt_tc`` per degree above 25 C).
        mu_exp: mobility temperature exponent; k scales as (T_ref/T)^mu_exp.
        subthreshold_n: subthreshold slope factor n (smoothing width of the
            softplus overdrive is n * phi_t).
        cg_per_width: gate capacitance per unit width, fF.
        cd_per_width: drain/source junction capacitance per unit width, fF.
    """

    polarity: int
    vt0: float
    k: float
    alpha: float = 1.3
    kv: float = 0.9
    lam: float = 0.05
    vt_tc: float = 0.0008
    mu_exp: float = 1.5
    subthreshold_n: float = 1.45
    cg_per_width: float = 1.0
    cd_per_width: float = 0.5

    def vt_at(self, temp_c: float, vt_shift: float = 0.0) -> float:
        """Threshold-voltage magnitude at ``temp_c``, including shift."""
        return self.vt0 + vt_shift - self.vt_tc * (temp_c - T_REF_CELSIUS)

    def k_at(self, temp_c: float, k_scale: float = 1.0) -> float:
        """Current factor at ``temp_c``, including variation scale."""
        t_k = celsius_to_kelvin(temp_c)
        return self.k * k_scale * (T_REF_KELVIN / t_k) ** self.mu_exp

    def phi_t_at(self, temp_c: float) -> float:
        """Thermal voltage kT/q at ``temp_c``, in volts."""
        return PHI_T_300K * celsius_to_kelvin(temp_c) / 300.0


# Default 16/14nm-class flavors, calibrated so a unit-width inverter at
# VDD = 0.8 V has an FO4 delay of a handful of picoseconds. PMOS current
# factor is lower (hole mobility); cell builders compensate with width.
NMOS_16NM = MosParams(polarity=+1, vt0=0.35, k=0.85)
PMOS_16NM = MosParams(polarity=-1, vt0=0.35, k=0.42)


def vt_flavor_params(base: MosParams, flavor: str) -> MosParams:
    """Return device parameters for a threshold flavor of ``base``.

    Flavors model the multi-Vt menu used by Vt-swap optimization: LVT is
    faster but leaky, HVT slower but low-leakage. ULVT/UHVT extend the menu
    for aggressive libraries.
    """
    offsets = {
        "ulvt": -0.10,
        "lvt": -0.06,
        "svt": 0.0,
        "hvt": +0.07,
        "uhvt": +0.13,
    }
    try:
        offset = offsets[flavor.lower()]
    except KeyError:
        raise ValueError(
            f"unknown Vt flavor {flavor!r}; expected one of {sorted(offsets)}"
        ) from None
    return replace(base, vt0=base.vt0 + offset)


@dataclass
class Transistor:
    """A transistor instance inside a :class:`repro.spice.network.Circuit`.

    Attributes:
        drain, gate, source: node names.
        params: process parameters (flavor).
        width: drive-strength multiplier (unit widths).
        vt_shift: per-instance threshold shift in volts (variation, aging).
        k_scale: per-instance current-factor multiplier (variation).
        name: optional instance name for debugging.
    """

    drain: str
    gate: str
    source: str
    params: MosParams
    width: float = 1.0
    vt_shift: float = 0.0
    k_scale: float = 1.0
    name: str = ""

    def current(
        self, v_d: float, v_g: float, v_s: float, temp_c: float = T_REF_CELSIUS
    ) -> float:
        """Drain current (mA) flowing drain->source, for scalar voltages.

        Convenience scalar entry point; the transient solver uses the
        vectorized device evaluation in :mod:`repro.spice.transient`.
        """
        i, _, _, _ = self.current_and_derivs(v_d, v_g, v_s, temp_c)
        return i

    def current_and_derivs(
        self, v_d: float, v_g: float, v_s: float, temp_c: float = T_REF_CELSIUS
    ) -> Tuple[float, float, float, float]:
        """Return (i_ds, di/dv_d, di/dv_g, di/dv_s) at the given voltages.

        ``i_ds`` is the current flowing from the drain terminal to the
        source terminal through the channel (positive when a turned-on NMOS
        discharges its drain).
        """
        pol = self.params.polarity
        a = pol * v_d
        b = pol * v_s
        swapped = a < b
        if swapped:
            a, b = b, a
        vgs = pol * v_g - b
        vds = a - b

        i, gm, gds = _alpha_power_current(
            vgs,
            vds,
            vt=self.params.vt_at(temp_c, self.vt_shift),
            k=self.params.k_at(temp_c, self.k_scale) * self.width,
            alpha=self.params.alpha,
            kv=self.params.kv,
            lam=self.params.lam,
            n_phi_t=self.params.subthreshold_n * self.params.phi_t_at(temp_c),
        )
        # Derivatives w.r.t. normalized node voltages (d', g', s').
        di_dd = gds
        di_dg = gm
        di_ds = -(gm + gds)
        if swapped:
            # The physical drain plays the source role: relabel the
            # terminal derivatives and negate everything along with i.
            di_dd, di_ds = -di_ds, -di_dd
            di_dg = -di_dg
            i = -i
        # Physical current from drain to source = pol * normalized current;
        # derivative chain rule multiplies by another pol, cancelling.
        return pol * i, di_dd, di_dg, di_ds

    def gate_capacitance(self) -> float:
        """Gate input capacitance in fF."""
        return self.params.cg_per_width * self.width

    def junction_capacitance(self) -> float:
        """Drain (or source) junction capacitance in fF."""
        return self.params.cd_per_width * self.width


def _softplus(x: float) -> float:
    """Numerically safe ln(1 + e^x)."""
    if x > 35.0:
        return x
    if x < -35.0:
        return math.exp(x)
    return math.log1p(math.exp(x))


def _sigmoid(x: float) -> float:
    """Numerically safe logistic function."""
    if x > 35.0:
        return 1.0
    if x < -35.0:
        return 0.0
    return 1.0 / (1.0 + math.exp(-x))


def _alpha_power_current(
    vgs: float,
    vds: float,
    vt: float,
    k: float,
    alpha: float,
    kv: float,
    lam: float,
    n_phi_t: float,
) -> Tuple[float, float, float]:
    """Smoothed alpha-power current and derivatives, normalized NMOS frame.

    Returns (i, gm, gds) with vds >= 0 assumed (the caller swaps
    terminals), i in mA, gm = di/dvgs, gds = di/dvds.
    """
    x = (vgs - vt) / n_phi_t
    v_ov = n_phi_t * _softplus(x)
    dvov_dvgs = _sigmoid(x)

    pow_a = v_ov**alpha
    clm = 1.0 + lam * vds
    idsat = k * pow_a * clm
    didsat_dvgs = k * alpha * v_ov ** (alpha - 1.0) * clm * dvov_dvgs
    didsat_dvds = k * pow_a * lam

    vdsat = kv * v_ov ** (alpha / 2.0)
    if vds >= vdsat:
        return idsat, didsat_dvgs, didsat_dvds

    u = vds / vdsat
    shape = u * (2.0 - u)
    dshape_du = 2.0 - 2.0 * u
    dvdsat_dvgs = kv * (alpha / 2.0) * v_ov ** (alpha / 2.0 - 1.0) * dvov_dvgs
    du_dvgs = -vds * dvdsat_dvgs / (vdsat * vdsat)
    du_dvds = 1.0 / vdsat

    i = idsat * shape
    gm = didsat_dvgs * shape + idsat * dshape_du * du_dvgs
    gds = didsat_dvds * shape + idsat * dshape_du * du_dvds
    return i, gm, gds
