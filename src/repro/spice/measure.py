"""Waveform measurements: threshold crossings, delays and transition times.

Conventions match standard library characterization: delays are measured
between 50% crossings of input and output; transition (slew) times between
the 20% and 80% points unless overridden.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SimulationError

DELAY_THRESHOLD = 0.5
SLEW_LOW = 0.2
SLEW_HIGH = 0.8


def crossing_time(
    times: np.ndarray,
    values: np.ndarray,
    level: float,
    direction: str = "any",
    after: float = -np.inf,
    nth: int = 1,
) -> Optional[float]:
    """Time of the ``nth`` crossing of ``level``, linearly interpolated.

    Args:
        times, values: the waveform samples.
        level: absolute voltage threshold.
        direction: ``"rise"``, ``"fall"`` or ``"any"``.
        after: ignore crossings at or before this time.
        nth: 1-based index of the crossing to return.

    Returns:
        The crossing time in ps, or ``None`` if it never occurs.
    """
    if direction not in ("rise", "fall", "any"):
        raise SimulationError(f"bad direction {direction!r}")
    below = values < level
    count = 0
    for i in range(1, len(times)):
        if times[i] <= after:
            continue
        rises = below[i - 1] and not below[i]
        falls = not below[i - 1] and below[i]
        if direction == "rise" and not rises:
            continue
        if direction == "fall" and not falls:
            continue
        if direction == "any" and not (rises or falls):
            continue
        dv = values[i] - values[i - 1]
        if dv == 0.0:
            continue
        frac = (level - values[i - 1]) / dv
        t_cross = times[i - 1] + frac * (times[i] - times[i - 1])
        if t_cross <= after:
            continue
        count += 1
        if count == nth:
            return float(t_cross)
    return None


def delay_between(
    times: np.ndarray,
    wave_in: np.ndarray,
    wave_out: np.ndarray,
    vdd: float,
    in_direction: str,
    out_direction: str,
    after: float = -np.inf,
    threshold: float = DELAY_THRESHOLD,
) -> float:
    """50%-to-50% delay from an input transition to the next output one.

    Raises :class:`SimulationError` when either crossing is missing — a
    missing output crossing usually means the testbench window is too short
    or the gate never switched.
    """
    level = threshold * vdd
    t_in = crossing_time(times, wave_in, level, in_direction, after=after)
    if t_in is None:
        raise SimulationError("input never crossed its delay threshold")
    t_out = crossing_time(times, wave_out, level, out_direction, after=t_in)
    if t_out is None:
        raise SimulationError("output never crossed its delay threshold")
    return t_out - t_in


def transition_time(
    times: np.ndarray,
    values: np.ndarray,
    vdd: float,
    direction: str,
    after: float = -np.inf,
    low: float = SLEW_LOW,
    high: float = SLEW_HIGH,
) -> float:
    """Output transition (slew) time between the ``low`` and ``high``
    fractional thresholds, for the first transition after ``after``."""
    lo_level, hi_level = low * vdd, high * vdd
    if direction == "rise":
        t_lo = crossing_time(times, values, lo_level, "rise", after=after)
        if t_lo is None:
            raise SimulationError("no rising transition found")
        t_hi = crossing_time(times, values, hi_level, "rise", after=t_lo)
        if t_hi is None:
            raise SimulationError("rising transition did not complete")
        return t_hi - t_lo
    if direction == "fall":
        t_hi = crossing_time(times, values, hi_level, "fall", after=after)
        if t_hi is None:
            raise SimulationError("no falling transition found")
        t_lo = crossing_time(times, values, lo_level, "fall", after=t_hi)
        if t_lo is None:
            raise SimulationError("falling transition did not complete")
        return t_lo - t_hi
    raise SimulationError(f"bad direction {direction!r}")


def slew_to_ramp_duration(slew: float, low: float = SLEW_LOW, high: float = SLEW_HIGH) -> float:
    """Convert a measured (20-80%) slew to the full 0-100% ramp duration
    used by :class:`repro.spice.stimulus.Ramp`."""
    return slew / (high - low)


def ramp_duration_to_slew(duration: float, low: float = SLEW_LOW, high: float = SLEW_HIGH) -> float:
    """Inverse of :func:`slew_to_ramp_duration`."""
    return duration * (high - low)
