"""Canned testbenches for arc delay, SIS/MIS and flip-flop studies.

Each testbench builds a small circuit around a device-level gate
(:mod:`repro.spice.gates`), applies ramp stimulus, simulates, and measures.
The Fig 4 setup of the paper — a NAND2 driving an FO3 inverter load — maps
directly onto :func:`mis_sis_delays`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.spice.devices import MosParams, NMOS_16NM, PMOS_16NM
from repro.spice.gates import add_dff, add_inverter, add_nand
from repro.spice.measure import (
    delay_between,
    slew_to_ramp_duration,
    transition_time,
)
from repro.spice.network import GROUND, Circuit
from repro.spice.stimulus import Constant, PiecewiseLinear, Ramp
from repro.spice.transient import simulate

DEFAULT_VDD = 0.8


@dataclass
class ArcMeasurement:
    """One measured timing arc: delay and output slew, both in ps."""

    delay: float
    out_slew: float


def _fanout_load(circuit: Circuit, net: str, fanout: int, vdd_node: str,
                 nmos: MosParams, pmos: MosParams) -> None:
    """Attach ``fanout`` unit inverters as a realistic load on ``net``."""
    for i in range(fanout):
        add_inverter(
            circuit, f"load{i}", net, circuit.node(f"load{i}.out"),
            vdd_node=vdd_node, nmos=nmos, pmos=pmos,
        )


def inverter_delay(
    vdd: float = DEFAULT_VDD,
    temp_c: float = 25.0,
    size: float = 1.0,
    load_ff: float = 4.0,
    in_slew: float = 20.0,
    direction: str = "fall",
    nmos: MosParams = NMOS_16NM,
    pmos: MosParams = PMOS_16NM,
    dt: float = 0.25,
) -> ArcMeasurement:
    """Delay/slew of a single inverter driving a lumped capacitive load.

    ``direction`` is the *output* transition direction.
    """
    circuit = Circuit("inv_tb", temp_c=temp_c)
    vdd_node = circuit.add_vdd(vdd)
    add_inverter(circuit, "dut", "in", "out", vdd_node, size=size, nmos=nmos, pmos=pmos)
    circuit.add_capacitor("out", GROUND, load_ff)

    in_rise = direction == "fall"  # rising input makes the output fall
    ramp = _input_ramp(vdd, in_slew, rising=in_rise)
    circuit.add_source("in", ramp)

    horizon = _horizon(in_slew, load_ff, size)
    result = simulate(circuit, t_stop=horizon, dt=dt, t_start=-horizon / 2)
    return _measure_arc(result, "in", "out", vdd,
                        "rise" if in_rise else "fall", direction)


def nand2_arc_delay(
    vdd: float = DEFAULT_VDD,
    temp_c: float = 25.0,
    size: float = 1.0,
    fanout: int = 3,
    in_slew: float = 20.0,
    input_direction: str = "rise",
    other_input: str = "high",
    mis_offset: Optional[float] = None,
    nmos: MosParams = NMOS_16NM,
    pmos: MosParams = PMOS_16NM,
    dt: float = 0.25,
) -> ArcMeasurement:
    """Arc delay of NAND2 input IN -> output with an FO-``fanout`` load.

    This reproduces the paper's Fig 4 testbench. ``other_input`` selects
    the state of IN1:

    - ``"high"``: IN1 tied to VDD (single-input switching, SIS);
    - ``"switching"``: IN1 gets the same ramp as IN offset by
      ``mis_offset`` ps (multi-input switching, MIS).

    The measured arc is IN -> OUT; a rising IN produces a falling OUT when
    IN1 is high.
    """
    circuit = Circuit("nand2_tb", temp_c=temp_c)
    vdd_node = circuit.add_vdd(vdd)
    add_nand(circuit, "dut", ["in", "in1"], "out", vdd_node, size=size,
             nmos=nmos, pmos=pmos)
    _fanout_load(circuit, "out", fanout, vdd_node, nmos, pmos)

    rising = input_direction == "rise"
    circuit.add_source("in", _input_ramp(vdd, in_slew, rising=rising))
    if other_input == "high":
        circuit.add_source("in1", Constant(vdd))
    elif other_input == "switching":
        if mis_offset is None:
            raise SimulationError("mis_offset required when other_input='switching'")
        circuit.add_source("in1", _input_ramp(vdd, in_slew, rising=rising,
                                              t_start=mis_offset))
    else:
        raise SimulationError(f"bad other_input {other_input!r}")

    horizon = _horizon(in_slew, 4.0 * fanout, size) + abs(mis_offset or 0.0)
    result = simulate(circuit, t_stop=horizon, dt=dt, t_start=-horizon / 2)
    out_dir = "fall" if rising else "rise"
    return _measure_arc(result, "in", "out", vdd, input_direction, out_dir)


@dataclass
class MisStudy:
    """SIS-vs-MIS comparison for one arc (the paper's Fig 4 experiment).

    ``sweep`` holds ``(in1_offset, arc_delay)`` pairs over the IN1
    arrival-time sweep.
    """

    input_direction: str
    vdd: float
    sis_delay: float
    sweep: List[Tuple[float, float]]

    @property
    def mis_min_delay(self) -> float:
        """Minimum arc delay over the sweep — the hold-critical MIS delay
        (dramatic when falling inputs enable the parallel pull-up)."""
        return min(d for _, d in self.sweep)

    @property
    def mis_simultaneous_delay(self) -> float:
        """Arc delay with IN1 arriving simultaneously — the setup-critical
        MIS delay (charge sharing slows the series stack)."""
        return min(self.sweep, key=lambda p: abs(p[0]))[1]

    @property
    def speedup_ratio(self) -> float:
        """mis_min / sis; < 1 means MIS makes the arc faster."""
        return self.mis_min_delay / self.sis_delay

    @property
    def slowdown_ratio(self) -> float:
        """mis_simultaneous / sis; > 1 means MIS makes the arc slower."""
        return self.mis_simultaneous_delay / self.sis_delay


def mis_sis_delays(
    vdd: float = DEFAULT_VDD,
    temp_c: float = 25.0,
    input_direction: str = "rise",
    in_slew: float = 20.0,
    fanout: int = 3,
    offsets: Optional[Sequence[float]] = None,
    dt: float = 0.25,
) -> MisStudy:
    """Run the Fig 4 experiment: NAND2 arc delay, SIS vs a MIS offset sweep.

    The paper's procedure: ramp IN, sweep the arrival offset of an
    identical ramp on IN1, and compare the resulting arc delays against
    the SIS reference (IN1 tied to VDD). Falling simultaneous inputs make
    the rising output much faster (parallel PMOS, hold-critical); rising
    near-simultaneous inputs make the falling output slower (series-stack
    charge sharing, setup-critical).
    """
    sis = nand2_arc_delay(
        vdd=vdd, temp_c=temp_c, input_direction=input_direction,
        in_slew=in_slew, fanout=fanout, other_input="high", dt=dt,
    ).delay
    if offsets is None:
        offsets = np.linspace(-2.0 * in_slew, 2.0 * in_slew, 9)
    sweep: List[Tuple[float, float]] = []
    for off in offsets:
        try:
            d = nand2_arc_delay(
                vdd=vdd, temp_c=temp_c, input_direction=input_direction,
                in_slew=in_slew, fanout=fanout, other_input="switching",
                mis_offset=float(off), dt=dt,
            ).delay
        except SimulationError:
            continue  # some offsets produce no output transition
        sweep.append((float(off), d))
    if not sweep:
        raise SimulationError("MIS sweep produced no measurable transitions")
    return MisStudy(input_direction=input_direction, vdd=vdd,
                    sis_delay=sis, sweep=sweep)


@dataclass
class FlopTrial:
    """Outcome of one flip-flop launch trial."""

    setup_time: float
    hold_time: float
    c2q_delay: Optional[float]  # None when the flop failed to capture

    @property
    def captured(self) -> bool:
        return self.c2q_delay is not None


def dff_capture_trial(
    setup_time: float,
    hold_time: float,
    vdd: float = DEFAULT_VDD,
    temp_c: float = 25.0,
    data_slew: float = 15.0,
    clk_slew: float = 10.0,
    load_ff: float = 4.0,
    dt: float = 0.5,
) -> FlopTrial:
    """Launch a rising D through the six-NAND flop and measure c2q.

    The data input rises ``setup_time`` ps before the active clock edge and
    falls back ``hold_time`` ps after it; Q must rise and stay risen for
    the capture to count. This is exactly the characterization experiment
    behind the paper's Fig 10 surfaces.
    """
    circuit = Circuit("dff_tb", temp_c=temp_c)
    vdd_node = circuit.add_vdd(vdd)
    add_dff(circuit, "dut", "d", "clk", "q", vdd_node=vdd_node)
    circuit.add_capacitor("q", GROUND, load_ff)

    clk_edge = 0.0
    clk_ramp = slew_to_ramp_duration(clk_slew)
    d_ramp = slew_to_ramp_duration(data_slew)
    settle = 400.0

    if setup_time > 220.0:
        raise SimulationError("setup_time beyond the testbench priming window")

    # Clock: a priming pulse during settling captures D=0 (so Q starts
    # low and the measured edge produces a clean rising Q), then the
    # measured rising edge at t=0 (50% crossing).
    prime_rise = clk_edge - 0.85 * settle
    prime_fall = prime_rise + 100.0
    clk = PiecewiseLinear(
        [
            prime_rise - clk_ramp / 2.0,
            prime_rise + clk_ramp / 2.0,
            prime_fall - clk_ramp / 2.0,
            prime_fall + clk_ramp / 2.0,
            clk_edge - clk_ramp / 2.0,
            clk_edge + clk_ramp / 2.0,
        ],
        [0.0, vdd, vdd, 0.0, 0.0, vdd],
    )
    # Data: low, rises to be stable setup_time before the edge, falls
    # hold_time after the edge.
    d_rise_mid = clk_edge - setup_time
    d_fall_mid = clk_edge + hold_time
    if d_fall_mid - d_rise_mid < (d_ramp + d_ramp) / 2.0:
        raise SimulationError("data pulse too narrow for its slews")
    data = PiecewiseLinear(
        [
            d_rise_mid - d_ramp / 2.0,
            d_rise_mid + d_ramp / 2.0,
            d_fall_mid - d_ramp / 2.0,
            d_fall_mid + d_ramp / 2.0,
        ],
        [0.0, vdd, vdd, 0.0],
    )
    circuit.add_source("clk", clk)
    circuit.add_source("d", data)

    t_stop = clk_edge + 400.0
    result = simulate(circuit, t_stop=t_stop, dt=dt, t_start=clk_edge - settle,
                      record=["clk", "d", "q"])

    from repro.spice.measure import crossing_time

    t_clk = crossing_time(result.times, result.wave("clk"), 0.5 * vdd, "rise",
                          after=clk_edge - 3.0 * clk_slew)
    if t_clk is None:
        raise SimulationError("clock edge missing from simulation window")
    t_q = crossing_time(result.times, result.wave("q"), 0.5 * vdd, "rise",
                        after=t_clk - 2.0 * clk_slew)
    if t_q is None:
        return FlopTrial(setup_time, hold_time, None)
    if result.final("q") < 0.5 * vdd:  # captured then lost (hold failure)
        return FlopTrial(setup_time, hold_time, None)
    return FlopTrial(setup_time, hold_time, t_q - t_clk)


def _input_ramp(vdd: float, slew: float, rising: bool, t_start: float = 0.0) -> Ramp:
    """A full-swing input ramp whose 20-80% slew equals ``slew``, centered
    so its 50% crossing lands at ``t_start``."""
    duration = slew_to_ramp_duration(slew)
    v0, v1 = (0.0, vdd) if rising else (vdd, 0.0)
    return Ramp(t_start=t_start - duration / 2.0, duration=duration, v0=v0, v1=v1)


def _horizon(in_slew: float, load_ff: float, size: float) -> float:
    """A safe simulation window for a single-arc measurement."""
    return 60.0 + 4.0 * in_slew + 12.0 * load_ff / max(size, 0.25)


def _measure_arc(result, in_node: str, out_node: str, vdd: float,
                 in_dir: str, out_dir: str) -> ArcMeasurement:
    delay = delay_between(
        result.times, result.wave(in_node), result.wave(out_node),
        vdd, in_dir, out_dir,
    )
    slew = transition_time(result.times, result.wave(out_node), vdd, out_dir)
    return ArcMeasurement(delay=delay, out_slew=slew)
