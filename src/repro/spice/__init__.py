"""Analytical circuit simulator — the framework's SPICE substitute.

The paper's device-level evidence (multi-input switching in Fig 4,
temperature inversion in Fig 6(b), Monte Carlo path-delay asymmetry in
Fig 7, flip-flop interdependency in Fig 10) was produced with HSPICE and
foundry models. This package provides the closest from-scratch equivalent:

- :mod:`repro.spice.devices` — a smoothed alpha-power-law MOSFET model with
  threshold, velocity-saturation, channel-length-modulation, temperature
  (mobility and Vt) and per-device variation parameters;
- :mod:`repro.spice.network` — circuit container (nodes, transistors,
  resistors, capacitors, voltage sources);
- :mod:`repro.spice.stimulus` — waveforms (constants, ramps, pulses,
  piecewise-linear);
- :mod:`repro.spice.transient` — Backward-Euler + Newton transient solver
  and a DC operating-point solver;
- :mod:`repro.spice.measure` — threshold-crossing, delay and slew
  measurements on simulated waveforms;
- :mod:`repro.spice.gates` — transistor-level standard-gate builders
  (INV/NAND/NOR/AOI/OAI and a six-NAND edge-triggered flip-flop);
- :mod:`repro.spice.testbench` — canned testbenches for arc delay, SIS/MIS
  comparison and flop characterization;
- :mod:`repro.spice.montecarlo` — per-device process-variation sampling.
"""

from repro.spice.devices import MosParams, Transistor, NMOS_16NM, PMOS_16NM, vt_flavor_params
from repro.spice.network import Circuit
from repro.spice.stimulus import Constant, Ramp, Pulse, PiecewiseLinear, Waveform
from repro.spice.transient import TransientResult, simulate, dc_operating_point
from repro.spice.measure import crossing_time, delay_between, transition_time

__all__ = [
    "MosParams",
    "Transistor",
    "NMOS_16NM",
    "PMOS_16NM",
    "vt_flavor_params",
    "Circuit",
    "Constant",
    "Ramp",
    "Pulse",
    "PiecewiseLinear",
    "Waveform",
    "TransientResult",
    "simulate",
    "dc_operating_point",
    "crossing_time",
    "delay_between",
    "transition_time",
]
