"""Transistor-level standard-gate builders.

These functions instantiate CMOS gates inside a
:class:`repro.spice.network.Circuit`: static complementary INV/NAND/NOR/
AOI21/OAI21 plus a six-NAND positive-edge D flip-flop (the classic 7474
topology). The flip-flop's cross-coupled NAND loop is what produces the
paper's Fig 10 interdependency between setup time, hold time and
clock-to-q delay.

Widths follow standard practice: PMOS widths are ``beta`` times NMOS
widths (mobility compensation) and series stacks are upsized by the stack
height so all gates have roughly inverter-equivalent drive per unit
``size``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import SimulationError
from repro.spice.devices import MosParams, NMOS_16NM, PMOS_16NM, Transistor
from repro.spice.network import GROUND, Circuit

DEFAULT_BETA = 1.8


@dataclass
class GateInstance:
    """Handle for a gate added to a circuit."""

    name: str
    kind: str
    inputs: List[str]
    output: str
    transistors: List[Transistor] = field(default_factory=list)

    def apply_variation(self, vt_shift: float = 0.0, k_scale: float = 1.0) -> None:
        """Shift thresholds / scale current of every device in the gate."""
        for t in self.transistors:
            t.vt_shift += vt_shift
            t.k_scale *= k_scale


def _attach(circuit: Circuit, fet: Transistor) -> Transistor:
    """Add parasitic gate and junction caps for a placed transistor."""
    circuit.add_capacitor(fet.gate, GROUND, fet.gate_capacitance())
    circuit.add_capacitor(fet.drain, GROUND, fet.junction_capacitance())
    circuit.add_capacitor(fet.source, GROUND, 0.5 * fet.junction_capacitance())
    return fet


def add_inverter(
    circuit: Circuit,
    name: str,
    inp: str,
    out: str,
    vdd_node: str = "vdd",
    size: float = 1.0,
    nmos: MosParams = NMOS_16NM,
    pmos: MosParams = PMOS_16NM,
    beta: float = DEFAULT_BETA,
) -> GateInstance:
    """Add a static CMOS inverter."""
    gate = GateInstance(name=name, kind="inv", inputs=[inp], output=out)
    gate.transistors.append(
        _attach(circuit, circuit.add_transistor(out, inp, GROUND, nmos, size, name=f"{name}.mn"))
    )
    gate.transistors.append(
        _attach(circuit, circuit.add_transistor(out, inp, vdd_node, pmos, beta * size, name=f"{name}.mp"))
    )
    return gate


def add_nand(
    circuit: Circuit,
    name: str,
    inputs: Sequence[str],
    out: str,
    vdd_node: str = "vdd",
    size: float = 1.0,
    nmos: MosParams = NMOS_16NM,
    pmos: MosParams = PMOS_16NM,
    beta: float = DEFAULT_BETA,
) -> GateInstance:
    """Add an n-input NAND (series NMOS stack, parallel PMOS)."""
    n = len(inputs)
    if n < 2:
        raise SimulationError("NAND needs at least two inputs")
    gate = GateInstance(name=name, kind=f"nand{n}", inputs=list(inputs), output=out)
    wn = size * n  # upsize the series stack
    node = GROUND
    # NMOS stack from ground up to the output; input[0] nearest the output.
    for i in range(n - 1, -1, -1):
        upper = out if i == 0 else circuit.node(f"{name}.s{i}")
        gate.transistors.append(
            _attach(
                circuit,
                circuit.add_transistor(upper, inputs[i], node, nmos, wn, name=f"{name}.mn{i}"),
            )
        )
        node = upper
    for i, inp in enumerate(inputs):
        gate.transistors.append(
            _attach(
                circuit,
                circuit.add_transistor(out, inp, vdd_node, pmos, beta * size, name=f"{name}.mp{i}"),
            )
        )
    return gate


def add_nor(
    circuit: Circuit,
    name: str,
    inputs: Sequence[str],
    out: str,
    vdd_node: str = "vdd",
    size: float = 1.0,
    nmos: MosParams = NMOS_16NM,
    pmos: MosParams = PMOS_16NM,
    beta: float = DEFAULT_BETA,
) -> GateInstance:
    """Add an n-input NOR (parallel NMOS, series PMOS stack)."""
    n = len(inputs)
    if n < 2:
        raise SimulationError("NOR needs at least two inputs")
    gate = GateInstance(name=name, kind=f"nor{n}", inputs=list(inputs), output=out)
    wp = beta * size * n
    node = vdd_node
    for i in range(n - 1, -1, -1):
        lower = out if i == 0 else circuit.node(f"{name}.s{i}")
        gate.transistors.append(
            _attach(
                circuit,
                circuit.add_transistor(lower, inputs[i], node, pmos, wp, name=f"{name}.mp{i}"),
            )
        )
        node = lower
    for i, inp in enumerate(inputs):
        gate.transistors.append(
            _attach(
                circuit,
                circuit.add_transistor(out, inp, GROUND, nmos, size, name=f"{name}.mn{i}"),
            )
        )
    return gate


def add_aoi21(
    circuit: Circuit,
    name: str,
    a1: str,
    a2: str,
    b: str,
    out: str,
    vdd_node: str = "vdd",
    size: float = 1.0,
    nmos: MosParams = NMOS_16NM,
    pmos: MosParams = PMOS_16NM,
    beta: float = DEFAULT_BETA,
) -> GateInstance:
    """Add an AOI21 gate: out = not((a1 and a2) or b)."""
    gate = GateInstance(name=name, kind="aoi21", inputs=[a1, a2, b], output=out)
    mid_n = circuit.node(f"{name}.sn")
    mid_p = circuit.node(f"{name}.sp")
    wn = 2.0 * size
    wp = 2.0 * beta * size
    add = gate.transistors.append
    # Pull-down: (a1 series a2) parallel b.
    add(_attach(circuit, circuit.add_transistor(out, a1, mid_n, nmos, wn, name=f"{name}.mn_a1")))
    add(_attach(circuit, circuit.add_transistor(mid_n, a2, GROUND, nmos, wn, name=f"{name}.mn_a2")))
    add(_attach(circuit, circuit.add_transistor(out, b, GROUND, nmos, size, name=f"{name}.mn_b")))
    # Pull-up: (a1 parallel a2) series b.
    add(_attach(circuit, circuit.add_transistor(mid_p, a1, vdd_node, pmos, wp, name=f"{name}.mp_a1")))
    add(_attach(circuit, circuit.add_transistor(mid_p, a2, vdd_node, pmos, wp, name=f"{name}.mp_a2")))
    add(_attach(circuit, circuit.add_transistor(out, b, mid_p, pmos, wp, name=f"{name}.mp_b")))
    return gate


def add_oai21(
    circuit: Circuit,
    name: str,
    a1: str,
    a2: str,
    b: str,
    out: str,
    vdd_node: str = "vdd",
    size: float = 1.0,
    nmos: MosParams = NMOS_16NM,
    pmos: MosParams = PMOS_16NM,
    beta: float = DEFAULT_BETA,
) -> GateInstance:
    """Add an OAI21 gate: out = not((a1 or a2) and b)."""
    gate = GateInstance(name=name, kind="oai21", inputs=[a1, a2, b], output=out)
    mid_n = circuit.node(f"{name}.sn")
    mid_p = circuit.node(f"{name}.sp")
    wn = 2.0 * size
    wp = 2.0 * beta * size
    add = gate.transistors.append
    # Pull-down: (a1 parallel a2) series b.
    add(_attach(circuit, circuit.add_transistor(mid_n, a1, GROUND, nmos, wn, name=f"{name}.mn_a1")))
    add(_attach(circuit, circuit.add_transistor(mid_n, a2, GROUND, nmos, wn, name=f"{name}.mn_a2")))
    add(_attach(circuit, circuit.add_transistor(out, b, mid_n, nmos, wn, name=f"{name}.mn_b")))
    # Pull-up: (a1 series a2) parallel b.
    add(_attach(circuit, circuit.add_transistor(out, a1, mid_p, pmos, wp, name=f"{name}.mp_a1")))
    add(_attach(circuit, circuit.add_transistor(mid_p, a2, vdd_node, pmos, wp, name=f"{name}.mp_a2")))
    add(_attach(circuit, circuit.add_transistor(out, b, vdd_node, pmos, beta * size, name=f"{name}.mp_b")))
    return gate


def add_dff(
    circuit: Circuit,
    name: str,
    d: str,
    clk: str,
    q: str,
    qb: str = "",
    vdd_node: str = "vdd",
    size: float = 1.0,
    nmos: MosParams = NMOS_16NM,
    pmos: MosParams = PMOS_16NM,
    beta: float = DEFAULT_BETA,
) -> GateInstance:
    """Add a positive-edge D flip-flop (six-NAND 7474 topology).

    The topology:

    - ``n1 = NAND(n4, n2)``
    - ``n2 = NAND(n1, clk)``
    - ``n3 = NAND(n2, clk, n4)``
    - ``n4 = NAND(n3, d)``
    - ``q  = NAND(n2, qb)``
    - ``qb = NAND(q,  n3)``
    """
    qb = qb or circuit.node(f"{name}.qb")
    n1 = circuit.node(f"{name}.n1")
    n2 = circuit.node(f"{name}.n2")
    n3 = circuit.node(f"{name}.n3")
    n4 = circuit.node(f"{name}.n4")
    gate = GateInstance(name=name, kind="dff", inputs=[d, clk], output=q)
    kw = dict(vdd_node=vdd_node, size=size, nmos=nmos, pmos=pmos, beta=beta)
    for sub in (
        add_nand(circuit, f"{name}.g1", [n4, n2], n1, **kw),
        add_nand(circuit, f"{name}.g2", [n1, clk], n2, **kw),
        add_nand(circuit, f"{name}.g3", [n2, clk, n4], n3, **kw),
        add_nand(circuit, f"{name}.g4", [n3, d], n4, **kw),
        add_nand(circuit, f"{name}.g5", [n2, qb], q, **kw),
        add_nand(circuit, f"{name}.g6", [q, n3], qb, **kw),
    ):
        gate.transistors.extend(sub.transistors)
    return gate


GATE_BUILDERS = {
    "inv": add_inverter,
    "nand": add_nand,
    "nor": add_nor,
    "aoi21": add_aoi21,
    "oai21": add_oai21,
    "dff": add_dff,
}
