"""Stimulus waveforms for the transient solver.

A waveform is anything with a ``value(t)`` method returning volts at time
``t`` (ps). Waveforms are defined for all real ``t``; before their first
breakpoint they hold their initial value, which lets the solver settle a
circuit by simulating from negative time.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence


class Waveform:
    """Base class for stimulus waveforms."""

    def value(self, t: float) -> float:
        """Voltage at time ``t`` (ps)."""
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(Waveform):
    """A DC source (e.g. VDD, a held input)."""

    level: float

    def value(self, t: float) -> float:
        return self.level


@dataclass(frozen=True)
class Ramp(Waveform):
    """A single linear transition from ``v0`` to ``v1``.

    The ramp starts at ``t_start`` and lasts ``duration`` ps. ``duration``
    is the full 0-100% transition time; characterization code converts
    between measurement-threshold slew and full ramp time.
    """

    t_start: float
    duration: float
    v0: float
    v1: float

    def value(self, t: float) -> float:
        if t <= self.t_start:
            return self.v0
        if t >= self.t_start + self.duration:
            return self.v1
        frac = (t - self.t_start) / self.duration
        return self.v0 + frac * (self.v1 - self.v0)


@dataclass(frozen=True)
class Pulse(Waveform):
    """A periodic pulse train (clock).

    Rises at ``t_start + n * period``, stays high for ``width``, with linear
    edges of ``edge`` ps. Starts low.
    """

    t_start: float
    period: float
    width: float
    v_low: float
    v_high: float
    edge: float = 5.0

    def value(self, t: float) -> float:
        if t < self.t_start:
            return self.v_low
        phase = (t - self.t_start) % self.period
        if phase < self.edge:
            return self.v_low + (self.v_high - self.v_low) * phase / self.edge
        if phase < self.edge + self.width:
            return self.v_high
        if phase < 2.0 * self.edge + self.width:
            frac = (phase - self.edge - self.width) / self.edge
            return self.v_high + (self.v_low - self.v_high) * frac
        return self.v_low


class PiecewiseLinear(Waveform):
    """A piecewise-linear waveform through (time, voltage) breakpoints."""

    def __init__(self, times: Sequence[float], values: Sequence[float]):
        if len(times) != len(values):
            raise ValueError("times and values must have equal length")
        if len(times) == 0:
            raise ValueError("need at least one breakpoint")
        if any(t1 <= t0 for t0, t1 in zip(times, times[1:])):
            raise ValueError("breakpoint times must be strictly increasing")
        self._times = list(times)
        self._values = list(values)

    def value(self, t: float) -> float:
        times, values = self._times, self._values
        if t <= times[0]:
            return values[0]
        if t >= times[-1]:
            return values[-1]
        hi = bisect.bisect_right(times, t)
        lo = hi - 1
        frac = (t - times[lo]) / (times[hi] - times[lo])
        return values[lo] + frac * (values[hi] - values[lo])
