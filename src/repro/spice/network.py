"""Circuit container for the analytical simulator.

A :class:`Circuit` is a flat netlist of transistors, resistors, capacitors
and voltage sources over named nodes. The ground node is ``"0"`` and is
always present, fixed at 0 V.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.spice.devices import MosParams, Transistor
from repro.spice.stimulus import Constant, Waveform

GROUND = "0"


@dataclass
class _Resistor:
    node_a: str
    node_b: str
    kohm: float


@dataclass
class _Capacitor:
    node_a: str
    node_b: str
    ff: float


class Circuit:
    """A flat transistor-level circuit.

    Nodes are created implicitly by the element-adding methods. Voltage
    sources pin a node to a waveform; all other nodes are solved by the
    transient/DC engines.
    """

    #: Minimum grounded capacitance added to every non-source node so the
    #: Backward-Euler system is never singular (fF).
    MIN_NODE_CAP = 0.01

    def __init__(self, name: str = "circuit", temp_c: float = 25.0):
        self.name = name
        self.temp_c = temp_c
        self.transistors: List[Transistor] = []
        self.resistors: List[_Resistor] = []
        self.capacitors: List[_Capacitor] = []
        self.sources: Dict[str, Waveform] = {}
        self._nodes: Dict[str, None] = {GROUND: None}  # insertion-ordered set

    # ------------------------------------------------------------------ #
    # construction

    def node(self, name: str) -> str:
        """Register (or re-register) a node and return its name."""
        if not name:
            raise SimulationError("node name must be non-empty")
        self._nodes[name] = None
        return name

    @property
    def nodes(self) -> List[str]:
        """All node names, ground first, in insertion order."""
        return list(self._nodes)

    def add_transistor(
        self,
        drain: str,
        gate: str,
        source: str,
        params: MosParams,
        width: float = 1.0,
        vt_shift: float = 0.0,
        k_scale: float = 1.0,
        name: str = "",
    ) -> Transistor:
        """Add a MOSFET; junction/gate caps are *not* added automatically
        (gate builders add them so testbenches stay explicit)."""
        for n in (drain, gate, source):
            self.node(n)
        t = Transistor(
            drain=drain,
            gate=gate,
            source=source,
            params=params,
            width=width,
            vt_shift=vt_shift,
            k_scale=k_scale,
            name=name or f"M{len(self.transistors)}",
        )
        self.transistors.append(t)
        return t

    def add_resistor(self, node_a: str, node_b: str, kohm: float) -> None:
        """Add a linear resistor between two nodes (kohm)."""
        if kohm <= 0.0:
            raise SimulationError(f"resistance must be positive, got {kohm}")
        self.node(node_a)
        self.node(node_b)
        self.resistors.append(_Resistor(node_a, node_b, kohm))

    def add_capacitor(self, node_a: str, node_b: str, ff: float) -> None:
        """Add a linear capacitor between two nodes (fF). Use node ``"0"``
        for a grounded capacitor."""
        if ff < 0.0:
            raise SimulationError(f"capacitance must be non-negative, got {ff}")
        self.node(node_a)
        self.node(node_b)
        self.capacitors.append(_Capacitor(node_a, node_b, ff))

    def add_source(self, node: str, waveform: Waveform) -> None:
        """Pin ``node`` to a voltage waveform."""
        self.node(node)
        self.sources[node] = waveform

    def add_vdd(self, level: float, node: str = "vdd") -> str:
        """Convenience: add a DC supply and return its node name."""
        self.add_source(node, Constant(level))
        return node

    # ------------------------------------------------------------------ #
    # queries

    def unknown_nodes(self) -> List[str]:
        """Nodes whose voltage the solver must compute."""
        return [n for n in self._nodes if n != GROUND and n not in self.sources]

    def total_gate_width(self) -> float:
        """Sum of transistor widths (a proxy for cell area/input load)."""
        return sum(t.width for t in self.transistors)

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, nodes={len(self._nodes)}, "
            f"fets={len(self.transistors)}, R={len(self.resistors)}, "
            f"C={len(self.capacitors)}, sources={len(self.sources)})"
        )
