"""Process-variation sampling for device-level Monte Carlo studies.

Variation is decomposed the way signoff methodology decomposes it (and the
way the paper's SSG-vs-SS discussion frames it): a *global* (die-to-die)
component shared by every device of a polarity, plus a *local* (on-die
mismatch) component independent per device. Only two device knobs are
perturbed — threshold shift and current-factor scale — matching the
``vt_shift`` / ``k_scale`` hooks of :class:`repro.spice.devices.Transistor`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.spice.network import Circuit


@dataclass(frozen=True)
class VariationSpec:
    """Standard deviations of the variation components.

    Attributes:
        sigma_vt_global: die-to-die threshold sigma, volts.
        sigma_vt_local: per-device mismatch threshold sigma, volts. Scaled
            by ``1/sqrt(width)`` per Pelgrom's law.
        sigma_k_global: die-to-die relative current-factor sigma.
        sigma_k_local: per-device relative current-factor sigma, also
            Pelgrom-scaled.
    """

    sigma_vt_global: float = 0.015
    sigma_vt_local: float = 0.020
    sigma_k_global: float = 0.03
    sigma_k_local: float = 0.02


def perturb_circuit(
    circuit: Circuit,
    rng: np.random.Generator,
    spec: VariationSpec = VariationSpec(),
) -> None:
    """Apply one Monte Carlo sample to every transistor, in place.

    Global components are sampled once per polarity (NMOS and PMOS vary
    independently die-to-die); local components once per device.
    """
    g_vt = {+1: rng.normal(0.0, spec.sigma_vt_global),
            -1: rng.normal(0.0, spec.sigma_vt_global)}
    g_k = {+1: rng.normal(0.0, spec.sigma_k_global),
           -1: rng.normal(0.0, spec.sigma_k_global)}
    for fet in circuit.transistors:
        pol = fet.params.polarity
        pelgrom = 1.0 / np.sqrt(max(fet.width, 1e-6))
        fet.vt_shift += g_vt[pol] + rng.normal(0.0, spec.sigma_vt_local * pelgrom)
        fet.k_scale *= max(
            0.05,
            1.0 + g_k[pol] + rng.normal(0.0, spec.sigma_k_local * pelgrom),
        )


def reset_variation(circuit: Circuit) -> None:
    """Remove all variation (restore nominal vt_shift/k_scale)."""
    for fet in circuit.transistors:
        fet.vt_shift = 0.0
        fet.k_scale = 1.0


# ---------------------------------------------------------------------- #
# deterministic batch evaluation


def sample_seeds(seed: int, n_samples: int) -> List[np.random.SeedSequence]:
    """One independent child seed per MC sample.

    ``numpy.random.SeedSequence.spawn`` gives every sample its own
    statistically independent stream derived only from (seed, index) —
    *not* from how samples are batched over workers — so serial and
    parallel evaluation of the same seed are bit-identical.
    """
    return np.random.SeedSequence(seed).spawn(n_samples)


def evaluate_samples(
    evaluate: Callable[[int, np.random.Generator], object],
    n_samples: int,
    seed: int = 0,
    jobs: int = 1,
    executor: str = "thread",
) -> List[object]:
    """Evaluate ``evaluate(index, rng)`` for every sample, batched.

    Fans samples out over the signoff scheduler's worker pool
    (:func:`repro.sta.scheduler.parallel_map`); results come back in
    sample order and each sample's generator is spawned from the master
    seed, so the output is independent of ``jobs``/``executor``.
    """
    from functools import partial

    from repro.sta.scheduler import parallel_map

    seeds = sample_seeds(seed, n_samples)
    one = partial(_evaluate_one, evaluate)
    return parallel_map(one, list(enumerate(seeds)), jobs=jobs,
                        executor=executor)


def _evaluate_one(evaluate, arg):
    """Module-level so process pools can pickle the partial application."""
    index, child = arg
    return evaluate(index, np.random.default_rng(child))
