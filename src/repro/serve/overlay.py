"""Session-isolated copy-on-write design overlays.

Thousands of concurrent clients each exploring a private what-if ECO
cannot afford a deep copy of the base design apiece, and absolutely
cannot share one mutable netlist. A :class:`DesignOverlay` gives each
session the middle path:

- **Reads fall through** — an overlay holds only its session's edits
  (cell reassignments, NDR promotions, bookkeeping cap); everything else
  resolves to the shared, immutable-by-convention base design.
- **Writes are session-private** — :meth:`apply` records edits in the
  overlay; the base design object is never touched. The materialized
  view shares unedited :class:`~repro.netlist.design.Instance` objects
  with the base (the bulky part of a netlist) and copy-on-writes only
  the instances the session actually edited. Net objects are always
  private — they are tiny, and ``Design.bind`` rebuilds their
  driver/load lists in place, which must never race across sessions.
- **Atomicity** — :meth:`apply` validates the whole edit batch against
  the current view *before* mutating anything; a bad edit anywhere in
  the batch raises with the overlay (and any materialized design)
  untouched, so a session aborting mid-apply can never leave a torn
  half-ECO behind.
- **Discardability** — :meth:`discard` drops every session edit in O(1)
  bookkeeping; the base design is untouched by construction.

The materialized view is an ordinary :class:`Design`, so the whole STA
stack (binding, extraction, graph build, warm incremental timers) works
on it unchanged. Its name is suffixed with the session id, keeping
name-keyed cache invalidation session-local while content fingerprints
stay deterministic across daemon restarts (a restored session replays
its journaled edits and lands on byte-identical cache keys).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import NetlistError, ServeError
from repro.netlist.design import Design, Instance, Net

#: Edit kinds an overlay absorbs. ``set_cell`` is footprint-preserving
#: (resize / Vt swap) and retimes cone-limited; net edits change
#: parasitics and force a full retime of the session's timers.
EDIT_KINDS = ("set_cell", "set_ndr", "add_cap")


@dataclass(frozen=True)
class OverlayEdit:
    """One session-private netlist edit."""

    kind: str  # one of EDIT_KINDS
    target: str  # instance name (set_cell) or net name (set_ndr/add_cap)
    value: Any = None  # new cell name | bool | extra cap in fF

    @classmethod
    def from_wire(cls, payload: Dict[str, Any]) -> "OverlayEdit":
        kind = payload.get("kind")
        if kind not in EDIT_KINDS:
            raise ServeError(
                f"unknown edit kind {kind!r}", kinds=",".join(EDIT_KINDS)
            )
        target = payload.get("target")
        if not isinstance(target, str) or not target:
            raise ServeError("edit target must be a non-empty string")
        return cls(kind=kind, target=target, value=payload.get("value"))

    def to_wire(self) -> Dict[str, Any]:
        return {"kind": self.kind, "target": self.target, "value": self.value}


class DesignOverlay:
    """A copy-on-write view of a shared base design (module docstring).

    Thread safety: one overlay belongs to one session, and the daemon
    serializes work per session, but :meth:`apply` still takes an
    internal lock so a misbehaving caller can corrupt at most its own
    timing results, never the overlay's commit atomicity.
    """

    def __init__(self, base: Design, session_id: str):
        self.base = base
        self.session_id = session_id
        #: Monotonic commit counter; bumps once per successful apply.
        self.version = 0
        self._lock = threading.Lock()
        self._cells: Dict[str, str] = {}       # instance -> new cell name
        self._ndr: Dict[str, bool] = {}        # net -> promoted flag
        self._extra_cap: Dict[str, float] = {}  # net -> added cap, fF
        self._log: List[OverlayEdit] = []
        self._materialized: Optional[Design] = None
        #: Instance names whose objects in the materialized view are
        #: session-private copies (everything else aliases the base).
        self._private: Set[str] = set()
        #: Shared fingerprint memo (lazily built — the STA stack is only
        #: imported once a fingerprint is actually needed).
        self._fp_memo = None

    # ------------------------------------------------------------------ #
    # reads (fall through to base)

    def cell_of(self, instance_name: str) -> str:
        override = self._cells.get(instance_name)
        if override is not None:
            return override
        return self.base.instance(instance_name).cell_name

    def edits(self) -> List[OverlayEdit]:
        """The committed edit log, in application order."""
        return list(self._log)

    @property
    def edit_count(self) -> int:
        return len(self._log)

    def stats(self) -> Dict[str, int]:
        """COW accounting: how much of the view is shared vs private."""
        return {
            "edits": len(self._log),
            "private_instances": len(self._private),
            "shared_instances": len(self.base.instances) - len(self._private),
            "version": self.version,
        }

    # ------------------------------------------------------------------ #
    # writes (session-private, atomic per batch)

    def _validate(self, edit: OverlayEdit) -> bool:
        """Check one edit against the current view; returns whether the
        edit is footprint-preserving (cone-retimable). Raises without
        having mutated anything."""
        if edit.kind == "set_cell":
            inst = self.base.instance(edit.target)  # raises NetlistError
            if inst.dont_touch:
                raise NetlistError(
                    f"instance {edit.target} is marked dont_touch"
                )
            if not isinstance(edit.value, str) or not edit.value:
                raise ServeError(
                    "set_cell needs a cell name value", target=edit.target
                )
            return True
        if edit.kind == "set_ndr":
            self.base.get_net(edit.target)  # raises NetlistError
            return False
        if edit.kind == "add_cap":
            self.base.get_net(edit.target)
            if not isinstance(edit.value, (int, float)):
                raise ServeError(
                    "add_cap needs a numeric fF value", target=edit.target
                )
            return False
        raise ServeError(f"unknown edit kind {edit.kind!r}")

    def apply(self, edits: Sequence[OverlayEdit]) -> Tuple[List[str], bool]:
        """Commit a batch of edits atomically.

        Returns ``(edited_instance_names, topology_changed)`` for the
        session's incremental timers: instance names cover set_cell
        edits (cone-retimable), ``topology_changed`` is True when any
        net-level edit requires a full retime.

        The whole batch validates first; any failure raises with the
        overlay and its materialized view untouched (no torn ECOs).
        """
        edits = list(edits)
        with self._lock:
            # Phase 1: validate everything; mutate nothing.
            footprint_flags = [self._validate(edit) for edit in edits]
            # Phase 2: commit (infallible).
            edited_instances: List[str] = []
            topology_changed = False
            for edit, footprint in zip(edits, footprint_flags):
                if edit.kind == "set_cell":
                    self._cells[edit.target] = edit.value
                    edited_instances.append(edit.target)
                elif edit.kind == "set_ndr":
                    self._ndr[edit.target] = bool(edit.value)
                    topology_changed = True
                elif edit.kind == "add_cap":
                    self._extra_cap[edit.target] = (
                        self._extra_cap.get(edit.target, 0.0)
                        + float(edit.value)
                    )
                    topology_changed = True
                self._log.append(edit)
            if edits:
                self.version += 1
                self._sync_materialized(edited_instances)
            return edited_instances, topology_changed

    def discard(self) -> int:
        """Drop every session edit; returns how many were discarded.

        O(edits) bookkeeping — the base design was never touched, so
        there is nothing to restore. Any materialized view is dropped
        (its timers must be rebuilt from the clean base content).
        """
        with self._lock:
            dropped = len(self._log)
            self._cells.clear()
            self._ndr.clear()
            self._extra_cap.clear()
            self._log.clear()
            self._materialized = None
            self._private.clear()
            if dropped:
                self.version += 1
            return dropped

    def refresh(self) -> None:
        """Drop the cached materialized view; edits are kept.

        The next :meth:`materialize` builds brand-new Design/Net objects
        (unedited instances still alias the base). Used after a timed-out
        timing attempt is abandoned: the zombie thread keeps mutating the
        *old* view's nets, while retries and later queries bind a
        disjoint one.
        """
        with self._lock:
            self._materialized = None
            self._private.clear()

    # ------------------------------------------------------------------ #
    # materialization

    @property
    def design_name(self) -> str:
        return f"{self.base.name}@{self.session_id}"

    def content_fingerprint(self) -> str:
        """Design fingerprint of the materialized view, memoized per
        commit version — hashing a netlist costs milliseconds and the
        daemon needs it on every query, but the view's content can only
        change when :meth:`apply` or :meth:`discard` bumps ``version``.
        """
        from repro.sta.scheduler import FingerprintMemo, design_fingerprint

        if self._fp_memo is None:
            self._fp_memo = FingerprintMemo()
        return self._fp_memo.get(
            "design", self.version,
            lambda: design_fingerprint(self.materialize()))

    def materialize(self) -> Design:
        """The session's private, timeable view of the design.

        Cached across calls; kept in sync by :meth:`apply`, so warm
        incremental timers bound to the view stay valid (the object
        identity of the design and of unedited instances never churns).
        """
        if self._materialized is not None:
            return self._materialized
        view = Design(self.design_name)
        view.ports = dict(self.base.ports)
        view._uid = self.base._uid
        for name, inst in self.base.instances.items():
            override = self._cells.get(name)
            if override is not None and override != inst.cell_name:
                view.instances[name] = self._private_copy(inst, override)
                self._private.add(name)
            else:
                view.instances[name] = inst  # shared, read-only
        for name, net in self.base.nets.items():
            view.nets[name] = Net(
                name=name,
                ndr=self._ndr.get(name, net.ndr),
                extra_cap=net.extra_cap + self._extra_cap.get(name, 0.0),
            )
            # Port driver/load roles survive re-binding only if present;
            # bind() reconstructs instance roles from scratch.
            base_net = self.base.nets[name]
            if base_net.driver is not None and base_net.driver.is_port:
                view.nets[name].driver = base_net.driver
            view.nets[name].loads = [
                ref for ref in base_net.loads if ref.is_port
            ]
        self._materialized = view
        return view

    @staticmethod
    def _private_copy(inst: Instance, cell_name: str) -> Instance:
        return Instance(
            name=inst.name,
            cell_name=cell_name,
            connections=dict(inst.connections),
            location=inst.location,
            dont_touch=inst.dont_touch,
        )

    def _sync_materialized(self, edited_instances: Sequence[str]) -> None:
        """Push freshly committed edits into the cached view in place."""
        view = self._materialized
        if view is None:
            return
        for name in edited_instances:
            new_cell = self._cells[name]
            if name not in self._private:
                view.instances[name] = self._private_copy(
                    self.base.instances[name], new_cell
                )
                self._private.add(name)
            else:
                view.instances[name].cell_name = new_cell
        for name, promoted in self._ndr.items():
            view.nets[name].ndr = promoted
        for name, cap in self._extra_cap.items():
            view.nets[name].extra_cap = self.base.nets[name].extra_cap + cap
