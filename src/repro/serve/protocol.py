"""Newline-delimited JSON wire protocol for the timing daemon.

One request per line, one response per line, UTF-8 JSON, ``\\n``
terminated. The framing is deliberately the dumbest thing that works —
every language can speak it, a half-written line is detectable (no
newline), and a killed peer can never leave the stream in an ambiguous
state: the reader either gets a complete line or EOF.

Request shape::

    {"v": 1, "id": "req-7", "op": "timing",
     "session": "s-1", "params": {"scenarios": ["tt_typ"]}}

Response shape::

    {"v": 1, "id": "req-7", "ok": true, "result": {...}}
    {"v": 1, "id": "req-7", "ok": false,
     "error": {"code": "E_OVERLOADED", "message": "...",
               "retryable": true, "context": {...}}}

Robustness rules enforced here rather than trusted to callers:

- **Bounded frames** — a line longer than ``MAX_LINE_BYTES`` raises
  :class:`~repro.errors.ProtocolError` before any JSON parse; an abusive
  or broken client cannot balloon daemon memory.
- **Structured errors** — every failure maps to a stable ``E_*`` code
  plus a ``retryable`` flag (see :mod:`repro.errors`), so clients triage
  programmatically: shed/deadline/unavailable are resubmittable,
  bad-request/quarantined are not.
- **Ids echo back verbatim** — responses always carry the request's
  ``id`` (or null when the request was unparseable), so pipelined
  clients can match responses under concurrency.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import ProtocolError, ServeError

PROTOCOL_VERSION = 1

#: Upper bound on one request/response frame. Generous enough for a
#: thousand-edit ECO batch, small enough that a garbage stream cannot
#: exhaust daemon memory.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Ops a daemon understands. Control ops bypass admission control (they
#: are O(1) and must work *especially* under overload — health checks
#: and shedding feedback are how clients notice backpressure).
CONTROL_OPS = ("ping", "stats", "open_session", "close_session",
               "discard", "shutdown")
QUERY_OPS = ("timing", "signoff", "paths", "histogram", "apply_eco",
             "ssta")
ALL_OPS = CONTROL_OPS + QUERY_OPS


def encode(message: Dict[str, Any]) -> bytes:
    """One wire frame: compact JSON + newline, bounded."""
    data = json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode("utf-8") + b"\n"
    if len(data) > MAX_LINE_BYTES:
        raise ProtocolError(
            "frame exceeds protocol limit",
            size=len(data), limit=MAX_LINE_BYTES,
        )
    return data


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one received frame; structured errors, never tracebacks."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "frame exceeds protocol limit",
            size=len(line), limit=MAX_LINE_BYTES,
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"unparseable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


def parse_request(message: Dict[str, Any]) -> Dict[str, Any]:
    """Validate a decoded request; returns it with defaults filled in."""
    version = message.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r}",
            supported=PROTOCOL_VERSION,
        )
    op = message.get("op")
    if not isinstance(op, str) or op not in ALL_OPS:
        raise ProtocolError(
            f"unknown op {op!r}", ops=",".join(ALL_OPS)
        )
    params = message.get("params") or {}
    if not isinstance(params, dict):
        raise ProtocolError("params must be a JSON object")
    session = message.get("session")
    if session is not None and not isinstance(session, str):
        raise ProtocolError("session must be a string id")
    return {
        "v": PROTOCOL_VERSION,
        "id": message.get("id"),
        "op": op,
        "session": session,
        "params": params,
    }


def ok_response(request_id: Any, result: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "result": result,
    }


def error_response(request_id: Any, error: ServeError) -> Dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": error.to_wire(),
    }


def error_from_wire(payload: Optional[Dict[str, Any]]) -> ServeError:
    """Rehydrate a wire error into the matching ServeError subclass."""
    from repro.errors import (
        AdmissionShedError,
        DaemonUnavailableError,
        DeadlineExceededError,
        SessionNotFoundError,
        SessionQuarantinedError,
    )

    payload = payload or {}
    code = payload.get("code", "E_INTERNAL")
    classes = {
        cls.code: cls
        for cls in (ProtocolError, AdmissionShedError, DeadlineExceededError,
                    SessionQuarantinedError, SessionNotFoundError,
                    DaemonUnavailableError)
    }
    cls = classes.get(code, ServeError)
    error = cls(payload.get("message", "daemon error"))
    error.context.update(payload.get("context") or {})
    # Trust the daemon's retryable verdict over the class default (a
    # generic ServeError can still be marked retryable on the wire).
    retryable = payload.get("retryable")
    if retryable is not None:
        error.retryable = bool(retryable)
    return error
