"""Client for the timing daemon: transport + structured error triage.

:class:`TimingClient` speaks the :mod:`repro.serve.protocol` framing
over one TCP connection. Every failure surfaces as a structured
:class:`~repro.errors.ServeError` with a stable code and a ``retryable``
flag:

- Daemon-reported errors are rehydrated verbatim
  (:func:`~repro.serve.protocol.error_from_wire`): ``E_OVERLOADED`` and
  ``E_DEADLINE`` are retryable, ``E_BAD_REQUEST`` and ``E_QUARANTINED``
  are not.
- Transport failures — refused connection, reset, EOF mid-response,
  read timeout — become retryable
  :class:`~repro.errors.DaemonUnavailableError`. A SIGKILL'd daemon
  never corrupts the stream: JSON-lines framing means the client sees
  either a complete response or EOF, and EOF maps here.

:meth:`TimingClient.call` layers a
:class:`~repro.runtime.supervisor.RetryPolicy` on top: retryable errors
are retried with the policy's backoff (reconnecting as needed), which is
how a client rides out a shed, a deadline, or a daemon restart without
bespoke loops at every call site.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Callable, Dict, Optional

from repro.errors import DaemonUnavailableError, ProtocolError, ServeError
from repro.runtime.supervisor import RetryPolicy
from repro.serve import protocol


class TimingClient:
    """One connection to a :class:`~repro.serve.server.TimingDaemon`.

    Args:
        host/port: daemon address.
        timeout_s: socket budget for connect and for each response read;
            expiry raises retryable
            :class:`~repro.errors.DaemonUnavailableError`.
    """

    def __init__(self, host: str, port: int, timeout_s: float = 30.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._buffer = b""
        self._next_id = 1

    # ------------------------------------------------------------------ #
    # connection management

    def connect(self) -> None:
        if self._sock is not None:
            return
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            raise DaemonUnavailableError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from None
        self._sock = sock
        self._buffer = b""

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self._buffer = b""

    def __enter__(self) -> "TimingClient":
        self.connect()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------ #
    # requests

    def request(self, op: str, params: Optional[Dict[str, Any]] = None,
                session: Optional[str] = None,
                deadline_s: Optional[float] = None) -> Dict[str, Any]:
        """One request, one response; no automatic retries.

        Raises the daemon's structured error on a failure response, or
        retryable :class:`~repro.errors.DaemonUnavailableError` when the
        transport dies (connection refused/reset, EOF, read timeout).
        """
        self.connect()
        request_id = f"c-{self._next_id}"
        self._next_id += 1
        params = dict(params or {})
        if deadline_s is not None:
            params["deadline_s"] = deadline_s
        message = {
            "v": protocol.PROTOCOL_VERSION,
            "id": request_id,
            "op": op,
            "params": params,
        }
        if session is not None:
            message["session"] = session
        try:
            self._sock.settimeout(self.timeout_s)
            self._sock.sendall(protocol.encode(message))
            response = self._read_response(request_id)
        except ServeError:
            raise
        except (OSError, ValueError) as exc:
            self.close()
            raise DaemonUnavailableError(
                f"daemon connection failed: {type(exc).__name__}: {exc}"
            ) from None
        if response.get("ok"):
            return response.get("result") or {}
        raise protocol.error_from_wire(response.get("error"))

    def _read_response(self, request_id: str) -> Dict[str, Any]:
        """Read frames until the one answering ``request_id`` arrives.

        Responses to ids we are no longer waiting for (a previous
        request that timed out client-side) are skipped, keeping the
        stream usable after a client-side deadline.
        """
        deadline = time.monotonic() + self.timeout_s
        while True:
            while b"\n" not in self._buffer:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self.close()
                    raise DaemonUnavailableError(
                        "timed out waiting for the daemon's response",
                        timeout_s=self.timeout_s,
                    )
                self._sock.settimeout(remaining)
                chunk = self._sock.recv(65536)
                if not chunk:
                    self.close()
                    raise DaemonUnavailableError(
                        "daemon closed the connection mid-request"
                    )
                self._buffer += chunk
                if b"\n" not in self._buffer \
                        and len(self._buffer) > protocol.MAX_LINE_BYTES:
                    self.close()
                    raise ProtocolError("daemon frame exceeds limit")
            line, self._buffer = self._buffer.split(b"\n", 1)
            response = protocol.decode_line(line)
            if response.get("id") in (request_id, None):
                return response
            # Stale response from an abandoned earlier request; skip.

    def call(self, op: str, params: Optional[Dict[str, Any]] = None,
             session: Optional[str] = None,
             deadline_s: Optional[float] = None,
             policy: Optional[RetryPolicy] = None,
             sleep: Callable[[float], None] = time.sleep) -> Dict[str, Any]:
        """:meth:`request` with policy-driven retries of retryable errors.

        Sheds, deadlines, and daemon restarts (transport failures) are
        retried with the policy's backoff, reconnecting as needed.
        Non-retryable errors raise immediately. Without a policy this is
        exactly :meth:`request`.
        """
        if policy is None:
            return self.request(op, params, session=session,
                                deadline_s=deadline_s)
        last: Optional[ServeError] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return self.request(op, params, session=session,
                                    deadline_s=deadline_s)
            except ServeError as exc:
                if not exc.retryable or attempt >= policy.max_attempts:
                    raise
                last = exc
                sleep(policy.delay(attempt))
        raise last  # unreachable; loop always returns or raises
