"""Signoff-as-a-service: the fault-tolerant timing daemon.

``repro.serve`` turns the batch signoff stack into a long-lived service:
load and bind a design once, then answer streams of timing queries (ECO
what-ifs, path reports, slack histograms, full re-signoff) over a
newline-delimited JSON socket protocol — with bounded admission queues,
explicit load shedding, per-session copy-on-write ECO overlays,
supervised per-request retries/deadlines, and journal-backed warm
restart. See :mod:`repro.serve.server` for the robustness ladder.
"""

from repro.serve.admission import AdmissionQueue
from repro.serve.client import TimingClient
from repro.serve.overlay import EDIT_KINDS, DesignOverlay, OverlayEdit
from repro.serve.protocol import (
    CONTROL_OPS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    QUERY_OPS,
)
from repro.serve.server import SHARED_SESSION_ID, DaemonConfig, TimingDaemon
from repro.serve.session import Session, SessionManager, SessionState

__all__ = [
    "AdmissionQueue",
    "CONTROL_OPS",
    "DaemonConfig",
    "DesignOverlay",
    "EDIT_KINDS",
    "MAX_LINE_BYTES",
    "OverlayEdit",
    "PROTOCOL_VERSION",
    "QUERY_OPS",
    "SHARED_SESSION_ID",
    "Session",
    "SessionManager",
    "SessionState",
    "TimingClient",
    "TimingDaemon",
]
