"""Daemon sessions: private ECO overlays plus warm per-scenario timers.

A session is one client's standing what-if context: a
:class:`~repro.serve.overlay.DesignOverlay` over the shared base design
plus a warm :class:`~repro.sta.scheduler.ScenarioTimerPool` bound to the
overlay's materialized view. Queries retime cone-limited after
footprint-preserving ECOs and fall back to honest full updates for
topology-affecting edits — the PR-3 incremental substrate, now one per
concurrent client.

Fault containment is per-session: a worker crash that exhausts its retry
budget quarantines *the session* (state, error and all), never the
daemon. Other sessions keep timing; the quarantined one answers every
further query with a structured :class:`~repro.errors.SessionQuarantinedError`
until the client discards or closes it.

Durability: session opens, ECO commits and closes are journaled through
the daemon's :class:`~repro.runtime.journal.RunJournal`. A SIGKILL'd
daemon replays the ledger on restart — sessions come back with their
overlays (and therefore their content fingerprints, and therefore their
warm cache hits) intact. Timers are rebuilt lazily on first query; they
are derived state.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ServeError,
    SessionNotFoundError,
    SessionQuarantinedError,
)
from repro.netlist.design import Design
from repro.serve.overlay import DesignOverlay, OverlayEdit
from repro.sta.scheduler import ScenarioTimerPool


class SessionState(enum.Enum):
    ACTIVE = "active"
    QUARANTINED = "quarantined"
    CLOSED = "closed"


class Session:
    """One client's overlay + warm timers + supervision state."""

    def __init__(self, session_id: str, base: Design, engine: str,
                 fault_injector=None):
        self.id = session_id
        self.overlay = DesignOverlay(base, session_id)
        self.state = SessionState.ACTIVE
        self.error: Optional[str] = None  # set when quarantined
        self.created_s = time.monotonic()
        #: Serializes all timing work for this session. Concurrent
        #: requests on one session queue up here; concurrent *sessions*
        #: proceed in parallel. Required because warm timers hold live
        #: STA state bound to the session's materialized design.
        self.lock = threading.Lock()
        self.timers = ScenarioTimerPool(engine=engine,
                                        fault_injector=fault_injector)
        #: Edits committed since each scenario's timer last retimed:
        #: scenario name -> (edited instance names, topology flag).
        self._pending: Dict[str, Tuple[List[str], bool]] = {}
        #: Monotonic ECO sequence number (journal key component).
        self.eco_seq = 0
        self.queries = 0

    # ------------------------------------------------------------------ #

    def ensure_usable(self) -> None:
        if self.state is SessionState.QUARANTINED:
            raise SessionQuarantinedError(
                "session is quarantined after a worker failure",
                session=self.id, cause=self.error,
            )
        if self.state is SessionState.CLOSED:
            raise SessionNotFoundError(
                "session is closed", session=self.id
            )

    def note_edits(self, instances: Sequence[str],
                   topology_changed: bool) -> None:
        """Record committed edits as pending work for every warm timer."""
        for name in self.timers.names():
            pending_instances, pending_topo = self._pending.get(
                name, ([], False)
            )
            self._pending[name] = (
                pending_instances + list(instances),
                pending_topo or topology_changed,
            )
        # Scenarios without a warm timer build fresh on first query and
        # need no pending record — the build sees the current overlay.

    def take_pending(self, scenario_name: str) -> Tuple[List[str], bool]:
        return self._pending.pop(scenario_name, ([], False))

    def drop_timers(self) -> None:
        """Discard warm timers (after overlay discard / restore)."""
        for name in self.timers.names():
            self.timers.discard(name)
        self._pending.clear()

    def reset_runtime(self) -> None:
        """Replace all derived runtime state with fresh objects.

        Called at the start of a *retry* after an attempt crashed or was
        abandoned on timeout: the zombie attempt may still be binding the
        old materialized view, so timers are dropped and the overlay
        re-materializes into disjoint objects. The overlay's committed
        edits (durable state) are untouched.
        """
        self.drop_timers()
        self.overlay.refresh()

    def quarantine(self, error: str) -> None:
        self.state = SessionState.QUARANTINED
        self.error = error

    def close(self) -> None:
        self.state = SessionState.CLOSED
        self.drop_timers()


class SessionManager:
    """Owns the session table and its journal-backed ledger.

    Journal entry shapes (all JSON-plain keys, picklable payloads):

    - ``("serve_session", sid)`` -> ``{"state": "open" | "closed"}``
    - ``("serve_eco", (sid, seq))`` -> list of edit dicts

    The latest entry per key wins (the journal is a dict keyed by
    (kind, key)), so open/close transitions overwrite cleanly and each
    ECO commit is its own immutable record.
    """

    def __init__(self, base: Design, engine: str = "reference",
                 journal=None, fault_injector=None,
                 session_limit: int = 1024):
        self.base = base
        self.engine = engine
        self.journal = journal
        self.fault_injector = fault_injector
        self.session_limit = session_limit
        self._lock = threading.Lock()
        self._sessions: Dict[str, Session] = {}
        self._ids = itertools.count(1)
        self.restored = 0
        if journal is not None:
            self._restore()

    # ------------------------------------------------------------------ #
    # lifecycle

    def _next_id(self) -> str:
        while True:
            sid = f"s-{next(self._ids)}"
            if sid not in self._sessions:
                return sid

    def open(self, session_id: Optional[str] = None) -> Session:
        with self._lock:
            active = sum(1 for s in self._sessions.values()
                         if s.state is SessionState.ACTIVE)
            if active >= self.session_limit:
                raise ServeError(
                    "session limit reached", limit=self.session_limit
                )
            sid = session_id or self._next_id()
            if sid in self._sessions \
                    and self._sessions[sid].state is not SessionState.CLOSED:
                raise ServeError(f"session {sid!r} already exists")
            if session_id is not None and self.journal is not None \
                    and self.journal.lookup("serve_session", sid) is not None:
                # A journaled id (even a closed one) is never recycled:
                # its ECO ledger would splice into the new session on
                # the next restart.
                raise ServeError(
                    f"session id {sid!r} was already used this journal",
                    session=sid,
                )
            session = Session(sid, self.base, self.engine,
                              fault_injector=self.fault_injector)
            self._sessions[sid] = session
        if self.journal is not None:
            self.journal.record("serve_session", sid, {"state": "open"})
        return session

    def get(self, session_id: str) -> Session:
        session = self._sessions.get(session_id)
        if session is None or session.state is SessionState.CLOSED:
            raise SessionNotFoundError(
                f"no session {session_id!r}", session=session_id
            )
        return session

    def close(self, session_id: str) -> None:
        session = self.get(session_id)
        session.close()
        if self.journal is not None:
            self.journal.record("serve_session", session_id,
                                {"state": "closed"})

    def quarantine(self, session_id: str, error: str) -> None:
        session = self._sessions.get(session_id)
        if session is not None:
            session.quarantine(error)

    def discard(self, session_id: str) -> int:
        """Drop a session's edits (and any quarantine) atomically.

        Returns the number of edits discarded. The journal records the
        high-water ECO sequence at discard time so a restart replays
        only *later* commits — discarded edits never resurrect. Discard
        also lifts quarantine: the session restarts from a clean overlay
        with fresh timers, which is exactly the recovery a client wants
        after a poisoned what-if.
        """
        session = self._sessions.get(session_id)
        if session is None or session.state is SessionState.CLOSED:
            raise SessionNotFoundError(
                f"no session {session_id!r}", session=session_id
            )
        dropped = session.overlay.discard()
        session.drop_timers()
        session.state = SessionState.ACTIVE
        session.error = None
        if self.journal is not None:
            self.journal.record(
                "serve_session", session_id,
                {"state": "open", "discard_seq": session.eco_seq},
            )
        return dropped

    # ------------------------------------------------------------------ #
    # ECO commits

    def apply_eco(self, session: Session,
                  edits: Sequence[OverlayEdit]) -> Tuple[List[str], bool]:
        """Atomically commit edits to a session and journal the commit.

        The overlay commit happens first (atomic; a validation failure
        raises with nothing mutated and nothing journaled), then the
        ledger records the batch. A daemon killed between the two loses
        only the *acknowledgement*: the client never saw a success
        response, retries, and the replayed overlay converges.
        """
        instances, topology = session.overlay.apply(edits)
        session.note_edits(instances, topology)
        if edits:
            session.eco_seq += 1
            if self.journal is not None:
                self.journal.record(
                    "serve_eco", (session.id, session.eco_seq),
                    [edit.to_wire() for edit in edits],
                )
        return instances, topology

    # ------------------------------------------------------------------ #
    # restore

    def _restore(self) -> None:
        """Replay the journaled session ledger after a restart."""
        states = {}
        for (sid,) in [k if isinstance(k, tuple) else (k,)
                       for k in self.journal.keys("serve_session")]:
            states[sid] = self.journal.lookup("serve_session", sid)
        eco_keys = sorted(
            self.journal.keys("serve_eco"),
            key=lambda key: (key[0], key[1]),
        )
        # Never reissue any journaled id — a recycled id would splice a
        # dead session's ECO ledger into a new session on the *next*
        # restart. Closed sessions burn their id forever.
        max_seq = 0
        for sid in states:
            if sid.startswith("s-"):
                try:
                    max_seq = max(max_seq, int(sid[2:]))
                except ValueError:
                    pass
        self._ids = itertools.count(max_seq + 1)
        for sid, payload in states.items():
            if (payload or {}).get("state") != "open":
                continue
            discard_seq = int((payload or {}).get("discard_seq", 0))
            session = Session(sid, self.base, self.engine,
                              fault_injector=self.fault_injector)
            for key in eco_keys:
                if key[0] != sid:
                    continue
                seq = int(key[1])
                session.eco_seq = max(session.eco_seq, seq)
                if seq <= discard_seq:
                    continue  # discarded before the restart; stays dead
                edits = [OverlayEdit.from_wire(e)
                         for e in self.journal.lookup("serve_eco", key)]
                session.overlay.apply(edits)
            self._sessions[sid] = session
            self.restored += 1

    # ------------------------------------------------------------------ #
    # introspection

    def counts(self) -> Dict[str, int]:
        with self._lock:
            by_state = {state.value: 0 for state in SessionState}
            for session in self._sessions.values():
                by_state[session.state.value] += 1
            by_state["restored"] = self.restored
            return by_state

    def sessions(self) -> List[Session]:
        with self._lock:
            return list(self._sessions.values())
