"""The timing daemon: signoff-as-a-service over a JSON-lines socket.

Interactive timing today means paying design load, library load, graph
build and a cold-cache full analysis *per question*. The daemon pays
them once: it binds a design and a scenario set at startup and then
serves streams of timing queries — ECO what-ifs, path reports, slack
histograms, full re-signoff — over the newline-delimited JSON protocol
of :mod:`repro.serve.protocol`.

Robustness properties, in the order a failing component meets them:

- **Bounded admission** — query ops pass through a fixed-depth
  :class:`~repro.serve.admission.AdmissionQueue`; when it is full the
  request is *shed* immediately with a retryable ``E_OVERLOADED``
  response. Control ops (ping/stats/session lifecycle) bypass admission
  — health checks must work especially well under overload. Daemon
  memory is bounded by construction: frames are size-capped, the queue
  is depth-capped, reader threads hold at most one frame each.
- **Deadlines and retries** — each admitted request runs under
  :func:`~repro.runtime.supervisor.supervised_call` with the daemon's
  :class:`~repro.runtime.supervisor.RetryPolicy`; a per-request
  ``deadline_s`` tightens the attempt budget further. A timed-out
  attempt is abandoned (never joined) and the *session* swaps in fresh
  runtime objects before any retry, so a zombie attempt can only touch
  state nothing else references.
- **Containment** — a handler crash that exhausts its retry budget
  quarantines the session (structured ``E_QUARANTINED`` thereafter,
  until the client discards), never the daemon. Sessionless queries run
  against a shared context that resets its derived state instead.
- **Degradation** — a vector-engine
  :class:`~repro.sta.kernel.KernelCompileError` falls back to the
  reference path per scenario (counted, span-traced); a journal IO error
  degrades checkpointing, not serving.
- **Warm restart** — scenario results and the session ledger are
  journaled through :class:`~repro.runtime.journal.RunJournal`. A
  SIGKILL'd daemon restarted on the same journal prewarms its result
  cache and replays open sessions' ECO overlays; content fingerprints
  are deterministic, so the first post-restart query hits the cache.
- **Slow clients** — responses are sent with a bounded socket timeout;
  a client that stops draining its socket is disconnected (and counted)
  rather than wedging a worker.
"""

from __future__ import annotations

import math
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.beol.corners import conventional_corners
from repro.beol.stack import BeolStack, default_stack
from repro.errors import (
    DaemonUnavailableError,
    DeadlineExceededError,
    LibraryError,
    NetlistError,
    ProtocolError,
    ReproError,
    ServeError,
    SessionQuarantinedError,
    TaskDegradedError,
    TimingError,
)
from repro.netlist.design import Design
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.runtime.journal import RunJournal
from repro.runtime.supervisor import RetryPolicy, supervised_call
from repro.serve import protocol
from repro.serve.admission import AdmissionQueue
from repro.serve.overlay import OverlayEdit
from repro.serve.session import Session, SessionManager
from repro.sta.analysis import STA
from repro.sta.scheduler import (
    FingerprintMemo,
    ScenarioResultCache,
    scenario_fingerprint,
)

#: Session id of the shared (sessionless) query context. Not in the
#: session table — only reachable by omitting ``session`` — and never
#: journaled: it holds no edits, so there is nothing to restore.
SHARED_SESSION_ID = "shared"

#: Exceptions that are the *client's* fault (bad edit, unknown target,
#: incompatible cell) and must surface as E_BAD_REQUEST responses, not
#: be mistaken for worker crashes by the retry supervisor.
_CLIENT_FAULTS = (ServeError, NetlistError, LibraryError)


class _ClientFault:
    """Box smuggling a client-fault exception out of a supervised attempt
    as a *result*, so the supervisor never counts it as a crash."""

    __slots__ = ("error",)

    def __init__(self, error: Exception):
        self.error = error


@dataclass
class DaemonConfig:
    """Tunables for one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in daemon.port
    workers: int = 4
    queue_limit: int = 64
    retries: int = 1
    timeout_s: Optional[float] = None  # per-attempt budget; None = off
    engine: str = "reference"
    session_limit: int = 256
    send_timeout_s: float = 5.0
    cache_entries: int = 512

    def __post_init__(self):
        if self.workers < 1:
            raise TimingError("daemon needs at least one worker")
        if self.retries < 0:
            raise TimingError("retries must be >= 0")


class _Connection:
    """One client socket plus its serialized, timeout-bounded sender."""

    def __init__(self, sock: socket.socket, peer: str,
                 send_timeout_s: float):
        self.sock = sock
        self.peer = peer
        self.send_timeout_s = send_timeout_s
        self.alive = True
        self._send_lock = threading.Lock()

    def send(self, message: Dict[str, Any]) -> bool:
        """Send one frame; False (and connection death) on any failure.

        The socket timeout bounds how long a slow client can hold the
        sending thread; on expiry the connection is dropped — shedding
        the reader, not wedging a worker.
        """
        try:
            frame = protocol.encode(message)
        except ServeError:
            # Response too large for the protocol — replace it with a
            # structured error the client can actually receive.
            frame = protocol.encode(protocol.error_response(
                message.get("id"),
                ProtocolError("response exceeds protocol frame limit"),
            ))
        with self._send_lock:
            if not self.alive:
                return False
            try:
                self.sock.settimeout(self.send_timeout_s)
                self.sock.sendall(frame)
                return True
            except (OSError, ValueError):
                self.alive = False
                obs_metrics.inc("serve.client_drops")
                try:
                    self.sock.close()
                except OSError:
                    pass
                return False

    def close(self) -> None:
        with self._send_lock:
            self.alive = False
            try:
                self.sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self.sock.close()
            except OSError:
                pass


class TimingDaemon:
    """Long-lived timing service over one bound design (module docstring).

    Args:
        design: the base design, loaded and shared by every session.
        scenarios: MCMM views served by name (unique, non-empty).
        stack: BEOL stack; defaults to the standard stack.
        config: :class:`DaemonConfig` tunables.
        journal: optional :class:`~repro.runtime.journal.RunJournal`
            backing warm restart (scenario results + session ledger).
        fault_injector: optional
            :class:`~repro.testing.faults.FaultInjector`; worker-scoped
            faults fire inside query handlers, kernel-scoped faults at
            vector compile time (chaos testing).
    """

    def __init__(
        self,
        design: Design,
        scenarios,
        stack: Optional[BeolStack] = None,
        config: Optional[DaemonConfig] = None,
        journal: Optional[RunJournal] = None,
        fault_injector=None,
    ):
        if not scenarios:
            raise TimingError("the daemon needs at least one scenario")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise TimingError("scenario names must be unique")
        self.design = design
        self.scenarios: "OrderedDict[str, Any]" = OrderedDict(
            (s.name, s) for s in scenarios
        )
        self.stack = stack or default_stack()
        # Scenario libraries are bound once for the daemon's lifetime;
        # hashing their full cell tables per query would dominate the
        # cache-hit path. Warmed here so the cost lands at startup.
        self._fingerprints = FingerprintMemo()
        for name, s in self.scenarios.items():
            self._fingerprints.get(name, None,
                                   lambda s=s: scenario_fingerprint(s))
        self.config = config or DaemonConfig()
        self.journal = journal
        self.fault_injector = fault_injector
        self.cache = ScenarioResultCache(
            max_entries=self.config.cache_entries, verify=True
        )
        self.sessions = SessionManager(
            design, engine=self.config.engine, journal=journal,
            fault_injector=fault_injector,
            session_limit=self.config.session_limit,
        )
        for session in self.sessions.sessions():  # journal-restored
            session.timers.register_cache(self.cache)
        self._shared = Session(SHARED_SESSION_ID, design,
                               self.config.engine,
                               fault_injector=fault_injector)
        self._shared.timers.register_cache(self.cache)
        self.admission = AdmissionQueue(self.config.queue_limit)
        self.prewarmed = self._prewarm_cache()
        self.port: Optional[int] = None
        self.requests = 0
        self.failures = 0
        self.quarantines = 0
        self._started_s = time.monotonic()
        self._stopping = False
        self._listener: Optional[socket.socket] = None
        self._threads: List[threading.Thread] = []
        self._conns: List[_Connection] = []
        self._conns_lock = threading.Lock()
        self._handlers: Dict[str, Callable] = {
            "timing": self._op_timing,
            "signoff": self._op_signoff,
            "paths": self._op_paths,
            "histogram": self._op_histogram,
            "apply_eco": self._op_apply_eco,
            "ssta": self._op_ssta,
        }

    # ------------------------------------------------------------------ #
    # warm restart

    def _prewarm_cache(self) -> int:
        """Reload journaled scenario reports into the result cache.

        Keys are content-addressed (design name + design fingerprint +
        scenario fingerprint); replayed session overlays reproduce the
        same content, so prewarmed entries hit on the first post-restart
        query without re-running any STA.
        """
        if self.journal is None:
            return 0
        count = 0
        for key in self.journal.keys("scenario"):
            if not (isinstance(key, tuple) and len(key) == 3):
                continue
            report = self.journal.lookup("scenario", key)
            if report is None:
                continue
            self.cache.store(key[0], key[1], key[2], report)
            count += 1
        return count

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> int:
        """Bind, listen, and spin up worker/accept threads; returns port."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.config.host, self.config.port))
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        for i in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        accept = threading.Thread(target=self._accept_loop,
                                  name="serve-accept", daemon=True)
        accept.start()
        self._threads.append(accept)
        return self.port

    def serve_forever(self) -> None:
        """start() + block until stop() (for the CLI foreground mode)."""
        if self._listener is None:
            self.start()
        while not self._stopping:
            time.sleep(0.1)
        self._join()

    def stop(self) -> None:
        """Graceful shutdown: drain admitted work, then drop clients."""
        if self._stopping:
            return
        self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self.admission.close()
        self._join()
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()

    def _join(self) -> None:
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)

    # ------------------------------------------------------------------ #
    # socket plumbing

    def _accept_loop(self) -> None:
        # Polling timeout rather than a blocking accept: closing the
        # listener from stop() does not reliably wake a blocked
        # accept(), which would wedge shutdown for the join timeout.
        self._listener.settimeout(0.5)
        while not self._stopping:
            try:
                sock, addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed; shutting down
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            conn = _Connection(sock, f"{addr[0]}:{addr[1]}",
                               self.config.send_timeout_s)
            with self._conns_lock:
                self._conns.append(conn)
            reader = threading.Thread(
                target=self._reader_loop, args=(conn,),
                name=f"serve-reader-{conn.peer}", daemon=True,
            )
            reader.start()

    def _reader_loop(self, conn: _Connection) -> None:
        """Read frames off one connection; never raises out."""
        buffer = b""
        try:
            while conn.alive and not self._stopping:
                try:
                    conn.sock.settimeout(0.5)
                    chunk = conn.sock.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    break
                if not chunk:
                    break  # EOF
                buffer += chunk
                if b"\n" not in buffer \
                        and len(buffer) > protocol.MAX_LINE_BYTES:
                    conn.send(protocol.error_response(
                        None,
                        ProtocolError("frame exceeds protocol limit",
                                      limit=protocol.MAX_LINE_BYTES),
                    ))
                    break  # framing is unrecoverable; drop the client
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        self._dispatch(conn, line)
        finally:
            conn.close()
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)

    def _dispatch(self, conn: _Connection, line: bytes) -> None:
        """Route one decoded frame: control inline, queries admitted."""
        request_id = None
        try:
            message = protocol.decode_line(line)
            request_id = message.get("id")
            request = protocol.parse_request(message)
        except ServeError as exc:
            conn.send(protocol.error_response(request_id, exc))
            return
        if self._stopping:
            conn.send(protocol.error_response(
                request_id,
                DaemonUnavailableError("daemon is shutting down"),
            ))
            return
        if request["op"] in protocol.CONTROL_OPS:
            try:
                result = self._control(request)
            except ServeError as exc:
                conn.send(protocol.error_response(request_id, exc))
                return
            except ReproError as exc:
                conn.send(protocol.error_response(
                    request_id, self._wrap_error(exc)))
                return
            conn.send(protocol.ok_response(request_id, result))
            if request["op"] == "shutdown":
                threading.Thread(target=self.stop, daemon=True).start()
            return
        try:
            self.admission.offer((conn, request, time.monotonic()))
        except ServeError as exc:
            conn.send(protocol.error_response(request_id, exc))

    # ------------------------------------------------------------------ #
    # workers

    def _worker_loop(self) -> None:
        while True:
            item = self.admission.take(timeout_s=0.25)
            if item is None:
                if self._stopping:
                    return
                continue
            conn, request, enqueued_s = item
            try:
                self._process(conn, request, enqueued_s)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                obs_metrics.inc("serve.internal_errors")
                conn.send(protocol.error_response(
                    request.get("id"), self._wrap_error(exc)))
            finally:
                self.admission.done()

    @staticmethod
    def _wrap_error(exc: Exception) -> ServeError:
        if isinstance(exc, ServeError):
            return exc
        if isinstance(exc, ReproError):
            # Client-triggered domain errors (unknown instance,
            # dont_touch, bad mode, ...) are bad requests, not daemon
            # faults: non-retryable, with the structured context kept.
            wrapped = ProtocolError(
                f"{type(exc).__name__}: {exc.message}"
            )
            wrapped.context.update(exc.context)
            return wrapped
        return ServeError(f"{type(exc).__name__}: {exc}")

    def _resolve_session(self, request: Dict[str, Any]) -> Session:
        sid = request["session"]
        if sid is None:
            session = self._shared
        else:
            session = self.sessions.get(sid)
        session.ensure_usable()
        return session

    def _request_policy(self, params: Dict[str, Any], enqueued_s: float,
                        op: str) -> RetryPolicy:
        """The effective retry policy for one admitted request.

        ``deadline_s`` (measured from admission) tightens the per-attempt
        budget; an already-expired deadline raises before any work.
        ``apply_eco`` never auto-retries: its commit+journal sequence is
        not idempotent, and the overlay's atomicity means a failed apply
        left nothing behind for a retry to fix anyway.
        """
        retries = 0 if op == "apply_eco" else self.config.retries
        timeout_s = self.config.timeout_s
        deadline_s = params.get("deadline_s")
        if deadline_s is not None:
            remaining = float(deadline_s) - (time.monotonic() - enqueued_s)
            if remaining <= 0:
                raise DeadlineExceededError(
                    "deadline expired while queued",
                    deadline_s=deadline_s,
                )
            timeout_s = remaining if timeout_s is None \
                else min(timeout_s, remaining)
        return RetryPolicy(retries=retries, timeout_s=timeout_s)

    def _process(self, conn: _Connection, request: Dict[str, Any],
                 enqueued_s: float) -> None:
        op = request["op"]
        params = request["params"]
        request_id = request["id"]
        sid = request["session"]
        t0 = time.perf_counter()
        self.requests += 1
        obs_metrics.inc("serve.requests")
        with obs_tracing.span("serve_request", op=op,
                              session=sid or SHARED_SESSION_ID):
            try:
                session = self._resolve_session(request)
                policy = self._request_policy(params, enqueued_s, op)
                handler = self._handlers[op]

                def attempt(_payload, attempt_no):
                    if attempt_no > 1:
                        # The previous attempt crashed or was abandoned
                        # on timeout; a zombie may still be touching the
                        # session's derived state. Swap in fresh objects
                        # before retrying (committed edits survive).
                        session.reset_runtime()
                    try:
                        return handler(session, params, attempt_no)
                    except _CLIENT_FAULTS as exc:
                        return _ClientFault(exc)

                with session.lock:
                    result = supervised_call(
                        attempt, policy,
                        name=f"{op}:{sid or SHARED_SESSION_ID}",
                    )
                if isinstance(result, _ClientFault):
                    raise result.error
            except TaskDegradedError as exc:
                self.failures += 1
                conn.send(protocol.error_response(
                    request_id, self._degrade(exc, sid)))
                return
            except (ServeError, ReproError) as exc:
                self.failures += 1
                conn.send(protocol.error_response(
                    request_id, self._wrap_error(exc)))
                return
            finally:
                obs_metrics.observe(
                    "serve.latency_ms", (time.perf_counter() - t0) * 1e3
                )
        conn.send(protocol.ok_response(request_id, result))

    def _degrade(self, exc: TaskDegradedError,
                 sid: Optional[str]) -> ServeError:
        """Triage an exhausted retry budget into the right wire error.

        Timeouts become retryable ``E_DEADLINE`` (the work was abandoned,
        the session already got fresh runtime state for the next
        request). Crashes quarantine the session — every later request
        gets ``E_QUARANTINED`` until the client discards — except the
        shared sessionless context, which resets instead (quarantining
        it would take the daemon down for every anonymous client).
        """
        cause = exc.context.get("cause")
        chain = list(getattr(exc, "error_chain", []))
        if cause == "WorkerTimeoutError":
            error = DeadlineExceededError(
                "request exceeded its time budget",
                attempts=exc.context.get("attempts"),
            )
            error.context["chain"] = "; ".join(chain)
            return error
        self.quarantines += 1
        obs_metrics.inc("serve.quarantines")
        if sid is None:
            self._shared.reset_runtime()
            error: ServeError = DaemonUnavailableError(
                "shared context failed and was reset; retry",
                cause=cause,
            )
        else:
            self.sessions.quarantine(sid, f"{cause}: {exc.message}")
            error = SessionQuarantinedError(
                "session quarantined after repeated worker failures",
                session=sid, cause=cause,
            )
        error.context["chain"] = "; ".join(chain)
        return error

    # ------------------------------------------------------------------ #
    # control ops (bypass admission; O(1) or close to it)

    def _control(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request["op"]
        params = request["params"]
        if op == "ping":
            return {
                "pong": True,
                "design": self.design.name,
                "scenarios": list(self.scenarios),
                "engine": self.config.engine,
                "protocol": protocol.PROTOCOL_VERSION,
                "uptime_s": round(time.monotonic() - self._started_s, 3),
            }
        if op == "stats":
            return self._stats()
        if op == "open_session":
            session = self.sessions.open(params.get("session_id"))
            session.timers.register_cache(self.cache)
            return {"session": session.id}
        if op == "close_session":
            sid = request["session"] or params.get("session_id")
            if not sid:
                raise ProtocolError("close_session needs a session id")
            self.sessions.close(sid)
            self.cache.invalidate_design(f"{self.design.name}@{sid}")
            return {"closed": sid}
        if op == "discard":
            sid = request["session"] or params.get("session_id")
            if not sid:
                raise ProtocolError("discard needs a session id")
            dropped = self.sessions.discard(sid)
            self.cache.invalidate_design(f"{self.design.name}@{sid}")
            return {"discarded": dropped, "session": sid}
        if op == "shutdown":
            return {"stopping": True}
        raise ProtocolError(f"unknown control op {op!r}")

    def _stats(self) -> Dict[str, Any]:
        pools = [self._shared] + self.sessions.sessions()
        timers = {
            "builds": sum(s.timers.builds for s in pools),
            "incremental_retimes": sum(
                s.timers.incremental_retimes for s in pools),
            "full_retimes": sum(s.timers.full_retimes for s in pools),
        }
        stats = {
            "design": self.design.name,
            "uptime_s": round(time.monotonic() - self._started_s, 3),
            "requests": self.requests,
            "failures": self.failures,
            "quarantines": self.quarantines,
            "admission": self.admission.stats(),
            "sessions": self.sessions.counts(),
            "cache": {
                "entries": len(self.cache),
                "hits": self.cache.stats.hits,
                "misses": self.cache.stats.misses,
                "prewarmed": self.prewarmed,
            },
            "timers": timers,
        }
        if self.journal is not None:
            stats["journal"] = {
                "available": self.journal.available,
                "io_errors": self.journal.io_errors,
                "entries": len(self.journal),
                "restored_sessions": self.sessions.restored,
            }
        return stats

    # ------------------------------------------------------------------ #
    # query ops (admitted, supervised)

    def _scenario(self, name: str):
        scenario = self.scenarios.get(name)
        if scenario is None:
            raise ProtocolError(
                f"unknown scenario {name!r}",
                scenarios=",".join(self.scenarios),
            )
        return scenario

    def _build_sta(self, session: Session, scenario) -> STA:
        design = session.overlay.materialize()
        corner = conventional_corners(self.stack)[
            scenario.beol_corner_name
        ]
        return STA(
            design,
            scenario.library,
            scenario.constraints,
            stack=self.stack,
            beol_corner=corner,
            temp_c=scenario.temp_c,
            derates=scenario.derates,
        )

    def _scenario_report(self, session: Session, scenario,
                         attempt: int) -> Tuple[Any, str]:
        """One scenario's report for one session: cache, then retime.

        Returns ``(report, source)`` with source in
        ``{"cache", "incremental", "full"}``. Freshly computed reports
        are cached and journaled under content-addressed keys, so they
        survive both further queries and daemon restarts.
        """
        if self.fault_injector is not None:
            # Worker-scoped chaos fires here — inside the supervised
            # attempt, per (scenario, attempt) coordinates.
            self.fault_injector.fire(scenario.name, attempt)
        design = session.overlay.materialize()
        design_fp = session.overlay.content_fingerprint()
        scenario_fp = self._fingerprints.get(
            scenario.name, None,
            lambda: scenario_fingerprint(scenario))
        key = (design.name, design_fp, scenario_fp)
        cached = self.cache.lookup(*key)
        if cached is not None:
            return cached, "cache"
        edited, topology = session.take_pending(scenario.name)
        had_timer = session.timers.get(scenario.name) is not None
        report = session.timers.retime(
            scenario.name, edited, topology,
            build=lambda: self._build_sta(session, scenario),
        )
        report.scenario = scenario.name
        source = "incremental" if had_timer and not topology else "full"
        self.cache.store(*key, report)
        if self.journal is not None:
            if not self.journal.record("scenario", key, report):
                obs_metrics.inc("runtime.journal.io_errors")
        return report, source

    @staticmethod
    def _report_row(report) -> Dict[str, Any]:
        def num(value: float) -> Optional[float]:
            return None if math.isinf(value) else round(value, 6)

        return {
            "wns_setup": num(report.wns("setup")),
            "tns_setup": num(report.tns("setup")),
            "violations_setup": report.violation_count("setup"),
            "wns_hold": num(report.wns("hold")),
            "tns_hold": num(report.tns("hold")),
            "violations_hold": report.violation_count("hold"),
            "slew_violations": len(report.slew_violations),
        }

    def _selected(self, params: Dict[str, Any]) -> List[str]:
        names = params.get("scenarios")
        if names is None:
            return list(self.scenarios)
        if not isinstance(names, list) or not names:
            raise ProtocolError("scenarios must be a non-empty list")
        for name in names:
            self._scenario(name)  # raises on unknown
        return names

    def _op_timing(self, session: Session, params: Dict[str, Any],
                   attempt: int) -> Dict[str, Any]:
        rows: Dict[str, Any] = {}
        sources: Dict[str, str] = {}
        for name in self._selected(params):
            report, source = self._scenario_report(
                session, self._scenario(name), attempt
            )
            rows[name] = self._report_row(report)
            sources[name] = source
        session.queries += 1
        return {
            "design": session.overlay.design_name,
            "version": session.overlay.version,
            "scenarios": rows,
            "sources": sources,
        }

    def _op_signoff(self, session: Session, params: Dict[str, Any],
                    attempt: int) -> Dict[str, Any]:
        result = self._op_timing(
            session, {**params, "scenarios": None}, attempt
        )
        rows = result["scenarios"]
        worst = min(rows, key=lambda n: rows[n]["wns_setup"]
                    if rows[n]["wns_setup"] is not None else float("inf"))
        merged = {
            "merged_wns_setup": min(
                (rows[n]["wns_setup"] for n in rows
                 if rows[n]["wns_setup"] is not None), default=None),
            "merged_tns_setup": min(
                (rows[n]["tns_setup"] for n in rows
                 if rows[n]["tns_setup"] is not None), default=None),
            "merged_wns_hold": min(
                (rows[n]["wns_hold"] for n in rows
                 if rows[n]["wns_hold"] is not None), default=None),
            "worst_scenario": worst,
        }
        result.update(merged)
        return result

    def _op_paths(self, session: Session, params: Dict[str, Any],
                  attempt: int) -> Dict[str, Any]:
        name = params.get("scenario")
        if not name:
            raise ProtocolError("paths needs a scenario")
        mode = params.get("mode", "setup")
        if mode not in ("setup", "hold"):
            raise ProtocolError(f"bad mode {mode!r}")
        count = int(params.get("count", 3))
        scenario = self._scenario(name)
        self._scenario_report(session, scenario, attempt)
        timer = session.timers.get(name)
        if timer is None:
            # Cache hit on a cold timer (e.g. right after a warm
            # restart): path reconstruction needs a live STA, so build
            # one now — later path queries reuse it.
            session.timers.retime(
                name, build=lambda: self._build_sta(session, scenario)
            )
            timer = session.timers.get(name)
        sta = timer.sta
        if sta.prop is None:
            # Vector-engine runs report without backpointers; the
            # reference walk fills them in for path reconstruction.
            sta.report = sta.run()
            sta.report.scenario = name
        paths = []
        for endpoint in sta.report.endpoints(mode)[:count]:
            path = sta.worst_path(endpoint)
            paths.append({
                "endpoint": str(endpoint.endpoint),
                "startpoint": str(path.startpoint),
                "slack": round(endpoint.slack, 6),
                "stages": path.stage_count,
                "gate_fraction": round(path.gate_delay_fraction(), 4),
                "render": path.render(),
            })
        session.queries += 1
        return {"scenario": name, "mode": mode, "paths": paths}

    def _op_histogram(self, session: Session, params: Dict[str, Any],
                      attempt: int) -> Dict[str, Any]:
        name = params.get("scenario")
        if not name:
            raise ProtocolError("histogram needs a scenario")
        mode = params.get("mode", "setup")
        if mode not in ("setup", "hold"):
            raise ProtocolError(f"bad mode {mode!r}")
        bins = int(params.get("bins", 8))
        report, source = self._scenario_report(
            session, self._scenario(name), attempt
        )
        session.queries += 1
        return {
            "scenario": name,
            "mode": mode,
            "endpoints": len(report.endpoints(mode)),
            "histogram": report.slack_histogram(mode, bins=bins),
            "source": source,
            **self._report_row(report),
        }

    def _op_ssta(self, session: Session, params: Dict[str, Any],
                 attempt: int) -> Dict[str, Any]:
        """Statistical query over the session's (overlaid) design.

        Runs one canonical-algebra SSTA pass on a chosen scenario:
        timing yield, the top endpoints by criticality (mean/sigma/
        P(fail)), and — when ``target_yield`` is given — a PST
        tune-to-target over ``tune_range`` ps. Always a full
        recompute (distributions are not cached), so budget ``samples``
        accordingly; the op is still supervised and admission-controlled
        like every other query.
        """
        from repro.liberty.lvf import has_lvf
        from repro.sta.algebra import VariationModel
        from repro.sta.ssta import run_ssta, tune_to_yield

        name = params.get("scenario")
        scenario = (self._scenario(name) if name
                    else next(iter(self.scenarios.values())))
        if not has_lvf(scenario.library):
            raise ProtocolError(
                f"scenario {scenario.name!r} has no LVF sigma tables; "
                "ssta is unavailable on it", scenario=scenario.name,
            )
        samples = int(params.get("samples", 1000))
        if not 16 <= samples <= 20000:
            raise ProtocolError(
                f"samples must be in [16, 20000], got {samples}"
            )
        top = int(params.get("top", 5))
        model_params: Dict[str, Any] = {}
        if "rho" in params:
            model_params["rho"] = float(params["rho"])
        if "seed" in params:
            model_params["seed"] = int(params["seed"])
        if self.fault_injector is not None:
            self.fault_injector.fire(f"ssta:{scenario.name}", attempt)

        design = session.overlay.materialize()
        corner = conventional_corners(self.stack)[
            scenario.beol_corner_name
        ]
        with obs_tracing.span("daemon_ssta", scenario=scenario.name,
                              samples=samples):
            run = run_ssta(
                design, scenario.library, scenario.constraints,
                model=VariationModel(**model_params),
                n_samples=samples,
                stack=self.stack, beol_corner=corner,
                temp_c=scenario.temp_c, derates=scenario.derates,
            )
            ranked = sorted(run.endpoints,
                            key=lambda e: -e.criticality)
            result: Dict[str, Any] = {
                "design": session.overlay.design_name,
                "version": session.overlay.version,
                "scenario": scenario.name,
                "samples": samples,
                "yield": round(run.timing_yield(), 6),
                "endpoints": [
                    {
                        "endpoint": str(e.endpoint),
                        "mean": round(e.mean, 6),
                        "sigma": round(e.sigma, 6),
                        "fail_prob": round(e.fail_prob, 6),
                        "criticality": round(e.criticality, 6),
                    }
                    for e in ranked[:top]
                ],
            }
            target = params.get("target_yield")
            if target is not None:
                max_buffers = params.get("max_buffers")
                tuned = tune_to_yield(
                    run,
                    target_yield=float(target),
                    tune_range=float(params.get("tune_range", 40.0)),
                    max_buffers=(int(max_buffers)
                                 if max_buffers is not None else None),
                )
                result["tuning"] = {
                    "target_yield": tuned.target_yield,
                    "baseline_yield": round(tuned.baseline_yield, 6),
                    "tuned_yield": round(tuned.tuned_yield, 6),
                    "buffers": len(tuned.selected),
                    "selected": list(tuned.selected),
                    "achieved": tuned.achieved,
                }
        session.queries += 1
        obs_metrics.inc("serve.ssta.queries")
        return result

    def _validate_eco(self, session: Session,
                      edits: List[OverlayEdit]) -> None:
        """Reject ``set_cell`` edits no bound library can honor.

        The overlay only validates against the netlist; the daemon also
        knows the scenario libraries, so a swap to a cell that is
        missing, footprint-incompatible, or pin-incompatible in *any*
        scenario's library fails the whole batch up front — as a bad
        request, before anything commits, instead of crashing the first
        timing query that binds the edited design. Chained ECOs are
        checked against the overlay's *current* cell, not the base's.
        """
        current: Dict[str, str] = {}
        for edit in edits:
            if edit.kind != "set_cell" \
                    or not isinstance(edit.value, str):
                continue  # overlay._validate covers shape errors
            old_name = current.get(
                edit.target, session.overlay.cell_of(edit.target)
            )
            for scenario in self.scenarios.values():
                library = scenario.library
                old = library.cell(old_name)  # raises LibraryError
                new = library.cell(edit.value)
                if new.footprint != old.footprint:
                    raise ProtocolError(
                        f"cannot set {edit.target} to {edit.value}: "
                        f"footprint {new.footprint!r} != "
                        f"{old.footprint!r} in {scenario.name}",
                        target=edit.target,
                    )
                if set(new.pins) != set(old.pins):
                    raise ProtocolError(
                        f"cannot set {edit.target} to {edit.value}: "
                        f"pin sets differ in {scenario.name}",
                        target=edit.target,
                    )
            current[edit.target] = edit.value

    def _op_apply_eco(self, session: Session, params: Dict[str, Any],
                      attempt: int) -> Dict[str, Any]:
        if session is self._shared:
            raise ProtocolError(
                "apply_eco needs a session (open_session first); the "
                "shared context is read-only"
            )
        raw = params.get("edits")
        if not isinstance(raw, list) or not raw:
            raise ProtocolError("apply_eco needs a non-empty edits list")
        edits = [OverlayEdit.from_wire(e) for e in raw]
        self._validate_eco(session, edits)
        instances, topology = self.sessions.apply_eco(session, edits)
        # Eager hygiene: this session's cached snapshots are stale now.
        self.cache.invalidate_design(session.overlay.design_name)
        return {
            "session": session.id,
            "applied": len(edits),
            "edited_instances": instances,
            "topology_changed": topology,
            "version": session.overlay.version,
            "eco_seq": session.eco_seq,
        }
