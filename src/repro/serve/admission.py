"""Bounded admission queue with explicit load-shed backpressure.

The daemon's memory is bounded by construction: a timing request either
gets one of ``depth_limit`` queue slots or is *shed* immediately with a
structured ``E_OVERLOADED`` response. Nothing ever blocks an accept
loop, nothing buffers unboundedly, and shedding is a first-class
response — clients see the queue depth and retry with backoff instead of
timing out against a silently drowning server.

Metrics: ``serve.queue.depth`` (gauge), ``serve.admitted`` /
``serve.shed`` / ``serve.completed`` (counters) and
``serve.queue.wait_ms`` (histogram of time spent queued) feed the
``stats`` op and the observability registry.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Any, Optional, Tuple

from repro.errors import AdmissionShedError, TimingError
from repro.obs import metrics as obs_metrics


class AdmissionQueue:
    """A bounded FIFO of admitted requests (see module docstring)."""

    def __init__(self, depth_limit: int = 64):
        if depth_limit < 1:
            raise TimingError("admission queue needs at least one slot")
        self.depth_limit = depth_limit
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._items: "collections.deque[Tuple[float, Any]]" = \
            collections.deque()
        self._closed = False
        self.admitted = 0
        self.shed = 0
        self.completed = 0

    # ------------------------------------------------------------------ #

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    def offer(self, item: Any) -> None:
        """Admit ``item`` or raise :class:`AdmissionShedError` (full).

        Never blocks: backpressure is explicit shedding, not queueing
        the caller. Raises immediately when the queue is closed.
        """
        with self._lock:
            if self._closed:
                raise AdmissionShedError(
                    "daemon is shutting down", queue_depth=len(self._items)
                )
            if len(self._items) >= self.depth_limit:
                self.shed += 1
                obs_metrics.inc("serve.shed")
                raise AdmissionShedError(
                    "admission queue is full; retry with backoff",
                    queue_depth=len(self._items),
                    depth_limit=self.depth_limit,
                )
            self._items.append((time.monotonic(), item))
            self.admitted += 1
            obs_metrics.inc("serve.admitted")
            obs_metrics.set_gauge("serve.queue.depth", len(self._items))
            self._ready.notify()

    def take(self, timeout_s: float = 0.5) -> Optional[Any]:
        """Pop the oldest admitted item; None on timeout or closed-empty."""
        with self._lock:
            deadline = time.monotonic() + timeout_s
            while not self._items:
                if self._closed:
                    return None
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._ready.wait(remaining)
            queued_s, item = self._items.popleft()
            obs_metrics.set_gauge("serve.queue.depth", len(self._items))
            obs_metrics.observe(
                "serve.queue.wait_ms", (time.monotonic() - queued_s) * 1e3
            )
            return item

    def done(self) -> None:
        """Mark one taken item finished (stats bookkeeping)."""
        with self._lock:
            self.completed += 1
            obs_metrics.inc("serve.completed")

    def close(self) -> None:
        """Stop admitting; wake every waiting worker."""
        with self._lock:
            self._closed = True
            self._ready.notify_all()

    def stats(self) -> dict:
        with self._lock:
            return {
                "depth": len(self._items),
                "depth_limit": self.depth_limit,
                "admitted": self.admitted,
                "shed": self.shed,
                "completed": self.completed,
            }
