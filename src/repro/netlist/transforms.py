"""Netlist edits used by timing-closure optimizations.

Each transform performs one edit (Vt swap, resize, buffer insertion, NDR
promotion) and rebinds the affected nets. Transforms return a record of
what changed so the closure loop can report and, if needed, revert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import NetlistError
from repro.liberty.cell import PinDirection
from repro.liberty.library import Library
from repro.netlist.design import Design, Instance, Net, PinRef


@dataclass(frozen=True)
class Edit:
    """A record of one netlist edit."""

    kind: str  # "swap", "resize", "buffer", "ndr"
    target: str  # instance or net name
    before: str
    after: str

    def __str__(self) -> str:
        return f"{self.kind}({self.target}: {self.before} -> {self.after})"


def swap_cell(design: Design, library: Library, instance_name: str,
              new_cell_name: str) -> Edit:
    """Replace an instance's cell with a footprint-compatible variant."""
    inst = design.instance(instance_name)
    if inst.dont_touch:
        raise NetlistError(f"instance {instance_name} is marked dont_touch")
    old_cell = library.cell(inst.cell_name)
    new_cell = library.cell(new_cell_name)
    if new_cell.footprint != old_cell.footprint:
        raise NetlistError(
            f"cannot swap {instance_name}: {new_cell_name} has footprint "
            f"{new_cell.footprint!r}, expected {old_cell.footprint!r}"
        )
    if set(new_cell.pins) != set(old_cell.pins):
        raise NetlistError(
            f"cannot swap {instance_name}: pin sets differ between "
            f"{old_cell.name} and {new_cell.name}"
        )
    before = inst.cell_name
    inst.cell_name = new_cell_name
    return Edit("swap", instance_name, before, new_cell_name)


def swap_vt(design: Design, library: Library, instance_name: str,
            vt_flavor: str) -> Optional[Edit]:
    """Vt-swap an instance; returns None when no such variant exists."""
    inst = design.instance(instance_name)
    cell = library.cell(inst.cell_name)
    if cell.vt_flavor == vt_flavor:
        return None
    variant = library.swap_variant(cell, vt_flavor=vt_flavor)
    if variant is None:
        return None
    return swap_cell(design, library, instance_name, variant.name)


def resize(design: Design, library: Library, instance_name: str,
           size: float) -> Optional[Edit]:
    """Resize an instance; returns None when no such variant exists."""
    inst = design.instance(instance_name)
    cell = library.cell(inst.cell_name)
    if cell.size == size:
        return None
    variant = library.swap_variant(cell, size=size)
    if variant is None:
        return None
    return swap_cell(design, library, instance_name, variant.name)


def upsize(design: Design, library: Library, instance_name: str) -> Optional[Edit]:
    """Move to the next larger size in the menu, if any."""
    inst = design.instance(instance_name)
    cell = library.cell(inst.cell_name)
    menu = library.size_menu(cell)
    larger = [c for c in menu if c.size > cell.size]
    if not larger:
        return None
    return swap_cell(design, library, instance_name, larger[0].name)


def downsize(design: Design, library: Library, instance_name: str) -> Optional[Edit]:
    """Move to the next smaller size in the menu, if any."""
    inst = design.instance(instance_name)
    cell = library.cell(inst.cell_name)
    menu = library.size_menu(cell)
    smaller = [c for c in menu if c.size < cell.size]
    if not smaller:
        return None
    return swap_cell(design, library, instance_name, smaller[-1].name)


def insert_buffer(
    design: Design,
    library: Library,
    net_name: str,
    buffer_cell_name: str,
    load_subset: Optional[Sequence[PinRef]] = None,
) -> Edit:
    """Insert a buffer on a net, optionally splitting off a load subset.

    The buffer's input joins the original net; the chosen loads (default:
    all of them) move to a new net driven by the buffer. The buffer is
    placed at the centroid of the moved loads.
    """
    net = design.get_net(net_name)
    if net.driver is None:
        raise NetlistError(f"cannot buffer undriven net {net_name!r}")
    buffer_cell = library.cell(buffer_cell_name)
    if buffer_cell.footprint != "buf":
        raise NetlistError(f"{buffer_cell_name} is not a buffer")
    moved = list(load_subset) if load_subset is not None else list(net.loads)
    if not moved:
        raise NetlistError(f"no loads to buffer on net {net_name!r}")
    for ref in moved:
        if ref not in net.loads:
            raise NetlistError(f"{ref} is not a load of net {net_name!r}")

    in_pin = buffer_cell.input_pins()[0].name
    out_pin = buffer_cell.output_pins()[0].name
    buf_name = design.unique_name("buf")
    new_net_name = design.unique_name(f"{net_name}_buf")

    location = _centroid(design, moved)
    design.add_instance(
        buf_name,
        buffer_cell_name,
        {in_pin: net_name, out_pin: new_net_name},
        location=location,
    )
    new_net = design.get_net(new_net_name)
    net.loads = [l for l in net.loads if l not in moved] + [PinRef(buf_name, in_pin)]
    new_net.driver = PinRef(buf_name, out_pin)
    new_net.loads = moved
    for ref in moved:
        if not ref.is_port:
            design.instance(ref.instance).connections[ref.pin] = new_net_name
    return Edit("buffer", net_name, f"fanout={len(moved)}", buf_name)


def set_ndr(design: Design, net_name: str) -> Edit:
    """Promote a net to non-default routing (wider/spaced wires: lower R,
    slightly higher C — parasitic synthesis honours the flag)."""
    net = design.get_net(net_name)
    before = str(net.ndr)
    net.ndr = True
    return Edit("ndr", net_name, before, "True")


def _centroid(design: Design, refs: Sequence[PinRef]):
    xs, ys = [], []
    for ref in refs:
        if ref.is_port:
            continue
        loc = design.instance(ref.instance).location
        if loc is not None:
            xs.append(loc[0])
            ys.append(loc[1])
    if not xs:
        return None
    return (sum(xs) / len(xs), sum(ys) / len(ys))
