"""Gate-level netlist data model and synthetic benchmark generators.

- :mod:`repro.netlist.design` — instances, nets, ports and the
  :class:`~repro.netlist.design.Design` container;
- :mod:`repro.netlist.transforms` — the edits closure optimizations make
  (cell swap, resize, buffer insertion);
- :mod:`repro.netlist.generators` — deterministic synthetic circuits
  standing in for the paper's benchmarks (c5315, c7552, AES, MPEG2).
"""

from repro.netlist.design import Design, Instance, Net, PinRef, PortDirection

__all__ = ["Design", "Instance", "Net", "PinRef", "PortDirection"]
