"""Deterministic synthetic benchmark generators.

The paper's Fig 9 evaluates c5315, c7552, AES and MPEG2 implementations;
we have no access to those netlists or to a synthesis flow, so these
generators produce circuits with comparable structure:

- :func:`random_logic` — leveled random DAGs (the ISCAS-85-like profile:
  wide, moderately deep random control logic) wrapped in launch/capture
  flops;
- :func:`aes_like` — byte-sliced S-box clouds plus mixing layers between
  register stages (deep, narrow critical paths, highly uniform);
- :func:`mpeg2_like` — ripple-carry adder datapaths (very deep carry
  chains) plus a control cloud (a bimodal path-depth profile);
- :func:`tiny_design` — a hand-built few-gate design for unit tests.

All generators are seeded and fully deterministic, assign a grid placement
(used by parasitic synthesis and AOCV distance), and wire one ideal
``clk`` net to every flop; clock-tree synthesis can replace it later.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import NetlistError
from repro.netlist.design import Design, PortDirection

# Gate menu with rough synthesis-mix weights.
_GATE_MENU = (
    ("inv", ("A",), 0.18),
    ("nand2", ("A", "B"), 0.30),
    ("nor2", ("A", "B"), 0.18),
    ("nand3", ("A", "B", "C"), 0.10),
    ("nor3", ("A", "B", "C"), 0.06),
    ("aoi21", ("A1", "A2", "B"), 0.09),
    ("oai21", ("A1", "A2", "B"), 0.09),
)

ROW_PITCH = 1.4  # um
COL_PITCH = 6.0  # um


def _cell_name(footprint: str, size: float, flavor: str) -> str:
    return f"{footprint.upper()}_X{size:g}_{flavor.upper()}"


def _grid_location(col: int, row: int) -> Tuple[float, float]:
    return (col * COL_PITCH, row * ROW_PITCH)


def random_logic(
    name: str = "rand",
    n_inputs: int = 32,
    n_outputs: int = 32,
    n_gates: int = 500,
    n_levels: int = 12,
    seed: int = 1,
    flavor: str = "svt",
    sizes: Sequence[float] = (1.0, 2.0),
) -> Design:
    """A leveled random combinational cloud between launch/capture flops.

    Structure: input port -> launch DFF -> ``n_levels`` of random gates ->
    capture DFF -> output port, plus an ideal ``clk`` net. Gates at level
    ``l`` draw inputs from levels ``< l`` with a bias toward the
    immediately preceding level, which yields long sensitizable paths.
    """
    if n_levels < 1 or n_gates < n_levels:
        raise NetlistError("need at least one gate per level")
    rng = random.Random(seed)
    design = Design(name)
    design.add_port("clk", PortDirection.INPUT)

    # Launch flops.
    level_signals: List[List[str]] = [[]]
    for i in range(n_inputs):
        port = design.add_port(f"in{i}", PortDirection.INPUT)
        q_net = f"lq{i}"
        design.add_instance(
            f"ff_in{i}",
            _cell_name("dff", 1.0, flavor),
            {"D": port, "CK": "clk", "Q": q_net},
            location=_grid_location(0, i),
        )
        level_signals[0].append(q_net)

    # Random gate levels.
    per_level = [n_gates // n_levels] * n_levels
    for i in range(n_gates - sum(per_level)):
        per_level[i % n_levels] += 1
    gate_idx = 0
    for level in range(1, n_levels + 1):
        signals_here: List[str] = []
        for row in range(per_level[level - 1]):
            footprint, pins, _ = _pick_gate(rng)
            size = rng.choice(list(sizes))
            out_net = f"n{gate_idx}"
            conns = {pins_name: _pick_source(rng, level_signals, level)
                     for pins_name in pins}
            conns[_output_pin(footprint)] = out_net
            design.add_instance(
                f"g{gate_idx}",
                _cell_name(footprint, size, flavor),
                conns,
                location=_grid_location(level, row),
            )
            signals_here.append(out_net)
            gate_idx += 1
        level_signals.append(signals_here)

    # Capture flops on signals from the top levels.
    candidates = [s for lvl in level_signals[max(1, n_levels - 2):] for s in lvl]
    rng.shuffle(candidates)
    for i in range(n_outputs):
        src = candidates[i % len(candidates)]
        port = design.add_port(f"out{i}", PortDirection.OUTPUT)
        q_net = f"cq{i}"
        design.add_instance(
            f"ff_out{i}",
            _cell_name("dff", 1.0, flavor),
            {"D": src, "CK": "clk", "Q": q_net},
            location=_grid_location(n_levels + 1, i),
        )
        design.add_instance(
            f"obuf{i}",
            _cell_name("buf", 2.0, flavor),
            {"A": q_net, "Z": port},
            location=_grid_location(n_levels + 2, i),
        )
    return design


def _pick_gate(rng: random.Random):
    r = rng.random()
    acc = 0.0
    for footprint, pins, weight in _GATE_MENU:
        acc += weight
        if r <= acc:
            return footprint, pins, weight
    return _GATE_MENU[-1]


def _output_pin(footprint: str) -> str:
    return "Z" if footprint == "buf" else "ZN"


def _pick_source(rng: random.Random, level_signals: List[List[str]],
                 level: int) -> str:
    # 70% previous level, 30% any earlier level: long paths plus shortcuts.
    if level > 1 and rng.random() > 0.7:
        src_level = rng.randrange(0, level - 1)
    else:
        src_level = level - 1
    pool = level_signals[src_level]
    if not pool:  # fall back to the nearest non-empty level
        for lvl in range(level - 1, -1, -1):
            if level_signals[lvl]:
                pool = level_signals[lvl]
                break
    return rng.choice(pool)


def c5315_like(seed: int = 5315, scale: float = 1.0) -> Design:
    """A c5315-profile circuit: ~2300 gates, 178 inputs, 123 outputs."""
    return random_logic(
        name="c5315_like",
        n_inputs=max(4, int(178 * scale)),
        n_outputs=max(4, int(123 * scale)),
        n_gates=max(40, int(2307 * scale)),
        n_levels=max(4, int(26 * min(1.0, scale * 2))),
        seed=seed,
    )


def c7552_like(seed: int = 7552, scale: float = 1.0) -> Design:
    """A c7552-profile circuit: ~3500 gates, 207 inputs, 108 outputs."""
    return random_logic(
        name="c7552_like",
        n_inputs=max(4, int(207 * scale)),
        n_outputs=max(4, int(108 * scale)),
        n_gates=max(40, int(3512 * scale)),
        n_levels=max(4, int(22 * min(1.0, scale * 2))),
        seed=seed,
    )


# ---------------------------------------------------------------------- #
# structured generators


def _add_nand2(design: Design, name: str, a: str, b: str, out: str,
               location, flavor: str = "svt", size: float = 1.0) -> str:
    design.add_instance(
        name, _cell_name("nand2", size, flavor),
        {"A": a, "B": b, "ZN": out}, location=location,
    )
    return out


def add_full_adder(
    design: Design,
    prefix: str,
    a: str,
    b: str,
    cin: str,
    location: Tuple[float, float],
    flavor: str = "svt",
) -> Tuple[str, str]:
    """A nine-NAND full adder. Returns (sum_net, carry_net)."""
    col, row = location
    loc = lambda k: (col + (k % 3) * 1.5, row + (k // 3) * ROW_PITCH)
    x1 = _add_nand2(design, f"{prefix}_x1", a, b, f"{prefix}_x1z", loc(0), flavor)
    s1 = _add_nand2(design, f"{prefix}_s1", a, x1, f"{prefix}_s1z", loc(1), flavor)
    s2 = _add_nand2(design, f"{prefix}_s2", b, x1, f"{prefix}_s2z", loc(2), flavor)
    p = _add_nand2(design, f"{prefix}_p", s1, s2, f"{prefix}_pz", loc(3), flavor)
    x2 = _add_nand2(design, f"{prefix}_x2", p, cin, f"{prefix}_x2z", loc(4), flavor)
    s3 = _add_nand2(design, f"{prefix}_s3", p, x2, f"{prefix}_s3z", loc(5), flavor)
    s4 = _add_nand2(design, f"{prefix}_s4", cin, x2, f"{prefix}_s4z", loc(6), flavor)
    sum_net = _add_nand2(
        design, f"{prefix}_sum", s3, s4, f"{prefix}_sumz", loc(7), flavor
    )
    cout = _add_nand2(
        design, f"{prefix}_cout", x1, x2, f"{prefix}_coutz", loc(8), flavor
    )
    return sum_net, cout


def ripple_adder_design(
    name: str = "adder",
    bits: int = 12,
    lanes: int = 1,
    flavor: str = "svt",
) -> Design:
    """Registered ripple-carry adder lanes (deep carry-chain paths)."""
    design = Design(name)
    design.add_port("clk", PortDirection.INPUT)
    for lane in range(lanes):
        base_row = lane * (bits + 2) * 3
        a_bits, b_bits = [], []
        for i in range(bits):
            for sig, store in (("a", a_bits), ("b", b_bits)):
                port = design.add_port(f"{sig}{lane}_{i}", PortDirection.INPUT)
                q = f"{sig}q{lane}_{i}"
                design.add_instance(
                    f"ff_{sig}{lane}_{i}",
                    _cell_name("dff", 1.0, flavor),
                    {"D": port, "CK": "clk", "Q": q},
                    location=_grid_location(0, base_row + i * 3),
                )
                store.append(q)
        # Constant carry-in: an input port register (kept simple).
        cin_port = design.add_port(f"cin{lane}", PortDirection.INPUT)
        carry = f"cinq{lane}"
        design.add_instance(
            f"ff_cin{lane}",
            _cell_name("dff", 1.0, flavor),
            {"D": cin_port, "CK": "clk", "Q": carry},
            location=_grid_location(0, base_row + bits * 3),
        )
        for i in range(bits):
            sum_net, carry = add_full_adder(
                design,
                f"fa{lane}_{i}",
                a_bits[i],
                b_bits[i],
                carry,
                ((i + 1) * COL_PITCH, float(base_row + i * 3) * ROW_PITCH),
                flavor=flavor,
            )
            out_port = design.add_port(f"s{lane}_{i}", PortDirection.OUTPUT)
            design.add_instance(
                f"ff_s{lane}_{i}",
                _cell_name("dff", 1.0, flavor),
                {"D": sum_net, "CK": "clk", "Q": out_port},
                location=_grid_location(bits + 2, base_row + i * 3),
            )
    return design


def aes_like(
    name: str = "aes_like",
    n_sboxes: int = 16,
    sbox_gates: int = 60,
    seed: int = 2001,
    flavor: str = "svt",
) -> Design:
    """AES-round-profile circuit: parallel S-box clouds plus mixing.

    Each byte slice is a deep random cloud (the S-box), followed by a
    NAND-tree mixing layer across neighbouring slices (MixColumns-ish),
    registered on both sides.
    """
    rng = random.Random(seed)
    design = Design(name)
    design.add_port("clk", PortDirection.INPUT)

    slice_outputs: List[str] = []
    for s in range(n_sboxes):
        base_row = s * 10
        # Input register byte (8 bits).
        byte_nets = []
        for b in range(8):
            port = design.add_port(f"in_{s}_{b}", PortDirection.INPUT)
            q = f"sq{s}_{b}"
            design.add_instance(
                f"ff_in{s}_{b}",
                _cell_name("dff", 1.0, flavor),
                {"D": port, "CK": "clk", "Q": q},
                location=_grid_location(0, base_row + b),
            )
            byte_nets.append(q)
        # S-box: a deep random cloud over the byte.
        signals = list(byte_nets)
        for g in range(sbox_gates):
            footprint, pins, _ = _pick_gate(rng)
            out_net = f"sb{s}_n{g}"
            conns = {p: rng.choice(signals[-10:]) for p in pins}
            conns[_output_pin(footprint)] = out_net
            design.add_instance(
                f"sb{s}_g{g}",
                _cell_name(footprint, 1.0, flavor),
                conns,
                location=_grid_location(1 + g // 8, base_row + g % 8),
            )
            signals.append(out_net)
        slice_outputs.append(signals[-1])

    # Mixing layer: NAND trees across slices, then capture registers.
    mix_col = 2 + sbox_gates // 8
    for s in range(n_sboxes):
        a = slice_outputs[s]
        b = slice_outputs[(s + 1) % n_sboxes]
        c = slice_outputs[(s + 5) % n_sboxes]
        m1 = _add_nand2(design, f"mix{s}_1", a, b, f"mix{s}_1z",
                        _grid_location(mix_col, s * 2), flavor)
        m2 = _add_nand2(design, f"mix{s}_2", m1, c, f"mix{s}_2z",
                        _grid_location(mix_col + 1, s * 2), flavor)
        port = design.add_port(f"out_{s}", PortDirection.OUTPUT)
        design.add_instance(
            f"ff_out{s}",
            _cell_name("dff", 1.0, flavor),
            {"D": m2, "CK": "clk", "Q": port},
            location=_grid_location(mix_col + 2, s * 2),
        )
    return design


def mpeg2_like(
    name: str = "mpeg2_like",
    lanes: int = 4,
    bits: int = 10,
    control_gates: int = 300,
    seed: int = 1994,
    flavor: str = "svt",
) -> Design:
    """MPEG2-datapath-profile circuit: adder lanes plus a control cloud.

    The carry chains give very deep, wire-light critical paths; the
    control cloud gives shallow, high-fanout paths — the bimodal profile
    typical of video datapaths.
    """
    design = ripple_adder_design(name, bits=bits, lanes=lanes, flavor=flavor)
    rng = random.Random(seed)
    # Control cloud appended beside the datapath.
    ctl = random_logic(
        name="ctl",
        n_inputs=16,
        n_outputs=8,
        n_gates=control_gates,
        n_levels=8,
        seed=seed + 1,
        flavor=flavor,
    )
    _merge(design, ctl, prefix="ctl", col_offset=bits + 5,
           row_offset=lanes * (bits + 2) * 3 + 4)
    return design


def tiny_design(flavor: str = "svt") -> Design:
    """A deterministic five-gate design for unit tests.

    clk, in0, in1 -> launch flops -> NAND2 -> INV -> capture flop -> out.
    """
    design = Design("tiny")
    design.add_port("clk", PortDirection.INPUT)
    design.add_port("in0", PortDirection.INPUT)
    design.add_port("in1", PortDirection.INPUT)
    design.add_port("out", PortDirection.OUTPUT)
    design.add_instance(
        "ff0", _cell_name("dff", 1.0, flavor),
        {"D": "in0", "CK": "clk", "Q": "q0"}, location=(0.0, 0.0),
    )
    design.add_instance(
        "ff1", _cell_name("dff", 1.0, flavor),
        {"D": "in1", "CK": "clk", "Q": "q1"}, location=(0.0, 2.8),
    )
    design.add_instance(
        "u1", _cell_name("nand2", 1.0, flavor),
        {"A": "q0", "B": "q1", "ZN": "n1"}, location=(6.0, 1.4),
    )
    design.add_instance(
        "u2", _cell_name("inv", 1.0, flavor),
        {"A": "n1", "ZN": "n2"}, location=(12.0, 1.4),
    )
    design.add_instance(
        "ff2", _cell_name("dff", 1.0, flavor),
        {"D": "n2", "CK": "clk", "Q": "out"}, location=(18.0, 1.4),
    )
    return design


def hierarchical_soc(
    name: str = "soc",
    n_blocks: int = 3,
    block_gates: int = 96,
    seed: int = 1,
    with_feedthrough: bool = True,
    flavor: str = "svt",
):
    """A hierarchical SoC: AES/MPEG2/random-logic-like blocks stitched
    under a top with inter-block nets.

    Every block is anchored (see
    :func:`repro.netlist.hierarchy.with_boundary_anchors`) so its ETM is
    fully tabulated; blocks are chained in a ring with ``rng``-chosen
    port pairs, and one channel optionally routes through a pure
    feedthrough block. Returns a
    :class:`repro.netlist.hierarchy.HierarchicalDesign`.
    """
    from repro.netlist.hierarchy import (
        HierarchicalDesign,
        feedthrough_block,
        with_boundary_anchors,
    )

    if n_blocks < 2:
        raise NetlistError("a hierarchical SoC needs at least 2 blocks")
    rng = random.Random(seed)
    hier = HierarchicalDesign(name)
    names: List[str] = []
    for i in range(n_blocks):
        kind = i % 3
        if kind == 0:
            block = random_logic(
                name=f"rl{i}", n_inputs=4, n_outputs=4,
                n_gates=max(20, block_gates), n_levels=5,
                seed=seed * 31 + i, flavor=flavor,
            )
        elif kind == 1:
            block = aes_like(
                name=f"aes{i}", n_sboxes=2,
                sbox_gates=max(12, block_gates // 4),
                seed=seed * 17 + i, flavor=flavor,
            )
        else:
            block = ripple_adder_design(
                name=f"add{i}", bits=4, lanes=1, flavor=flavor,
            )
        with_boundary_anchors(block, flavor=flavor)
        bname = f"b{i}"
        hier.add_block(
            bname, block,
            origin=(40.0 + i * 160.0, 20.0 + (i % 2) * 90.0),
        )
        names.append(bname)
    if with_feedthrough:
        ft = feedthrough_block(name=f"ft{seed}", channels=2, flavor=flavor)
        hier.add_block("ft", ft, origin=(80.0 + n_blocks * 80.0, 140.0))

    for i in range(n_blocks):
        src, dst = names[i], names[(i + 1) % n_blocks]
        for _ in range(2):
            outs = hier.free_outputs(src)
            ins = hier.free_inputs(dst)
            if not outs or not ins:
                break
            hier.connect(src, rng.choice(outs), dst, rng.choice(ins))
    if with_feedthrough:
        # Route one channel of the first link through the feedthrough.
        outs = hier.free_outputs(names[0])
        ins = hier.free_inputs(names[1])
        if outs and ins:
            hier.connect(names[0], rng.choice(outs), "ft", "ft_in0")
            hier.connect("ft", "ft_out0", names[1], rng.choice(ins))
    return hier


def _merge(target: Design, source: Design, prefix: str,
           col_offset: float, row_offset: float) -> None:
    """Merge ``source`` into ``target`` with renamed objects; the source's
    clk joins the target's clk, other ports become target ports."""
    net_map: Dict[str, str] = {"clk": "clk"}
    for port, direction in source.ports.items():
        if port == "clk":
            continue
        new_port = f"{prefix}_{port}"
        net_map[port] = new_port
        target.add_port(new_port, direction)
    for net_name in source.nets:
        if net_name not in net_map:
            net_map[net_name] = f"{prefix}_{net_name}"
    for inst in source.instances.values():
        loc = inst.location
        if loc is not None:
            loc = (loc[0] + col_offset * COL_PITCH, loc[1] + row_offset * ROW_PITCH)
        target.add_instance(
            f"{prefix}_{inst.name}",
            inst.cell_name,
            {pin: net_map[net] for pin, net in inst.connections.items()},
            location=loc,
        )
