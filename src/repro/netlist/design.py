"""The gate-level netlist data model.

A :class:`Design` is a flat netlist of cell :class:`Instance` objects
connected by :class:`Net` objects, with top-level ports. Cell references
are *names* resolved against a :class:`repro.liberty.library.Library` at
analysis time, so one netlist can be timed against many MCMM libraries.

Instances carry optional placement locations (um) used by parasitic
synthesis and by distance-aware AOCV derating.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import NetlistError
from repro.liberty.cell import PinDirection
from repro.liberty.library import Library


class PortDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"


@dataclass(frozen=True)
class PinRef:
    """A reference to an instance pin, or to a top-level port.

    Ports are modeled as pins of the pseudo-instance ``""`` so that net
    drivers/loads are uniform.
    """

    instance: str
    pin: str

    @property
    def is_port(self) -> bool:
        return self.instance == ""

    def __str__(self) -> str:
        return self.pin if self.is_port else f"{self.instance}/{self.pin}"


@dataclass
class Instance:
    """One placed cell instance."""

    name: str
    cell_name: str
    connections: Dict[str, str] = field(default_factory=dict)  # pin -> net
    location: Optional[Tuple[float, float]] = None  # (x, y) um
    dont_touch: bool = False

    def net_of(self, pin: str) -> str:
        try:
            return self.connections[pin]
        except KeyError:
            raise NetlistError(
                f"instance {self.name} has no connection on pin {pin!r}"
            ) from None


@dataclass
class Net:
    """One net: a single driver pin and its load pins."""

    name: str
    driver: Optional[PinRef] = None
    loads: List[PinRef] = field(default_factory=list)
    ndr: bool = False  # non-default routing rule (wider/spaced wires)
    extra_cap: float = 0.0  # fF added by optimization bookkeeping

    @property
    def fanout(self) -> int:
        return len(self.loads)

    def pins(self) -> List[PinRef]:
        refs = list(self.loads)
        if self.driver is not None:
            refs.insert(0, self.driver)
        return refs


class Design:
    """A flat gate-level design."""

    def __init__(self, name: str):
        self.name = name
        self.instances: Dict[str, Instance] = {}
        self.nets: Dict[str, Net] = {}
        self.ports: Dict[str, PortDirection] = {}
        self._uid = 0

    # ------------------------------------------------------------------ #
    # construction

    def add_port(self, name: str, direction: PortDirection) -> str:
        if name in self.ports:
            raise NetlistError(f"duplicate port {name!r}")
        self.ports[name] = direction
        net = self.net(name)  # a port implies a same-named net
        ref = PinRef("", name)
        if direction is PortDirection.INPUT:
            if net.driver is not None:
                raise NetlistError(f"net {name!r} already has a driver")
            net.driver = ref
        else:
            net.loads.append(ref)
        return name

    def net(self, name: str) -> Net:
        """Get or create a net."""
        if name not in self.nets:
            self.nets[name] = Net(name)
        return self.nets[name]

    def add_instance(
        self,
        name: str,
        cell_name: str,
        connections: Dict[str, str],
        location: Optional[Tuple[float, float]] = None,
    ) -> Instance:
        """Add an instance; ``connections`` maps pin names to net names.

        Net driver/load roles are resolved later in :meth:`bind`, because
        pin directions live in the library.
        """
        if name in self.instances:
            raise NetlistError(f"duplicate instance {name!r}")
        inst = Instance(name=name, cell_name=cell_name,
                        connections=dict(connections), location=location)
        self.instances[name] = inst
        for net_name in connections.values():
            self.net(net_name)
        return inst

    def bind(self, library: Library) -> None:
        """Resolve pin directions against a library and build net
        driver/load lists. Must be called after construction and after any
        structural edit (transforms call it for you)."""
        for net in self.nets.values():
            port_driver = net.driver if net.driver and net.driver.is_port else None
            port_loads = [l for l in net.loads if l.is_port]
            net.driver = port_driver
            net.loads = port_loads
        for inst in self.instances.values():
            cell = library.cell(inst.cell_name)
            for pin_name, net_name in inst.connections.items():
                pin = cell.pin(pin_name)
                net = self.net(net_name)
                ref = PinRef(inst.name, pin_name)
                if pin.direction is PinDirection.OUTPUT:
                    if net.driver is not None and net.driver != ref:
                        raise NetlistError(
                            f"net {net_name!r} has multiple drivers: "
                            f"{net.driver} and {ref}"
                        )
                    net.driver = ref
                else:
                    net.loads.append(ref)

    def validate(self, library: Library) -> None:
        """Check structural sanity: every net driven, every pin connected."""
        for inst in self.instances.values():
            cell = library.cell(inst.cell_name)
            for pin in cell.pins.values():
                if pin.name not in inst.connections:
                    raise NetlistError(
                        f"instance {inst.name} leaves pin {pin.name} unconnected"
                    )
        for net in self.nets.values():
            if net.driver is None and net.loads:
                raise NetlistError(f"net {net.name!r} has loads but no driver")

    # ------------------------------------------------------------------ #
    # queries

    def instance(self, name: str) -> Instance:
        try:
            return self.instances[name]
        except KeyError:
            raise NetlistError(f"no instance {name!r} in design {self.name}") from None

    def get_net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError(f"no net {name!r} in design {self.name}") from None

    def input_ports(self) -> List[str]:
        return [p for p, d in self.ports.items() if d is PortDirection.INPUT]

    def output_ports(self) -> List[str]:
        return [p for p, d in self.ports.items() if d is PortDirection.OUTPUT]

    def sequential_instances(self, library: Library) -> List[Instance]:
        return [
            inst
            for inst in self.instances.values()
            if library.cell(inst.cell_name).is_sequential
        ]

    def combinational_instances(self, library: Library) -> List[Instance]:
        return [
            inst
            for inst in self.instances.values()
            if not library.cell(inst.cell_name).is_sequential
        ]

    def total_area(self, library: Library) -> float:
        return sum(library.cell(i.cell_name).area for i in self.instances.values())

    def total_leakage(self, library: Library) -> float:
        return sum(
            library.cell(i.cell_name).leakage for i in self.instances.values()
        )

    def net_hpwl(self, net_name: str) -> float:
        """Half-perimeter wirelength of a net from instance locations, um.

        Unplaced pins are skipped; a net with fewer than two located pins
        has zero HPWL.
        """
        net = self.get_net(net_name)
        xs, ys = [], []
        for ref in net.pins():
            if ref.is_port:
                continue
            loc = self.instance(ref.instance).location
            if loc is not None:
                xs.append(loc[0])
                ys.append(loc[1])
        if len(xs) < 2:
            return 0.0
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    def unique_name(self, prefix: str) -> str:
        """A fresh instance/net name with the given prefix."""
        while True:
            self._uid += 1
            candidate = f"{prefix}_{self._uid}"
            if candidate not in self.instances and candidate not in self.nets:
                return candidate

    def stats(self) -> Dict[str, int]:
        return {
            "instances": len(self.instances),
            "nets": len(self.nets),
            "ports": len(self.ports),
        }

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"Design({self.name!r}, {s['instances']} instances, "
            f"{s['nets']} nets, {s['ports']} ports)"
        )
