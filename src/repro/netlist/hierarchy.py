"""Hierarchical SoC construction: blocks stitched under a top level.

The paper's §4 closure lever "flat vs ETM-based/hierarchical analysis"
needs designs that actually *have* a hierarchy. This module provides:

- :func:`with_boundary_anchors` — rewrites a flat block so every data
  port meets the *anchored interface* discipline the ETM tabulator
  (:mod:`repro.sta.etm`) requires: each input port drives exactly one
  combinational anchor buffer placed at the block origin, and each
  output port is driven by one;
- :func:`feedthrough_block` — a block with pure input->output
  combinational channels plus a registered path (the ETM feedthrough
  test subject);
- :class:`HierarchicalDesign` — named block instances with origins and
  inter-block links, flattened to a plain :class:`Design` for reference
  flat analysis or abstracted to a stub-cell design by
  :mod:`repro.sta.hier`.

Flattening gives every block instance its own top-level clock port
``clk_<inst>`` and prefixes all nets/instances uniformly, which keeps
each internal net's parasitic tree (sink sort order, HPWL) identical to
the standalone block — the property that makes ETM-vs-flat agreement
exact rather than approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import NetlistError
from repro.netlist.design import Design, PortDirection
from repro.netlist.generators import ROW_PITCH, _cell_name
from repro.sta.constraints import ClockSpec, Constraints


def with_boundary_anchors(
    design: Design,
    clock_ports: Tuple[str, ...] = ("clk",),
    flavor: str = "svt",
    size: float = 2.0,
) -> Design:
    """Splice anchor buffers onto every data port, in place.

    Input port nets are rerouted through an ``abuf_<port>`` at the block
    origin; output port nets through an ``obuf_<port>``. Anchors at the
    origin make the block's boundary geometry independent of its
    internals, so a stub cell placed at the same origin sees identical
    boundary nets.
    """
    clock_set = set(clock_ports)
    for port, direction in list(design.ports.items()):
        if port in clock_set:
            continue
        internal = f"{port}__a"
        if internal in design.nets:
            raise NetlistError(f"net {internal!r} already exists")
        moved = False
        for inst in design.instances.values():
            for pin, net in list(inst.connections.items()):
                if net == port:
                    inst.connections[pin] = internal
                    moved = True
        if not moved:
            continue
        if direction is PortDirection.INPUT:
            design.add_instance(
                f"abuf_{port}", _cell_name("buf", size, flavor),
                {"A": port, "Z": internal}, location=(0.0, 0.0),
            )
        else:
            design.add_instance(
                f"obuf_{port}", _cell_name("buf", size, flavor),
                {"A": internal, "Z": port}, location=(0.0, 0.0),
            )
    return design


def feedthrough_block(
    name: str = "feedthru",
    channels: int = 2,
    flavor: str = "svt",
) -> Design:
    """A block with pure combinational feedthroughs plus one registered
    path (so it still owns internal setup/hold checks)."""
    design = Design(name)
    design.add_port("clk", PortDirection.INPUT)
    for i in range(channels):
        p = design.add_port(f"ft_in{i}", PortDirection.INPUT)
        q = design.add_port(f"ft_out{i}", PortDirection.OUTPUT)
        design.add_instance(
            f"ftbuf{i}", _cell_name("buf", 2.0, flavor),
            {"A": p, "Z": q}, location=(0.0, 0.0),
        )
    d_in = design.add_port("d_in", PortDirection.INPUT)
    design.add_port("d_out", PortDirection.OUTPUT)
    design.add_instance(
        "abuf_d", _cell_name("buf", 2.0, flavor),
        {"A": d_in, "Z": "d__a"}, location=(0.0, 0.0),
    )
    design.add_instance(
        "ffd", _cell_name("dff", 1.0, flavor),
        {"D": "d__a", "CK": "clk", "Q": "rq"},
        location=(6.0, 2 * ROW_PITCH),
    )
    design.add_instance(
        "obuf_d", _cell_name("buf", 2.0, flavor),
        {"A": "rq", "Z": "d_out"}, location=(0.0, 0.0),
    )
    return design


@dataclass
class BlockInstance:
    """One placed block under the top level."""

    name: str
    design: Design
    origin: Tuple[float, float] = (0.0, 0.0)
    clock_port: str = "clk"


@dataclass
class Link:
    """One inter-block boundary net (src output -> dst input)."""

    src_block: str
    src_port: str
    dst_block: str
    dst_port: str


class HierarchicalDesign:
    """Named block instances, origins and inter-block links."""

    def __init__(self, name: str = "soc"):
        self.name = name
        self.blocks: Dict[str, BlockInstance] = {}
        self.links: List[Link] = []

    # ------------------------------------------------------------------ #
    # construction

    def add_block(
        self,
        name: str,
        design: Design,
        origin: Tuple[float, float] = (0.0, 0.0),
        clock_port: str = "clk",
    ) -> BlockInstance:
        if name in self.blocks:
            raise NetlistError(f"duplicate block instance {name!r}")
        if not name or "/" in name:
            raise NetlistError(f"bad block instance name {name!r}")
        if clock_port not in design.ports:
            raise NetlistError(
                f"block {design.name!r} has no clock port {clock_port!r}"
            )
        block = BlockInstance(name=name, design=design, origin=origin,
                              clock_port=clock_port)
        self.blocks[name] = block
        return block

    def connect(self, src_block: str, src_port: str,
                dst_block: str, dst_port: str) -> Link:
        src = self._block(src_block)
        dst = self._block(dst_block)
        if src.design.ports.get(src_port) is not PortDirection.OUTPUT:
            raise NetlistError(
                f"{src_block}.{src_port} is not an output port"
            )
        if dst.design.ports.get(dst_port) is not PortDirection.INPUT:
            raise NetlistError(
                f"{dst_block}.{dst_port} is not an input port"
            )
        if dst_port == dst.clock_port:
            raise NetlistError("cannot link into a clock port")
        for link in self.links:
            if link.dst_block == dst_block and link.dst_port == dst_port:
                raise NetlistError(
                    f"{dst_block}.{dst_port} is already driven"
                )
        link = Link(src_block, src_port, dst_block, dst_port)
        self.links.append(link)
        return link

    def _block(self, name: str) -> BlockInstance:
        try:
            return self.blocks[name]
        except KeyError:
            raise NetlistError(f"unknown block instance {name!r}") from None

    def free_outputs(self, block: str) -> List[str]:
        b = self._block(block)
        used = {(l.src_block, l.src_port) for l in self.links}
        return [p for p in b.design.output_ports()
                if (block, p) not in used]

    def free_inputs(self, block: str) -> List[str]:
        b = self._block(block)
        used = {(l.dst_block, l.dst_port) for l in self.links}
        return [p for p in b.design.input_ports()
                if p != b.clock_port and (block, p) not in used]

    # ------------------------------------------------------------------ #
    # derived views

    def clock_name(self, block: str) -> str:
        self._block(block)
        return f"clk_{block}"

    def boundary_nets(self) -> Dict[Tuple[str, str], str]:
        """(block, port) -> top-level net name, for every data port.

        Linked ports share the source's prefixed net; unlinked ports map
        to a same-named top-level port/net. Shared by :meth:`flatten`
        and the stub-design builder so both views wire identically.
        """
        net_of: Dict[Tuple[str, str], str] = {}
        for link in self.links:
            net = f"{link.src_block}_{link.src_port}"
            net_of[(link.src_block, link.src_port)] = net
            net_of[(link.dst_block, link.dst_port)] = net
        for name, block in self.blocks.items():
            for port in block.design.ports:
                if port == block.clock_port:
                    continue
                net_of.setdefault((name, port), f"{name}_{port}")
        return net_of

    def top_ports(self) -> List[Tuple[str, PortDirection]]:
        """Top-level data ports: every unlinked block port, prefixed."""
        linked = {(l.src_block, l.src_port) for l in self.links}
        linked |= {(l.dst_block, l.dst_port) for l in self.links}
        out = []
        for name, block in self.blocks.items():
            for port, direction in block.design.ports.items():
                if port == block.clock_port or (name, port) in linked:
                    continue
                out.append((f"{name}_{port}", direction))
        return out

    def flatten(self) -> Design:
        """The full flat netlist: the reference for ETM agreement."""
        top = Design(self.name)
        for name in self.blocks:
            top.add_port(f"clk_{name}", PortDirection.INPUT)
        for port, direction in self.top_ports():
            top.add_port(port, direction)
        net_of = self.boundary_nets()
        for name, block in self.blocks.items():
            design = block.design
            net_map: Dict[str, str] = {block.clock_port: f"clk_{name}"}
            for port in design.ports:
                if port == block.clock_port:
                    continue
                net_map[port] = net_of[(name, port)]
            for net_name in design.nets:
                net_map.setdefault(net_name, f"{name}_{net_name}")
            ox, oy = block.origin
            for inst in design.instances.values():
                loc = inst.location
                if loc is not None:
                    loc = (loc[0] + ox, loc[1] + oy)
                top.add_instance(
                    f"{name}_{inst.name}",
                    inst.cell_name,
                    {pin: net_map[n]
                     for pin, n in inst.connections.items()},
                    location=loc,
                )
        return top

    def top_constraints(
        self,
        period: float = 500.0,
        periods: Optional[Dict[str, float]] = None,
        uncertainty_setup: float = 10.0,
        uncertainty_hold: float = 5.0,
        source_latency: float = 0.0,
        clock_slew: float = 12.0,
        **constraint_kwargs,
    ) -> Constraints:
        """One clock per block instance (``clk_<inst>``)."""
        clocks = {}
        for name in self.blocks:
            clk = f"clk_{name}"
            clocks[clk] = ClockSpec(
                name=clk,
                period=(periods or {}).get(name, period),
                port=clk,
                uncertainty_setup=uncertainty_setup,
                uncertainty_hold=uncertainty_hold,
                source_latency=source_latency,
                slew=clock_slew,
            )
        return Constraints(clocks=clocks, **constraint_kwargs)
