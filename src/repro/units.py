"""Unit conventions and helpers used across the repro framework.

The whole library works in one consistent engineering unit system chosen so
that products of units need no scale factors:

========== ============ =========================================
Quantity   Unit         Notes
========== ============ =========================================
time       picosecond   ``kohm * fF == ps``
voltage    volt
resistance kiloohm
capacitance femtofarad
current    milliampere  ``V / kohm == mA``; ``fF * V / ps == mA``
power      milliwatt    ``V * mA == mW``
energy     femtojoule   ``mW * ps == fJ``
distance   micrometer
temperature degree C    converted to kelvin only inside device models
========== ============ =========================================

Helper constants convert *into* these canonical units, e.g. ``2 * NS`` is two
nanoseconds expressed in picoseconds.
"""

from __future__ import annotations

# --- time (canonical: ps) ---
PS = 1.0
NS = 1e3
US = 1e6
FS = 1e-3

# --- capacitance (canonical: fF) ---
FF = 1.0
PF = 1e3
AF = 1e-3

# --- resistance (canonical: kohm) ---
KOHM = 1.0
OHM = 1e-3
MEGOHM = 1e3

# --- voltage ---
V = 1.0
MV = 1e-3

# --- current (canonical: mA) ---
MA = 1.0
UA = 1e-3

# --- power (canonical: mW) ---
MW = 1.0
UW = 1e-3

# --- energy (canonical: fJ) ---
FJ = 1.0
PJ = 1e3

# --- distance (canonical: um) ---
UM = 1.0
NM = 1e-3
MM = 1e3

ZERO_CELSIUS_IN_KELVIN = 273.15


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return temp_c + ZERO_CELSIUS_IN_KELVIN


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a temperature from kelvin to degrees Celsius."""
    return temp_k - ZERO_CELSIUS_IN_KELVIN
