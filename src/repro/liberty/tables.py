"""NLDM-style 2-D lookup tables.

The non-linear delay model (NLDM) represents delay and output slew as 2-D
tables indexed by input slew and output load. Lookup uses bilinear
interpolation inside the grid and linear extrapolation outside it, matching
mainstream STA-tool behaviour.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.errors import LibraryError


class LookupTable2D:
    """A table ``values[i][j]`` indexed by ``index_1[i]`` and ``index_2[j]``.

    Conventionally ``index_1`` is input slew (ps) and ``index_2`` is output
    load (fF), but the class is agnostic — constraint tables index by data
    slew and clock slew.
    """

    def __init__(
        self,
        index_1: Sequence[float],
        index_2: Sequence[float],
        values: Sequence[Sequence[float]],
    ):
        self.index_1 = np.asarray(index_1, dtype=float)
        self.index_2 = np.asarray(index_2, dtype=float)
        self.values = np.asarray(values, dtype=float)
        if self.index_1.ndim != 1 or self.index_2.ndim != 1:
            raise LibraryError("table indices must be 1-D")
        if self.index_1.size < 2 or self.index_2.size < 2:
            raise LibraryError("table needs at least a 2x2 grid")
        if np.any(np.diff(self.index_1) <= 0) or np.any(np.diff(self.index_2) <= 0):
            raise LibraryError("table indices must be strictly increasing")
        if self.values.shape != (self.index_1.size, self.index_2.size):
            raise LibraryError(
                f"values shape {self.values.shape} does not match indices "
                f"({self.index_1.size}, {self.index_2.size})"
            )

    @classmethod
    def from_function(
        cls,
        index_1: Sequence[float],
        index_2: Sequence[float],
        fn: Callable[[float, float], float],
    ) -> "LookupTable2D":
        """Tabulate ``fn(x1, x2)`` over the grid."""
        vals = [[fn(x1, x2) for x2 in index_2] for x1 in index_1]
        return cls(index_1, index_2, vals)

    def lookup(self, x1: float, x2: float) -> float:
        """Bilinear interpolation, linear extrapolation outside the grid."""
        i = _segment(self.index_1, x1)
        j = _segment(self.index_2, x2)
        x1a, x1b = self.index_1[i], self.index_1[i + 1]
        x2a, x2b = self.index_2[j], self.index_2[j + 1]
        u = (x1 - x1a) / (x1b - x1a)
        v = (x2 - x2a) / (x2b - x2a)
        q = self.values
        return float(
            q[i, j] * (1 - u) * (1 - v)
            + q[i + 1, j] * u * (1 - v)
            + q[i, j + 1] * (1 - u) * v
            + q[i + 1, j + 1] * u * v
        )

    def scaled(self, factor: float) -> "LookupTable2D":
        """A new table with every value multiplied by ``factor``."""
        return LookupTable2D(self.index_1, self.index_2, self.values * factor)

    def shifted(self, offset: float) -> "LookupTable2D":
        """A new table with ``offset`` added to every value."""
        return LookupTable2D(self.index_1, self.index_2, self.values + offset)

    def combined(
        self, other: "LookupTable2D", fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    ) -> "LookupTable2D":
        """Elementwise combination with another same-grid table."""
        if not self.same_grid(other):
            raise LibraryError("cannot combine tables with different grids")
        return LookupTable2D(self.index_1, self.index_2, fn(self.values, other.values))

    def same_grid(self, other: "LookupTable2D") -> bool:
        """True when both tables share identical index vectors."""
        return bool(
            np.array_equal(self.index_1, other.index_1)
            and np.array_equal(self.index_2, other.index_2)
        )

    @property
    def min_value(self) -> float:
        return float(self.values.min())

    @property
    def max_value(self) -> float:
        return float(self.values.max())

    def is_monotone_nondecreasing(self) -> bool:
        """True when values never decrease along either axis (the expected
        shape for delay/slew tables)."""
        return bool(
            np.all(np.diff(self.values, axis=0) >= -1e-12)
            and np.all(np.diff(self.values, axis=1) >= -1e-12)
        )

    def __repr__(self) -> str:
        return (
            f"LookupTable2D({self.index_1.size}x{self.index_2.size}, "
            f"range [{self.min_value:.3g}, {self.max_value:.3g}])"
        )


def _segment(index: np.ndarray, x: float) -> int:
    """Index of the grid segment used for interpolation/extrapolation."""
    i = int(np.searchsorted(index, x, side="right")) - 1
    return max(0, min(i, index.size - 2))
