"""Timing arcs: delay/slew arcs, clock-to-q arcs and constraint arcs.

An arc connects a related (input) pin to an output or constrained pin.
Delay arcs carry NLDM tables per output transition direction, plus optional
LVF sigma tables (:mod:`repro.liberty.lvf`) used by variation-aware STA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import LibraryError
from repro.liberty.tables import LookupTable2D


class TimingSense(enum.Enum):
    """Unateness of a combinational arc."""

    POSITIVE_UNATE = "positive_unate"
    NEGATIVE_UNATE = "negative_unate"
    NON_UNATE = "non_unate"

    def output_directions(self, input_direction: str) -> Tuple[str, ...]:
        """Output transition directions triggered by an input transition."""
        if self is TimingSense.POSITIVE_UNATE:
            return (input_direction,)
        if self is TimingSense.NEGATIVE_UNATE:
            return ("fall",) if input_direction == "rise" else ("rise",)
        return ("rise", "fall")

    def input_direction_for(self, output_direction: str) -> Tuple[str, ...]:
        """Input transition directions that can cause an output transition."""
        if self is TimingSense.POSITIVE_UNATE:
            return (output_direction,)
        if self is TimingSense.NEGATIVE_UNATE:
            return ("fall",) if output_direction == "rise" else ("rise",)
        return ("rise", "fall")


class TimingType(enum.Enum):
    """Arc role, a compact subset of Liberty timing_type values."""

    COMBINATIONAL = "combinational"
    RISING_EDGE = "rising_edge"  # clock -> q launch arc
    SETUP_RISING = "setup_rising"
    HOLD_RISING = "hold_rising"

    @property
    def is_constraint(self) -> bool:
        return self in (TimingType.SETUP_RISING, TimingType.HOLD_RISING)

    @property
    def is_delay(self) -> bool:
        return not self.is_constraint


@dataclass
class ArcTiming:
    """Delay and output-slew tables for one output transition direction.

    ``sigma_early``/``sigma_late`` are optional LVF-style standard
    deviations of the delay at the same (slew, load) grid; late is used for
    setup (max) analysis and early for hold (min) analysis — the paper's
    Fig 7 explains why the two differ.
    """

    delay: LookupTable2D
    slew: LookupTable2D
    sigma_early: Optional[LookupTable2D] = None
    sigma_late: Optional[LookupTable2D] = None


@dataclass
class TimingArc:
    """One timing arc of a cell.

    For delay arcs, ``timing`` maps output direction ("rise"/"fall") to
    :class:`ArcTiming`. For constraint arcs (setup/hold), ``constraint``
    maps the *data* transition direction to a table of required time
    indexed by (data slew, clock slew).
    """

    related_pin: str
    pin: str
    timing_type: TimingType = TimingType.COMBINATIONAL
    sense: TimingSense = TimingSense.NEGATIVE_UNATE
    timing: Dict[str, ArcTiming] = field(default_factory=dict)
    constraint: Dict[str, LookupTable2D] = field(default_factory=dict)

    def __post_init__(self):
        if self.timing_type.is_delay and self.constraint:
            raise LibraryError("delay arcs must not carry constraint tables")
        if self.timing_type.is_constraint and self.timing:
            raise LibraryError("constraint arcs must not carry delay tables")

    # ------------------------------------------------------------------ #

    def delay_and_slew(
        self, out_direction: str, in_slew: float, load: float
    ) -> Tuple[float, float]:
        """Nominal delay and output slew for an output transition."""
        timing = self._timing_for(out_direction)
        return (
            timing.delay.lookup(in_slew, load),
            timing.slew.lookup(in_slew, load),
        )

    def sigma(
        self, out_direction: str, in_slew: float, load: float, mode: str
    ) -> Optional[float]:
        """LVF delay sigma (``mode`` is "early" or "late"), if present."""
        timing = self._timing_for(out_direction)
        table = timing.sigma_late if mode == "late" else timing.sigma_early
        if table is None:
            return None
        return table.lookup(in_slew, load)

    def constraint_value(
        self, data_direction: str, data_slew: float, clock_slew: float
    ) -> float:
        """Required setup/hold time for a data transition direction."""
        try:
            table = self.constraint[data_direction]
        except KeyError:
            raise LibraryError(
                f"arc {self.related_pin}->{self.pin} has no constraint table "
                f"for data direction {data_direction!r}"
            ) from None
        return table.lookup(data_slew, clock_slew)

    def _timing_for(self, out_direction: str) -> ArcTiming:
        try:
            return self.timing[out_direction]
        except KeyError:
            raise LibraryError(
                f"arc {self.related_pin}->{self.pin} has no timing for "
                f"output direction {out_direction!r}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"TimingArc({self.related_pin}->{self.pin}, "
            f"{self.timing_type.value}, {self.sense.value})"
        )
