"""The library container.

A :class:`Library` is a set of cells characterized at one PVT condition
(the MCMM machinery in :mod:`repro.sta.mcmm` juggles several libraries).
It provides the queries that closure optimizations need: footprint
variants for sizing, Vt variants for swapping, and buffer menus for
buffer insertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import LibraryError
from repro.liberty.cell import Cell


@dataclass
class Library:
    """A characterized cell library.

    Attributes:
        name: library name, conventionally encoding the condition
            (e.g. ``"repro16_tt_0p80v_25c"``).
        vdd: supply voltage, V.
        temp_c: temperature, C.
        process: process-corner label ("tt", "ss", "ff", "ssg", "ffg").
        default_max_transition: signoff slew limit, ps.
        cells: cells by name.
    """

    name: str
    vdd: float
    temp_c: float
    process: str = "tt"
    default_max_transition: float = 150.0
    cells: Dict[str, Cell] = field(default_factory=dict)

    def add_cell(self, cell: Cell) -> None:
        if cell.name in self.cells:
            raise LibraryError(f"duplicate cell {cell.name} in library {self.name}")
        self.cells[cell.name] = cell

    def cell(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise LibraryError(f"library {self.name} has no cell {name!r}") from None

    # ------------------------------------------------------------------ #
    # optimization menus

    def footprint_variants(self, footprint: str) -> List[Cell]:
        """All cells sharing a footprint, sorted by (size, vt_flavor)."""
        variants = [c for c in self.cells.values() if c.footprint == footprint]
        if not variants:
            raise LibraryError(f"no cells with footprint {footprint!r}")
        return sorted(variants, key=lambda c: (c.size, c.vt_flavor))

    def swap_variant(
        self,
        cell: Cell,
        vt_flavor: Optional[str] = None,
        size: Optional[float] = None,
    ) -> Optional[Cell]:
        """The footprint variant with the requested flavor/size, if any.

        Unspecified attributes keep the current cell's value. Returns None
        when the menu has no such variant (e.g. asking for a ULVT variant
        in a 3-flavor library).
        """
        want_flavor = vt_flavor if vt_flavor is not None else cell.vt_flavor
        want_size = size if size is not None else cell.size
        for candidate in self.cells.values():
            if (
                candidate.footprint == cell.footprint
                and candidate.vt_flavor == want_flavor
                and candidate.size == want_size
            ):
                return candidate
        return None

    def vt_menu(self, cell: Cell) -> List[Cell]:
        """Same footprint and size, all flavors, fastest (lowest Vt) first."""
        order = {"ulvt": 0, "lvt": 1, "svt": 2, "hvt": 3, "uhvt": 4}
        variants = [
            c
            for c in self.cells.values()
            if c.footprint == cell.footprint and c.size == cell.size
        ]
        return sorted(variants, key=lambda c: order.get(c.vt_flavor, 9))

    def size_menu(self, cell: Cell) -> List[Cell]:
        """Same footprint and flavor, all sizes, smallest first."""
        variants = [
            c
            for c in self.cells.values()
            if c.footprint == cell.footprint and c.vt_flavor == cell.vt_flavor
        ]
        return sorted(variants, key=lambda c: c.size)

    def buffers(self, vt_flavor: str = "svt") -> List[Cell]:
        """Buffer cells of one flavor, smallest first (for buffer insertion)."""
        bufs = [
            c
            for c in self.cells.values()
            if c.footprint == "buf" and c.vt_flavor == vt_flavor
        ]
        if not bufs:
            raise LibraryError(f"no {vt_flavor} buffers in library {self.name}")
        return sorted(bufs, key=lambda c: c.size)

    def sequential_cells(self) -> List[Cell]:
        return [c for c in self.cells.values() if c.is_sequential]

    def footprints(self) -> List[str]:
        return sorted({c.footprint for c in self.cells.values()})

    def __len__(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:
        return (
            f"Library({self.name!r}, {len(self.cells)} cells, "
            f"vdd={self.vdd}V, {self.temp_c}C, {self.process})"
        )
