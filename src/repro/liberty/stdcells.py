"""Analytic standard-cell library factory.

``make_library`` generates a complete multi-Vt, multi-size library at any
PVT condition in milliseconds, with NLDM delay/slew tables, setup/hold
constraint tables, LVF sigma tables, leakage and area. The delay equations
derive from the *same* alpha-power device parameters as the transistor-
level simulator (:mod:`repro.spice.devices`) — an effective switching
resistance per unit width is computed from the device on-current at the
library's voltage and temperature — so voltage scaling, process corners and
temperature inversion carry through to STA without re-running transistor
simulations. The linear-model constants (``_A``, ``_B``, ``_S``, ``_T``)
were calibrated once against :mod:`repro.spice` testbenches; the agreement
is verified by tests in ``tests/liberty/test_stdcells_vs_spice.py``.

The per-cell variation ground truth lives here too: relative delay sigma
follows first-order sensitivity of the alpha-power delay to threshold
variation, ``sigma_rel = alpha * sigma_vt / v_overdrive``, Pelgrom-scaled
by device width, with a late/early asymmetry (the setup long tail of the
paper's Fig 7). The LVF tables tabulate exactly this; POCV and AOCV models
(:mod:`repro.liberty.aocv`) are coarser projections of it, which is what
lets the Section 3.1 accuracy-ladder experiment measure their pessimism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import LibraryError
from repro.liberty.arcs import ArcTiming, TimingArc, TimingSense, TimingType
from repro.liberty.cell import Cell, Pin, PinDirection
from repro.liberty.library import Library
from repro.liberty.tables import LookupTable2D
from repro.spice.devices import MosParams, NMOS_16NM, PMOS_16NM, vt_flavor_params

# Calibrated against repro.spice testbenches (see module docstring).
_A = 1.40  # delay per R*C
_B = 0.25  # delay per input slew
_S = 1.20  # output slew per R*C
_T = 0.15  # output slew per input slew
_BETA = 1.8  # PMOS/NMOS width ratio (mirrors repro.spice.gates)
_CG = 1.0  # gate cap per unit width, fF (mirrors MosParams defaults)
_CD = 0.5  # junction cap per unit width, fF

#: Stack calibration: series stacks are a bit faster than the naive
#: R*stack/width estimate (the internal node is pre-discharged).
_STACK_CAL = {1: 1.0, 2: 0.81, 3: 0.74}

_LEAK_I0 = 5e-3  # subthreshold leakage prefactor, mA per unit width

SLEW_GRID = (2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0)
LOAD_GRID = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

@dataclass(frozen=True)
class CornerShifts:
    """Per-polarity global corner shifts: (vt offset V, k multiplier)."""

    nmos_vt: float = 0.0
    nmos_k: float = 1.0
    pmos_vt: float = 0.0
    pmos_k: float = 1.0

    @classmethod
    def symmetric(cls, vt: float, k: float) -> "CornerShifts":
        return cls(nmos_vt=vt, nmos_k=k, pmos_vt=vt, pmos_k=k)


#: Global (die-to-die) process-corner shifts applied to every device.
#: SSG/FFG are the "global only" corners of the paper's footnote 2 —
#: tighter than SS/FF because on-die mismatch is left to AOCV/POCV/LVF
#: instead of being lumped in. FSG/SFG are the *cross-corners* (fast
#: NMOS / slow PMOS and vice versa) that the paper notes are
#: "increasingly required... e.g., for signoff of clock distribution":
#: they skew rise-vs-fall delays and hence clock duty cycle.
PROCESS_CORNERS: Dict[str, CornerShifts] = {
    "tt": CornerShifts.symmetric(0.0, 1.0),
    "ss": CornerShifts.symmetric(+0.030, 0.92),
    "ff": CornerShifts.symmetric(-0.030, 1.08),
    "ssg": CornerShifts.symmetric(+0.020, 0.95),
    "ffg": CornerShifts.symmetric(-0.020, 1.05),
    "fsg": CornerShifts(nmos_vt=-0.020, nmos_k=1.05,
                        pmos_vt=+0.020, pmos_k=0.95),
    "sfg": CornerShifts(nmos_vt=+0.020, nmos_k=0.95,
                        pmos_vt=-0.020, pmos_k=1.05),
}

#: Local mismatch sigma used as the variation ground truth (volts, for a
#: unit-width device; Pelgrom scaling divides by sqrt(width)).
SIGMA_VT_LOCAL = 0.020
#: Late/early asymmetry of the delay distribution (Fig 7's setup long
#: tail): the +3sigma side is fatter than the -3sigma side.
LATE_SKEW = 1.30
EARLY_SKEW = 0.80


@dataclass(frozen=True)
class LibraryCondition:
    """One PVT(+aging) characterization condition."""

    vdd: float = 0.8
    temp_c: float = 25.0
    process: str = "tt"
    vt_shift_aging: float = 0.0  # BTI-induced threshold shift, volts

    def label(self) -> str:
        mv = int(round(self.vdd * 1000))
        t = f"m{abs(int(self.temp_c))}" if self.temp_c < 0 else f"{int(self.temp_c)}"
        suffix = f"_aged{int(round(self.vt_shift_aging * 1000))}mv" \
            if self.vt_shift_aging else ""
        return f"repro16_{self.process}_{mv}mv_{t}c{suffix}"


@dataclass(frozen=True)
class _Archetype:
    """Topology description of one combinational cell family."""

    footprint: str
    inputs: Tuple[str, ...]
    output: str
    stack_n: int
    stack_p: int
    wn: float  # NMOS width per unit size (already stack-upsized)
    wp: float  # PMOS width per unit size
    base_area: float
    function: str
    sense: TimingSense = TimingSense.NEGATIVE_UNATE


_ARCHETYPES: Dict[str, _Archetype] = {
    "inv": _Archetype("inv", ("A",), "ZN", 1, 1, 1.0, _BETA, 1.0, "!A"),
    "nand2": _Archetype("nand2", ("A", "B"), "ZN", 2, 1, 2.0, _BETA, 1.5,
                        "!(A & B)"),
    "nand3": _Archetype("nand3", ("A", "B", "C"), "ZN", 3, 1, 3.0, _BETA, 2.0,
                        "!(A & B & C)"),
    "nor2": _Archetype("nor2", ("A", "B"), "ZN", 1, 2, 1.0, 2 * _BETA, 1.5,
                       "!(A | B)"),
    "nor3": _Archetype("nor3", ("A", "B", "C"), "ZN", 1, 3, 1.0, 3 * _BETA, 2.0,
                       "!(A | B | C)"),
    "aoi21": _Archetype("aoi21", ("A1", "A2", "B"), "ZN", 2, 2, 2.0, 2 * _BETA,
                        2.0, "!((A1 & A2) | B)"),
    "oai21": _Archetype("oai21", ("A1", "A2", "B"), "ZN", 2, 2, 2.0, 2 * _BETA,
                        2.0, "!((A1 | A2) & B)"),
}

_COMB_SIZES: Dict[str, Tuple[float, ...]] = {
    "inv": (0.5, 1.0, 2.0, 4.0, 8.0),
    "nand2": (1.0, 2.0, 4.0),
    "nand3": (1.0, 2.0, 4.0),
    "nor2": (1.0, 2.0, 4.0),
    "nor3": (1.0, 2.0, 4.0),
    "aoi21": (1.0, 2.0, 4.0),
    "oai21": (1.0, 2.0, 4.0),
}
_BUF_SIZES = (1.0, 2.0, 4.0, 8.0)
_DFF_SIZES = (1.0, 2.0)
DEFAULT_FLAVORS = ("lvt", "svt", "hvt")


# ---------------------------------------------------------------------- #
# physics helpers


def _overdrive(params: MosParams, vdd: float, temp_c: float, vt_shift: float) -> float:
    """Smoothed gate overdrive at vgs = vdd, volts."""
    n_phi_t = params.subthreshold_n * params.phi_t_at(temp_c)
    x = (vdd - params.vt_at(temp_c, vt_shift)) / n_phi_t
    if x > 35.0:
        return n_phi_t * x
    return n_phi_t * math.log1p(math.exp(max(x, -35.0)))


def _unit_resistance(
    params: MosParams, vdd: float, temp_c: float, vt_shift: float, k_scale: float
) -> float:
    """Effective switching resistance of a unit-width device, kohm."""
    ov = _overdrive(params, vdd, temp_c, vt_shift)
    i_on = params.k_at(temp_c, k_scale) * ov**params.alpha
    return vdd / (2.0 * i_on)


def _device_params(
    flavor: str, cond: LibraryCondition
) -> Tuple[MosParams, MosParams, CornerShifts]:
    """(nmos params, pmos params, per-polarity shifts incl aging)."""
    try:
        shifts = PROCESS_CORNERS[cond.process]
    except KeyError:
        raise LibraryError(
            f"unknown process corner {cond.process!r}; "
            f"expected one of {sorted(PROCESS_CORNERS)}"
        ) from None
    nmos = vt_flavor_params(NMOS_16NM, flavor)
    pmos = vt_flavor_params(PMOS_16NM, flavor)
    if cond.vt_shift_aging:
        shifts = CornerShifts(
            nmos_vt=shifts.nmos_vt + cond.vt_shift_aging,
            nmos_k=shifts.nmos_k,
            pmos_vt=shifts.pmos_vt + cond.vt_shift_aging,
            pmos_k=shifts.pmos_k,
        )
    return nmos, pmos, shifts


# ---------------------------------------------------------------------- #
# table builders


def _linear_tables(
    r_drive: float,
    c_self: float,
    sigma_rel: float,
    slew_grid: Sequence[float] = SLEW_GRID,
    load_grid: Sequence[float] = LOAD_GRID,
    intrinsic: float = 0.0,
) -> ArcTiming:
    """NLDM + LVF tables from the calibrated linear delay model."""

    def delay(s: float, l: float) -> float:
        return intrinsic + _A * r_drive * (l + c_self) + _B * s

    def slew(s: float, l: float) -> float:
        return _S * r_drive * (l + c_self) + _T * s

    def varying_part(s: float, l: float) -> float:
        # Only the cell's own drive (R*C and intrinsic) varies with its
        # threshold; the input-slew pass-through term does not. This makes
        # the *relative* sigma load/slew-dependent — the information LVF
        # keeps and POCV (one number per cell) throws away.
        return intrinsic + _A * r_drive * (l + c_self)

    d_tab = LookupTable2D.from_function(slew_grid, load_grid, delay)
    s_tab = LookupTable2D.from_function(slew_grid, load_grid, slew)
    v_tab = LookupTable2D.from_function(slew_grid, load_grid, varying_part)
    return ArcTiming(
        delay=d_tab,
        slew=s_tab,
        sigma_early=v_tab.scaled(sigma_rel * EARLY_SKEW),
        sigma_late=v_tab.scaled(sigma_rel * LATE_SKEW),
    )


def _sigma_rel(
    params: MosParams, vdd: float, temp_c: float, vt_shift: float, width: float
) -> float:
    """First-order relative delay sigma from local Vt mismatch."""
    ov = _overdrive(params, vdd, temp_c, vt_shift)
    sigma_vt = SIGMA_VT_LOCAL / math.sqrt(max(width, 0.25))
    return params.alpha * sigma_vt / ov


# ---------------------------------------------------------------------- #
# cell builders


def _build_combinational(
    arch: _Archetype, size: float, flavor: str, cond: LibraryCondition
) -> Cell:
    nmos, pmos, shifts = _device_params(flavor, cond)
    r_n = (
        _unit_resistance(nmos, cond.vdd, cond.temp_c, shifts.nmos_vt,
                         shifts.nmos_k)
        * arch.stack_n
        * _STACK_CAL[arch.stack_n]
        / (arch.wn * size)
    )
    r_p = (
        _unit_resistance(pmos, cond.vdd, cond.temp_c, shifts.pmos_vt,
                         shifts.pmos_k)
        * arch.stack_p
        * _STACK_CAL[arch.stack_p]
        / (arch.wp * size)
    )
    # Junction caps on the output node: stacked devices contribute one
    # drain; parallel devices contribute one drain per input.
    n_inputs = len(arch.inputs)
    k_n = 1 if arch.stack_n > 1 else n_inputs
    k_p = 1 if arch.stack_p > 1 else n_inputs
    c_self = _CD * size * (arch.wn * k_n + arch.wp * k_p)

    pin_cap = _CG * size * (arch.wn / arch.stack_n * 1.0 + arch.wp / arch.stack_p)
    sig_n = _sigma_rel(nmos, cond.vdd, cond.temp_c, shifts.nmos_vt,
                       arch.wn * size)
    sig_p = _sigma_rel(pmos, cond.vdd, cond.temp_c, shifts.pmos_vt,
                       arch.wp * size)

    cell = Cell(
        name=f"{arch.footprint.upper()}_X{size:g}_{flavor.upper()}",
        footprint=arch.footprint,
        size=size,
        vt_flavor=flavor,
        area=arch.base_area * size,
        leakage=_leakage(cond, nmos, shifts.nmos_vt,
                         (arch.wn + arch.wp) * size),
        function=arch.function,
    )
    for name in arch.inputs:
        cell.pins[name] = Pin(name, PinDirection.INPUT, capacitance=pin_cap)
    cell.pins[arch.output] = Pin(
        arch.output, PinDirection.OUTPUT, max_capacitance=40.0 * size
    )

    for idx, inp in enumerate(arch.inputs):
        # Inner-stack inputs are slightly slower.
        stretch = 1.0 + 0.06 * idx
        arc = TimingArc(
            related_pin=inp,
            pin=arch.output,
            timing_type=TimingType.COMBINATIONAL,
            sense=arch.sense,
            timing={
                "fall": _linear_tables(r_n * stretch, c_self, sig_n),
                "rise": _linear_tables(r_p * stretch, c_self, sig_p),
            },
        )
        cell.arcs.append(arc)
    return cell


def _build_buffer(size: float, flavor: str, cond: LibraryCondition) -> Cell:
    """Two-stage buffer: fixed small first stage, sized second stage."""
    nmos, pmos, shifts = _device_params(flavor, cond)
    r_n1 = _unit_resistance(nmos, cond.vdd, cond.temp_c, shifts.nmos_vt,
                            shifts.nmos_k)
    r_p1 = _unit_resistance(pmos, cond.vdd, cond.temp_c, shifts.pmos_vt,
                            shifts.pmos_k) / _BETA
    stage2_cin = _CG * size * (1.0 + _BETA)
    # First-stage contribution folded into an intrinsic delay.
    intrinsic_r = 0.5 * (r_n1 + r_p1)
    intrinsic = _A * intrinsic_r * (stage2_cin + _CD * (1.0 + _BETA))

    r_n2 = r_n1 / size
    r_p2 = r_p1 * _BETA / (_BETA * size)
    c_self = _CD * size * (1.0 + _BETA)
    sig = _sigma_rel(nmos, cond.vdd, cond.temp_c, shifts.nmos_vt,
                     size) * math.sqrt(2.0)

    cell = Cell(
        name=f"BUF_X{size:g}_{flavor.upper()}",
        footprint="buf",
        size=size,
        vt_flavor=flavor,
        area=1.2 * size,
        leakage=_leakage(cond, nmos, shifts.nmos_vt,
                         (1.0 + _BETA) * (1.0 + size)),
        function="A",
    )
    cell.pins["A"] = Pin("A", PinDirection.INPUT, capacitance=_CG * (1.0 + _BETA))
    cell.pins["Z"] = Pin("Z", PinDirection.OUTPUT, max_capacitance=50.0 * size)
    cell.arcs.append(
        TimingArc(
            related_pin="A",
            pin="Z",
            timing_type=TimingType.COMBINATIONAL,
            sense=TimingSense.POSITIVE_UNATE,
            timing={
                "rise": _linear_tables(r_p2, c_self, sig, intrinsic=intrinsic),
                "fall": _linear_tables(r_n2, c_self, sig, intrinsic=intrinsic),
            },
        )
    )
    return cell


def _build_dff(size: float, flavor: str, cond: LibraryCondition) -> Cell:
    """Positive-edge D flip-flop with setup/hold constraint arcs.

    Base setup/hold/c2q values follow the transistor-level six-NAND flop
    characterization (tests pin the correspondence); everything scales
    with the condition's speed factor so slow corners see larger
    constraints, as real libraries do.
    """
    nmos, pmos, shifts = _device_params(flavor, cond)
    r_unit = _unit_resistance(nmos, cond.vdd, cond.temp_c, shifts.nmos_vt,
                              shifts.nmos_k)
    nominal = _unit_resistance(NMOS_16NM, 0.8, 25.0, 0.0, 1.0)
    speed = r_unit / nominal  # >1 at slow corners

    r_out = r_unit * 2.0 * _STACK_CAL[2] / (2.0 * size)
    c_self = _CD * size * (2.0 + _BETA)
    intrinsic = 38.0 * speed  # internal master-slave resolution delay
    sig = _sigma_rel(nmos, cond.vdd, cond.temp_c, shifts.nmos_vt,
                     2.0 * size) * 2.0

    setup0, hold0 = 28.0 * speed, 6.0 * speed

    def setup_table(bias: float) -> LookupTable2D:
        return LookupTable2D.from_function(
            SLEW_GRID, SLEW_GRID,
            lambda ds, cs: setup0 + bias + 0.30 * ds + 0.10 * cs,
        )

    def hold_table(bias: float) -> LookupTable2D:
        return LookupTable2D.from_function(
            SLEW_GRID, SLEW_GRID,
            lambda ds, cs: hold0 + bias - 0.10 * ds + 0.15 * cs,
        )

    cell = Cell(
        name=f"DFF_X{size:g}_{flavor.upper()}",
        footprint="dff",
        size=size,
        vt_flavor=flavor,
        area=6.0 * size,
        leakage=_leakage(cond, nmos, shifts.nmos_vt, 26.0 * size),
        function="Q <= D @ posedge CK",
        is_sequential=True,
    )
    cell.pins["D"] = Pin("D", PinDirection.INPUT, capacitance=_CG * size * 2.0)
    cell.pins["CK"] = Pin(
        "CK", PinDirection.INPUT, capacitance=_CG * size * 2.5, is_clock=True
    )
    cell.pins["Q"] = Pin("Q", PinDirection.OUTPUT, max_capacitance=35.0 * size)

    cell.arcs.append(
        TimingArc(
            related_pin="CK",
            pin="Q",
            timing_type=TimingType.RISING_EDGE,
            sense=TimingSense.NON_UNATE,
            timing={
                "rise": _linear_tables(r_out, c_self, sig, intrinsic=intrinsic),
                "fall": _linear_tables(r_out, c_self, sig,
                                       intrinsic=intrinsic * 1.05),
            },
        )
    )
    cell.arcs.append(
        TimingArc(
            related_pin="CK",
            pin="D",
            timing_type=TimingType.SETUP_RISING,
            constraint={"rise": setup_table(0.0), "fall": setup_table(2.0)},
        )
    )
    cell.arcs.append(
        TimingArc(
            related_pin="CK",
            pin="D",
            timing_type=TimingType.HOLD_RISING,
            constraint={"rise": hold_table(0.0), "fall": hold_table(1.0)},
        )
    )
    return cell


def _leakage(
    cond: LibraryCondition, nmos: MosParams, vt_shift: float, total_width: float
) -> float:
    """Static leakage power in mW (subthreshold conduction only)."""
    n_phi_t = nmos.subthreshold_n * nmos.phi_t_at(cond.temp_c)
    vt = nmos.vt_at(cond.temp_c, vt_shift)
    i_leak = _LEAK_I0 * total_width * math.exp(-vt / n_phi_t)
    return cond.vdd * i_leak


# ---------------------------------------------------------------------- #
# the factory


def make_library(
    cond: LibraryCondition = LibraryCondition(),
    flavors: Sequence[str] = DEFAULT_FLAVORS,
    name: str = "",
) -> Library:
    """Generate the full standard-cell library at one condition.

    Args:
        cond: PVT(+aging) condition.
        flavors: Vt flavors to include ("ulvt"/"lvt"/"svt"/"hvt"/"uhvt").
        name: optional library name override.

    Returns:
        A :class:`repro.liberty.library.Library` with INV/BUF/NAND/NOR/
        AOI/OAI/DFF families across sizes and flavors.
    """
    lib = Library(
        name=name or cond.label(),
        vdd=cond.vdd,
        temp_c=cond.temp_c,
        process=cond.process,
    )
    for flavor in flavors:
        for arch_name, arch in _ARCHETYPES.items():
            for size in _COMB_SIZES[arch_name]:
                lib.add_cell(_build_combinational(arch, size, flavor, cond))
        for size in _BUF_SIZES:
            lib.add_cell(_build_buffer(size, flavor, cond))
        for size in _DFF_SIZES:
            lib.add_cell(_build_dff(size, flavor, cond))
    return lib
