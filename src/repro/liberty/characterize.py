"""Simulation-based characterization against :mod:`repro.spice`.

The analytic factory (:mod:`repro.liberty.stdcells`) is the fast path used
by STA and closure; this module is the slow, golden path: it runs the
transistor-level simulator over a (slew, load) grid to produce measured
NLDM tables, and characterizes flip-flop constraints with the industry
pushout criterion (setup/hold time = the data offset at which c2q degrades
by 10% over its comfortable-margin value — the fixed criterion whose
pessimism the paper's Fig 10 and [23] exploit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.liberty.arcs import ArcTiming
from repro.liberty.tables import LookupTable2D
from repro.spice.devices import NMOS_16NM, PMOS_16NM, vt_flavor_params
from repro.spice.gates import add_inverter, add_nand, add_nor
from repro.spice.network import GROUND, Circuit
from repro.spice.stimulus import Constant, Ramp
from repro.spice.testbench import dff_capture_trial, _input_ramp, _measure_arc
from repro.spice.transient import simulate

CHAR_SLEW_GRID = (5.0, 20.0, 60.0)
CHAR_LOAD_GRID = (2.0, 8.0, 24.0)
PUSHOUT_FRACTION = 0.10

#: Characterizable gate families: builder, input pin names, and the
#: non-controlling level for held inputs (as a fraction of VDD).
_CHAR_GATES = {
    "inv": (add_inverter, ("A",), None),
    "nand2": (add_nand, ("A", "B"), 1.0),
    "nand3": (add_nand, ("A", "B", "C"), 1.0),
    "nor2": (add_nor, ("A", "B"), 0.0),
    "nor3": (add_nor, ("A", "B", "C"), 0.0),
}


def characterize_inverter(
    size: float = 1.0,
    flavor: str = "svt",
    vdd: float = 0.8,
    temp_c: float = 25.0,
    slew_grid: Sequence[float] = CHAR_SLEW_GRID,
    load_grid: Sequence[float] = CHAR_LOAD_GRID,
    dt: float = 0.25,
) -> dict:
    """Measured NLDM tables for an inverter, per output direction.

    Returns ``{"rise": ArcTiming, "fall": ArcTiming}`` with measured delay
    and slew tables (no sigma tables — Monte Carlo characterization is a
    separate, much slower pass).
    """
    nmos = vt_flavor_params(NMOS_16NM, flavor)
    pmos = vt_flavor_params(PMOS_16NM, flavor)
    out = {}
    for direction in ("rise", "fall"):
        delays, slews = [], []
        for s in slew_grid:
            drow, srow = [], []
            for load in load_grid:
                d, osl = _measure_inverter_point(
                    size, vdd, temp_c, s, load, direction, nmos, pmos, dt
                )
                drow.append(d)
                srow.append(osl)
            delays.append(drow)
            slews.append(srow)
        out[direction] = ArcTiming(
            delay=LookupTable2D(slew_grid, load_grid, delays),
            slew=LookupTable2D(slew_grid, load_grid, slews),
        )
    return out


def _measure_inverter_point(
    size, vdd, temp_c, in_slew, load, direction, nmos, pmos, dt
) -> Tuple[float, float]:
    circuit = Circuit("char_tb", temp_c=temp_c)
    vdd_node = circuit.add_vdd(vdd)
    add_inverter(circuit, "dut", "in", "out", vdd_node, size=size,
                 nmos=nmos, pmos=pmos)
    circuit.add_capacitor("out", GROUND, load)
    in_rising = direction == "fall"
    circuit.add_source("in", _input_ramp(vdd, in_slew, rising=in_rising))
    horizon = 80.0 + 4.0 * in_slew + 14.0 * load / max(size, 0.25)
    result = simulate(circuit, t_stop=horizon, dt=dt, t_start=-horizon / 2)
    m = _measure_arc(result, "in", "out", vdd,
                     "rise" if in_rising else "fall", direction)
    return m.delay, m.out_slew


def characterize_gate(
    footprint: str,
    size: float = 1.0,
    flavor: str = "svt",
    vdd: float = 0.8,
    temp_c: float = 25.0,
    slew_grid: Sequence[float] = CHAR_SLEW_GRID,
    load_grid: Sequence[float] = CHAR_LOAD_GRID,
    dt: float = 0.25,
) -> dict:
    """Measured NLDM tables for a gate family's first-input arc.

    Supports the inverting families (``inv``/``nand2``/``nand3``/
    ``nor2``/``nor3``): the first input switches, the others are held at
    their non-controlling level (VDD for NAND, GND for NOR) — the SIS
    characterization convention. Returns ``{"rise": ArcTiming,
    "fall": ArcTiming}`` keyed by output direction.
    """
    try:
        builder, pins, noncontrolling = _CHAR_GATES[footprint]
    except KeyError:
        raise SimulationError(
            f"cannot characterize footprint {footprint!r}; "
            f"supported: {sorted(_CHAR_GATES)}"
        ) from None
    if footprint == "inv":
        return characterize_inverter(size=size, flavor=flavor, vdd=vdd,
                                     temp_c=temp_c, slew_grid=slew_grid,
                                     load_grid=load_grid, dt=dt)
    nmos = vt_flavor_params(NMOS_16NM, flavor)
    pmos = vt_flavor_params(PMOS_16NM, flavor)
    out = {}
    for direction in ("rise", "fall"):
        delays, slews = [], []
        for s in slew_grid:
            drow, srow = [], []
            for load in load_grid:
                d, osl = _measure_gate_point(
                    builder, len(pins), noncontrolling, size, vdd, temp_c,
                    s, load, direction, nmos, pmos, dt,
                )
                drow.append(d)
                srow.append(osl)
            delays.append(drow)
            slews.append(srow)
        out[direction] = ArcTiming(
            delay=LookupTable2D(slew_grid, load_grid, delays),
            slew=LookupTable2D(slew_grid, load_grid, slews),
        )
    return out


def _measure_gate_point(
    builder, n_inputs, noncontrolling, size, vdd, temp_c, in_slew, load,
    direction, nmos, pmos, dt,
) -> Tuple[float, float]:
    circuit = Circuit("char_gate_tb", temp_c=temp_c)
    vdd_node = circuit.add_vdd(vdd)
    inputs = [f"in{i}" for i in range(n_inputs)]
    builder(circuit, "dut", inputs, "out", vdd_node, size=size,
            nmos=nmos, pmos=pmos)
    circuit.add_capacitor("out", GROUND, load)
    in_rising = direction == "fall"  # all families here are inverting
    circuit.add_source(inputs[0], _input_ramp(vdd, in_slew, rising=in_rising))
    for other in inputs[1:]:
        circuit.add_source(other, Constant(noncontrolling * vdd))
    horizon = 100.0 + 4.0 * in_slew + 18.0 * load / max(size, 0.25)
    result = simulate(circuit, t_stop=horizon, dt=dt, t_start=-horizon / 2)
    m = _measure_arc(result, inputs[0], "out", vdd,
                     "rise" if in_rising else "fall", direction)
    return m.delay, m.out_slew


@dataclass
class FlopCharacterization:
    """Pushout-criterion flop characterization results (all in ps)."""

    c2q_nominal: float  # c2q with generous setup & hold
    setup_time: float  # data offset where c2q degrades by the pushout
    hold_time: float
    pushout_fraction: float = PUSHOUT_FRACTION


def characterize_flop(
    vdd: float = 0.8,
    temp_c: float = 25.0,
    generous: float = 150.0,
    resolution: float = 1.0,
    pushout: float = PUSHOUT_FRACTION,
) -> FlopCharacterization:
    """Characterize the six-NAND flop with the fixed pushout criterion.

    Binary-searches the setup (then hold) offset at which the measured c2q
    exceeds ``(1 + pushout)`` times its comfortable-margin value.
    """
    base = dff_capture_trial(setup_time=generous, hold_time=generous,
                             vdd=vdd, temp_c=temp_c)
    if not base.captured:
        raise SimulationError("flop failed to capture even with generous margins")
    c2q_limit = base.c2q_delay * (1.0 + pushout)

    setup = _search_threshold(
        lambda s: _trial_c2q(s, generous, vdd, temp_c),
        lo=1.0, hi=generous, limit=c2q_limit, resolution=resolution,
    )
    hold = _search_threshold(
        lambda h: _trial_c2q(generous, h, vdd, temp_c),
        lo=0.0, hi=generous, limit=c2q_limit, resolution=resolution,
    )
    return FlopCharacterization(
        c2q_nominal=base.c2q_delay, setup_time=setup, hold_time=hold,
        pushout_fraction=pushout,
    )


def c2q_vs_setup_curve(
    setups: Sequence[float],
    hold_time: float = 150.0,
    vdd: float = 0.8,
    temp_c: float = 25.0,
) -> list:
    """(setup, c2q-or-None) samples — the raw data behind Fig 10(i)."""
    return [(s, _trial_c2q(s, hold_time, vdd, temp_c)) for s in setups]


def c2q_vs_hold_curve(
    holds: Sequence[float],
    setup_time: float = 150.0,
    vdd: float = 0.8,
    temp_c: float = 25.0,
) -> list:
    """(hold, c2q-or-None) samples — the raw data behind Fig 10(ii)."""
    return [(h, _trial_c2q(setup_time, h, vdd, temp_c)) for h in holds]


def _trial_c2q(setup: float, hold: float, vdd: float, temp_c: float) -> Optional[float]:
    try:
        trial = dff_capture_trial(setup_time=setup, hold_time=hold,
                                  vdd=vdd, temp_c=temp_c)
    except SimulationError:
        return None
    return trial.c2q_delay


def _search_threshold(c2q_of, lo: float, hi: float, limit: float,
                      resolution: float) -> float:
    """Smallest offset (to ``resolution``) whose c2q stays within ``limit``.

    Assumes c2q is nonincreasing in the offset: large offsets pass, small
    ones fail (or never capture).
    """
    if (c2q_hi := c2q_of(hi)) is None or c2q_hi > limit:
        raise SimulationError("pushout search: even the generous margin fails")
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        c2q = c2q_of(mid)
        if c2q is None or c2q > limit:
            lo = mid
        else:
            hi = mid
    return hi
