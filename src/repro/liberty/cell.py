"""Cells and pins.

A :class:`Cell` groups pins, timing arcs, area, leakage and the metadata
used by closure optimizations: its *footprint* (interchangeable layout
family, e.g. every NAND2 drive/Vt variant shares footprint ``"nand2"``),
its drive ``size`` and its threshold ``vt_flavor``. Vt-swap changes
``vt_flavor`` within a footprint+size; gate sizing changes ``size`` within
a footprint+flavor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import LibraryError
from repro.liberty.arcs import TimingArc, TimingType


class PinDirection(enum.Enum):
    INPUT = "input"
    OUTPUT = "output"


@dataclass
class Pin:
    """A cell pin.

    Attributes:
        name: pin name (e.g. ``"A"``, ``"ZN"``, ``"CK"``).
        direction: input or output.
        capacitance: input pin capacitance in fF (0 for outputs).
        is_clock: True for clock pins of sequential cells.
        max_transition: signoff slew limit at this pin, ps (None = library
            default).
        max_capacitance: drive limit for output pins, fF.
    """

    name: str
    direction: PinDirection
    capacitance: float = 0.0
    is_clock: bool = False
    max_transition: Optional[float] = None
    max_capacitance: Optional[float] = None


@dataclass
class Cell:
    """One library cell."""

    name: str
    footprint: str
    size: float
    vt_flavor: str
    area: float
    leakage: float  # mW at library voltage/temperature
    pins: Dict[str, Pin] = field(default_factory=dict)
    arcs: List[TimingArc] = field(default_factory=list)
    function: str = ""
    is_sequential: bool = False

    # ------------------------------------------------------------------ #
    # pin queries

    def pin(self, name: str) -> Pin:
        try:
            return self.pins[name]
        except KeyError:
            raise LibraryError(f"cell {self.name} has no pin {name!r}") from None

    def input_pins(self) -> List[Pin]:
        return [p for p in self.pins.values() if p.direction is PinDirection.INPUT]

    def output_pins(self) -> List[Pin]:
        return [p for p in self.pins.values() if p.direction is PinDirection.OUTPUT]

    def clock_pin(self) -> Optional[Pin]:
        for p in self.pins.values():
            if p.is_clock:
                return p
        return None

    def input_capacitance(self, pin_name: str) -> float:
        return self.pin(pin_name).capacitance

    # ------------------------------------------------------------------ #
    # arc queries

    def delay_arcs(self) -> List[TimingArc]:
        return [a for a in self.arcs if a.timing_type.is_delay]

    def constraint_arcs(self) -> List[TimingArc]:
        return [a for a in self.arcs if a.timing_type.is_constraint]

    def arcs_to(self, output_pin: str) -> List[TimingArc]:
        return [a for a in self.arcs if a.pin == output_pin and a.timing_type.is_delay]

    def arc_between(self, related_pin: str, pin: str,
                    timing_type: Optional[TimingType] = None) -> TimingArc:
        for a in self.arcs:
            if a.related_pin == related_pin and a.pin == pin:
                if timing_type is None or a.timing_type is timing_type:
                    return a
        raise LibraryError(
            f"cell {self.name} has no arc {related_pin}->{pin}"
            + (f" of type {timing_type.value}" if timing_type else "")
        )

    def __repr__(self) -> str:
        return f"Cell({self.name}, {len(self.pins)} pins, {len(self.arcs)} arcs)"
