"""AOCV derate tables and POCV per-cell sigmas.

The paper's Section 3.1 describes the variation-modeling ladder:

- *flat OCV*: one derate factor for everything;
- *AOCV*: derates tabulated against path stage count (statistical
  averaging: deep paths see less relative variation) and spatial extent
  (bounding-box diagonal: compact paths see less global spread);
- *POCV*: one sigma per cell, accumulated in RSS along the path;
- *LVF*: per-arc, per-(slew, load), separate early/late sigmas
  (:mod:`repro.liberty.lvf`).

AOCV's central weakness — "it essentially assumes that all gates are
identical and identically loaded" — is visible here by construction:
:func:`AocvTable.from_reference_sigma` bakes one representative sigma into
the whole table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.errors import LibraryError
from repro.liberty.arcs import TimingArc
from repro.liberty.cell import Cell

DEFAULT_DEPTHS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0)
DEFAULT_DISTANCES = (0.0, 100.0, 250.0, 500.0, 1000.0)  # um


@dataclass
class AocvTable:
    """Stage-count- and distance-dependent derates.

    ``late_derates[i][j]`` multiplies late (max) delays for a path of depth
    ``depths[i]`` and bounding-box diagonal ``distances[j]``;
    ``early_derates`` analogously divides early (min) delays below 1.0.
    """

    depths: Tuple[float, ...]
    distances: Tuple[float, ...]
    late_derates: np.ndarray
    early_derates: np.ndarray

    @classmethod
    def from_reference_sigma(
        cls,
        sigma_rel: float,
        n_sigma: float = 3.0,
        distance_coeff: float = 2e-5,
        depths: Sequence[float] = DEFAULT_DEPTHS,
        distances: Sequence[float] = DEFAULT_DISTANCES,
    ) -> "AocvTable":
        """Build the table from one representative per-stage sigma.

        Statistical averaging of independent stage variation gives a path
        derate of ``1 +/- n_sigma * sigma_rel / sqrt(depth)``; a linear
        distance term models residual global (spatially correlated) spread.
        """
        depths_arr = np.asarray(depths, dtype=float)
        dist_arr = np.asarray(distances, dtype=float)
        stage = n_sigma * sigma_rel / np.sqrt(depths_arr)[:, None]
        spatial = distance_coeff * dist_arr[None, :]
        return cls(
            depths=tuple(depths),
            distances=tuple(distances),
            late_derates=1.0 + stage + spatial,
            early_derates=np.maximum(1.0 - stage - spatial, 0.05),
        )

    def derate(self, depth: float, distance: float, mode: str) -> float:
        """Interpolated derate for a path depth/extent.

        ``mode`` is ``"late"`` or ``"early"``.
        """
        if mode not in ("late", "early"):
            raise LibraryError(f"bad derate mode {mode!r}")
        table = self.late_derates if mode == "late" else self.early_derates
        d = np.clip(depth, self.depths[0], self.depths[-1])
        x = np.clip(distance, self.distances[0], self.distances[-1])
        i = int(np.searchsorted(self.depths, d, side="right")) - 1
        i = max(0, min(i, len(self.depths) - 2))
        j = int(np.searchsorted(self.distances, x, side="right")) - 1
        j = max(0, min(j, len(self.distances) - 2))
        u = (d - self.depths[i]) / (self.depths[i + 1] - self.depths[i])
        v = (x - self.distances[j]) / (self.distances[j + 1] - self.distances[j])
        return float(
            table[i, j] * (1 - u) * (1 - v)
            + table[i + 1, j] * u * (1 - v)
            + table[i, j + 1] * (1 - u) * v
            + table[i + 1, j + 1] * u * v
        )


def pocv_sigma(cell: Cell, out_direction: str = "fall", mode: str = "late") -> float:
    """POCV: one relative sigma per cell.

    Computed as the grid-average ratio of the LVF sigma table to the delay
    table over the cell's first delay arc — exactly the information loss
    POCV accepts relative to LVF ("one number per cell" vs "one number per
    load-slew combination per cell").
    """
    arcs = cell.delay_arcs()
    if not arcs:
        raise LibraryError(f"cell {cell.name} has no delay arcs")
    return arc_pocv_sigma(arcs[0], out_direction, mode)


def arc_pocv_sigma(arc: TimingArc, out_direction: str = "fall",
                   mode: str = "late") -> float:
    """Grid-average relative sigma of one arc."""
    timing = arc.timing.get(out_direction)
    if timing is None:
        timing = next(iter(arc.timing.values()))
    sigma_tab = timing.sigma_late if mode == "late" else timing.sigma_early
    if sigma_tab is None:
        raise LibraryError("arc has no LVF sigma tables to project from")
    ratios = sigma_tab.values / np.maximum(timing.delay.values, 1e-12)
    return float(ratios.mean())


def library_reference_sigma(cells: Sequence[Cell], mode: str = "late") -> float:
    """Representative sigma for AOCV table construction: the mean POCV
    sigma over the given cells (typically one size/flavor slice)."""
    sigmas = []
    for cell in cells:
        try:
            sigmas.append(pocv_sigma(cell, mode=mode))
        except LibraryError:
            continue
    if not sigmas:
        raise LibraryError("no cells with sigma information")
    return float(np.mean(sigmas))
