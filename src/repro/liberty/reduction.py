"""Library-variant reduction (Section 4, future (4)(iv)).

"Improved methods for reducing the number of timing libraries or library
variants will be needed." Characterizing and managing a library per
(process, voltage, temperature, aging) point is a real cost; this module
selects a subset of conditions whose *bracketing* coverage of a probe
population stays within a tolerance, plus the voltage-interpolation
support ("interpolation across lib groups") that signoff STA tools offer
so fewer voltage points need characterizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import LibraryError
from repro.liberty import LibraryCondition, make_library
from repro.liberty.library import Library

#: Probe arcs: (cell, out_direction, slew, load) — a small, diverse set
#: whose delays fingerprint a condition.
DEFAULT_PROBES: Tuple[Tuple[str, str, float, float], ...] = (
    ("INV_X1_SVT", "fall", 20.0, 4.0),
    ("INV_X4_LVT", "rise", 10.0, 16.0),
    ("NAND2_X1_HVT", "fall", 40.0, 8.0),
    ("NOR2_X2_SVT", "rise", 20.0, 8.0),
    ("AOI21_X1_SVT", "fall", 20.0, 4.0),
    ("BUF_X4_SVT", "rise", 20.0, 32.0),
)


def condition_fingerprint(
    library: Library,
    probes: Sequence[Tuple[str, str, float, float]] = DEFAULT_PROBES,
) -> List[float]:
    """Probe-arc delays characterizing a library condition."""
    out = []
    for cell_name, direction, slew, load in probes:
        cell = library.cell(cell_name)
        arc = cell.delay_arcs()[0]
        out.append(arc.delay_and_slew(direction, slew, load)[0])
    return out


def _coverage_error(kept: List[List[float]], probe: List[float]) -> float:
    """Worst relative distance from ``probe`` to its nearest kept
    fingerprint (0 when a kept condition matches it exactly)."""
    best = float("inf")
    for fp in kept:
        worst_dim = max(
            abs(a - b) / max(abs(b), 1e-9) for a, b in zip(fp, probe)
        )
        best = min(best, worst_dim)
    return best


@dataclass
class ReductionResult:
    """Which conditions survive and how well they cover the rest."""

    kept: List[LibraryCondition]
    dropped: List[LibraryCondition]
    worst_coverage_error: float

    @property
    def reduction_ratio(self) -> float:
        total = len(self.kept) + len(self.dropped)
        return len(self.dropped) / total if total else 0.0


def reduce_library_set(
    conditions: Sequence[LibraryCondition],
    tolerance: float = 0.05,
    probes: Sequence[Tuple[str, str, float, float]] = DEFAULT_PROBES,
    library_factory: Callable[[LibraryCondition], Library] = None,
) -> ReductionResult:
    """Greedy farthest-point selection of a covering condition subset.

    Starts from the extreme (slowest and fastest) conditions, then adds
    the worst-covered condition until every dropped condition's
    fingerprint lies within ``tolerance`` (relative) of a kept one.
    """
    if not conditions:
        raise LibraryError("no conditions to reduce")
    factory = library_factory or (lambda c: make_library(c, flavors=("svt", "lvt", "hvt")))
    fingerprints = [
        condition_fingerprint(factory(c), probes) for c in conditions
    ]

    order = sorted(range(len(conditions)),
                   key=lambda i: sum(fingerprints[i]))
    kept_idx = {order[0], order[-1]} if len(conditions) > 1 else {order[0]}

    while True:
        kept_fps = [fingerprints[i] for i in kept_idx]
        worst_err, worst_i = 0.0, None
        for i in range(len(conditions)):
            if i in kept_idx:
                continue
            err = _coverage_error(kept_fps, fingerprints[i])
            if err > worst_err:
                worst_err, worst_i = err, i
        if worst_i is None or worst_err <= tolerance:
            break
        kept_idx.add(worst_i)

    kept = [conditions[i] for i in sorted(kept_idx)]
    dropped = [c for i, c in enumerate(conditions) if i not in kept_idx]
    kept_fps = [fingerprints[i] for i in kept_idx]
    final_err = max(
        (_coverage_error(kept_fps, fingerprints[i])
         for i in range(len(conditions)) if i not in kept_idx),
        default=0.0,
    )
    return ReductionResult(kept=kept, dropped=dropped,
                           worst_coverage_error=final_err)


# ---------------------------------------------------------------------- #
# voltage interpolation ("interpolation across lib groups")


class InterpolatedArcLookup:
    """Linear voltage interpolation between two characterized libraries.

    The paper notes signoff STA tools' "improved support of voltage
    scaling (interpolation across lib groups)": instead of
    characterizing every AVS voltage point, bracket it. Lookups
    interpolate delay/slew linearly in VDD between the two libraries.
    """

    def __init__(self, lib_lo: Library, lib_hi: Library):
        if lib_lo.vdd >= lib_hi.vdd:
            raise LibraryError("lib_lo must be the lower-voltage library")
        self.lib_lo = lib_lo
        self.lib_hi = lib_hi

    def delay(self, cell_name: str, out_direction: str, slew: float,
              load: float, vdd: float) -> float:
        if not self.lib_lo.vdd <= vdd <= self.lib_hi.vdd:
            raise LibraryError(
                f"{vdd} V outside the bracketing range "
                f"[{self.lib_lo.vdd}, {self.lib_hi.vdd}]"
            )
        d_lo = self.lib_lo.cell(cell_name).delay_arcs()[0].delay_and_slew(
            out_direction, slew, load
        )[0]
        d_hi = self.lib_hi.cell(cell_name).delay_arcs()[0].delay_and_slew(
            out_direction, slew, load
        )[0]
        frac = (vdd - self.lib_lo.vdd) / (self.lib_hi.vdd - self.lib_lo.vdd)
        return d_lo + frac * (d_hi - d_lo)

    def interpolation_error(self, cell_name: str, out_direction: str,
                            slew: float, load: float, vdd: float) -> float:
        """Relative error of the interpolation vs a truly characterized
        library at ``vdd`` — the quantity that decides how many voltage
        points a lib group needs."""
        truth_lib = make_library(
            LibraryCondition(vdd=vdd, temp_c=self.lib_lo.temp_c,
                             process=self.lib_lo.process),
        )
        truth = truth_lib.cell(cell_name).delay_arcs()[0].delay_and_slew(
            out_direction, slew, load
        )[0]
        approx = self.delay(cell_name, out_direction, slew, load, vdd)
        return abs(approx - truth) / truth
