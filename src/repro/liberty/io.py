"""Liberty-lite text format: writer and parser.

A compact, self-consistent subset of the Liberty syntax — nested groups,
``attr : value;`` attributes, and quoted table strings — sufficient to
round-trip everything :mod:`repro.liberty` models (NLDM tables, constraint
tables, LVF sigmas, leakage, footprints). Example::

    library (repro16_tt_800mv_25c) {
      nom_voltage : 0.8;
      cell (INV_X1_SVT) {
        footprint : inv;
        pin (A) { direction : input; capacitance : 2.8; }
        timing () {
          related_pin : A;
          pin : ZN;
          cell_fall { index_1 : "2, 5"; index_2 : "1, 2";
                      values : "10, 11 | 12, 13"; }
        }
      }
    }
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import LibraryError
from repro.liberty.arcs import ArcTiming, TimingArc, TimingSense, TimingType
from repro.liberty.cell import Cell, Pin, PinDirection
from repro.liberty.library import Library
from repro.liberty.tables import LookupTable2D

# ---------------------------------------------------------------------- #
# writer

_TABLE_KEYS = {
    ("rise", "delay"): "cell_rise",
    ("fall", "delay"): "cell_fall",
    ("rise", "slew"): "rise_transition",
    ("fall", "slew"): "fall_transition",
    ("rise", "sigma_early"): "sigma_rise_early",
    ("fall", "sigma_early"): "sigma_fall_early",
    ("rise", "sigma_late"): "sigma_rise_late",
    ("fall", "sigma_late"): "sigma_fall_late",
}


def write_library(library: Library) -> str:
    """Serialize a library to Liberty-lite text."""
    out: List[str] = []
    out.append(f"library ({library.name}) {{")
    out.append(f"  nom_voltage : {library.vdd};")
    out.append(f"  nom_temperature : {library.temp_c};")
    out.append(f"  process : {library.process};")
    out.append(f"  default_max_transition : {library.default_max_transition};")
    for cell in library.cells.values():
        out.extend(_write_cell(cell))
    out.append("}")
    return "\n".join(out) + "\n"


def _write_cell(cell: Cell) -> List[str]:
    out = [f"  cell ({cell.name}) {{"]
    out.append(f"    footprint : {cell.footprint};")
    out.append(f"    size : {cell.size};")
    out.append(f"    vt_flavor : {cell.vt_flavor};")
    out.append(f"    area : {cell.area};")
    out.append(f"    cell_leakage_power : {cell.leakage!r};")
    if cell.function:
        out.append(f'    function : "{cell.function}";')
    if cell.is_sequential:
        out.append("    is_sequential : true;")
    for pin in cell.pins.values():
        out.append(f"    pin ({pin.name}) {{")
        out.append(f"      direction : {pin.direction.value};")
        if pin.capacitance:
            out.append(f"      capacitance : {pin.capacitance!r};")
        if pin.is_clock:
            out.append("      clock : true;")
        if pin.max_transition is not None:
            out.append(f"      max_transition : {pin.max_transition!r};")
        if pin.max_capacitance is not None:
            out.append(f"      max_capacitance : {pin.max_capacitance!r};")
        out.append("    }")
    for arc in cell.arcs:
        out.extend(_write_arc(arc))
    out.append("  }")
    return out


def _write_arc(arc: TimingArc) -> List[str]:
    out = ["    timing () {"]
    out.append(f"      related_pin : {arc.related_pin};")
    out.append(f"      pin : {arc.pin};")
    out.append(f"      timing_type : {arc.timing_type.value};")
    out.append(f"      timing_sense : {arc.sense.value};")
    for direction, timing in sorted(arc.timing.items()):
        out.extend(_write_table(_TABLE_KEYS[(direction, "delay")], timing.delay))
        out.extend(_write_table(_TABLE_KEYS[(direction, "slew")], timing.slew))
        if timing.sigma_early is not None:
            out.extend(
                _write_table(_TABLE_KEYS[(direction, "sigma_early")],
                             timing.sigma_early)
            )
        if timing.sigma_late is not None:
            out.extend(
                _write_table(_TABLE_KEYS[(direction, "sigma_late")],
                             timing.sigma_late)
            )
    for direction, table in sorted(arc.constraint.items()):
        out.extend(_write_table(f"{direction}_constraint", table))
    out.append("    }")
    return out


def _write_table(name: str, table: LookupTable2D) -> List[str]:
    idx1 = ", ".join(repr(float(x)) for x in table.index_1)
    idx2 = ", ".join(repr(float(x)) for x in table.index_2)
    rows = " | ".join(
        ", ".join(repr(float(v)) for v in row) for row in table.values
    )
    return [
        f"      {name} {{",
        f'        index_1 : "{idx1}";',
        f'        index_2 : "{idx2}";',
        f'        values : "{rows}";',
        "      }",
    ]


# ---------------------------------------------------------------------- #
# parser

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>"[^"]*")
      | (?P<punct>[{}();:])
      | (?P<word>[^\s{}();:"]+)
    )
    """,
    re.VERBOSE,
)


class _Group:
    """Parsed group: name, argument, attributes and child groups."""

    def __init__(self, name: str, arg: str):
        self.name = name
        self.arg = arg
        self.attrs: Dict[str, str] = {}
        self.children: List["_Group"] = []

    def child(self, name: str) -> List["_Group"]:
        return [c for c in self.children if c.name == name]

    def attr(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.attrs.get(name, default)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            break
        pos = m.end()
        tok = m.group("string") or m.group("punct") or m.group("word")
        tokens.append(tok)
    return tokens


def _parse_group(tokens: List[str], pos: int) -> Tuple[_Group, int]:
    name = tokens[pos]
    pos += 1
    arg = ""
    if tokens[pos] == "(":
        close = tokens.index(")", pos)
        arg = " ".join(tokens[pos + 1 : close])
        pos = close + 1
    if tokens[pos] != "{":
        raise LibraryError(f"expected '{{' after group {name}, got {tokens[pos]!r}")
    pos += 1
    group = _Group(name, arg)
    while pos < len(tokens):
        tok = tokens[pos]
        if tok == "}":
            return group, pos + 1
        # attribute: word : value ;
        if pos + 1 < len(tokens) and tokens[pos + 1] == ":":
            value_tokens = []
            j = pos + 2
            while tokens[j] != ";":
                value_tokens.append(tokens[j])
                j += 1
            group.attrs[tok] = " ".join(value_tokens).strip('"')
            pos = j + 1
        else:
            child, pos = _parse_group(tokens, pos)
            group.children.append(child)
    raise LibraryError(f"unterminated group {name}")


def parse_library(text: str) -> Library:
    """Parse Liberty-lite text back into a :class:`Library`."""
    tokens = _tokenize(text)
    if not tokens:
        raise LibraryError("empty library text")
    root, _ = _parse_group(tokens, 0)
    if root.name != "library":
        raise LibraryError(f"expected a library group, got {root.name!r}")
    lib = Library(
        name=root.arg,
        vdd=float(root.attr("nom_voltage", "0.8")),
        temp_c=float(root.attr("nom_temperature", "25.0")),
        process=root.attr("process", "tt"),
        default_max_transition=float(root.attr("default_max_transition", "150.0")),
    )
    for cgrp in root.child("cell"):
        lib.add_cell(_parse_cell(cgrp))
    return lib


def _parse_cell(grp: _Group) -> Cell:
    cell = Cell(
        name=grp.arg,
        footprint=grp.attr("footprint", ""),
        size=float(grp.attr("size", "1.0")),
        vt_flavor=grp.attr("vt_flavor", "svt"),
        area=float(grp.attr("area", "0.0")),
        leakage=float(grp.attr("cell_leakage_power", "0.0")),
        function=grp.attr("function", ""),
        is_sequential=grp.attr("is_sequential", "false") == "true",
    )
    for pgrp in grp.child("pin"):
        mt = pgrp.attr("max_transition")
        mc = pgrp.attr("max_capacitance")
        cell.pins[pgrp.arg] = Pin(
            name=pgrp.arg,
            direction=PinDirection(pgrp.attr("direction", "input")),
            capacitance=float(pgrp.attr("capacitance", "0.0")),
            is_clock=pgrp.attr("clock", "false") == "true",
            max_transition=float(mt) if mt is not None else None,
            max_capacitance=float(mc) if mc is not None else None,
        )
    for tgrp in grp.child("timing"):
        cell.arcs.append(_parse_arc(tgrp))
    return cell


def _parse_arc(grp: _Group) -> TimingArc:
    timing_type = TimingType(grp.attr("timing_type", "combinational"))
    arc = TimingArc(
        related_pin=grp.attr("related_pin", ""),
        pin=grp.attr("pin", ""),
        timing_type=timing_type,
        sense=TimingSense(grp.attr("timing_sense", "negative_unate")),
    )
    tables = {c.name: _parse_table(c) for c in grp.children}
    inverse_keys = {v: k for k, v in _TABLE_KEYS.items()}
    per_direction: Dict[str, Dict[str, LookupTable2D]] = {}
    for name, table in tables.items():
        if name in inverse_keys:
            direction, role = inverse_keys[name]
            per_direction.setdefault(direction, {})[role] = table
        elif name.endswith("_constraint"):
            arc.constraint[name[: -len("_constraint")]] = table
        else:
            raise LibraryError(f"unknown table {name!r} in timing group")
    for direction, roles in per_direction.items():
        if "delay" not in roles or "slew" not in roles:
            raise LibraryError(
                f"timing group for {arc.related_pin}->{arc.pin} is missing "
                f"delay or slew tables for direction {direction!r}"
            )
        arc.timing[direction] = ArcTiming(
            delay=roles["delay"],
            slew=roles["slew"],
            sigma_early=roles.get("sigma_early"),
            sigma_late=roles.get("sigma_late"),
        )
    return arc


def _parse_table(grp: _Group) -> LookupTable2D:
    try:
        idx1 = [float(x) for x in grp.attrs["index_1"].split(",")]
        idx2 = [float(x) for x in grp.attrs["index_2"].split(",")]
        rows = [
            [float(x) for x in row.split(",")]
            for row in grp.attrs["values"].split("|")
        ]
    except (KeyError, ValueError) as exc:
        raise LibraryError(f"malformed table group {grp.name!r}: {exc}") from exc
    return LookupTable2D(idx1, idx2, rows)
