"""Library modeling: NLDM tables and the variation-model ladder.

This package is the framework's equivalent of a Liberty timing library and
its modern extensions:

- :mod:`repro.liberty.tables` — 2-D lookup tables with bilinear
  interpolation (the NLDM core);
- :mod:`repro.liberty.arcs` — delay, slew and constraint timing arcs;
- :mod:`repro.liberty.cell` — cells, pins, footprints, leakage and area;
- :mod:`repro.liberty.library` — the library container with footprint /
  Vt-variant queries used by sizing and Vt-swap optimization;
- :mod:`repro.liberty.stdcells` — an analytic standard-cell factory whose
  delay equations derive from the same alpha-power device physics as
  :mod:`repro.spice` (so voltage scaling and temperature inversion carry
  through to STA);
- :mod:`repro.liberty.lvf` / :mod:`repro.liberty.aocv` — the LVF and
  AOCV/POCV variation models of the paper's Section 3.1;
- :mod:`repro.liberty.characterize` — true simulation-based
  characterization against :mod:`repro.spice`;
- :mod:`repro.liberty.io` — Liberty-lite text writer/parser.
"""

from repro.liberty.tables import LookupTable2D
from repro.liberty.arcs import ArcTiming, TimingArc, TimingSense, TimingType
from repro.liberty.cell import Cell, Pin, PinDirection
from repro.liberty.library import Library
from repro.liberty.stdcells import make_library, LibraryCondition

__all__ = [
    "LookupTable2D",
    "TimingArc",
    "ArcTiming",
    "TimingSense",
    "TimingType",
    "Cell",
    "Pin",
    "PinDirection",
    "Library",
    "make_library",
    "LibraryCondition",
]
