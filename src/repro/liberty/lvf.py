"""Liberty Variation Format (LVF) helpers.

LVF attaches slew- and load-dependent delay sigmas to every timing arc,
with *separate* early and late values — the representation the paper
(Section 3.1, Fig 7) argues will replace relative-margin OCV formats. In
this framework the sigma tables live directly on
:class:`repro.liberty.arcs.ArcTiming`; this module provides library-level
queries and the degradation utilities used by the accuracy-ladder
experiment (strip LVF to emulate a pre-LVF library).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import LibraryError
from repro.liberty.arcs import TimingArc
from repro.liberty.cell import Cell
from repro.liberty.library import Library


def has_lvf(library: Library) -> bool:
    """True when every delay arc in the library carries sigma tables."""
    for cell in library.cells.values():
        for arc in cell.delay_arcs():
            for timing in arc.timing.values():
                if timing.sigma_early is None or timing.sigma_late is None:
                    return False
    return True


def strip_lvf(library: Library) -> int:
    """Remove sigma tables from all arcs (in place). Returns the number of
    arc-timings stripped. Used to emulate plain-NLDM libraries."""
    stripped = 0
    for cell in library.cells.values():
        for arc in cell.arcs:
            for timing in arc.timing.values():
                if timing.sigma_early is not None or timing.sigma_late is not None:
                    timing.sigma_early = None
                    timing.sigma_late = None
                    stripped += 1
    return stripped


def arc_sigma(
    arc: TimingArc,
    out_direction: str,
    in_slew: float,
    load: float,
    mode: str = "late",
) -> float:
    """LVF sigma for an arc lookup; raises when the arc has no LVF data."""
    value = arc.sigma(out_direction, in_slew, load, mode)
    if value is None:
        raise LibraryError(
            f"arc {arc.related_pin}->{arc.pin} has no LVF sigma ({mode})"
        )
    return value


def sigma_asymmetry(cell: Cell, out_direction: str = "fall") -> Optional[float]:
    """Ratio of late to early sigma at the grid centre — >1 reflects the
    right-skewed (setup long tail) delay distribution of Fig 7."""
    arcs = cell.delay_arcs()
    if not arcs:
        return None
    timing = arcs[0].timing.get(out_direction)
    if timing is None or timing.sigma_late is None or timing.sigma_early is None:
        return None
    mid_slew = float(timing.delay.index_1[len(timing.delay.index_1) // 2])
    mid_load = float(timing.delay.index_2[len(timing.delay.index_2) // 2])
    late = timing.sigma_late.lookup(mid_slew, mid_load)
    early = timing.sigma_early.lookup(mid_slew, mid_load)
    if early <= 0.0:
        return None
    return late / early
